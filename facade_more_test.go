package repro

import (
	"context"
	"path/filepath"
	"testing"
)

// TestFacadeLexicons exercises the lexicon constructors through the
// public API.
func TestFacadeLexicons(t *testing.T) {
	cfg := SmallScaleConfig()
	g, err := NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Universe()
	asp := AspellLexicon(u)
	opt := OptimalLexicon(u)
	us := UsenetLexicon(g, NewRNG(5), 200000, 900)
	if asp.Len() == 0 || opt.Len() != u.Size() || us.Len() == 0 {
		t.Fatalf("lexicon sizes: aspell=%d optimal=%d usenet=%d", asp.Len(), opt.Len(), us.Len())
	}
	if got := us.Overlap(asp); got == 0 || got > asp.Len() {
		t.Errorf("overlap = %d", got)
	}
}

// TestFacadeSharded drives the sharded serving layer and the sharded
// online deployment through the public API.
func TestFacadeSharded(t *testing.T) {
	cfg := SmallScaleConfig()
	g, err := NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(41)
	train := g.Corpus(rng, 120, 120)

	clfs := make([]Classifier, 3)
	for i := range clfs {
		clf, err := NewClassifier("sbayes")
		if err != nil {
			t.Fatal(err)
		}
		TrainClassifier(clf, train)
		clfs[i] = clf
	}
	sh := NewSharded(clfs, ShardedConfig{Name: "facade", Workers: 2})
	msgs := g.Corpus(rng, 30, 30)
	results, err := sh.ClassifyBatch(context.Background(), msgs.Ham())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(msgs.Ham()) {
		t.Fatalf("%d results for %d messages", len(results), len(msgs.Ham()))
	}
	st := sh.Stats()
	if st.Combined.Classified != uint64(len(results)) || len(st.Shards) != 3 {
		t.Fatalf("sharded stats: %+v", st.Combined)
	}
	var byLabel uint64
	for _, n := range st.Combined.ByLabel {
		byLabel += n
	}
	if byLabel != st.Combined.Classified {
		t.Errorf("combined sum(ByLabel) = %d != Classified %d", byLabel, st.Combined.Classified)
	}
	if sh.ShardFor(msgs.Ham()[0]) != int(RecipientShardKey(msgs.Ham()[0])%3) {
		t.Error("facade routing disagrees with RecipientShardKey")
	}

	dcfg := DefaultDeploymentConfig()
	dcfg.Weeks = 2
	dcfg.InitialMailStore = 200
	dcfg.MessagesPerWeek = 100
	dcfg.TestSize = 50
	dcfg.Shards = 2
	res, err := RunOnlineDeployment(g, dcfg, NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != 2 || len(res.Weeks[0].ByShard) != 2 {
		t.Fatalf("sharded deployment trace: %+v", res.Weeks)
	}
}

// TestFacadeCorpusPersistence round-trips a corpus through mbox pairs
// via the facade.
func TestFacadeCorpusPersistence(t *testing.T) {
	cfg := SmallScaleConfig()
	g, err := NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Corpus(NewRNG(6), 8, 8)
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := c.SaveMboxPair(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMboxPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumHam() != 8 || got.NumSpam() != 8 {
		t.Errorf("round trip = %d/%d", got.NumHam(), got.NumSpam())
	}
}

// TestFacadeExperimentEnv builds an environment and runs the cheapest
// driver through the facade types.
func TestFacadeExperimentEnv(t *testing.T) {
	env, err := NewExperimentEnv(SmallScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Pool.Len() == 0 || env.Aspell.Len() == 0 {
		t.Error("environment incomplete")
	}
}

// TestFacadeDynamicThreshold exercises the threshold defense type
// alias end to end.
func TestFacadeDynamicThreshold(t *testing.T) {
	cfg := SmallScaleConfig()
	g, err := NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(7)
	train := g.Corpus(rng, 200, 200)
	d := DynamicThreshold{Utility: 0.10}
	f, t0, t1, err := d.Train(train, DefaultFilterOptions(), nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if t0 > t1 {
		t.Errorf("thresholds inverted: %v > %v", t0, t1)
	}
	if conf := Evaluate(f, g.Corpus(rng, 50, 50)); conf.Accuracy() < 0.8 {
		t.Errorf("defended accuracy %v", conf.Accuracy())
	}
}

// TestFacadeBackendsAndEngine exercises the interface-first API end
// to end: registry lookup, generic training, batch scoring, and the
// backend-generic RONI constructor.
func TestFacadeBackendsAndEngine(t *testing.T) {
	cfg := SmallScaleConfig()
	g, err := NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(8)
	train := g.Corpus(rng, 150, 150)
	test := g.Corpus(rng, 40, 40)

	names := Backends()
	if len(names) < 2 {
		t.Fatalf("backends = %v", names)
	}
	for _, name := range names {
		clf, err := NewClassifier(name)
		if err != nil {
			t.Fatal(err)
		}
		TrainClassifier(clf, train)
		if conf := EvaluateBatch(clf, test, 4); conf.Accuracy() < 0.8 {
			t.Errorf("%s accuracy %v", name, conf.Accuracy())
		}
		eng := NewEngine(clf, EngineConfig{Name: name, Workers: 3})
		msgs := test.Ham()
		results, err := eng.ClassifyBatch(context.Background(), msgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(msgs) {
			t.Fatalf("%s: %d results for %d messages", name, len(results), len(msgs))
		}
		if stats := eng.Stats(); stats.Classified != uint64(len(msgs)) {
			t.Errorf("%s: stats.Classified = %d", name, stats.Classified)
		}
	}

	// RONI over the graham backend through the facade.
	backend, err := LookupBackend("graham")
	if err != nil {
		t.Fatal(err)
	}
	roni, err := NewRONIBackend(DefaultRONIConfig(), train, backend.New, NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if impact := roni.MeasureImpact(g.HamMessage(rng), false); impact.HamAsHamDelta < 0 {
		t.Logf("ham query impact %v", impact)
	}
}

// TestFacadeTaxonomy checks the re-exported attack metadata.
func TestFacadeTaxonomy(t *testing.T) {
	cfg := SmallScaleConfig()
	g, err := NewGeneratorWith(cfg.Universe, cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	var a Attacker = NewOptimalAttack(g.Universe())
	if a.Taxonomy().String() != "Causative Availability Indiscriminate" {
		t.Errorf("taxonomy = %v", a.Taxonomy())
	}
	if a.Name() != "optimal" {
		t.Errorf("name = %q", a.Name())
	}
}
