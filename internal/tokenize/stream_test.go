package tokenize

import (
	"strings"
	"testing"

	"repro/internal/mail"
)

// streamEqualsLegacy fails unless Stream(m) matches the legacy
// Tokenize walk token for token: same distinct tokens in the same
// first-appearance order, occurrence counts matching the full stream,
// and Total equal to the full stream length.
func streamEqualsLegacy(t *testing.T, tok *Tokenizer, m *mail.Message) {
	t.Helper()
	full := tok.Tokenize(m)
	ts := tok.Stream(m)

	if ts.Total() != len(full) {
		t.Fatalf("Total = %d, legacy stream has %d tokens", ts.Total(), len(full))
	}
	wantOrder := make([]string, 0, len(full))
	wantCount := make(map[string]int, len(full))
	for _, w := range full {
		if wantCount[w] == 0 {
			wantOrder = append(wantOrder, w)
		}
		wantCount[w]++
	}
	if ts.Len() != len(wantOrder) {
		t.Fatalf("Len = %d, want %d distinct (%v vs %v)", ts.Len(), len(wantOrder), ts.Strings(), wantOrder)
	}
	for i := 0; i < ts.Len(); i++ {
		got := string(ts.At(i))
		if got != wantOrder[i] {
			t.Fatalf("token %d = %q, want %q", i, got, wantOrder[i])
		}
		if ts.Count(i) != wantCount[got] {
			t.Fatalf("count(%q) = %d, want %d", got, ts.Count(i), wantCount[got])
		}
	}
	// The []string bridge must build the identical stream, digest
	// included — it is the conformance anchor between the two walks.
	if bridge := StreamFromTokens(full); bridge.Digest() != ts.Digest() {
		t.Fatalf("StreamFromTokens digest %x != Stream digest %x", bridge.Digest(), ts.Digest())
	}
	if n := tok.DistinctTokenCount(m); n != ts.Len() {
		t.Fatalf("DistinctTokenCount = %d, want %d", n, ts.Len())
	}
}

func streamTestMessage() *mail.Message {
	m := &mail.Message{Body: "FREE money now!!! visit http://WIN.example.com/prize?x=1 or mail " +
		"prizes@big.example.org today today today " + strings.Repeat("verylongword", 5) + " end\n" +
		"héllo wörld   nbsp 日本語のメール です " + string([]byte{0xff, 0xfe, 'a', 'b', 'c'})}
	m.Header.Add("Subject", "YOU have WON a Prize prize")
	m.Header.Add("From", "Lucky Winner <winner@spam.example.net>")
	m.Header.Add("To", "victim@corp.example.com")
	m.Header.Add("Cc", "other list")
	m.Header.Add("X-Mailer", "Bulk Blaster 2000")
	m.Header.Add("Content-Type", "text/plain; charset=UTF-8")
	m.Header.Add("Received", "from relay.spam.net ([10.20.30.40]) by mx.corp.example.com;")
	m.Header.Add("Subject", "second subject line")
	return m
}

func TestStreamMatchesTokenize(t *testing.T) {
	m := streamTestMessage()
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"received", func() Options { o := DefaultOptions(); o.MineReceived = true; return o }()},
		{"noheaders", func() Options { o := DefaultOptions(); o.Headers = false; return o }()},
		{"nourl", func() Options { o := DefaultOptions(); o.URLTokens = false; return o }()},
		{"noskip", func() Options { o := DefaultOptions(); o.SkipTokens = false; return o }()},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			streamEqualsLegacy(t, New(cfg.opts), m)
		})
	}
}

func TestStreamEmptyMessage(t *testing.T) {
	ts := Default().Stream(&mail.Message{})
	if ts.Len() != 0 || ts.Total() != 0 {
		t.Fatalf("empty message produced %d/%d tokens", ts.Len(), ts.Total())
	}
	streamEqualsLegacy(t, Default(), &mail.Message{})
}

func TestStreamDigestDistinguishesPayloads(t *testing.T) {
	tok := Default()
	a := tok.Stream(&mail.Message{Body: "alpha beta gamma"})
	b := tok.Stream(&mail.Message{Body: "alpha beta delta"})
	if a.Digest() == b.Digest() {
		t.Fatal("different payloads share a digest")
	}
	// Two distinct *mail.Message values with equal content digest
	// equally — that is the property admission memoization keys on.
	c := tok.Stream(&mail.Message{Body: "alpha beta gamma"})
	if a.Digest() != c.Digest() {
		t.Fatal("equal payloads digest differently")
	}
	// Multiplicity is part of the identity.
	d := tok.Stream(&mail.Message{Body: "alpha beta gamma gamma"})
	if a.Digest() == d.Digest() {
		t.Fatal("digest ignores multiplicity")
	}
}

func TestStreamScratchReuseIsClean(t *testing.T) {
	// Streams must stay valid and independent after the scratch that
	// built them is reused by later messages.
	tok := Default()
	a := tok.Stream(&mail.Message{Body: "first message body words"})
	aWant := a.Strings()
	for i := 0; i < 64; i++ {
		_ = tok.Stream(&mail.Message{Body: strings.Repeat("other content entirely ", i+1)})
	}
	for i, w := range aWant {
		if string(a.At(i)) != w {
			t.Fatalf("stream token %d corrupted by scratch reuse: %q != %q", i, a.At(i), w)
		}
	}
}

func TestSymbolsInternLookup(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Fatal("distinct tokens share an ID")
	}
	if again := s.Intern("alpha"); again != a {
		t.Fatalf("re-intern changed ID: %d vs %d", again, a)
	}
	if id, ok := s.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d, %v", id, ok)
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Fatal("Lookup of unknown token succeeded")
	}
	if s.Len() != 2 || s.Name(a) != "alpha" || s.Name(b) != "beta" {
		t.Fatalf("table state: len=%d", s.Len())
	}
}

func TestSymbolsCloneCopyOnWrite(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("alpha")
	c := s.Clone()
	// Clone sees the existing assignment.
	if id, ok := c.Lookup("alpha"); !ok || id != a {
		t.Fatal("clone lost an interned token")
	}
	// Divergent interning stays private to each side.
	cb := c.Intern("beta")
	if _, ok := s.Lookup("beta"); ok {
		t.Fatal("clone's intern leaked into the original")
	}
	sg := s.Intern("gamma")
	if _, ok := c.Lookup("gamma"); ok {
		t.Fatal("original's intern leaked into the clone")
	}
	if cb != sg {
		// Both assigned ID 1 independently — the tables are dense and
		// disjoint after the write fork.
		t.Fatalf("post-clone IDs diverged unexpectedly: %d vs %d", cb, sg)
	}
}

func TestStreamFromTokensCounts(t *testing.T) {
	ts := StreamFromTokens([]string{"a", "b", "a", "c", "a", "b"})
	if ts.Len() != 3 || ts.Total() != 6 {
		t.Fatalf("len=%d total=%d", ts.Len(), ts.Total())
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for i := 0; i < ts.Len(); i++ {
		if ts.Count(i) != want[string(ts.At(i))] {
			t.Fatalf("count(%q) = %d", ts.At(i), ts.Count(i))
		}
	}
}

// FuzzTokenStream holds the pooled streaming walk to exact
// equivalence with the legacy []string walk on arbitrary header and
// body bytes — the two implementations cannot drift.
func FuzzTokenStream(f *testing.F) {
	f.Add("WIN a prize", "bob <bob@spam.example.net>", "free MONEY http://x.example.com/a?b=c now now")
	f.Add("", "", "")
	f.Add("héllo", "no-at-sign", "日本語   "+strings.Repeat("w", 45)+" a@b.c longemailaddress@example.com")
	f.Add("x", "a@b", string([]byte{0xff, 0x80, 'a', ' ', 0xc3}))
	opts := DefaultOptions()
	opts.MineReceived = true
	tok := New(opts)
	f.Fuzz(func(t *testing.T, subject, from, body string) {
		m := &mail.Message{Body: body}
		m.Header.Add("Subject", subject)
		m.Header.Add("From", from)
		m.Header.Add("Received", "from "+from+" (["+subject+"])")
		full := tok.Tokenize(m)
		ts := tok.Stream(m)
		if ts.Total() != len(full) {
			t.Fatalf("Total %d != %d", ts.Total(), len(full))
		}
		seen := make(map[string]int)
		order := make([]string, 0, len(full))
		for _, w := range full {
			if seen[w] == 0 {
				order = append(order, w)
			}
			seen[w]++
		}
		if ts.Len() != len(order) {
			t.Fatalf("Len %d != %d", ts.Len(), len(order))
		}
		for i := range order {
			if string(ts.At(i)) != order[i] || ts.Count(i) != seen[order[i]] {
				t.Fatalf("token %d: %q×%d != %q×%d", i, ts.At(i), ts.Count(i), order[i], seen[order[i]])
			}
		}
		if n := tok.DistinctTokenCount(m); n != len(order) {
			t.Fatalf("DistinctTokenCount %d != %d", n, len(order))
		}
	})
}
