package tokenize

import (
	"strings"
	"testing"
)

// The corpus substitute is pure ASCII, but a deployed filter sees
// arbitrary bytes; the tokenizer must stay total and sane on unicode.

func TestUnicodeBodySafe(t *testing.T) {
	tok := Default()
	inputs := []string{
		"héllo wörld",
		"日本語のメール です",
		"mixed ascii και ελληνικά",
		"emoji 🎉🎉🎉 party",
		" nbsp separated words",
	}
	for _, in := range inputs {
		got := tok.TokenizeText(in)
		for _, g := range got {
			if g == "" {
				t.Fatalf("empty token from %q", in)
			}
		}
	}
}

func TestUnicodeCaseFolding(t *testing.T) {
	got := Default().TokenizeText("HÉLLO")
	if len(got) != 1 || got[0] != strings.ToLower("HÉLLO") {
		t.Errorf("got %v", got)
	}
}

func TestInvalidUTF8DoesNotPanic(t *testing.T) {
	tok := Default()
	// Broken encodings must not crash the pipeline.
	bad := string([]byte{0xff, 0xfe, 'a', 'b', 'c', ' ', 0x80, 0x81, 0x82, 0x83})
	_ = tok.TokenizeText(bad)
}

func TestLongUnicodeWordSkipToken(t *testing.T) {
	// A long multibyte word takes the skip path; the skip token keys
	// on the first byte slice, which must not split a rune unsafely
	// for our purposes (byte-prefix identity is all the learner
	// needs).
	w := strings.Repeat("é", 20) // 40 bytes
	got := Default().TokenizeText(w)
	if len(got) != 1 || !strings.HasPrefix(got[0], "skip:") {
		t.Errorf("got %v", got)
	}
}

func TestNullBytesAndControls(t *testing.T) {
	got := Default().TokenizeText("abc\x00def ghi\tjkl")
	// Tab splits; NUL does not (not whitespace) — totality is what
	// matters here.
	if len(got) == 0 {
		t.Error("no tokens from control-byte input")
	}
}
