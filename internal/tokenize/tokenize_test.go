package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mail"
)

func msgWithBody(body string) *mail.Message {
	return &mail.Message{Body: body}
}

func TestBodyBasicWords(t *testing.T) {
	got := Default().TokenizeText("The quick brown fox")
	want := []string{"the", "quick", "brown", "fox"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBodyLowercased(t *testing.T) {
	got := Default().TokenizeText("FREE Money NOW")
	want := []string{"free", "money", "now"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBodyShortWordsDropped(t *testing.T) {
	got := Default().TokenizeText("a an to see it")
	want := []string{"see"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBodyPunctuationKept(t *testing.T) {
	// SpamBayes splits on whitespace only; trailing punctuation stays.
	got := Default().TokenizeText("hello, world.")
	want := []string{"hello,", "world."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBodyLengthBoundaries(t *testing.T) {
	tok := Default()
	cases := map[string][]string{
		"ab":                    nil,              // below min
		"abc":                   {"abc"},          // at min
		"abcdefghijkl":          {"abcdefghijkl"}, // at max (12)
		"abcdefghijklm":         {"skip:a 10"},    // 13 chars
		strings.Repeat("z", 25): {"skip:z 20"},    // bucket 20
		strings.Repeat("q", 40): {"skip:q 40"},    // bucket 40
	}
	for in, want := range cases {
		got := tok.TokenizeText(in)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TokenizeText(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestBodyEmbeddedEmailAddress(t *testing.T) {
	got := Default().TokenizeText("contact bob.smith@mail.enron.com today")
	want := []string{
		"contact",
		"email name:bob.smith",
		"email addr:mail", "email addr:enron", "email addr:com",
		"today",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBodyURLTokens(t *testing.T) {
	got := Default().TokenizeText("visit http://shop.pills.biz/buy?x=1 now")
	want := []string{"visit", "proto:http", "url:shop", "url:pills", "url:biz", "now"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	got = Default().TokenizeText("https://secure.bank.com")
	want = []string{"proto:https", "url:secure", "url:bank", "url:com"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	got = Default().TokenizeText("www.example.org:8080/path")
	want = []string{"proto:http", "url:www", "url:example", "url:org"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestURLTokensDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.URLTokens = false
	got := New(opts).TokenizeText("http://a.b.c/d")
	// Falls through to the long-word rule.
	if len(got) != 1 || !strings.HasPrefix(got[0], "skip:") {
		t.Errorf("got %v", got)
	}
}

func TestSkipTokensDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.SkipTokens = false
	got := New(opts).TokenizeText("short " + strings.Repeat("x", 30))
	want := []string{"short"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSubjectTokens(t *testing.T) {
	m := msgWithBody("body words here\n")
	m.Header.Add("Subject", "Quarterly Budget Review")
	got := Default().Tokenize(m)
	for _, want := range []string{"subject:quarterly", "subject:budget", "subject:review"} {
		if !contains(got, want) {
			t.Errorf("missing %q in %v", want, got)
		}
	}
	// Header tokens come before body tokens.
	if got[0] != "subject:quarterly" {
		t.Errorf("first token = %q", got[0])
	}
}

func TestAddressTokens(t *testing.T) {
	m := msgWithBody("")
	m.Header.Add("From", "Alice Liddell <alice@mail.enron.com>")
	m.Header.Add("To", "bob@other.org")
	got := Default().Tokenize(m)
	for _, want := range []string{
		"from:name:alice", "from:addr:mail", "from:addr:enron", "from:addr:com",
		"to:name:bob", "to:addr:other", "to:addr:org",
	} {
		if !contains(got, want) {
			t.Errorf("missing %q in %v", want, got)
		}
	}
}

func TestAddressWithoutAt(t *testing.T) {
	m := msgWithBody("")
	m.Header.Add("From", "undisclosed-recipients")
	got := Default().Tokenize(m)
	if !contains(got, "from:name:undisclosed-recipients") {
		t.Errorf("got %v", got)
	}
}

func TestWordFieldTokens(t *testing.T) {
	m := msgWithBody("")
	m.Header.Add("X-Mailer", "Mutt/1.5.9i")
	m.Header.Add("Content-Type", "text/html; charset=\"us-ascii\"")
	got := Default().Tokenize(m)
	for _, want := range []string{"x-mailer:mutt/1.5.9i", "content-type:text/html;"} {
		if !contains(got, want) {
			t.Errorf("missing %q in %v", want, got)
		}
	}
}

func TestHeadersDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Headers = false
	m := msgWithBody("body\n")
	m.Header.Add("Subject", "ignored")
	got := New(opts).Tokenize(m)
	want := []string{"body"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEmptyHeaderNoHeaderTokens(t *testing.T) {
	// Dictionary attack emails have empty headers: only body tokens.
	got := Default().Tokenize(msgWithBody("alpha beta\n"))
	want := []string{"alpha", "beta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReceivedMining(t *testing.T) {
	opts := DefaultOptions()
	opts.MineReceived = true
	m := msgWithBody("")
	m.Header.Add("Received", "from relay.spam.biz ([10.20.30.40]) by mx.corp.com")
	got := New(opts).Tokenize(m)
	for _, want := range []string{
		"received:relay", "received:spam", "received:biz",
		"received:ip:10", "received:ip:10.20", "received:ip:10.20.30", "received:ip:10.20.30.40",
		"received:mx", "received:corp", "received:com",
	} {
		if !contains(got, want) {
			t.Errorf("missing %q in %v", want, got)
		}
	}
	// Default options must not mine Received.
	got = Default().Tokenize(m)
	if len(got) != 0 {
		t.Errorf("default tokenizer mined Received: %v", got)
	}
}

func TestTokenSetDeduplicates(t *testing.T) {
	got := Default().TokenSet(msgWithBody("spam spam spam eggs spam\n"))
	want := []string{"spam", "eggs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenSetFirstSeenOrder(t *testing.T) {
	m := msgWithBody("zebra apple zebra mango apple\n")
	got := Default().TokenSet(m)
	want := []string{"zebra", "apple", "mango"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenSetEmptyMessage(t *testing.T) {
	if got := Default().TokenSet(&mail.Message{}); len(got) != 0 {
		t.Errorf("empty message produced %v", got)
	}
}

func TestIsIPv4ish(t *testing.T) {
	yes := []string{"1.2.3.4", "255.255.255.255", "10.0.0.1"}
	no := []string{"1.2.3", "1.2.3.4.5", "a.b.c.d", "1..2.3", "1234.1.1.1", "example.com"}
	for _, s := range yes {
		if !isIPv4ish(s) {
			t.Errorf("isIPv4ish(%q) = false", s)
		}
	}
	for _, s := range no {
		if isIPv4ish(s) {
			t.Errorf("isIPv4ish(%q) = true", s)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {10, "10"}, {120, "120"}, {98560, "98560"}} {
		if got := itoa(c.n); got != c.want {
			t.Errorf("itoa(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTokenizeDeterministic(t *testing.T) {
	m := msgWithBody("some words repeated words and a http://x.y.z link\n")
	m.Header.Add("Subject", "Hello There")
	m.Header.Add("From", "p@q.com")
	a := Default().Tokenize(m)
	b := Default().Tokenize(m)
	if !reflect.DeepEqual(a, b) {
		t.Error("Tokenize is not deterministic")
	}
}

// Property: every kept verbatim body token obeys the length bounds and
// is lowercase; TokenSet is duplicate-free and a subset of Tokenize.
func TestQuickTokenInvariants(t *testing.T) {
	tok := Default()
	f := func(body string) bool {
		m := msgWithBody(body)
		stream := tok.Tokenize(m)
		set := tok.TokenSet(m)
		seen := map[string]bool{}
		for _, s := range set {
			if seen[s] {
				return false // duplicate in TokenSet
			}
			seen[s] = true
		}
		inStream := map[string]bool{}
		for _, s := range stream {
			inStream[s] = true
			if !strings.ContainsAny(s, ":") { // plain body word
				if len(s) < 3 || len(s) > 12 {
					return false
				}
				if s != strings.ToLower(s) {
					return false
				}
			}
		}
		for _, s := range set {
			if !inStream[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func BenchmarkTokenizeBody(b *testing.B) {
	body := strings.Repeat("the quick brown fox jumps over lazy dogs near riverbank ", 40)
	m := msgWithBody(body)
	tok := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.TokenSet(m)
	}
}
