package tokenize

import (
	"strings"
	"sync/atomic"
)

// Sym is a dense interned token ID. Each backend snapshot owns a
// Symbols table assigning IDs 0..Len()-1 in intern order, so
// per-token statistics live in flat slices indexed by Sym instead of
// string-keyed maps — and cloning a snapshot copies a slice instead
// of rebuilding a map.
type Sym uint32

// NoSym is the invalid ID (returned alongside ok=false by Lookup).
const NoSym = ^Sym(0)

// Symbols maps token text to dense IDs. It is copy-on-write: Clone is
// O(1) and shares the table with the original until either side
// interns a new token, at which point the interning side copies for
// itself. The copy-on-write discipline follows the Classifier
// contract: Lookup (scoring) may run concurrently with Clone, but
// Intern (learning) must not run concurrently with anything else on
// the same filter.
type Symbols struct {
	ids   map[string]Sym
	names []string
	// shared marks the table as referenced by a clone; the next
	// Intern copies before mutating. Atomic because Clone (on the
	// serving snapshot) may race with Lookup-only readers, and the
	// race detector must see clean accesses.
	shared atomic.Bool
}

// NewSymbols returns an empty intern table.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[string]Sym)}
}

// Len returns the number of interned tokens.
func (s *Symbols) Len() int { return len(s.names) }

// Name returns the token text of an interned ID.
func (s *Symbols) Name(id Sym) string { return s.names[id] }

// Lookup returns the ID of tok, if interned. Read-only and safe for
// concurrent use with other Lookups and with Clone.
func (s *Symbols) Lookup(tok string) (Sym, bool) {
	id, ok := s.ids[tok]
	if !ok {
		return NoSym, false
	}
	return id, true
}

// LookupToken is Lookup keyed by a stream Token. Token is a string
// type, so the conversion at the map index is free — hot scoring loops
// resolve stream tokens to IDs without building a per-token heap
// string. Read-only, same concurrency contract as Lookup.
func (s *Symbols) LookupToken(tok Token) (Sym, bool) {
	id, ok := s.ids[string(tok)]
	if !ok {
		return NoSym, false
	}
	return id, true
}

// Intern returns tok's ID, assigning the next dense ID to a new
// token. The key is copied (tok may be a zero-copy view into a
// message's TokenStream arena, which must not be pinned by the
// vocabulary). Mutating: callers must hold the filter's single-writer
// discipline.
func (s *Symbols) Intern(tok string) Sym {
	if id, ok := s.ids[tok]; ok {
		return id
	}
	if s.shared.Load() {
		s.unshare()
	}
	key := strings.Clone(tok)
	id := Sym(len(s.names))
	s.ids[key] = id
	s.names = append(s.names, key)
	return id
}

// unshare gives this table private storage before the first mutation
// after a Clone, leaving every other referent of the shared storage
// untouched.
func (s *Symbols) unshare() {
	ids := make(map[string]Sym, len(s.ids)+64)
	for k, v := range s.ids {
		ids[k] = v
	}
	s.ids = ids
	s.names = append(make([]string, 0, len(s.names)+64), s.names...)
	s.shared.Store(false)
}

// Clone returns a copy-on-write clone: O(1), sharing storage with s
// until either side next interns a new token. Safe to call while
// other goroutines Lookup against s (the snapshot-clone pattern of
// RetrainIncremental and RONI's clone-and-probe).
func (s *Symbols) Clone() *Symbols {
	s.shared.Store(true)
	c := &Symbols{ids: s.ids, names: s.names}
	c.shared.Store(true)
	return c
}
