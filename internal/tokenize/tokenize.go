// Package tokenize implements the SpamBayes email tokenizer used by
// the learner in internal/sbayes.
//
// The paper (footnote 1) observes that the main difference between the
// learning elements of SpamBayes, BogoFilter and SpamAssassin is the
// tokenization method, so the tokenizer is kept separate from the
// learner and fully configurable. The default configuration follows
// the SpamBayes tokenizer:
//
//   - the body is lowercased and split on whitespace;
//   - words of 3–12 characters are kept verbatim (punctuation and all,
//     exactly as SpamBayes does);
//   - longer words yield a "skip:<first char> <length bucket>" token,
//     except embedded email addresses, which split into
//     "email name:"/"email addr:" tokens;
//   - URLs yield "proto:" and "url:" tokens for the scheme and host
//     pieces;
//   - selected header fields are tokenized with a field prefix
//     ("subject:report", "from:addr:enron", "x-mailer:outlook", ...).
//
// Token multiplicity within one message is irrelevant to the learner
// (the paper models messages as indicator vectors), so the usual entry
// point is TokenSet, which returns each distinct token once in
// first-appearance order.
package tokenize

import (
	"strings"

	"repro/internal/mail"
)

// Options configures a Tokenizer. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// MinWordLen and MaxWordLen bound the body words kept verbatim
	// (SpamBayes: 3 and 12).
	MinWordLen int
	MaxWordLen int
	// SkipTokens controls whether out-of-range words generate
	// "skip:" summary tokens.
	SkipTokens bool
	// URLTokens controls whether http/https/www words generate
	// "proto:" and "url:" tokens.
	URLTokens bool
	// Headers enables header tokenization (prefixed tokens for the
	// fields listed in AddressFields, WordFields and Subject).
	Headers bool
	// MineReceived additionally tokenizes Received lines (off by
	// default in SpamBayes).
	MineReceived bool
}

// DefaultOptions returns the SpamBayes-equivalent configuration.
func DefaultOptions() Options {
	return Options{
		MinWordLen: 3,
		MaxWordLen: 12,
		SkipTokens: true,
		URLTokens:  true,
		Headers:    true,
	}
}

// addressFields are header fields tokenized as email addresses.
var addressFields = []string{"From", "To", "Cc", "Sender", "Reply-To"}

// wordFields are header fields tokenized as plain word lists.
var wordFields = []string{"X-Mailer", "Content-Type"}

// Tokenizer converts messages into token streams. It is immutable and
// safe for concurrent use.
type Tokenizer struct {
	opts Options
}

// New returns a Tokenizer with the given options.
func New(opts Options) *Tokenizer { return &Tokenizer{opts: opts} }

// Default returns a Tokenizer with DefaultOptions.
func Default() *Tokenizer { return New(DefaultOptions()) }

// Options returns the tokenizer's configuration.
func (t *Tokenizer) Options() Options { return t.opts }

// Tokenize returns the full token stream of the message, headers
// first, with duplicates preserved.
func (t *Tokenizer) Tokenize(m *mail.Message) []string {
	var out []string
	out = t.appendHeaderTokens(out, m)
	out = t.appendTextTokens(out, m.Body)
	return out
}

// TokenSet returns each distinct token of the message exactly once,
// in first-appearance order. This is the representation the learner
// trains and scores on.
func (t *Tokenizer) TokenSet(m *mail.Message) []string {
	stream := t.Tokenize(m)
	seen := make(map[string]struct{}, len(stream))
	out := stream[:0]
	for _, tok := range stream {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		out = append(out, tok)
	}
	return out
}

// TokenizeText tokenizes a bare body text (no headers).
func (t *Tokenizer) TokenizeText(text string) []string {
	return t.appendTextTokens(nil, text)
}

// appendHeaderTokens emits prefixed tokens for the configured header
// fields.
func (t *Tokenizer) appendHeaderTokens(out []string, m *mail.Message) []string {
	if !t.opts.Headers {
		return out
	}
	// Subject: plain word tokenization with a "subject:" prefix.
	for _, subj := range m.Header.GetAll("Subject") {
		for _, w := range strings.Fields(strings.ToLower(subj)) {
			out = t.appendWord(out, "subject:", w)
		}
	}
	for _, field := range addressFields {
		prefix := strings.ToLower(field) + ":"
		for _, v := range m.Header.GetAll(field) {
			out = appendAddressTokens(out, prefix, v)
		}
	}
	for _, field := range wordFields {
		prefix := strings.ToLower(field) + ":"
		for _, v := range m.Header.GetAll(field) {
			for _, w := range strings.Fields(strings.ToLower(v)) {
				out = append(out, prefix+w)
			}
		}
	}
	if t.opts.MineReceived {
		for _, v := range m.Header.GetAll("Received") {
			out = appendReceivedTokens(out, v)
		}
	}
	return out
}

// appendTextTokens lowercases text, splits it on whitespace, and
// applies the word rules.
func (t *Tokenizer) appendTextTokens(out []string, text string) []string {
	if text == "" {
		return out
	}
	for _, w := range strings.Fields(strings.ToLower(text)) {
		if t.opts.URLTokens {
			if rest, proto, ok := splitURL(w); ok {
				out = append(out, "proto:"+proto)
				out = appendURLTokens(out, rest)
				continue
			}
		}
		out = t.appendWord(out, "", w)
	}
	return out
}

// appendWord applies the SpamBayes word rules to a single whitespace-
// delimited word and appends the resulting tokens with prefix.
func (t *Tokenizer) appendWord(out []string, prefix, w string) []string {
	n := len(w)
	switch {
	case n < t.opts.MinWordLen:
		// Too short to be discriminative; dropped (SpamBayes).
		return out
	case n <= t.opts.MaxWordLen:
		return append(out, prefix+w)
	case n < 40 && strings.Count(w, "@") == 1 && strings.Contains(w, "."):
		// An embedded email address.
		local, domain, _ := strings.Cut(w, "@")
		out = append(out, prefix+"email name:"+local)
		for _, piece := range strings.Split(domain, ".") {
			if piece != "" {
				out = append(out, prefix+"email addr:"+piece)
			}
		}
		return out
	case t.opts.SkipTokens:
		// Too long: record roughly how many characters were skipped.
		bucket := n / 10 * 10
		return append(out, prefix+"skip:"+w[:1]+" "+itoa(bucket))
	default:
		return out
	}
}

// splitURL reports whether w is a URL-ish word and returns the
// remainder after the scheme plus the scheme name.
func splitURL(w string) (rest, proto string, ok bool) {
	switch {
	case strings.HasPrefix(w, "http://"):
		return w[len("http://"):], "http", true
	case strings.HasPrefix(w, "https://"):
		return w[len("https://"):], "https", true
	case strings.HasPrefix(w, "www."):
		return w, "http", true
	default:
		return "", "", false
	}
}

// appendURLTokens splits the host part of a URL into "url:" tokens.
func appendURLTokens(out []string, rest string) []string {
	host := rest
	if i := strings.IndexAny(host, "/?#"); i >= 0 {
		host = host[:i]
	}
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	for _, piece := range strings.Split(host, ".") {
		if piece != "" {
			out = append(out, "url:"+piece)
		}
	}
	return out
}

// appendAddressTokens tokenizes an address header value ("Name
// <user@host>" or bare "user@host") into name and domain-piece tokens.
func appendAddressTokens(out []string, prefix, v string) []string {
	v = strings.ToLower(strings.TrimSpace(v))
	if v == "" {
		return out
	}
	addr := v
	if i := strings.IndexByte(v, '<'); i >= 0 {
		if j := strings.IndexByte(v[i:], '>'); j > 0 {
			addr = v[i+1 : i+j]
		}
	}
	local, domain, found := strings.Cut(addr, "@")
	if !found {
		return append(out, prefix+"name:"+addr)
	}
	out = append(out, prefix+"name:"+local)
	for _, piece := range strings.Split(domain, ".") {
		if piece != "" {
			out = append(out, prefix+"addr:"+piece)
		}
	}
	return out
}

// appendReceivedTokens mines hostnames and IPv4 octets out of a
// Received line.
func appendReceivedTokens(out []string, v string) []string {
	for _, w := range strings.Fields(strings.ToLower(v)) {
		w = strings.Trim(w, "()[];,")
		switch {
		case w == "":
		case isIPv4ish(w):
			// Leading octet pairs generalize across hosts in one
			// network, as SpamBayes' received miner does.
			parts := strings.Split(w, ".")
			for i := 1; i <= len(parts); i++ {
				out = append(out, "received:ip:"+strings.Join(parts[:i], "."))
			}
		case strings.Contains(w, "."):
			for _, piece := range strings.Split(w, ".") {
				if len(piece) >= 2 {
					out = append(out, "received:"+piece)
				}
			}
		}
	}
	return out
}

// isIPv4ish reports whether w looks like a dotted-decimal IPv4
// address.
func isIPv4ish(w string) bool {
	parts := strings.Split(w, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || len(p) > 3 {
			return false
		}
		for i := 0; i < len(p); i++ {
			if p[i] < '0' || p[i] > '9' {
				return false
			}
		}
	}
	return true
}

// itoa converts a small non-negative int to decimal without pulling in
// strconv allocations on the hot path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
