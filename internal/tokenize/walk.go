package tokenize

// The pooled streaming walk behind Stream and DistinctTokenCount. It
// applies exactly the rules of the []string walk in tokenize.go, but
// over byte slices lowered into reusable scratch buffers, emitting
// token pieces straight into the scratch arena — no intermediate
// slices, no per-token string concatenation. Equivalence with the
// legacy walk is pinned by TestStreamMatchesTokenize and
// FuzzTokenStream.

import (
	"bytes"
	"unicode"
	"unicode/utf8"

	"repro/internal/mail"
)

// Header-field prefixes, precomputed so the walk never rebuilds them.
var (
	addressPrefixes []string
	wordPrefixes    []string
)

func init() {
	for _, f := range addressFields {
		addressPrefixes = append(addressPrefixes, lowerASCII(f)+":")
	}
	for _, f := range wordFields {
		wordPrefixes = append(wordPrefixes, lowerASCII(f)+":")
	}
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Stream tokenizes the message exactly once into a TokenStream —
// every distinct token in first-appearance order with occurrence
// counts — using pooled per-message scratch. This is the serving-path
// entry point: the engine tokenizes at the batch boundary and the
// same stream flows through scoring, admission vetting and learning.
func (t *Tokenizer) Stream(m *mail.Message) *TokenStream {
	sc := getScratch()
	t.walkMessage(sc, m)
	ts := sc.finish()
	putScratch(sc)
	return ts
}

// DistinctTokenCount returns len(TokenSet(m)) without materializing
// any token slice: the walk runs through the pooled scratch and only
// the dedupe map's size survives. It exists so consumers outside the
// tokenization layer (the admission flood gate, notably) can ask for
// the one fact they need instead of calling a tokenization entry
// point themselves.
func (t *Tokenizer) DistinctTokenCount(m *mail.Message) int {
	sc := getScratch()
	t.walkMessage(sc, m)
	_, _ = sc.dedupe()
	n := len(sc.seen)
	putScratch(sc)
	return n
}

// walkMessage emits the message's full token stream (headers first,
// duplicates included) into the scratch, mirroring Tokenize.
func (t *Tokenizer) walkMessage(sc *scratch, m *mail.Message) {
	if t.opts.Headers {
		for i := range m.Header {
			if headerNameIs(m.Header[i].Name, "Subject") {
				t.walkWords(sc, "subject:", m.Header[i].Value, true)
			}
		}
		for fi, field := range addressFields {
			prefix := addressPrefixes[fi]
			for i := range m.Header {
				if headerNameIs(m.Header[i].Name, field) {
					sc.walkAddress(prefix, m.Header[i].Value)
				}
			}
		}
		for fi, field := range wordFields {
			prefix := wordPrefixes[fi]
			for i := range m.Header {
				if headerNameIs(m.Header[i].Name, field) {
					t.walkWords(sc, prefix, m.Header[i].Value, false)
				}
			}
		}
		if t.opts.MineReceived {
			for i := range m.Header {
				if headerNameIs(m.Header[i].Name, "Received") {
					sc.walkReceived(m.Header[i].Value)
				}
			}
		}
	}
	t.walkText(sc, m.Body)
}

// headerNameIs is strings.EqualFold restricted to what header names
// are: it matches mail.Header's case-insensitive lookup.
func headerNameIs(name, want string) bool {
	if len(name) != len(want) {
		return false
	}
	for i := 0; i < len(name); i++ {
		a, b := name[i], want[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// lowerInto appends the lowercase of s to dst, byte-for-byte equal to
// strings.ToLower(s) (including U+FFFD replacement of invalid UTF-8).
func lowerInto(dst []byte, s string) []byte {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
		i += size
	}
	return dst
}

// isSpaceByte matches strings.Fields' ASCII space set.
func isSpaceByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// eachField iterates the whitespace-separated fields of b (the
// unicode.IsSpace split strings.Fields performs), calling fn for each.
func eachField(b []byte, fn func(w []byte)) {
	i := 0
	for i < len(b) {
		// Skip leading space.
		for i < len(b) {
			if c := b[i]; c < utf8.RuneSelf {
				if !isSpaceByte(c) {
					break
				}
				i++
				continue
			}
			r, size := utf8.DecodeRune(b[i:])
			if !unicode.IsSpace(r) {
				break
			}
			i += size
		}
		start := i
		for i < len(b) {
			if c := b[i]; c < utf8.RuneSelf {
				if isSpaceByte(c) {
					break
				}
				i++
				continue
			}
			r, size := utf8.DecodeRune(b[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += size
		}
		if i > start {
			fn(b[start:i])
		}
	}
}

// walkText lowercases body text into the scratch and applies the word
// rules (URL splitting included), mirroring appendTextTokens.
func (t *Tokenizer) walkText(sc *scratch, text string) {
	if text == "" {
		return
	}
	sc.lower = lowerInto(sc.lower[:0], text)
	eachField(sc.lower, func(w []byte) {
		if t.opts.URLTokens {
			if rest, proto, ok := splitURLBytes(w); ok {
				sc.str("proto:")
				sc.str(proto)
				sc.end()
				sc.walkURL(rest)
				return
			}
		}
		t.walkWord(sc, "", w)
	})
}

// walkWords lowercases a header value and emits each field, through
// the word rules when rules is set (Subject) or verbatim with the
// prefix when not (the word-list fields), mirroring
// appendHeaderTokens.
func (t *Tokenizer) walkWords(sc *scratch, prefix, v string, rules bool) {
	sc.lower = lowerInto(sc.lower[:0], v)
	eachField(sc.lower, func(w []byte) {
		if rules {
			t.walkWord(sc, prefix, w)
			return
		}
		sc.str(prefix)
		sc.bs(w)
		sc.end()
	})
}

// walkWord applies the SpamBayes word rules to one lowered word,
// mirroring appendWord.
func (t *Tokenizer) walkWord(sc *scratch, prefix string, w []byte) {
	n := len(w)
	switch {
	case n < t.opts.MinWordLen:
	case n <= t.opts.MaxWordLen:
		sc.str(prefix)
		sc.bs(w)
		sc.end()
	case n < 40 && countByte(w, '@') == 1 && bytes.IndexByte(w, '.') >= 0:
		at := bytes.IndexByte(w, '@')
		local, domain := w[:at], w[at+1:]
		sc.str(prefix)
		sc.str("email name:")
		sc.bs(local)
		sc.end()
		eachDotPiece(domain, func(piece []byte) {
			sc.str(prefix)
			sc.str("email addr:")
			sc.bs(piece)
			sc.end()
		})
	case t.opts.SkipTokens:
		bucket := n / 10 * 10
		sc.str(prefix)
		sc.str("skip:")
		sc.bs(w[:1])
		sc.str(" ")
		sc.num(bucket)
		sc.end()
	}
}

// splitURLBytes mirrors splitURL.
func splitURLBytes(w []byte) (rest []byte, proto string, ok bool) {
	switch {
	case hasPrefix(w, "http://"):
		return w[len("http://"):], "http", true
	case hasPrefix(w, "https://"):
		return w[len("https://"):], "https", true
	case hasPrefix(w, "www."):
		return w, "http", true
	default:
		return nil, "", false
	}
}

// walkURL emits "url:" host-piece tokens, mirroring appendURLTokens.
func (sc *scratch) walkURL(rest []byte) {
	host := rest
	if i := bytes.IndexAny(host, "/?#"); i >= 0 {
		host = host[:i]
	}
	if i := bytes.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	eachDotPiece(host, func(piece []byte) {
		sc.str("url:")
		sc.bs(piece)
		sc.end()
	})
}

// walkAddress mirrors appendAddressTokens: lowercase, trim, extract
// the <...> bracket address if present, then name/domain tokens.
func (sc *scratch) walkAddress(prefix, v string) {
	sc.lower = lowerInto(sc.lower[:0], v)
	b := bytes.TrimSpace(sc.lower)
	if len(b) == 0 {
		return
	}
	addr := b
	if i := bytes.IndexByte(b, '<'); i >= 0 {
		if j := bytes.IndexByte(b[i:], '>'); j > 0 {
			addr = b[i+1 : i+j]
		}
	}
	at := bytes.IndexByte(addr, '@')
	if at < 0 {
		sc.str(prefix)
		sc.str("name:")
		sc.bs(addr)
		sc.end()
		return
	}
	sc.str(prefix)
	sc.str("name:")
	sc.bs(addr[:at])
	sc.end()
	eachDotPiece(addr[at+1:], func(piece []byte) {
		sc.str(prefix)
		sc.str("addr:")
		sc.bs(piece)
		sc.end()
	})
}

// walkReceived mirrors appendReceivedTokens.
func (sc *scratch) walkReceived(v string) {
	// The received walk needs the lowered value to survive the field
	// iteration, and no other walk runs concurrently on this scratch,
	// so reuse lower like the other walks do.
	sc.lower = lowerInto(sc.lower[:0], v)
	eachField(sc.lower, func(w []byte) {
		w = bytes.Trim(w, "()[];,")
		switch {
		case len(w) == 0:
		case isIPv4ishBytes(w):
			// Leading octet prefixes generalize across one network.
			for i := 0; i < len(w); i++ {
				if w[i] == '.' {
					sc.str("received:ip:")
					sc.bs(w[:i])
					sc.end()
				}
			}
			sc.str("received:ip:")
			sc.bs(w)
			sc.end()
		case bytes.IndexByte(w, '.') >= 0:
			eachDotPiece(w, func(piece []byte) {
				if len(piece) >= 2 {
					sc.str("received:")
					sc.bs(piece)
					sc.end()
				}
			})
		}
	})
}

// eachDotPiece calls fn for every non-empty '.'-separated piece.
func eachDotPiece(b []byte, fn func(piece []byte)) {
	start := 0
	for i := 0; i <= len(b); i++ {
		if i == len(b) || b[i] == '.' {
			if i > start {
				fn(b[start:i])
			}
			start = i + 1
		}
	}
}

func countByte(b []byte, c byte) int {
	n := 0
	for _, x := range b {
		if x == c {
			n++
		}
	}
	return n
}

func hasPrefix(b []byte, p string) bool {
	if len(b) < len(p) {
		return false
	}
	for i := 0; i < len(p); i++ {
		if b[i] != p[i] {
			return false
		}
	}
	return true
}

// isIPv4ishBytes mirrors isIPv4ish.
func isIPv4ishBytes(w []byte) bool {
	parts := 1
	plen := 0
	for _, c := range w {
		switch {
		case c == '.':
			if plen == 0 {
				return false
			}
			parts++
			plen = 0
		case c < '0' || c > '9':
			return false
		default:
			plen++
			if plen > 3 {
				return false
			}
		}
	}
	return parts == 4 && plen > 0
}
