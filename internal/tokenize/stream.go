package tokenize

// The tokenize-once representation. Tokenize/TokenSet return freshly
// allocated []string slices — fine for offline exhibits, but the
// serving path pays that cost for every message at every layer
// (BENCH_PR3: ~56KB / 46 allocs per message, and batch scoring flat
// from 1→8 workers because every stage re-tokenized). Stream walks
// the message once through pooled per-message scratch (a sync.Pool
// arena for the lowered text, the token bytes, and the dedupe map)
// and produces a TokenStream: each distinct token exactly once in
// first-appearance order, with its occurrence count, all token text
// sliced zero-copy out of one backing string. Engine, admission and
// the learn path hand the same *TokenStream* around instead of
// re-tokenizing.
//
// Stream and the legacy Tokenize walk are separate implementations of
// the same rules; TestStreamMatchesTokenize and FuzzTokenStream pin
// them token-for-token so they cannot drift.

import (
	"sync"
)

// Token is one tokenizer output. It is a distinct named type (not a
// bare string) so the layer boundaries are visible to the type
// checker and to the tokenizeonce analyzer, which fences conversions
// back to []string to the packages that own tokenization.
type Token string

// TokenStream is one message tokenized exactly once: every distinct
// token in first-appearance order with its occurrence count, plus a
// digest identifying the full (duplicate-preserving) stream. A
// TokenStream is immutable after construction and safe to share
// across goroutines.
type TokenStream struct {
	tokens []Token
	counts []int32
	total  int
	digest uint64
}

// Len returns the number of distinct tokens.
func (ts *TokenStream) Len() int { return len(ts.tokens) }

// At returns the i-th distinct token (first-appearance order).
func (ts *TokenStream) At(i int) Token { return ts.tokens[i] }

// Count returns how many times the i-th distinct token occurred in
// the full stream.
func (ts *TokenStream) Count(i int) int { return int(ts.counts[i]) }

// Total returns the full stream length, duplicates included.
func (ts *TokenStream) Total() int { return ts.total }

// Tokens returns the distinct tokens in first-appearance order. The
// slice is borrowed from the stream: callers must not modify it.
func (ts *TokenStream) Tokens() []Token { return ts.tokens }

// Digest returns a 64-bit FNV-1a digest of the full token stream
// (length-prefixed token bytes, duplicates included), so equal
// payloads digest equally regardless of the carrying *mail.Message.
// Admission memoization keys on it: two messages that tokenize
// identically are the same training example.
func (ts *TokenStream) Digest() uint64 { return ts.digest }

// Strings materializes the distinct tokens as a fresh []string — the
// legacy TokenSet shape. It exists for capability fallbacks and
// tests; on the serving path it re-pays the allocation the stream
// exists to avoid, so the tokenizeonce analyzer fences it exactly
// like a tokenizer entry point.
func (ts *TokenStream) Strings() []string {
	out := make([]string, len(ts.tokens))
	for i, t := range ts.tokens {
		out[i] = string(t)
	}
	return out
}

// StreamFromTokens builds a TokenStream from a full token stream
// (duplicates preserved, as Tokenizer.Tokenize returns), deduplicating
// exactly like Stream. It is the bridge for callers holding legacy
// []string token slices and for conformance tests.
func StreamFromTokens(stream []string) *TokenStream {
	sc := getScratch()
	for _, t := range stream {
		sc.str(t)
		sc.end()
	}
	ts := sc.finish()
	putScratch(sc)
	return ts
}

// ---- pooled per-message scratch ----

// scratch is the reusable per-message tokenization state: the
// lowercase buffer, the token-byte arena, the token boundaries, and
// the dedupe map. One walk appends every emitted token (duplicates
// included) into arena with boundaries in offs; finish converts the
// arena to a single string, deduplicates through the pooled map, and
// copies out exact-size token/count slices.
type scratch struct {
	lower  []byte
	arena  []byte
	offs   []int
	seen   map[string]int32
	toks   []Token
	counts []int32
}

// Pooled scratches larger than this are dropped rather than recycled,
// so one pathological message cannot pin a huge arena forever.
const maxPooledArena = 1 << 20

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{seen: make(map[string]int32, 256)}
	},
}

func getScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.offs = append(sc.offs, 0)
	return sc
}

func putScratch(sc *scratch) {
	if cap(sc.arena) > maxPooledArena || cap(sc.lower) > maxPooledArena {
		return
	}
	clear(sc.seen)
	clear(sc.toks) // drop Token views so old arenas can be collected
	sc.toks = sc.toks[:0]
	sc.counts = sc.counts[:0]
	sc.arena = sc.arena[:0]
	sc.offs = sc.offs[:0]
	sc.lower = sc.lower[:0]
	scratchPool.Put(sc)
}

// str appends a token piece.
func (sc *scratch) str(s string) { sc.arena = append(sc.arena, s...) }

// bs appends a token piece from the lowered buffer.
func (sc *scratch) bs(b []byte) { sc.arena = append(sc.arena, b...) }

// num appends a non-negative integer piece in decimal.
func (sc *scratch) num(n int) {
	if n == 0 {
		sc.arena = append(sc.arena, '0')
		return
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	sc.arena = append(sc.arena, buf[i:]...)
}

// end closes the current token.
func (sc *scratch) end() { sc.offs = append(sc.offs, len(sc.arena)) }

// fnv1a constants (FNV-1a 64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// dedupe converts the arena to its backing string and fills
// seen/toks/counts plus the full-stream digest. The map keys are
// substrings of the returned string, so inserting them allocates
// nothing beyond occasional bucket growth on a reused map.
func (sc *scratch) dedupe() (s string, digest uint64) {
	s = string(sc.arena)
	h := uint64(fnvOffset)
	n := len(sc.offs) - 1
	for i := 0; i < n; i++ {
		tok := s[sc.offs[i]:sc.offs[i+1]]
		// Length-prefix the hash so token boundaries are unambiguous.
		h = (h ^ uint64(len(tok))) * fnvPrime
		h = fnvString(h, tok)
		if j, ok := sc.seen[tok]; ok {
			sc.counts[j]++
			continue
		}
		sc.seen[tok] = int32(len(sc.toks))
		sc.toks = append(sc.toks, Token(tok))
		sc.counts = append(sc.counts, 1)
	}
	return s, h
}

// finish deduplicates the walked tokens and copies them into an
// immutable TokenStream (three exact-size allocations plus the
// backing string).
func (sc *scratch) finish() *TokenStream {
	_, digest := sc.dedupe()
	ts := &TokenStream{
		tokens: append(make([]Token, 0, len(sc.toks)), sc.toks...),
		counts: append(make([]int32, 0, len(sc.counts)), sc.counts...),
		total:  len(sc.offs) - 1,
		digest: digest,
	}
	return ts
}
