package textgen

import (
	"fmt"

	"repro/internal/stats"
)

// SegmentUse describes how a text source draws on one vocabulary
// segment.
type SegmentUse struct {
	// Segment is the vocabulary slice drawn from.
	Segment Segment
	// Weight is the fraction of token mass from this segment
	// (weights are normalized across the mixture).
	Weight float64
	// Ranks caps how many of the segment's words (by rank) the
	// source uses; 0 means the whole segment.
	Ranks int
	// ZipfS is the Zipf exponent over the used ranks; 0 selects a
	// uniform distribution (used for personal tokens).
	ZipfS float64
}

// Mixture is a complete language model for one text source: a
// weighted mixture of per-segment rank distributions.
type Mixture []SegmentUse

// Validate checks mixture sanity against a universe.
func (m Mixture) Validate(u *Universe) error {
	if len(m) == 0 {
		return fmt.Errorf("textgen: empty mixture")
	}
	total := 0.0
	for _, use := range m {
		if use.Segment < 0 || use.Segment >= numSegments {
			return fmt.Errorf("textgen: mixture uses unknown segment %d", use.Segment)
		}
		if use.Weight < 0 {
			return fmt.Errorf("textgen: negative weight %v for %v", use.Weight, use.Segment)
		}
		if use.Ranks < 0 || use.Ranks > u.SegmentSize(use.Segment) {
			return fmt.Errorf("textgen: %v ranks %d outside segment size %d",
				use.Segment, use.Ranks, u.SegmentSize(use.Segment))
		}
		if use.ZipfS < 0 {
			return fmt.Errorf("textgen: negative Zipf exponent for %v", use.Segment)
		}
		total += use.Weight
	}
	if total <= 0 {
		return fmt.Errorf("textgen: mixture weights sum to %v", total)
	}
	return nil
}

// Model is a compiled Mixture: O(1) word sampling.
type Model struct {
	segPick  *stats.Discrete
	samplers []wordSampler
}

type wordSampler struct {
	words []string
	zipf  *stats.Zipf // nil means uniform over words
}

// Compile builds a sampler for the mixture over the universe.
func Compile(u *Universe, m Mixture) (*Model, error) {
	if err := m.Validate(u); err != nil {
		return nil, err
	}
	weights := make([]float64, len(m))
	samplers := make([]wordSampler, len(m))
	for i, use := range m {
		weights[i] = use.Weight
		words := u.Words(use.Segment)
		if use.Ranks > 0 {
			words = words[:use.Ranks]
		}
		ws := wordSampler{words: words}
		if use.ZipfS > 0 {
			z, err := stats.NewZipf(len(words), use.ZipfS)
			if err != nil {
				return nil, err
			}
			ws.zipf = z
		}
		samplers[i] = ws
	}
	segPick, err := stats.NewDiscrete(weights)
	if err != nil {
		return nil, err
	}
	return &Model{segPick: segPick, samplers: samplers}, nil
}

// MustCompile is Compile for known-good mixtures.
func MustCompile(u *Universe, m Mixture) *Model {
	mo, err := Compile(u, m)
	if err != nil {
		panic(err)
	}
	return mo
}

// Word samples one word.
func (mo *Model) Word(r *stats.RNG) string {
	s := &mo.samplers[mo.segPick.Sample(r)]
	if s.zipf != nil {
		return s.words[s.zipf.Sample(r)]
	}
	return s.words[r.Intn(len(s.words))]
}

// Words samples n words.
func (mo *Model) Words(r *stats.RNG, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = mo.Word(r)
	}
	return out
}

// Default mixtures. Weights are fractions of token mass; the shapes
// implement the relationships documented in the package comment.
// Rank caps scale with the universe so scaled-down test universes
// keep the same structure.

// usenetStandardShare is the fraction of the standard segment's ranks
// that appear in Usenet text. With the default universe this puts
// exactly 59,000 standard words in the Usenet lexicon, reproducing
// the paper's ≈61,000-word overlap with the aspell dictionary
// (common 2,000 + standard 59,000).
const usenetStandardShare = 59.0 / 70.0

// UsenetStandardRanks returns how many standard ranks Usenet text
// draws on for a given universe.
func UsenetStandardRanks(u *Universe) int {
	n := int(float64(u.SegmentSize(SegStandard))*usenetStandardShare + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Zipf exponents shared by the mixtures. The topical exponent trades
// off head concentration (tokens frequent enough to resist small
// poisoning doses) against tail spread (rare tokens that flip first);
// 1.10 places each ham message's evidence across the document-
// frequency spectrum so attack curves rise over the 0.1–10% sweep as
// in Figure 1 rather than saturating immediately.
const (
	zipfCommon  = 1.05
	zipfTopical = 1.10
)

// HamMixture models Enron-style corporate ham: mostly common plus
// formal topical words, a noticeable informal (colloquial) share, a
// tail of rare personal tokens, and occasional commerce words shared
// with spam (so the baseline filter has realistic, not infinite,
// class separation).
func HamMixture(u *Universe) Mixture {
	return Mixture{
		{Segment: SegCommon, Weight: 0.42, ZipfS: zipfCommon},
		{Segment: SegStandard, Weight: 0.38, ZipfS: zipfTopical},
		{Segment: SegColloquial, Weight: 0.12, ZipfS: zipfTopical},
		{Segment: SegPersonal, Weight: 0.05}, // uniform: rare evidence tokens
		{Segment: SegSpam, Weight: 0.03, ZipfS: zipfTopical},
	}
}

// SpamMixture models bulk spam: heavy spam-topical vocabulary over
// the shared common core, some formal words, a little informal text,
// and rare throwaway identifiers.
func SpamMixture(u *Universe) Mixture {
	return Mixture{
		{Segment: SegCommon, Weight: 0.37, ZipfS: zipfCommon},
		{Segment: SegSpam, Weight: 0.45, ZipfS: zipfTopical},
		{Segment: SegStandard, Weight: 0.08, ZipfS: zipfTopical},
		{Segment: SegColloquial, Weight: 0.04, ZipfS: zipfTopical},
		{Segment: SegPersonal, Weight: 0.06},
	}
}

// UsenetMixture models the public Usenet posting corpus the paper's
// refined dictionary attack mines: informal text whose vocabulary is
// the common core, the first UsenetStandardRanks standard ranks, and
// the whole colloquial segment. With the default universe that is
// 90,000 distinct words, 61,000 of them shared with the synthetic
// aspell dictionary — the paper's reported overlap.
func UsenetMixture(u *Universe) Mixture {
	return Mixture{
		{Segment: SegCommon, Weight: 0.40, ZipfS: zipfCommon},
		{Segment: SegStandard, Weight: 0.33, Ranks: UsenetStandardRanks(u), ZipfS: zipfTopical},
		{Segment: SegColloquial, Weight: 0.27, ZipfS: zipfTopical},
	}
}
