package textgen

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/tokenize"
)

func smallGenerator(t testing.TB) *Generator {
	t.Helper()
	u := MustUniverse(smallUniverseConfig())
	return MustNew(u, DefaultConfig())
}

func TestMixtureValidate(t *testing.T) {
	u := MustUniverse(smallUniverseConfig())
	good := HamMixture(u)
	if err := good.Validate(u); err != nil {
		t.Fatalf("ham mixture invalid: %v", err)
	}
	if err := SpamMixture(u).Validate(u); err != nil {
		t.Fatalf("spam mixture invalid: %v", err)
	}
	if err := UsenetMixture(u).Validate(u); err != nil {
		t.Fatalf("usenet mixture invalid: %v", err)
	}
	bad := []Mixture{
		{},
		{{Segment: Segment(17), Weight: 1, ZipfS: 1}},
		{{Segment: SegCommon, Weight: -1, ZipfS: 1}},
		{{Segment: SegCommon, Weight: 0}},
		{{Segment: SegCommon, Weight: 1, Ranks: 10_000_000}},
		{{Segment: SegCommon, Weight: 1, ZipfS: -2}},
	}
	for i, m := range bad {
		if err := m.Validate(u); err == nil {
			t.Errorf("bad mixture %d validated", i)
		}
	}
}

func TestModelSamplesFromDeclaredSegments(t *testing.T) {
	u := MustUniverse(smallUniverseConfig())
	m := MustCompile(u, Mixture{
		{Segment: SegSpam, Weight: 0.5, ZipfS: 1.1},
		{Segment: SegPersonal, Weight: 0.5},
	})
	r := stats.NewRNG(1)
	for i := 0; i < 5000; i++ {
		w := m.Word(r)
		seg, ok := u.SegmentOf(w)
		if !ok || (seg != SegSpam && seg != SegPersonal) {
			t.Fatalf("sampled %q from segment %v", w, seg)
		}
	}
}

func TestModelRankCap(t *testing.T) {
	u := MustUniverse(smallUniverseConfig())
	m := MustCompile(u, Mixture{{Segment: SegStandard, Weight: 1, Ranks: 10, ZipfS: 1.0}})
	allowed := map[string]bool{}
	for _, w := range u.Words(SegStandard)[:10] {
		allowed[w] = true
	}
	r := stats.NewRNG(2)
	for i := 0; i < 2000; i++ {
		if w := m.Word(r); !allowed[w] {
			t.Fatalf("sampled %q beyond rank cap", w)
		}
	}
}

func TestUsenetStandardRanksDefault(t *testing.T) {
	u := MustUniverse(DefaultUniverseConfig())
	if got := UsenetStandardRanks(u); got != 59000 {
		t.Errorf("UsenetStandardRanks = %d, want 59000", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.BodyTokensMedian = 0 },
		func(c *Config) { c.BodyTokensSigma = -1 },
		func(c *Config) { c.MinBodyTokens = 0 },
		func(c *Config) { c.MaxBodyTokens = 5; c.MinBodyTokens = 10 },
		func(c *Config) { c.SentenceMin = 0 },
		func(c *Config) { c.SentenceMax = 2; c.SentenceMin = 5 },
		func(c *Config) { c.WordsPerLine = 0 },
		func(c *Config) { c.SubjectMin = 0 },
		func(c *Config) { c.HamURLProb = 1.5 },
		func(c *Config) { c.SpamURLProb = -0.1 },
		func(c *Config) { c.HamDomains = 0 },
		func(c *Config) { c.ReceivedHopsMax = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestHamMessageStructure(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(3)
	m := g.HamMessage(r)
	if m.Subject() == "" {
		t.Error("ham message has no subject")
	}
	if !strings.Contains(m.From(), "@") {
		t.Errorf("From = %q", m.From())
	}
	if !strings.Contains(m.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("ham Content-Type = %q", m.Header.Get("Content-Type"))
	}
	if len(strings.Fields(m.Body)) < DefaultConfig().MinBodyTokens {
		t.Errorf("body too short: %d fields", len(strings.Fields(m.Body)))
	}
}

func TestSpamMessageStructure(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(4)
	m := g.SpamMessage(r)
	if !strings.Contains(m.Header.Get("Content-Type"), "text/html") {
		t.Errorf("spam Content-Type = %q", m.Header.Get("Content-Type"))
	}
	if m.Subject() == "" {
		t.Error("spam message has no subject")
	}
}

func TestMessageLabelDispatch(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(5)
	if m := g.Message(r, true); !strings.Contains(m.Header.Get("Content-Type"), "html") {
		t.Error("Message(true) did not produce spam-profile header")
	}
	if m := g.Message(r, false); !strings.Contains(m.Header.Get("Content-Type"), "plain") {
		t.Error("Message(false) did not produce ham-profile header")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g := smallGenerator(t)
	a := g.HamMessage(stats.NewRNG(42)).String()
	b := g.HamMessage(stats.NewRNG(42)).String()
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestBodyLengthDistribution(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(6)
	cfg := g.Config()
	total := 0
	const n = 300
	for i := 0; i < n; i++ {
		fields := strings.Fields(g.HamMessage(r).Body)
		words := 0
		for _, f := range fields {
			if len(f) >= 3 { // skip standalone punctuation
				words++
			}
		}
		if words < cfg.MinBodyTokens || words > cfg.MaxBodyTokens+cfg.SentenceMax {
			t.Fatalf("body has %d words, outside [%d, %d]", words, cfg.MinBodyTokens, cfg.MaxBodyTokens)
		}
		total += words
	}
	mean := float64(total) / n
	if mean < 180 || mean > 400 {
		t.Errorf("mean body words = %v, want ≈240–280", mean)
	}
}

func TestBodyPunctuationStandalone(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(7)
	body := g.HamMessage(r).Body
	for _, f := range strings.Fields(body) {
		if len(f) == 1 {
			if f != "." && f != "!" && f != "?" {
				t.Errorf("unexpected standalone token %q", f)
			}
			continue
		}
		if strings.HasSuffix(f, ".") && !strings.HasPrefix(f, "http") {
			t.Errorf("punctuation attached to word %q", f)
		}
	}
}

func TestBodyTokensAreLexiconCompatible(t *testing.T) {
	// Every multi-char body token of a ham message must be a
	// universe word or a URL; this is what makes dictionary
	// coverage exact.
	g := smallGenerator(t)
	r := stats.NewRNG(8)
	u := g.Universe()
	for i := 0; i < 20; i++ {
		body := g.HamMessage(r).Body
		for _, f := range strings.Fields(body) {
			if len(f) == 1 || strings.HasPrefix(f, "http://") {
				continue
			}
			if _, ok := u.SegmentOf(f); !ok {
				t.Fatalf("body word %q not in universe", f)
			}
		}
	}
}

func TestSpamHasMoreURLs(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(9)
	countURLs := func(spam bool) int {
		n := 0
		for i := 0; i < 100; i++ {
			n += strings.Count(g.Message(r, spam).Body, "http://")
		}
		return n
	}
	spamURLs, hamURLs := countURLs(true), countURLs(false)
	if spamURLs <= hamURLs {
		t.Errorf("spam URLs %d <= ham URLs %d", spamURLs, hamURLs)
	}
}

func TestCorpusGeneration(t *testing.T) {
	g := smallGenerator(t)
	c := g.Corpus(stats.NewRNG(10), 30, 20)
	if c.NumHam() != 30 || c.NumSpam() != 20 {
		t.Errorf("corpus = %d ham %d spam", c.NumHam(), c.NumSpam())
	}
	// Shuffled: the first 30 must not all be ham.
	allHamFirst := true
	for _, e := range c.Examples[:30] {
		if e.Spam {
			allHamFirst = false
			break
		}
	}
	if allHamFirst {
		t.Error("corpus does not appear shuffled")
	}
}

func TestUsenetTokens(t *testing.T) {
	g := smallGenerator(t)
	toks := g.UsenetTokens(stats.NewRNG(11), 5000)
	if len(toks) != 5000 {
		t.Fatalf("got %d tokens", len(toks))
	}
	u := g.Universe()
	usenetRanks := UsenetStandardRanks(u)
	stdWords := u.Words(SegStandard)
	beyondCap := map[string]bool{}
	for _, w := range stdWords[usenetRanks:] {
		beyondCap[w] = true
	}
	for _, tok := range toks {
		seg, ok := u.SegmentOf(tok)
		if !ok {
			t.Fatalf("usenet token %q not in universe", tok)
		}
		switch seg {
		case SegCommon, SegStandard, SegColloquial:
		default:
			t.Fatalf("usenet token %q from segment %v", tok, seg)
		}
		if beyondCap[tok] {
			t.Fatalf("usenet token %q beyond the standard rank cap", tok)
		}
	}
}

func TestHamSpamVocabularyDiffer(t *testing.T) {
	// The two classes must be separable: spam-topical tokens should
	// be much more frequent in spam text.
	g := smallGenerator(t)
	r := stats.NewRNG(12)
	u := g.Universe()
	countSpamSeg := func(m *Model) int {
		n := 0
		for _, w := range m.Words(r, 5000) {
			if seg, _ := u.SegmentOf(w); seg == SegSpam {
				n++
			}
		}
		return n
	}
	inSpam := countSpamSeg(g.SpamModel())
	inHam := countSpamSeg(g.HamModel())
	if inSpam < 5*inHam {
		t.Errorf("spam-segment tokens: %d in spam vs %d in ham", inSpam, inHam)
	}
}

func TestGeneratedMessagesTokenize(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(13)
	tok := tokenize.Default()
	for i := 0; i < 10; i++ {
		ham := tok.TokenSet(g.HamMessage(r))
		spam := tok.TokenSet(g.SpamMessage(r))
		if len(ham) < 20 || len(spam) < 20 {
			t.Fatalf("token sets too small: %d/%d", len(ham), len(spam))
		}
	}
}

func BenchmarkHamMessage(b *testing.B) {
	g := smallGenerator(b)
	r := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HamMessage(r)
	}
}
