package textgen

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/corpus"
	"repro/internal/mail"
	"repro/internal/stats"
)

// Config controls message-level generation (lengths, layout, header
// realism). Vocabulary-level behaviour lives in UniverseConfig and
// the Mixtures.
type Config struct {
	// BodyTokensMedian and BodyTokensSigma parameterize the
	// log-normal body length distribution. The defaults give a mean
	// near 280 tokens/message, matching the paper's token arithmetic
	// (204 attack emails × 90k words ≈ 6.4× a 10,000-message corpus).
	BodyTokensMedian float64
	BodyTokensSigma  float64
	// MinBodyTokens and MaxBodyTokens clamp the body length.
	MinBodyTokens int
	MaxBodyTokens int
	// SentenceMin and SentenceMax bound words per sentence.
	SentenceMin int
	SentenceMax int
	// WordsPerLine wraps body text.
	WordsPerLine int
	// SubjectMin and SubjectMax bound subject length in words.
	SubjectMin int
	SubjectMax int
	// HamURLProb and SpamURLProb are per-sentence probabilities of
	// embedding a URL.
	HamURLProb  float64
	SpamURLProb float64
	// HamDomains is how many distinct receiving/sending ham domains
	// to fabricate.
	HamDomains int
	// ReceivedHopsMax bounds the fabricated Received chains.
	ReceivedHopsMax int
}

// DefaultConfig returns the generation parameters used by the
// experiments.
func DefaultConfig() Config {
	return Config{
		BodyTokensMedian: 240,
		BodyTokensSigma:  0.55,
		MinBodyTokens:    30,
		MaxBodyTokens:    2000,
		SentenceMin:      6,
		SentenceMax:      14,
		WordsPerLine:     12,
		SubjectMin:       2,
		SubjectMax:       6,
		HamURLProb:       0.02,
		SpamURLProb:      0.20,
		HamDomains:       4,
		ReceivedHopsMax:  4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BodyTokensMedian < 1:
		return fmt.Errorf("textgen: BodyTokensMedian %v", c.BodyTokensMedian)
	case c.BodyTokensSigma < 0:
		return fmt.Errorf("textgen: BodyTokensSigma %v", c.BodyTokensSigma)
	case c.MinBodyTokens < 1 || c.MaxBodyTokens < c.MinBodyTokens:
		return fmt.Errorf("textgen: body token bounds [%d, %d]", c.MinBodyTokens, c.MaxBodyTokens)
	case c.SentenceMin < 1 || c.SentenceMax < c.SentenceMin:
		return fmt.Errorf("textgen: sentence bounds [%d, %d]", c.SentenceMin, c.SentenceMax)
	case c.WordsPerLine < 1:
		return fmt.Errorf("textgen: WordsPerLine %d", c.WordsPerLine)
	case c.SubjectMin < 1 || c.SubjectMax < c.SubjectMin:
		return fmt.Errorf("textgen: subject bounds [%d, %d]", c.SubjectMin, c.SubjectMax)
	case c.HamURLProb < 0 || c.HamURLProb > 1 || c.SpamURLProb < 0 || c.SpamURLProb > 1:
		return fmt.Errorf("textgen: URL probabilities (%v, %v)", c.HamURLProb, c.SpamURLProb)
	case c.HamDomains < 1:
		return fmt.Errorf("textgen: HamDomains %d", c.HamDomains)
	case c.ReceivedHopsMax < 1:
		return fmt.Errorf("textgen: ReceivedHopsMax %d", c.ReceivedHopsMax)
	}
	return nil
}

// Generator produces synthetic ham, spam, and Usenet text over one
// vocabulary universe. It is immutable after construction; all
// randomness comes from the RNG passed to each call, so a Generator
// is safe for concurrent use with per-goroutine RNGs.
type Generator struct {
	u       *Universe
	cfg     Config
	ham     *Model
	spam    *Model
	usenet  *Model
	domains []string
	tlds    []string
}

// New builds a generator with the standard mixtures.
func New(u *Universe, cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ham, err := Compile(u, HamMixture(u))
	if err != nil {
		return nil, err
	}
	spam, err := Compile(u, SpamMixture(u))
	if err != nil {
		return nil, err
	}
	usenet, err := Compile(u, UsenetMixture(u))
	if err != nil {
		return nil, err
	}
	g := &Generator{u: u, cfg: cfg, ham: ham, spam: spam, usenet: usenet,
		tlds: []string{"com", "net", "org", "biz"}}
	// Fabricate the organization's ham domains deterministically from
	// the universe (standard words make plausible company names).
	std := u.Words(SegStandard)
	for i := 0; i < cfg.HamDomains && i < len(std); i++ {
		g.domains = append(g.domains, std[i]+".com")
	}
	if len(g.domains) == 0 {
		g.domains = []string{"example.com"}
	}
	return g, nil
}

// MustNew is New for known-good configurations.
func MustNew(u *Universe, cfg Config) *Generator {
	g, err := New(u, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Universe returns the generator's vocabulary.
func (g *Generator) Universe() *Universe { return g.u }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// HamModel exposes the ham language model (used by tests).
func (g *Generator) HamModel() *Model { return g.ham }

// SpamModel exposes the spam language model.
func (g *Generator) SpamModel() *Model { return g.spam }

// UsenetModel exposes the Usenet language model.
func (g *Generator) UsenetModel() *Model { return g.usenet }

// Message generates one labeled email.
func (g *Generator) Message(r *stats.RNG, spam bool) *mail.Message {
	if spam {
		return g.SpamMessage(r)
	}
	return g.HamMessage(r)
}

// HamMessage generates one legitimate email: internal sender and
// recipient, topical subject, plain-text body.
func (g *Generator) HamMessage(r *stats.RNG) *mail.Message {
	from := g.personAddress(r, g.domains[r.Intn(len(g.domains))])
	to := g.personAddress(r, g.domains[r.Intn(len(g.domains))])
	m := &mail.Message{Body: g.Body(r, g.ham, g.cfg.HamURLProb)}
	m.Header = mail.SynthesizeHeader(r, mail.HeaderProfile{
		From:    from,
		To:      to,
		Subject: g.Subject(r, g.ham),
		Hops:    1 + r.Intn(g.cfg.ReceivedHopsMax),
	})
	return m
}

// SpamMessage generates one spam email: forged external sender,
// spam-topical subject and body, URL-heavy.
func (g *Generator) SpamMessage(r *stats.RNG) *mail.Message {
	from := mail.SynthAddress(r, g.u.Words(SegPersonal)[r.Intn(g.u.SegmentSize(SegPersonal))])
	to := g.personAddress(r, g.domains[r.Intn(len(g.domains))])
	m := &mail.Message{Body: g.Body(r, g.spam, g.cfg.SpamURLProb)}
	m.Header = mail.SynthesizeHeader(r, mail.HeaderProfile{
		From:    from,
		To:      to,
		Subject: g.Subject(r, g.spam),
		Hops:    1 + r.Intn(g.cfg.ReceivedHopsMax),
		Spammy:  true,
	})
	return m
}

// Corpus generates a labeled corpus with the given class sizes,
// shuffled into a random order.
func (g *Generator) Corpus(r *stats.RNG, nHam, nSpam int) *corpus.Corpus {
	c := &corpus.Corpus{Examples: make([]corpus.Example, 0, nHam+nSpam)}
	for i := 0; i < nHam; i++ {
		c.Add(g.HamMessage(r), false)
	}
	for i := 0; i < nSpam; i++ {
		c.Add(g.SpamMessage(r), true)
	}
	c.Shuffle(r)
	return c
}

// UsenetTokens samples a stream of n Usenet corpus tokens, the raw
// material for the Usenet dictionary (lexicon.UsenetTopK).
func (g *Generator) UsenetTokens(r *stats.RNG, n int) []string {
	return g.usenet.Words(r, n)
}

// Subject samples a subject line from a language model.
func (g *Generator) Subject(r *stats.RNG, m *Model) string {
	n := g.cfg.SubjectMin + r.Intn(g.cfg.SubjectMax-g.cfg.SubjectMin+1)
	return strings.Join(m.Words(r, n), " ")
}

// Body samples a body: sentences of model words, wrapped into lines.
//
// Sentence punctuation is emitted as standalone one-character tokens,
// which the SpamBayes tokenizer drops (length < 3). Attaching
// punctuation to words would mint token variants ("word.") that no
// word source lists; that effect exists in the real data too, but
// keeping token identity exact makes dictionary coverage — the
// quantity the paper's attack comparison is about — directly
// controllable by the mixtures.
func (g *Generator) Body(r *stats.RNG, m *Model, urlProb float64) string {
	target := int(r.LogNormal(logOf(g.cfg.BodyTokensMedian), g.cfg.BodyTokensSigma))
	if target < g.cfg.MinBodyTokens {
		target = g.cfg.MinBodyTokens
	}
	if target > g.cfg.MaxBodyTokens {
		target = g.cfg.MaxBodyTokens
	}
	var b strings.Builder
	b.Grow(target * 8)
	words := 0
	lineWords := 0
	emit := func(w string) {
		if lineWords == g.cfg.WordsPerLine {
			b.WriteByte('\n')
			lineWords = 0
		} else if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w)
		lineWords++
	}
	for words < target {
		slen := g.cfg.SentenceMin + r.Intn(g.cfg.SentenceMax-g.cfg.SentenceMin+1)
		if slen > target-words {
			slen = target - words
		}
		for i := 0; i < slen; i++ {
			emit(m.Word(r))
			words++
		}
		if r.Bernoulli(urlProb) {
			emit(g.urlWord(r, m))
			words++
		}
		emit(punct(r))
	}
	b.WriteByte('\n')
	return b.String()
}

// urlWord fabricates a URL token for a body.
func (g *Generator) urlWord(r *stats.RNG, m *Model) string {
	return fmt.Sprintf("http://%s.%s.%s/%s",
		m.Word(r), m.Word(r), g.tlds[r.Intn(len(g.tlds))], m.Word(r))
}

// personAddress fabricates an address from a personal-segment local
// part at the given domain.
func (g *Generator) personAddress(r *stats.RNG, domain string) string {
	pers := g.u.Words(SegPersonal)
	return pers[r.Intn(len(pers))] + "@" + domain
}

// punct picks a standalone sentence terminator.
func punct(r *stats.RNG) string {
	switch v := r.Float64(); {
	case v < 0.78:
		return "."
	case v < 0.93:
		return "!"
	default:
		return "?"
	}
}

// logOf is a tiny alias keeping the body-length expression readable.
func logOf(x float64) float64 { return math.Log(x) }
