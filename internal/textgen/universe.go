// Package textgen generates the synthetic corpora that substitute for
// the paper's data artifacts (TREC 2005 email corpus, Usenet posting
// corpus): pseudo-word vocabularies with the segment structure the
// attacks exploit, Zipf-mixture language models for ham, spam and
// Usenet text, and complete email messages with synthesized headers.
//
// # Why a segmented vocabulary
//
// The paper's results rest on distributional relationships, not on
// English itself:
//
//   - ham and spam share a common function-word core but have largely
//     disjoint topical vocabularies;
//   - ham contains informal colloquialisms and misspellings that a
//     standard dictionary (GNU aspell) does not list, but a Usenet
//     corpus does — this is exactly why the paper's Usenet dictionary
//     attack beats the Aspell attack;
//   - a standard dictionary also lists tens of thousands of bookish
//     words that never occur in email (dead weight in attack emails);
//   - individual ham messages carry rare personal tokens (names,
//     ticket numbers) that no public word source covers — only the
//     infeasible "optimal" attack reaches them.
//
// The Universe type realizes those segments with deterministic
// pseudo-words; mixtures over the segments (model.go) then reproduce
// each text source.
package textgen

import (
	"fmt"
)

// Segment identifies one slice of the synthetic vocabulary.
type Segment int

const (
	// SegCommon holds function words: very frequent in every text
	// source and listed in the standard dictionary.
	SegCommon Segment = iota
	// SegStandard holds formal topical words: the bulk of ham
	// vocabulary, listed in the standard dictionary.
	SegStandard
	// SegFormal holds bookish dictionary-only words that never occur
	// in email or Usenet text (dictionary dead weight).
	SegFormal
	// SegColloquial holds slang and misspellings: common in Usenet
	// text, present in ham, absent from the standard dictionary.
	SegColloquial
	// SegSpam holds spam-topical words.
	SegSpam
	// SegPersonal holds rare personal tokens (names, identifiers)
	// unique to individual mailboxes; no word source lists them.
	SegPersonal

	numSegments = 6
)

// String returns the segment name.
func (s Segment) String() string {
	switch s {
	case SegCommon:
		return "common"
	case SegStandard:
		return "standard"
	case SegFormal:
		return "formal"
	case SegColloquial:
		return "colloquial"
	case SegSpam:
		return "spam"
	case SegPersonal:
		return "personal"
	default:
		return fmt.Sprintf("Segment(%d)", int(s))
	}
}

// Segments lists every segment in order.
func Segments() []Segment {
	return []Segment{SegCommon, SegStandard, SegFormal, SegColloquial, SegSpam, SegPersonal}
}

// UniverseConfig sets the segment sizes. The defaults are chosen so
// that the synthetic standard dictionary has exactly the paper's
// 98,568 aspell entries (common + standard + formal) and the Usenet
// top-90,000 lexicon overlaps it by the paper's ≈61,000 words
// (common + the 59,000 standard ranks Usenet text draws on).
type UniverseConfig struct {
	CommonWords     int
	StandardWords   int
	FormalWords     int
	ColloquialWords int
	SpamWords       int
	PersonalWords   int
}

// DefaultUniverseConfig returns the sizes used by every experiment.
func DefaultUniverseConfig() UniverseConfig {
	return UniverseConfig{
		CommonWords:     2000,
		StandardWords:   70000,
		FormalWords:     26568, // 2000 + 70000 + 26568 = 98,568 = |aspell 6.0-0|
		ColloquialWords: 29000,
		SpamWords:       12000,
		PersonalWords:   40000,
	}
}

// Validate checks the configuration.
func (c UniverseConfig) Validate() error {
	sizes := []int{c.CommonWords, c.StandardWords, c.FormalWords, c.ColloquialWords, c.SpamWords, c.PersonalWords}
	total := 0
	for i, n := range sizes {
		if n <= 0 {
			return fmt.Errorf("textgen: segment %v size %d not positive", Segment(i), n)
		}
		total += n
	}
	if total > maxUniverseWords {
		return fmt.Errorf("textgen: universe of %d words exceeds the %d-word encoding", total, maxUniverseWords)
	}
	return nil
}

// Universe is the complete synthetic vocabulary, partitioned into
// segments. Words are unique across the whole universe and stable
// across runs (they are a pure function of global index).
type Universe struct {
	cfg    UniverseConfig
	words  []string
	bounds [numSegments + 1]int
}

// syllables for word synthesis: 20 onsets × 5 vowels = 100, giving a
// bijection between indices below 10^6 and three-syllable words.
var (
	wordOnsets = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "x", "y", "z"}
	wordVowels = []string{"a", "e", "i", "o", "u"}
)

const (
	syllableCount    = 100 // len(wordOnsets) * len(wordVowels)
	maxUniverseWords = syllableCount * syllableCount * syllableCount
)

// wordForIndex returns the unique three-syllable pseudo-word for a
// global index in [0, maxUniverseWords).
func wordForIndex(i int) string {
	if i < 0 || i >= maxUniverseWords {
		panic(fmt.Sprintf("textgen: word index %d out of range", i))
	}
	var b [6]byte
	for pos := 2; pos >= 0; pos-- {
		s := i % syllableCount
		i /= syllableCount
		b[pos*2] = wordOnsets[s/len(wordVowels)][0]
		b[pos*2+1] = wordVowels[s%len(wordVowels)][0]
	}
	return string(b[:])
}

// NewUniverse constructs the vocabulary for a configuration.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := []int{cfg.CommonWords, cfg.StandardWords, cfg.FormalWords, cfg.ColloquialWords, cfg.SpamWords, cfg.PersonalWords}
	u := &Universe{cfg: cfg}
	total := 0
	for _, n := range sizes {
		total += n
	}
	u.words = make([]string, total)
	idx := 0
	for seg, n := range sizes {
		u.bounds[seg] = idx
		for j := 0; j < n; j++ {
			u.words[idx] = wordForIndex(idx)
			idx++
		}
	}
	u.bounds[numSegments] = idx
	return u, nil
}

// MustUniverse is NewUniverse for known-good configurations.
func MustUniverse(cfg UniverseConfig) *Universe {
	u, err := NewUniverse(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the universe's configuration.
func (u *Universe) Config() UniverseConfig { return u.cfg }

// Size returns the total number of words.
func (u *Universe) Size() int { return len(u.words) }

// Words returns the words of one segment, ordered by rank (rank 0 is
// the most frequent under any Zipf model over the segment). The
// returned slice is shared; callers must not modify it.
func (u *Universe) Words(seg Segment) []string {
	return u.words[u.bounds[seg]:u.bounds[seg+1]]
}

// SegmentSize returns the number of words in a segment.
func (u *Universe) SegmentSize(seg Segment) int {
	return u.bounds[seg+1] - u.bounds[seg]
}

// All returns every word in the universe (shared slice; do not
// modify). This is the token source for the paper's "optimal" attack.
func (u *Universe) All() []string { return u.words }

// SegmentOf returns the segment containing word, or ok=false for
// words outside the universe.
func (u *Universe) SegmentOf(word string) (Segment, bool) {
	// Binary search over bounds using the word's global index.
	idx, ok := indexForWord(word)
	if !ok || idx >= len(u.words) {
		return 0, false
	}
	for seg := 0; seg < numSegments; seg++ {
		if idx < u.bounds[seg+1] {
			return Segment(seg), true
		}
	}
	return 0, false
}

// indexForWord inverts wordForIndex.
func indexForWord(w string) (int, bool) {
	if len(w) != 6 {
		return 0, false
	}
	idx := 0
	for pos := 0; pos < 3; pos++ {
		on := onsetIndex(w[pos*2])
		vo := vowelIndex(w[pos*2+1])
		if on < 0 || vo < 0 {
			return 0, false
		}
		idx = idx*syllableCount + on*len(wordVowels) + vo
	}
	return idx, true
}

func onsetIndex(c byte) int {
	for i, o := range wordOnsets {
		if o[0] == c {
			return i
		}
	}
	return -1
}

func vowelIndex(c byte) int {
	for i, v := range wordVowels {
		if v[0] == c {
			return i
		}
	}
	return -1
}
