package textgen

import (
	"strings"
	"testing"
	"testing/quick"
)

// smallUniverseConfig is a scaled-down universe for fast tests.
func smallUniverseConfig() UniverseConfig {
	return UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	}
}

func TestDefaultUniverseConfigSizes(t *testing.T) {
	cfg := DefaultUniverseConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The standard dictionary must match aspell 6.0-0's size.
	if got := cfg.CommonWords + cfg.StandardWords + cfg.FormalWords; got != 98568 {
		t.Errorf("aspell-equivalent size = %d, want 98568", got)
	}
	// The Usenet lexicon must have the paper's 90,000 words:
	// common + 59,000 standard ranks + colloquial.
	if got := cfg.CommonWords + 59000 + cfg.ColloquialWords; got != 90000 {
		t.Errorf("usenet vocabulary = %d, want 90000", got)
	}
}

func TestUniverseConfigValidate(t *testing.T) {
	bad := smallUniverseConfig()
	bad.SpamWords = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero segment size validated")
	}
	huge := smallUniverseConfig()
	huge.PersonalWords = maxUniverseWords
	if err := huge.Validate(); err == nil {
		t.Error("oversized universe validated")
	}
}

func TestWordForIndexUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 50000; i++ {
		w := wordForIndex(i)
		if seen[w] {
			t.Fatalf("duplicate word %q at index %d", w, i)
		}
		seen[w] = true
		if len(w) != 6 {
			t.Fatalf("word %q has length %d", w, len(w))
		}
	}
}

func TestWordForIndexInverse(t *testing.T) {
	for _, i := range []int{0, 1, 99, 100, 12345, 999999} {
		w := wordForIndex(i)
		got, ok := indexForWord(w)
		if !ok || got != i {
			t.Errorf("indexForWord(wordForIndex(%d)) = %d, %v", i, got, ok)
		}
	}
	if _, ok := indexForWord("short"); ok {
		t.Error("indexForWord accepted a 5-char word")
	}
	if _, ok := indexForWord("aaaaaa"); ok {
		t.Error("indexForWord accepted a vowel onset")
	}
}

func TestWordForIndexPanics(t *testing.T) {
	for _, i := range []int{-1, maxUniverseWords} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("wordForIndex(%d) did not panic", i)
				}
			}()
			wordForIndex(i)
		}()
	}
}

func TestUniverseSegments(t *testing.T) {
	u := MustUniverse(smallUniverseConfig())
	cfg := smallUniverseConfig()
	wantSizes := map[Segment]int{
		SegCommon:     cfg.CommonWords,
		SegStandard:   cfg.StandardWords,
		SegFormal:     cfg.FormalWords,
		SegColloquial: cfg.ColloquialWords,
		SegSpam:       cfg.SpamWords,
		SegPersonal:   cfg.PersonalWords,
	}
	total := 0
	seen := map[string]Segment{}
	for _, seg := range Segments() {
		words := u.Words(seg)
		if len(words) != wantSizes[seg] {
			t.Errorf("segment %v has %d words, want %d", seg, len(words), wantSizes[seg])
		}
		if u.SegmentSize(seg) != wantSizes[seg] {
			t.Errorf("SegmentSize(%v) = %d", seg, u.SegmentSize(seg))
		}
		for _, w := range words {
			if prev, dup := seen[w]; dup {
				t.Fatalf("word %q in both %v and %v", w, prev, seg)
			}
			seen[w] = seg
		}
		total += len(words)
	}
	if u.Size() != total || len(u.All()) != total {
		t.Errorf("Size() = %d, want %d", u.Size(), total)
	}
}

func TestSegmentOf(t *testing.T) {
	u := MustUniverse(smallUniverseConfig())
	for _, seg := range Segments() {
		words := u.Words(seg)
		for _, w := range []string{words[0], words[len(words)-1]} {
			got, ok := u.SegmentOf(w)
			if !ok || got != seg {
				t.Errorf("SegmentOf(%q) = %v, %v; want %v", w, got, ok, seg)
			}
		}
	}
	if _, ok := u.SegmentOf("nonsense"); ok {
		t.Error("SegmentOf accepted a non-universe word")
	}
	// A valid-looking word beyond the configured universe.
	if _, ok := u.SegmentOf(wordForIndex(u.Size() + 10)); ok {
		t.Error("SegmentOf accepted an out-of-universe word")
	}
}

func TestSegmentString(t *testing.T) {
	names := map[Segment]string{
		SegCommon: "common", SegStandard: "standard", SegFormal: "formal",
		SegColloquial: "colloquial", SegSpam: "spam", SegPersonal: "personal",
	}
	for seg, want := range names {
		if seg.String() != want {
			t.Errorf("%d.String() = %q", seg, seg.String())
		}
	}
	if !strings.Contains(Segment(42).String(), "42") {
		t.Error("unknown segment String")
	}
}

func TestUniverseDeterministic(t *testing.T) {
	a := MustUniverse(smallUniverseConfig())
	b := MustUniverse(smallUniverseConfig())
	for i := range a.All() {
		if a.All()[i] != b.All()[i] {
			t.Fatal("universes differ between constructions")
		}
	}
}

// Property: wordForIndex is injective and produces tokenizer-safe
// words (length 6, lowercase ASCII letters).
func TestQuickWordProperties(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := int(aRaw) % maxUniverseWords
		b := int(bRaw) % maxUniverseWords
		wa, wb := wordForIndex(a), wordForIndex(b)
		if (a == b) != (wa == wb) {
			return false
		}
		for _, w := range []string{wa, wb} {
			if len(w) != 6 {
				return false
			}
			for i := 0; i < len(w); i++ {
				if w[i] < 'a' || w[i] > 'z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
