package textgen

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSubjectLengthBounds(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(41)
	cfg := g.Config()
	for i := 0; i < 200; i++ {
		n := len(strings.Fields(g.Subject(r, g.HamModel())))
		if n < cfg.SubjectMin || n > cfg.SubjectMax {
			t.Fatalf("subject has %d words, want [%d, %d]", n, cfg.SubjectMin, cfg.SubjectMax)
		}
	}
}

func TestSubjectWordsFromUniverse(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(43)
	u := g.Universe()
	for i := 0; i < 50; i++ {
		for _, w := range strings.Fields(g.Subject(r, g.SpamModel())) {
			if _, ok := u.SegmentOf(w); !ok {
				t.Fatalf("subject word %q not in universe", w)
			}
		}
	}
}

func TestHamAddressesUseOrgDomains(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(47)
	// All ham From addresses come from the configured organization
	// domains, which end in .com by construction.
	for i := 0; i < 30; i++ {
		from := g.HamMessage(r).From()
		if !strings.HasSuffix(from, ".com") {
			t.Fatalf("ham From = %q, want an org .com domain", from)
		}
		if !strings.Contains(from, "@") {
			t.Fatalf("ham From = %q not an address", from)
		}
	}
}

func TestURLWordShape(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(53)
	for i := 0; i < 50; i++ {
		w := g.urlWord(r, g.SpamModel())
		if !strings.HasPrefix(w, "http://") {
			t.Fatalf("urlWord = %q", w)
		}
		rest := strings.TrimPrefix(w, "http://")
		host, path, ok := strings.Cut(rest, "/")
		if !ok || path == "" {
			t.Fatalf("urlWord %q has no path", w)
		}
		if strings.Count(host, ".") != 2 {
			t.Fatalf("urlWord host %q not word.word.tld", host)
		}
	}
}

func TestPunctDistribution(t *testing.T) {
	r := stats.NewRNG(59)
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[punct(r)]++
	}
	if counts["."]+counts["!"]+counts["?"] != n {
		t.Fatalf("unexpected punctuation: %v", counts)
	}
	if counts["."] < counts["!"] || counts["!"] < counts["?"] {
		t.Errorf("punctuation frequencies out of order: %v", counts)
	}
}

func TestGeneratorRejectsBadConfig(t *testing.T) {
	u := MustUniverse(smallUniverseConfig())
	bad := DefaultConfig()
	bad.SentenceMin = 0
	if _, err := New(u, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	bad := DefaultConfig()
	bad.WordsPerLine = 0
	MustNew(MustUniverse(smallUniverseConfig()), bad)
}

func TestBodyLineWrapping(t *testing.T) {
	g := smallGenerator(t)
	r := stats.NewRNG(61)
	body := g.HamMessage(r).Body
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		n := len(strings.Fields(line))
		if n > g.Config().WordsPerLine+1 { // +1: punctuation token may share the slot
			t.Fatalf("line has %d tokens: %q", n, line)
		}
	}
}
