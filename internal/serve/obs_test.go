package serve_test

// Observability coverage for the daemon: the metrics and trace
// surfaces stay consistent while classify, learn, and shed traffic
// hammers the server, and /healthz flips to 503 exactly while the
// learn path is saturated and actively shedding.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
)

// newObsGuarded builds a bootstrapped guarded engine instrumented
// into the given registry and tracer.
func newObsGuarded(t *testing.T, admit engine.Admitter, reg *obs.Registry, tracer *obs.Tracer) *engine.Guarded {
	t.Helper()
	b, err := engine.Lookup("sbayes")
	if err != nil {
		t.Fatal(err)
	}
	g := testGen(t)
	rng := stats.NewRNG(7)
	clf := b.New()
	for _, ex := range g.Corpus(rng, 60, 60).Examples {
		clf.Learn(ex.Msg, ex.Spam)
	}
	ecfg := engine.Config{Name: "served", Obs: reg, Trace: tracer}
	return engine.NewGuarded(engine.New(clf, ecfg), admit, engine.GuardedConfig{})
}

// scrape fetches and parses /metrics; any 200 body that fails to
// parse or validate is a test failure.
func scrape(t *testing.T, client *http.Client, base string) *obs.ParsedMetrics {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Fatalf("/metrics content type %q lacks exposition version", got)
	}
	pm, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	return pm
}

// TestMetricsAndTraceUnderConcurrentLoad hammers classify and learn
// (with a queue small enough to shed) from several goroutines while
// other goroutines continuously scrape /metrics and replay /trace.
// Every scrape must parse and every histogram must validate (buckets
// cumulative-monotone, +Inf bucket equal to the count) mid-flight —
// the lock-free instruments may be scraped torn, but never invalid —
// and after quiescing, the per-route request counters must agree with
// both the route latency histograms and the client's own tally.
func TestMetricsAndTraceUnderConcurrentLoad(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256, 1)
	guarded := newObsGuarded(t, acceptAll{}, reg, tracer)
	srv := serve.NewSingle(guarded, serve.Config{
		LearnQueue: 4,
		RetryAfter: 50 * time.Millisecond,
		Obs:        reg,
		Trace:      tracer,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	g := testGen(t)
	const (
		classifyWorkers = 4
		learnWorkers    = 2
		perWorker       = 60
	)
	var traffic, scrapers sync.WaitGroup
	stop := make(chan struct{})

	// Scrape loop: every exposition must parse, and the classify-route
	// histogram must validate even while its buckets move underneath.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pm := scrape(t, ts.Client(), ts.URL)
			if _, err := pm.Histogram("serve_request_seconds", obs.L("route", "classify")); err != nil {
				t.Errorf("mid-flight classify histogram invalid: %v", err)
				return
			}
		}
	}()

	// Trace loop: every line of every replay must decode as a
	// TraceEvent; sampling on the hot path must never block on this.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := ts.Client().Get(ts.URL + "/trace?n=64")
			if err != nil {
				t.Error(err)
				return
			}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if len(bytes.TrimSpace(sc.Bytes())) == 0 {
					continue
				}
				var ev obs.TraceEvent
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Errorf("trace line does not decode: %v", err)
				}
			}
			resp.Body.Close()
		}
	}()

	for w := 0; w < classifyWorkers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rng := stats.NewRNG(100 + uint64(w))
			for i := 0; i < perWorker; i++ {
				msg := g.Message(rng, rng.Bernoulli(0.5))
				status := postJSON(t, ts.Client(), ts.URL+"/classify", serve.ClassifyRequest{Message: wireMsg(msg)}, nil)
				if status != http.StatusOK {
					t.Errorf("classify status %d", status)
				}
			}
		}(w)
	}
	shed := make([]int, learnWorkers)
	for w := 0; w < learnWorkers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rng := stats.NewRNG(200 + uint64(w))
			for i := 0; i < perWorker; i++ {
				spam := rng.Bernoulli(0.5)
				req := serve.LearnRequest{Message: wireMsg(g.Message(rng, spam)), Spam: spam}
				switch status := postJSON(t, ts.Client(), ts.URL+"/learn", req, nil); status {
				case http.StatusAccepted:
				case http.StatusServiceUnavailable:
					shed[w]++
				default:
					t.Errorf("learn status %d", status)
				}
			}
		}(w)
	}

	// Quiesce: traffic first, then release the scrape loops.
	traffic.Wait()
	close(stop)
	scrapers.Wait()

	// Post-quiesce accounting: requests_total summed over status
	// classes must equal the latency histogram's count for the same
	// route, and both must equal what the clients sent.
	pm := scrape(t, ts.Client(), ts.URL)
	for _, route := range []struct {
		name string
		want uint64
	}{
		{"classify", classifyWorkers * perWorker},
		{"learn", learnWorkers * perWorker},
	} {
		var total float64
		for _, code := range []string{"2xx", "4xx", "5xx"} {
			v, ok := pm.Value("serve_requests_total", obs.L("route", route.name), obs.L("code", code))
			if ok {
				total += v
			}
		}
		if uint64(total) != route.want {
			t.Errorf("serve_requests_total{route=%q} = %v, want %d", route.name, total, route.want)
		}
		h, err := pm.Histogram("serve_request_seconds", obs.L("route", route.name))
		if err != nil {
			t.Fatalf("final %s histogram: %v", route.name, err)
		}
		if h.Count != route.want {
			t.Errorf("serve_request_seconds{route=%q} count = %d, want %d", route.name, h.Count, route.want)
		}
	}

	// The shed tallies agree end to end: client-observed 503s,
	// serve_learn_shed_total, and /stats.
	totalShed := 0
	for _, n := range shed {
		totalShed += n
	}
	if v, ok := pm.Value("serve_learn_shed_total"); !ok || uint64(v) != uint64(totalShed) {
		t.Errorf("serve_learn_shed_total = %v (present=%v), clients saw %d sheds", v, ok, totalShed)
	}
	if st := srv.Stats(); st.LearnShed != uint64(totalShed) {
		t.Errorf("Stats().LearnShed = %d, clients saw %d", st.LearnShed, totalShed)
	}

	// The tracer sampled every classify (every=1): the ring holds
	// decodable events and recorded at least as many as it can hold.
	if tracer.Recorded() == 0 {
		t.Error("tracer recorded nothing under every=1 sampling")
	}
}

// TestHealthzReadinessFlipsUnderSustainedShed proves /healthz is the
// degraded-mode signal: 200 on a healthy daemon, 503 with status
// "degraded" while the learn queue is full and actively shedding, and
// back to 200 once the shed is no longer recent — even if the queue
// stays full — because a load balancer should only divert while the
// daemon is refusing work.
func TestHealthzReadinessFlipsUnderSustainedShed(t *testing.T) {
	const retryAfter = 80 * time.Millisecond
	w := newWedge()
	reg := obs.NewRegistry()
	guarded := newObsGuarded(t, w, reg, nil)
	srv := serve.NewSingle(guarded, serve.Config{
		LearnQueue: 1,
		RetryAfter: retryAfter,
		Obs:        reg,
		Resumed:    true,
	})
	defer srv.Close()
	defer close(w.release)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var h serve.HealthResponse
	if status := getJSON(t, ts.Client(), ts.URL+"/healthz", &h); status != http.StatusOK {
		t.Fatalf("fresh daemon /healthz status %d", status)
	}
	if h.Status != "ok" || !h.Resumed || h.LearnQueueCapacity != 1 {
		t.Fatalf("fresh daemon health = %+v", h)
	}

	// Saturate: the wedged admitter blocks the consumer on the first
	// submission, the second fills the queue, and further submissions
	// shed. Keep posting until a 503 proves a shed happened with the
	// queue still full.
	g := testGen(t)
	rng := stats.NewRNG(3)
	req := func() serve.LearnRequest {
		return serve.LearnRequest{Message: wireMsg(g.Message(rng, true)), Spam: true}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if status := postJSON(t, ts.Client(), ts.URL+"/learn", req(), nil); status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("learn path never shed")
		}
	}

	if status := getJSON(t, ts.Client(), ts.URL+"/healthz", &h); status != http.StatusServiceUnavailable {
		t.Fatalf("saturated daemon /healthz status %d, want 503", status)
	}
	if h.Status != "degraded" || h.Reason == "" || h.LearnShed == 0 {
		t.Fatalf("saturated daemon health = %+v", h)
	}

	// Scoring still works while learn is degraded — degraded means
	// score-only, not down.
	msg := g.Message(rng, false)
	if status := postJSON(t, ts.Client(), ts.URL+"/classify", serve.ClassifyRequest{Message: wireMsg(msg)}, nil); status != http.StatusOK {
		t.Fatalf("classify during degraded mode: status %d", status)
	}

	// Once the last shed ages past the recency window, readiness
	// recovers even though the wedged consumer still holds the queue
	// full: the daemon is no longer refusing anyone.
	time.Sleep(2*retryAfter + 50*time.Millisecond)
	if status := getJSON(t, ts.Client(), ts.URL+"/healthz", &h); status != http.StatusOK {
		t.Fatalf("post-shed /healthz status %d, want 200 (health = %+v)", status, h)
	}
	if h.Status != "ok" {
		t.Fatalf("post-shed health = %+v", h)
	}
}

// TestMetricsAndTraceAbsentWithoutConfig pins the opt-in contract:
// without a registry the daemon answers 404 on /metrics, without a
// tracer 404 on /trace, and pprof stays unmounted unless enabled.
func TestMetricsAndTraceAbsentWithoutConfig(t *testing.T) {
	guarded := newGuarded(t, "sbayes", acceptAll{}, engine.GuardedConfig{})
	srv := serve.NewSingle(guarded, serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/metrics", "/trace", "/debug/pprof/"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d without observability config, want 404", path, resp.StatusCode)
		}
	}
}

// getJSON fetches url and decodes the JSON body, returning the status.
func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}
