package serve_test

// End-to-end coverage for the guarded daemon over real HTTP: the
// classify/learn/save/resume round trip against both backends, load
// shedding under a saturated learn path, and the isolation guarantee
// that a wedged admitter can never block scoring.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/textgen"
	"repro/internal/tokenize"

	_ "repro/internal/graham"
	_ "repro/internal/sbayes"
)

var backends = []string{"sbayes", "graham"}

func testGen(t testing.TB) *textgen.Generator {
	t.Helper()
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
	return textgen.MustNew(u, textgen.DefaultConfig())
}

// newGuarded builds a bootstrapped guarded engine over the given
// admitter; the test trains the base fixture directly (tests are the
// sanctioned setup path).
func newGuarded(t *testing.T, backend string, admit engine.Admitter, gcfg engine.GuardedConfig) *engine.Guarded {
	t.Helper()
	b, err := engine.Lookup(backend)
	if err != nil {
		t.Fatal(err)
	}
	g := testGen(t)
	rng := stats.NewRNG(7)
	clf := b.New()
	for _, ex := range g.Corpus(rng, 60, 60).Examples {
		clf.Learn(ex.Msg, ex.Spam)
	}
	return engine.NewGuarded(engine.New(clf, engine.Config{Name: "served"}), admit, gcfg)
}

// acceptAll admits everything — the permissive policy for round-trip
// tests that exercise the HTTP plumbing, not the vetting.
type acceptAll struct{}

func (acceptAll) Name() string { return "accept-all" }
func (acceptAll) Admit(context.Context, *mail.Message, *tokenize.TokenStream, bool) engine.AdmitDecision {
	return engine.AdmitDecision{Verdict: engine.AdmitAccept}
}

// holdAll quarantines everything — for the held-mail persistence
// round trip.
type holdAll struct{}

func (holdAll) Name() string { return "hold-all" }
func (holdAll) Admit(context.Context, *mail.Message, *tokenize.TokenStream, bool) engine.AdmitDecision {
	return engine.AdmitDecision{Verdict: engine.AdmitQuarantine, Reason: "hold-all"}
}

// wedge blocks every Admit call until released — the stuck-training
// path fixture. It honors ctx so server shutdown stays prompt.
type wedge struct {
	enteredOnce sync.Once
	entered     chan struct{}
	release     chan struct{}
}

func newWedge() *wedge {
	return &wedge{entered: make(chan struct{}), release: make(chan struct{})}
}

func (w *wedge) Name() string { return "wedge" }
func (w *wedge) Admit(ctx context.Context, _ *mail.Message, _ *tokenize.TokenStream, _ bool) engine.AdmitDecision {
	w.enteredOnce.Do(func() { close(w.entered) })
	select {
	case <-w.release:
		return engine.AdmitDecision{Verdict: engine.AdmitAccept}
	case <-ctx.Done():
		return engine.AdmitDecision{Verdict: engine.AdmitReject, Reason: "cancelled"}
	}
}

// postJSON posts v and decodes the response body into out (when
// non-nil), returning the status code.
func postJSON(t *testing.T, client *http.Client, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func wireMsg(m *mail.Message) serve.WireMessage { return serve.WireFromMail(m) }

// TestServeRoundTrip drives the full daemon surface against both
// backends: single and batch scoring, learn-flush-publish, snapshot
// save, and in-place resume.
func TestServeRoundTrip(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			store := engine.NewMemStore()
			chain := admission.NewChain(admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: 5000}))
			guarded := newGuarded(t, backend, chain, engine.GuardedConfig{})
			srv := serve.NewSingle(guarded, serve.Config{
				Store: store, Name: "e2e", Backend: backend,
			})
			defer srv.Close()
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client := ts.Client()
			g := testGen(t)
			rng := stats.NewRNG(21)

			// Single classify and score.
			var cls serve.ClassifyResponse
			if code := postJSON(t, client, ts.URL+"/classify", serve.ClassifyRequest{Message: wireMsg(g.SpamMessage(rng))}, &cls); code != http.StatusOK {
				t.Fatalf("classify: status %d", code)
			}
			if cls.Label == "" || cls.Generation != 1 {
				t.Fatalf("classify response %+v", cls)
			}
			var sc serve.ScoreResponse
			if code := postJSON(t, client, ts.URL+"/score", serve.ClassifyRequest{Message: wireMsg(g.HamMessage(rng))}, &sc); code != http.StatusOK {
				t.Fatalf("score: status %d", code)
			}

			// NDJSON batch: 5 in, 5 verdicts out, in order.
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			for i := 0; i < 5; i++ {
				enc.Encode(wireMsg(g.Message(rng, i%2 == 0)))
			}
			resp, err := client.Post(ts.URL+"/classify/batch", "application/x-ndjson", &buf)
			if err != nil {
				t.Fatal(err)
			}
			var lines []serve.ClassifyResponse
			scanner := bufio.NewScanner(resp.Body)
			for scanner.Scan() {
				if len(bytes.TrimSpace(scanner.Bytes())) == 0 {
					continue
				}
				var r serve.ClassifyResponse
				if err := json.Unmarshal(scanner.Bytes(), &r); err != nil {
					t.Fatalf("batch line %q: %v", scanner.Text(), err)
				}
				lines = append(lines, r)
			}
			resp.Body.Close()
			if len(lines) != 5 {
				t.Fatalf("batch returned %d lines, want 5", len(lines))
			}

			// Learn, then flush: the submission publishes a generation.
			var lr serve.LearnResponse
			if code := postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true}, &lr); code != http.StatusAccepted {
				t.Fatalf("learn: status %d", code)
			}
			var fl serve.FlushResponse
			if code := postJSON(t, client, ts.URL+"/admin/flush", struct{}{}, &fl); code != http.StatusOK {
				t.Fatalf("flush: status %d", code)
			}
			if fl.Generation < 2 {
				t.Fatalf("flush did not publish: %+v", fl)
			}

			// Save, train past it, resume: serving rolls back to the
			// saved snapshot's state under a new generation.
			var sv serve.SaveResponse
			if code := postJSON(t, client, ts.URL+"/admin/save", struct{}{}, &sv); code != http.StatusOK {
				t.Fatalf("save: status %d", code)
			}
			if len(sv.Generations) != 1 {
				t.Fatalf("save generations %v", sv.Generations)
			}
			postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true}, nil)
			postJSON(t, client, ts.URL+"/admin/flush", struct{}{}, &fl)
			var rs serve.ResumeResponse
			if code := postJSON(t, client, ts.URL+"/admin/resume", struct{}{}, &rs); code != http.StatusOK {
				t.Fatalf("resume: status %d", code)
			}
			if rs.SnapshotGeneration != sv.Generations[0] {
				t.Fatalf("resumed snapshot generation %d, want %d", rs.SnapshotGeneration, sv.Generations[0])
			}
			if rs.Generation <= fl.Generation {
				t.Fatalf("resume did not publish a new generation: %+v after flush %+v", rs, fl)
			}

			st := srv.Stats()
			if st.Classified < 6 || st.Trained < 2 || st.Publishes < 2 {
				t.Fatalf("stats do not reflect the round trip: %+v", st)
			}
		})
	}
}

// TestQuarantineSurvivesDaemonSaveResume is the crash-amnesty fix
// seen from the network: mail held by the daemon's quarantine is
// saved with the snapshot and comes back in a fresh daemon resumed
// over the same store.
func TestQuarantineSurvivesDaemonSaveResume(t *testing.T) {
	store := engine.NewMemStore()
	q := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 16})
	guarded := newGuarded(t, "sbayes", holdAll{}, engine.GuardedConfig{Quarantine: q})
	srv := serve.NewSingle(guarded, serve.Config{Store: store, Name: "amnesty", Backend: "sbayes"})
	ts := httptest.NewServer(srv)
	client := ts.Client()
	g := testGen(t)
	rng := stats.NewRNG(5)

	for i := 0; i < 3; i++ {
		m := g.SpamMessage(rng)
		m.Header.Set("Subject", fmt.Sprintf("held-%d", i))
		if code := postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(m), Spam: true}, nil); code != http.StatusAccepted {
			t.Fatalf("learn %d: status %d", i, code)
		}
	}
	var fl serve.FlushResponse
	if code := postJSON(t, client, ts.URL+"/admin/flush", struct{}{}, &fl); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	if q.Len() != 3 {
		t.Fatalf("quarantine holds %d, want 3", q.Len())
	}
	if code := postJSON(t, client, ts.URL+"/admin/save", struct{}{}, nil); code != http.StatusOK {
		t.Fatal("save failed")
	}
	ts.Close()
	srv.Close()

	// The "crashed" daemon: fresh guard, fresh (empty) quarantine,
	// same store. Resume brings the held mail back.
	q2 := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 16})
	guarded2 := newGuarded(t, "sbayes", holdAll{}, engine.GuardedConfig{Quarantine: q2})
	srv2 := serve.NewSingle(guarded2, serve.Config{Store: store, Name: "amnesty", Backend: "sbayes"})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	var rs serve.ResumeResponse
	if code := postJSON(t, ts2.Client(), ts2.URL+"/admin/resume", struct{}{}, &rs); code != http.StatusOK {
		t.Fatalf("resume: status %d (%+v)", code, rs)
	}
	if !rs.AdmissionLoaded {
		t.Fatal("resume did not load the admission sidecar")
	}
	if q2.Len() != 3 {
		t.Fatalf("resume amnestied the quarantine: %d held, want 3", q2.Len())
	}
	subjects := map[string]bool{}
	for _, h := range q2.Pending() {
		subjects[h.Msg.Subject()] = true
	}
	for i := 0; i < 3; i++ {
		if !subjects[fmt.Sprintf("held-%d", i)] {
			t.Fatalf("held message %d missing after resume: %v", i, subjects)
		}
	}
}

// TestLearnShedsWhileClassifyFlows proves the load-shedding contract
// under -race: with the learn consumer wedged inside an admitter and
// the queue full, learn submissions shed with 503 + Retry-After while
// concurrent classifies all succeed.
func TestLearnShedsWhileClassifyFlows(t *testing.T) {
	w := newWedge()
	guarded := newGuarded(t, "sbayes", w, engine.GuardedConfig{})
	srv := serve.NewSingle(guarded, serve.Config{LearnQueue: 2, RetryAfter: 7 * time.Second})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	g := testGen(t)
	rng := stats.NewRNG(3)

	learn := func() *http.Response {
		body, _ := json.Marshal(serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true})
		resp, err := client.Post(ts.URL+"/learn", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// The first submission reaches the admitter and wedges the
	// consumer; once wedged, the queue (cap 2) fills deterministically.
	if resp := learn(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("learn 1: status %d", resp.StatusCode)
	}
	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never reached the admitter")
	}
	for i := 0; i < 2; i++ {
		if resp := learn(); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued learn %d: status %d", i, resp.StatusCode)
		}
	}
	shed := learn()
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated learn: status %d, want 503", shed.StatusCode)
	}
	if ra := shed.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want %q", ra, "7")
	}

	// Meanwhile classification proceeds at full speed from many
	// goroutines — the wedged training path cannot block a verdict.
	var wg sync.WaitGroup
	errs := make(chan error, 8*5)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(100 + i))
			for j := 0; j < 5; j++ {
				body, _ := json.Marshal(serve.ClassifyRequest{Message: wireMsg(g.Message(r, j%2 == 0))})
				resp, err := client.Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("classify under wedge: status %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.LearnShed == 0 {
		t.Fatalf("no shed recorded: %+v", st)
	}
	if st.Classified != 40 {
		t.Fatalf("classified %d under wedge, want 40", st.Classified)
	}

	// Release the wedge and flush: everything queued trains through.
	close(w.release)
	var fl serve.FlushResponse
	if code := postJSON(t, client, ts.URL+"/admin/flush", struct{}{}, &fl); code != http.StatusOK {
		t.Fatalf("flush after release: status %d", code)
	}
	if got := srv.Stats().Trained; got != 3 {
		t.Fatalf("trained %d after release, want 3", got)
	}
}

// TestWedgedAdmitterNeverBlocksScoreEndpoints pins the isolation the
// other direction: with the consumer wedged, the score and batch
// endpoints answer promptly (the inflight semaphore is scoring's own;
// the learn path holds no scoring resources).
func TestWedgedAdmitterNeverBlocksScoreEndpoints(t *testing.T) {
	w := newWedge()
	guarded := newGuarded(t, "graham", w, engine.GuardedConfig{})
	srv := serve.NewSingle(guarded, serve.Config{LearnQueue: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	g := testGen(t)
	rng := stats.NewRNG(9)

	postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true}, nil)
	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never reached the admitter")
	}
	defer close(w.release)

	done := make(chan struct{})
	go func() {
		defer close(done)
		var sc serve.ScoreResponse
		if code := postJSON(t, client, ts.URL+"/score", serve.ClassifyRequest{Message: wireMsg(g.HamMessage(rng))}, &sc); code != http.StatusOK {
			t.Errorf("score under wedge: status %d", code)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := 0; i < 3; i++ {
			enc.Encode(wireMsg(g.Message(rng, true)))
		}
		resp, err := client.Post(ts.URL+"/score/batch", "application/x-ndjson", &buf)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		scanner := bufio.NewScanner(resp.Body)
		n := 0
		for scanner.Scan() {
			if strings.TrimSpace(scanner.Text()) != "" {
				n++
			}
		}
		if n != 3 {
			t.Errorf("score/batch under wedge: %d lines, want 3", n)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scoring blocked behind a wedged admitter")
	}
}

// TestFlushTimesOutUnderWedgeInsteadOfHanging: a flush against a
// wedged consumer answers 503 when its request context expires,
// instead of wedging the operator too.
func TestFlushTimesOutUnderWedgeInsteadOfHanging(t *testing.T) {
	w := newWedge()
	guarded := newGuarded(t, "sbayes", w, engine.GuardedConfig{})
	srv := serve.NewSingle(guarded, serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	g := testGen(t)
	rng := stats.NewRNG(13)

	postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true}, nil)
	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never reached the admitter")
	}
	defer close(w.release)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/admin/flush", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("flush under wedge: status %d, want 503", resp.StatusCode)
		}
		return
	}
	// A client-side context error is also acceptable: the point is the
	// caller gets unblocked, not the exact error surface.
	if !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatal(err)
	}
}

// TestLearnVetsThroughAdmission pins that the learn path actually
// vets: a flood-gate chain rejects a dictionary-style flood while an
// organic example trains, and the engine's admission counters say so.
func TestLearnVetsThroughAdmission(t *testing.T) {
	chain := admission.NewChain(admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: 50}))
	guarded := newGuarded(t, "sbayes", chain, engine.GuardedConfig{})
	srv := serve.NewSingle(guarded, serve.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	g := testGen(t)
	rng := stats.NewRNG(17)

	// A flood: far more distinct tokens than the gate allows.
	words := make([]string, 400)
	for i := range words {
		words[i] = fmt.Sprintf("floodtoken%03d", i)
	}
	flood := &mail.Message{Body: strings.Join(words, " ")}
	postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(flood), Spam: true}, nil)
	postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true}, nil)
	var fl serve.FlushResponse
	if code := postJSON(t, client, ts.URL+"/admin/flush", struct{}{}, &fl); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}

	adm := guarded.Stats().Admission
	if adm.Rejected != 1 || adm.Admitted != 1 {
		t.Fatalf("admission did not vet the learn path: %+v", adm)
	}
}

// TestShardedServeRoundTrip drives the fleet mode: batch scoring
// routes across shards, learns partition to their shards, and save
// persists one snapshot line per shard.
func TestShardedServeRoundTrip(t *testing.T) {
	b, err := engine.Lookup("sbayes")
	if err != nil {
		t.Fatal(err)
	}
	g := testGen(t)
	rng := stats.NewRNG(11)
	boot := g.Corpus(rng, 80, 80)
	const shards = 3
	parts := engine.PartitionByKey(boot, shards, engine.RecipientKey)
	clfs := make([]engine.Classifier, shards)
	for i := range clfs {
		clf := b.New()
		for _, ex := range parts[i].Examples {
			clf.Learn(ex.Msg, ex.Spam)
		}
		clfs[i] = clf
	}
	sh := engine.NewSharded(clfs, engine.ShardedConfig{Name: "fleet"})
	chain := admission.NewChain(admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: 5000}))
	gsh := engine.NewGuardedSharded(sh, chain, engine.GuardedConfig{})
	store := engine.NewMemStore()
	srv := serve.NewSharded(gsh, serve.Config{Store: store, Name: "fleet", Backend: "sbayes"})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var cls serve.ClassifyResponse
	if code := postJSON(t, client, ts.URL+"/classify", serve.ClassifyRequest{Message: wireMsg(g.SpamMessage(rng))}, &cls); code != http.StatusOK {
		t.Fatalf("classify: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/learn", serve.LearnRequest{Message: wireMsg(g.SpamMessage(rng)), Spam: true}, nil); code != http.StatusAccepted {
		t.Fatal("learn not accepted")
	}
	var fl serve.FlushResponse
	if code := postJSON(t, client, ts.URL+"/admin/flush", struct{}{}, &fl); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	if fl.Generation < 2 {
		t.Fatalf("fleet flush did not publish: %+v", fl)
	}
	var sv serve.SaveResponse
	if code := postJSON(t, client, ts.URL+"/admin/save", struct{}{}, &sv); code != http.StatusOK {
		t.Fatalf("save: status %d", code)
	}
	if len(sv.Generations) != shards {
		t.Fatalf("saved %d shard generations, want %d", len(sv.Generations), shards)
	}
	var rs serve.ResumeResponse
	if code := postJSON(t, client, ts.URL+"/admin/resume", struct{}{}, &rs); code != http.StatusNotImplemented {
		t.Fatalf("sharded in-place resume: status %d, want 501", code)
	}

	// The persisted lines resume into a working fleet.
	resumed, gens, err := engine.ResumeAll(store, shards, engine.ShardedConfig{Name: "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(engine.StaleShards(gens)) == shards {
		t.Fatalf("all resumed shards stale: %v", gens)
	}
	if got := resumed.Classify(g.HamMessage(rng)); got.Label.String() == "" {
		t.Fatal("resumed fleet cannot classify")
	}
}
