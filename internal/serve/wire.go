package serve

// The daemon's wire format: JSON over HTTP, NDJSON for batches. The
// types live apart from the handlers because the load generator
// (cmd/sbload) and the httptest suite build requests from the same
// structs the server decodes — one schema, no drift.

import (
	"repro/internal/mail"
)

// WireHeader is one header field on the wire.
type WireHeader struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// WireMessage is one email on the wire: an ordered header and a flat
// text body, mirroring mail.Message. An empty header is valid (the
// paper's dictionary-attack emails have none).
type WireMessage struct {
	Header []WireHeader `json:"header,omitempty"`
	Body   string       `json:"body"`
}

// Mail converts the wire form to the internal message.
func (w WireMessage) Mail() *mail.Message {
	m := &mail.Message{Body: w.Body}
	for _, h := range w.Header {
		m.Header.Add(h.Name, h.Value)
	}
	return m
}

// WireFromMail converts an internal message to the wire form.
func WireFromMail(m *mail.Message) WireMessage {
	w := WireMessage{Body: m.Body}
	for _, f := range m.Header {
		w.Header = append(w.Header, WireHeader{Name: f.Name, Value: f.Value})
	}
	return w
}

// ClassifyRequest is the body of POST /classify and POST /score.
type ClassifyRequest struct {
	Message WireMessage `json:"message"`
}

// ClassifyResponse is one verdict. Generation is the serving
// snapshot generation the verdict was scored against (the fleet
// maximum in sharded mode).
type ClassifyResponse struct {
	Label      string  `json:"label"`
	Score      float64 `json:"score"`
	Generation uint64  `json:"generation"`
}

// ScoreResponse is one raw score, without thresholding.
type ScoreResponse struct {
	Score      float64 `json:"score"`
	Generation uint64  `json:"generation"`
}

// LearnRequest is the body of POST /learn: one candidate training
// example with the label it would be trained under. The candidate is
// vetted by the admission chain before it can influence a snapshot —
// the endpoint accepts the submission, not the example.
type LearnRequest struct {
	Message WireMessage `json:"message"`
	Spam    bool        `json:"spam"`
}

// LearnResponse acknowledges an enqueued learn submission. Depth is
// the learn queue depth after the enqueue — a client-visible
// saturation signal before shedding starts.
type LearnResponse struct {
	Queued bool `json:"queued"`
	Depth  int  `json:"depth"`
}

// FlushResponse reports a drained-and-published learn queue.
type FlushResponse struct {
	Flushed    int    `json:"flushed"`
	Generation uint64 `json:"generation"`
}

// SaveResponse reports the snapshot generations a save persisted
// (one per shard in sharded mode).
type SaveResponse struct {
	Generations []uint64 `json:"generations"`
}

// ResumeResponse reports an in-place resume: the snapshot generation
// the classifier was restored from, the new serving generation it was
// published as, and whether an admission sidecar was loaded with it.
type ResumeResponse struct {
	SnapshotGeneration uint64 `json:"snapshotGeneration"`
	Generation         uint64 `json:"generation"`
	AdmissionLoaded    bool   `json:"admissionLoaded"`
}

// HealthResponse is the body of GET /healthz — the readiness report.
// Status is "ok" (200) or "degraded" (503); degraded means the learn
// queue is saturated and actively shedding, so the daemon is serving
// score-only. Reason is set only when degraded.
type HealthResponse struct {
	Status             string `json:"status"`
	Generation         uint64 `json:"generation"`
	Resumed            bool   `json:"resumed"`
	LearnQueueDepth    int    `json:"learnQueueDepth"`
	LearnQueueCapacity int    `json:"learnQueueCapacity"`
	LearnShed          uint64 `json:"learnShed"`
	Reason             string `json:"reason,omitempty"`
}

// ErrorResponse is the body of every non-2xx response, and of an
// in-stream error line on the NDJSON batch endpoints.
type ErrorResponse struct {
	Error string `json:"error"`
}
