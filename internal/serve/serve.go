// Package serve is the guarded network front-end: an HTTP daemon over
// a guarded engine that scores on demand and learns only through
// admission control.
//
// The paper's threat model is an attacker who reaches the filter
// through its training path. A network front-end is where that path
// opens to the world, so the server is built so it cannot train
// unguarded: it holds the concrete *engine.Guarded (or
// *engine.GuardedSharded) — never a raw Engine, never an interface
// abstracting one — and every learn submission drains through
// RetrainIncremental, whose admission chain vets each example before
// it can influence a snapshot. The sbvet admitflow analyzer walks
// this package's call graph like any other non-owner package; the
// daemon staying diagnostic-free is the machine-checked proof that no
// handler reaches the engine's training surface around the guard.
//
// The serving and training paths are isolated from each other:
//
//   - Scoring (classify/score, single and NDJSON batch) reads the
//     atomically published snapshot and never touches admission
//     state. Batch requests pass through a max-inflight semaphore —
//     per-connection backpressure, bounded by the client's patience
//     (the request context) rather than an error.
//   - Learning is asynchronous: POST /learn enqueues into a bounded
//     queue and returns 202. A single consumer goroutine drains the
//     queue in batches through the guard's incremental retrain. When
//     the consumer falls behind — or an admitter wedges entirely —
//     the queue fills and the server degrades to score-only: learn
//     submissions shed with 503 + Retry-After while classification
//     continues at full speed. A stuck training path can never block
//     a verdict.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// LearnQueue bounds the pending learn submissions (<= 0 selects
	// 256). A full queue sheds with 503 + Retry-After.
	LearnQueue int
	// LearnBatch caps the examples drained into one incremental
	// retrain (<= 0 selects 64).
	LearnBatch int
	// MaxInflight bounds concurrently executing batch-scoring
	// requests (<= 0 selects 2x GOMAXPROCS). Excess batch requests
	// wait on the semaphore under their own request context; single
	// classifies never wait.
	MaxInflight int
	// RetryAfter is the backoff advertised on a shed learn
	// submission (<= 0 selects 1s).
	RetryAfter time.Duration
	// Store, when non-nil, enables the save/resume admin endpoints.
	Store engine.SnapshotStore
	// Name is the snapshot line's store key (defaults to "served").
	Name string
	// Backend is the backend name stamped into saved snapshots, so a
	// resume can rebuild the right classifier.
	Backend string
	// Obs, when non-nil, registers the front-end's instruments
	// (per-route request counters and latency histograms, learn-queue
	// depth and shed counters) and enables GET /metrics, which renders
	// the whole registry — typically shared with the engine and
	// admission layers — in Prometheus text exposition format. Nil
	// still counts (the counters back Stats) but /metrics answers 404.
	Obs *obs.Registry
	// Trace, when non-nil, enables GET /trace, replaying the tracer's
	// sampled decision events as NDJSON. The server records no events
	// itself — the engine and admission layers sharing the tracer do.
	Trace *obs.Tracer
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ —
	// opt-in because profiles are an information leak on an exposed
	// port; enable it where the admin surface is already trusted.
	EnablePprof bool
	// Resumed records that the daemon restored its serving snapshot
	// from a persisted store at startup; /healthz reports it so an
	// operator can tell a fresh filter from a recovered one.
	Resumed bool
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.LearnQueue <= 0 {
		c.LearnQueue = 256
	}
	if c.LearnBatch <= 0 {
		c.LearnBatch = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Name == "" {
		c.Name = "served"
	}
	return c
}

// learnReq is one enqueued learn submission.
type learnReq struct {
	msg  *mail.Message
	spam bool
}

// flushResult is one drained-and-published learn queue.
type flushResult struct {
	gen     uint64
	trained int
	err     error
}

// Server is the HTTP front-end over one guarded engine (exactly one
// of guarded/sharded is set — the constructors enforce it). It is an
// http.Handler; callers wrap it in an http.Server or httptest.
type Server struct {
	guarded *engine.Guarded
	sharded *engine.GuardedSharded
	cfg     Config

	learnCh  chan learnReq
	flushCh  chan chan flushResult
	inflight chan struct{}

	ctx      context.Context
	cancel   context.CancelFunc
	loopDone chan struct{}

	mux *http.ServeMux

	// Front-end traffic counters, obs-backed so /stats and /metrics
	// read the same instruments; engine-level counters (verdict
	// histogram, admission tallies) live on the engine itself and are
	// reported alongside these in /stats.
	classified  *obs.Counter
	scored      *obs.Counter
	learnQueued *obs.Counter
	learnShed   *obs.Counter
	trained     *obs.Counter
	publishes   *obs.Counter
	publishErrs *obs.Counter
	flushes     *obs.Counter

	// lastShed is the unix-nano timestamp of the most recent learn
	// shed; /healthz reports degraded (503) while the queue is full
	// and a shed is this recent — the sustained-shed readiness signal.
	//
	//sbvet:nostat readiness timestamp, not a monotone counter; healthz reads it, Stats does not
	lastShed atomic.Int64
}

// NewSingle returns a started Server over one guarded engine.
// Callers Close it when done.
func NewSingle(g *engine.Guarded, cfg Config) *Server {
	if g == nil {
		panic("serve: NewSingle with nil guarded engine")
	}
	s := &Server{guarded: g, cfg: cfg.withDefaults()}
	s.start()
	return s
}

// NewSharded returns a started Server over a guarded sharded fleet.
func NewSharded(g *engine.GuardedSharded, cfg Config) *Server {
	if g == nil {
		panic("serve: NewSharded with nil guarded engine")
	}
	s := &Server{sharded: g, cfg: cfg.withDefaults()}
	s.start()
	return s
}

func (s *Server) start() {
	s.learnCh = make(chan learnReq, s.cfg.LearnQueue)
	s.flushCh = make(chan chan flushResult)
	s.inflight = make(chan struct{}, s.cfg.MaxInflight)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.loopDone = make(chan struct{})

	reg := s.cfg.Obs
	s.classified = reg.Counter("serve_classified_total", "messages answered by the verdict endpoints (single and batch)")
	s.scored = reg.Counter("serve_scored_total", "messages answered by the score endpoints (single and batch)")
	s.learnQueued = reg.Counter("serve_learn_queued_total", "accepted learn submissions")
	s.learnShed = reg.Counter("serve_learn_shed_total", "learn submissions refused with 503 while the queue was full")
	s.trained = reg.Counter("serve_trained_total", "examples handed to the guard's retrain")
	s.publishes = reg.Counter("serve_publishes_total", "successful learn-batch publishes")
	s.publishErrs = reg.Counter("serve_publish_errors_total", "failed learn-batch publish attempts")
	s.flushes = reg.Counter("serve_flushes_total", "completed /admin/flush drains")
	reg.GaugeFunc("serve_learn_queue_depth", "learn submissions waiting in the bounded queue", func() float64 {
		return float64(len(s.learnCh))
	})
	reg.GaugeFunc("serve_learn_queue_capacity", "learn queue bound (depth == capacity is the shed condition)", func() float64 {
		return float64(cap(s.learnCh))
	})

	s.routes()
	go s.learnLoop()
}

// Close stops the learn consumer and waits for it to exit. Admitters
// must honor context cancellation for Close to return promptly; the
// vetting loop checks the server context between examples either way.
func (s *Server) Close() error {
	s.cancel()
	<-s.loopDone
	return nil
}

// ServeHTTP dispatches to the daemon's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /classify", s.instrument("classify", s.handleClassify))
	s.mux.HandleFunc("POST /score", s.instrument("score", s.handleScore))
	s.mux.HandleFunc("POST /classify/batch", s.instrument("classify_batch", func(w http.ResponseWriter, r *http.Request) {
		s.handleBatch(w, r, true)
	}))
	s.mux.HandleFunc("POST /score/batch", s.instrument("score_batch", func(w http.ResponseWriter, r *http.Request) {
		s.handleBatch(w, r, false)
	}))
	s.mux.HandleFunc("POST /learn", s.instrument("learn", s.handleLearn))
	s.mux.HandleFunc("POST /admin/flush", s.instrument("admin_flush", s.handleFlush))
	s.mux.HandleFunc("POST /admin/save", s.instrument("admin_save", s.handleSave))
	s.mux.HandleFunc("POST /admin/resume", s.instrument("admin_resume", s.handleResume))
	s.mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /trace", s.instrument("trace", s.handleTrace))
	if s.cfg.EnablePprof {
		// Explicit handler mounts on the daemon's own mux — importing
		// net/http/pprof for its side effect would register on the
		// DefaultServeMux, which this server never serves.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// statusWriter captures the response status for the per-route
// status-class counters. An implicit 200 (a handler that writes the
// body without WriteHeader) is recorded on first Write.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with its route's latency histogram and
// status-class counters. The instruments are created once at route
// registration — labels are the fixed route name plus a three-value
// status class, so request traffic can move counters but never mint
// new series.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rl := obs.L("route", route)
	lat := s.cfg.Obs.Histogram("serve_request_seconds", "request latency by route", nil, rl)
	classes := [3]*obs.Counter{
		s.cfg.Obs.Counter("serve_requests_total", "requests by route and status class", rl, obs.L("code", "2xx")),
		s.cfg.Obs.Counter("serve_requests_total", "requests by route and status class", rl, obs.L("code", "4xx")),
		s.cfg.Obs.Counter("serve_requests_total", "requests by route and status class", rl, obs.L("code", "5xx")),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		lat.ObserveSince(start)
		switch {
		case sw.status < 400:
			classes[0].Inc()
		case sw.status < 500:
			classes[1].Inc()
		default:
			classes[2].Inc()
		}
	}
}

// learnLoop is the single learn consumer: it drains queued
// submissions in batches of at most LearnBatch and publishes each
// batch through the guard's incremental retrain. Everything the
// training path can do to stall — a slow probe, a wedged admitter —
// stalls only this goroutine; the queue then fills and the handlers
// shed, never block.
func (s *Server) learnLoop() {
	defer close(s.loopDone)
	var pending []learnReq
	for {
		select {
		case <-s.ctx.Done():
			return
		case req := <-s.learnCh:
			pending = s.soak(append(pending, req))
			res := s.publishPending(&pending)
			if res.err != nil && s.ctx.Err() != nil {
				return
			}
		case ack := <-s.flushCh:
			pending = s.soak(pending)
			ack <- s.publishPending(&pending)
		}
	}
}

// soak moves everything already queued into pending, without
// blocking, up to the batch cap.
func (s *Server) soak(pending []learnReq) []learnReq {
	for len(pending) < s.cfg.LearnBatch {
		select {
		case req := <-s.learnCh:
			pending = append(pending, req)
		default:
			return pending
		}
	}
	return pending
}

// publishPending vets and trains the pending batch through the
// guard's incremental retrain, then resets pending. An empty batch
// publishes nothing and reports the current generation.
func (s *Server) publishPending(pending *[]learnReq) flushResult {
	if len(*pending) == 0 {
		return flushResult{gen: s.generation()}
	}
	delta := &corpus.Corpus{}
	for _, req := range *pending {
		delta.Add(req.msg, req.spam)
	}
	n := len(*pending)
	*pending = (*pending)[:0]

	var gen uint64
	var err error
	if s.guarded != nil {
		gen, err = s.guarded.RetrainIncremental(s.ctx, delta)
	} else {
		var gens []uint64
		gens, err = s.sharded.RetrainIncrementalAll(s.ctx, delta)
		for _, g := range gens {
			if g > gen {
				gen = g
			}
		}
	}
	if err != nil {
		s.publishErrs.Inc()
		return flushResult{gen: gen, err: err}
	}
	s.trained.Add(uint64(n))
	s.publishes.Inc()
	return flushResult{gen: gen, trained: n}
}

// generation is the serving snapshot generation (fleet maximum in
// sharded mode).
func (s *Server) generation() uint64 {
	if s.guarded != nil {
		return s.guarded.Generation()
	}
	var max uint64
	sh := s.sharded.Sharded()
	for i := 0; i < sh.NumShards(); i++ {
		if g := sh.Shard(i).Generation(); g > max {
			max = g
		}
	}
	return max
}

func (s *Server) classify(m *mail.Message) engine.Result {
	if s.guarded != nil {
		return s.guarded.Classify(m)
	}
	return s.sharded.Classify(m)
}

func (s *Server) classifyBatch(ctx context.Context, msgs []*mail.Message) ([]engine.Result, error) {
	if s.guarded != nil {
		return s.guarded.ClassifyBatch(ctx, msgs)
	}
	return s.sharded.ClassifyBatch(ctx, msgs)
}

func (s *Server) scoreBatch(ctx context.Context, msgs []*mail.Message) ([]float64, error) {
	if s.guarded != nil {
		return s.guarded.ScoreBatch(ctx, msgs)
	}
	return s.sharded.ScoreBatch(ctx, msgs)
}

// acquire takes one inflight slot, waiting under the request context
// — backpressure, not an error. It reports false (and answers 503)
// only when the client gave up or the server is shutting down.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled while waiting for a batch slot")
		return false
	case <-s.ctx.Done():
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return false
	}
}

func (s *Server) release() { <-s.inflight }

// --- Handlers ---

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	res := s.classify(req.Message.Mail())
	s.classified.Inc()
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Label:      res.Label.String(),
		Score:      res.Score,
		Generation: s.generation(),
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	out, err := s.scoreBatch(r.Context(), []*mail.Message{req.Message.Mail()})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.scored.Inc()
	writeJSON(w, http.StatusOK, ScoreResponse{Score: out[0], Generation: s.generation()})
}

// batchChunk is the number of NDJSON lines scored per engine batch
// call: large enough to amortize the worker-pool fan-out, small
// enough that results stream back while the client is still sending.
const batchChunk = 64

// handleBatch streams an NDJSON request through the engine in chunks:
// each line is one WireMessage, each response line one verdict
// (verdicts=true) or score. The inflight slot is held for the whole
// request — one connection, one slot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, verdicts bool) {
	if !s.acquire(w, r) {
		return
	}
	defer s.release()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	chunk := make([]*mail.Message, 0, batchChunk)

	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		gen := s.generation()
		if verdicts {
			res, err := s.classifyBatch(r.Context(), chunk)
			if err != nil {
				return err
			}
			s.classified.Add(uint64(len(res)))
			for _, v := range res {
				if err := enc.Encode(ClassifyResponse{Label: v.Label.String(), Score: v.Score, Generation: gen}); err != nil {
					return err
				}
			}
		} else {
			out, err := s.scoreBatch(r.Context(), chunk)
			if err != nil {
				return err
			}
			s.scored.Add(uint64(len(out)))
			for _, v := range out {
				if err := enc.Encode(ScoreResponse{Score: v, Generation: gen}); err != nil {
					return err
				}
			}
		}
		chunk = chunk[:0]
		return nil
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var wm WireMessage
		if err := json.Unmarshal(line, &wm); err != nil {
			// The header is already out; report in-stream and stop.
			enc.Encode(ErrorResponse{Error: fmt.Sprintf("bad batch line: %v", err)})
			return
		}
		chunk = append(chunk, wm.Mail())
		if len(chunk) == batchChunk {
			if err := flush(); err != nil {
				enc.Encode(ErrorResponse{Error: err.Error()})
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		enc.Encode(ErrorResponse{Error: err.Error()})
		return
	}
	if err := flush(); err != nil {
		enc.Encode(ErrorResponse{Error: err.Error()})
	}
}

// handleLearn enqueues one candidate training example. The enqueue
// never blocks: a full queue is the saturation signal, answered with
// 503 + Retry-After so well-behaved clients back off while the
// scoring endpoints run on untouched.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req LearnRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	select {
	case s.learnCh <- learnReq{msg: req.Message.Mail(), spam: req.Spam}:
		s.learnQueued.Inc()
		writeJSON(w, http.StatusAccepted, LearnResponse{Queued: true, Depth: len(s.learnCh)})
	default:
		s.learnShed.Inc()
		s.lastShed.Store(time.Now().UnixNano())
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: "learn queue saturated; serving degraded to score-only",
		})
	}
}

// retryAfterSeconds renders a Retry-After value, at least 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleFlush drains the learn queue and publishes the batch before
// returning — the deterministic synchronization point tests and
// operators use. A wedged consumer makes this endpoint wait, bounded
// by the request context; it never wedges the caller forever.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	ack := make(chan flushResult, 1)
	select {
	case s.flushCh <- ack:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "flush timed out: learn consumer busy")
		return
	case <-s.ctx.Done():
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	select {
	case res := <-ack:
		if res.err != nil {
			writeError(w, http.StatusInternalServerError, res.err.Error())
			return
		}
		s.flushes.Inc()
		writeJSON(w, http.StatusOK, FlushResponse{Flushed: res.trained, Generation: res.gen})
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "flush timed out: learn consumer busy")
	}
}

// handleSave persists the serving snapshot: classifier plus admission
// sidecar in single mode (SaveGuarded), one snapshot per shard in
// sharded mode.
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, "no snapshot store configured")
		return
	}
	if s.guarded != nil {
		gen, err := engine.SaveGuarded(s.cfg.Store, s.cfg.Name, s.cfg.Backend, s.guarded)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, SaveResponse{Generations: []uint64{gen}})
		return
	}
	gens, err := s.sharded.Sharded().SaveAll(s.cfg.Store, s.cfg.Backend)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SaveResponse{Generations: gens})
}

// handleResume restores the latest persisted snapshot into the
// running daemon: the classifier is published as a new generation
// through the guard's hooks, and any admission sidecar saved with it
// is loaded back — held mail stays held, spent probe budget stays
// spent. Sharded fleets resume at startup (engine.ResumeAll), not in
// place: a per-shard hot resume would leave the fleet mixed-epoch
// mid-request, so the endpoint declines.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, "no snapshot store configured")
		return
	}
	if s.sharded != nil {
		writeError(w, http.StatusNotImplemented, "sharded fleets resume at startup, not in place")
		return
	}
	env, err := engine.LatestEnvelope(s.cfg.Store, s.cfg.Name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	clf, err := engine.NewFromEnvelope(env)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	gen, err := s.guarded.Swap(clf)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	loaded, err := engine.LoadAdmissionState(s.cfg.Store, s.cfg.Name, env.Generation, s.guarded)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ResumeResponse{
		SnapshotGeneration: env.Generation,
		Generation:         gen,
		AdmissionLoaded:    loaded,
	})
}

// Stats is the front-end's point-in-time traffic counters.
type Stats struct {
	// Generation is the serving snapshot generation (fleet maximum in
	// sharded mode).
	Generation uint64 `json:"generation"`
	// Classified and Scored count messages answered by the verdict
	// and score endpoints (single and batch).
	Classified uint64 `json:"classified"`
	Scored     uint64 `json:"scored"`
	// LearnQueued counts accepted learn submissions; LearnShed counts
	// submissions refused with 503 while the queue was full.
	LearnQueued uint64 `json:"learnQueued"`
	LearnShed   uint64 `json:"learnShed"`
	// Trained counts examples handed to the guard's retrain (vetting
	// happens there; the engine's admission stats say what survived).
	Trained uint64 `json:"trained"`
	// Publishes and PublishErrors count learn-batch publish attempts.
	Publishes     uint64 `json:"publishes"`
	PublishErrors uint64 `json:"publishErrors"`
	// Flushes counts completed /admin/flush drains.
	Flushes uint64 `json:"flushes"`
	// QueueDepth is the learn queue's current depth.
	QueueDepth int `json:"queueDepth"`
}

// Stats returns the front-end counters.
func (s *Server) Stats() Stats {
	return Stats{
		Generation:    s.generation(),
		Classified:    s.classified.Value(),
		Scored:        s.scored.Value(),
		LearnQueued:   s.learnQueued.Value(),
		LearnShed:     s.learnShed.Value(),
		Trained:       s.trained.Value(),
		Publishes:     s.publishes.Value(),
		PublishErrors: s.publishErrs.Value(),
		Flushes:       s.flushes.Value(),
		QueueDepth:    len(s.learnCh),
	}
}

// statsResponse is the /stats body: front-end counters plus the
// engine's own (verdict histogram, latency, admission tallies).
type statsResponse struct {
	Serve  Stats `json:"serve"`
	Engine any   `json:"engine"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Serve: s.Stats()}
	if s.guarded != nil {
		resp.Engine = s.guarded.Stats()
	} else {
		resp.Engine = s.sharded.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the readiness probe. The daemon's one degraded
// mode is score-only serving — the learn queue saturated and
// submissions shedding — so that is exactly what flips readiness: the
// queue is full right now AND a shed happened within two Retry-After
// windows (a momentary full queue that drained is healthy; a full
// queue still refusing work is not). Scoring works either way; the
// 503 tells a load balancer to route learn traffic elsewhere.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := len(s.learnCh), cap(s.learnCh)
	shed := s.learnShed.Value()
	resp := HealthResponse{
		Status:             "ok",
		Generation:         s.generation(),
		Resumed:            s.cfg.Resumed,
		LearnQueueDepth:    depth,
		LearnQueueCapacity: capacity,
		LearnShed:          shed,
	}
	status := http.StatusOK
	if last := s.lastShed.Load(); depth == capacity && last != 0 &&
		time.Since(time.Unix(0, last)) <= 2*s.cfg.RetryAfter {
		resp.Status = "degraded"
		resp.Reason = "learn queue saturated; serving degraded to score-only"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleMetrics renders the shared registry in Prometheus text
// exposition format. 404 without a registry: the daemon was launched
// without -metrics, and an empty page would read as "up but idle".
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Obs == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Obs.WriteText(w)
}

// handleTrace replays the tracer's ring — the sampled decision
// lifecycles recorded by the engine and admission layers — as NDJSON,
// oldest first. ?n=K bounds the replay to the most recent K events.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Trace == nil {
		http.NotFound(w, r)
		return
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad n: want a non-negative integer")
			return
		}
		n = v
	}
	events := s.cfg.Trace.Last(n)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range events {
		enc.Encode(&events[i])
	}
}

// --- JSON plumbing ---

// maxBodyBytes bounds a single-message request body.
const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
