package core

import (
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/textgen"
)

// DictionaryAttack is the Indiscriminate Causative Availability attack
// of §3.2: every attack email contains an entire word source, so that
// training it as spam raises the spam score of any word future ham
// might use. The attack email has an empty header (the contamination
// assumption allows attackers to control bodies but not headers; §4.1
// implements that restriction exactly this way).
type DictionaryAttack struct {
	lex *lexicon.Lexicon
}

// NewDictionaryAttack builds the attack for a word source:
// lexicon.Aspell for the basic dictionary attack, a lexicon from
// lexicon.UsenetTopK for the refined attack, lexicon.Optimal for the
// simulated optimal attack.
func NewDictionaryAttack(lex *lexicon.Lexicon) *DictionaryAttack {
	return &DictionaryAttack{lex: lex}
}

// NewOptimalAttack builds the §3.4 optimal attack simulation: a
// dictionary attack whose word source is every word in the universe.
func NewOptimalAttack(u *textgen.Universe) *DictionaryAttack {
	return &DictionaryAttack{lex: lexicon.Optimal(u)}
}

// Name identifies the attack by its word source.
func (a *DictionaryAttack) Name() string { return a.lex.Name() }

// Lexicon returns the attack's word source.
func (a *DictionaryAttack) Lexicon() *lexicon.Lexicon { return a.lex }

// Taxonomy: dictionary attacks are Causative Availability
// Indiscriminate.
func (a *DictionaryAttack) Taxonomy() Taxonomy {
	return Taxonomy{Causative, Availability, Indiscriminate}
}

// BuildAttack constructs the attack email: empty header, body
// containing the entire word source. The RNG is unused (the attack is
// deterministic) but kept for interface uniformity.
func (a *DictionaryAttack) BuildAttack(_ *stats.RNG) *mail.Message {
	return &mail.Message{Body: BodyFromWords(a.lex.Words(), 12)}
}

// BuildChunked splits the word source across n distinct attack emails
// instead of repeating the whole dictionary n times. The paper's §4.2
// remarks that "an attack with fewer tokens likely would be harder to
// detect"; chunking is the natural way to shrink per-email token
// volume, but each word then enters only one spam training message
// instead of n, so the poisoning pressure per token drops by a factor
// of n — the trade-off BenchmarkAblationChunkedDictionary and the
// chunked-attack tests quantify. Words are assigned round-robin so
// every chunk spans the whole frequency spectrum.
func (a *DictionaryAttack) BuildChunked(n int) []*mail.Message {
	if n < 1 {
		n = 1
	}
	words := a.lex.Words()
	if n > len(words) {
		n = len(words)
	}
	chunks := make([][]string, n)
	for i, w := range words {
		chunks[i%n] = append(chunks[i%n], w)
	}
	msgs := make([]*mail.Message, n)
	for i, chunk := range chunks {
		msgs[i] = &mail.Message{Body: BodyFromWords(chunk, 12)}
	}
	return msgs
}
