package core

import (
	"math"
	"sort"
	"strings"

	"repro/internal/mail"
	"repro/internal/stats"
)

// Attacker is a Causative attack against the filter's training set.
// BuildAttack constructs the attack email; the experiment harness
// injects AttackSize(fraction, trainSize) copies of it into training,
// labeled spam. (Paper attacks send n identical messages: a
// dictionary attack email is "the entire dictionary", and a focused
// attack fixes one guessed word set. Training n identical copies is
// implemented in one pass by sbayes.LearnWeighted.)
type Attacker interface {
	// Name identifies the attack in experiment tables.
	Name() string
	// Taxonomy places the attack in the §3.1 attack space.
	Taxonomy() Taxonomy
	// BuildAttack constructs the attack email.
	BuildAttack(r *stats.RNG) *mail.Message
}

// ChunkedAttacker is the capability of splitting the attack payload
// across n distinct emails instead of replicating one (the §4.2
// stealth variant implemented by DictionaryAttack.BuildChunked).
// Deployment simulators discover it with a type assertion when their
// configuration asks for a chunked stream.
type ChunkedAttacker interface {
	Attacker
	BuildChunked(n int) []*mail.Message
}

// AttackSize converts an attack fraction into a message count: the
// number of attack messages that makes up `fraction` of the poisoned
// training set of base size trainSize. This matches the paper's
// arithmetic (1% of a 10,000-message inbox = 101 attack emails,
// 2% = 204).
func AttackSize(fraction float64, trainSize int) int {
	if fraction <= 0 || trainSize <= 0 {
		return 0
	}
	if fraction >= 1 {
		panic("core: attack fraction must be below 1")
	}
	return int(fraction/(1-fraction)*float64(trainSize) + 0.5)
}

// BodyFromWords lays words out as an email body, wrapped for
// readability. Word order is preserved; the SpamBayes learner is
// insensitive to it.
func BodyFromWords(words []string, perLine int) string {
	if perLine <= 0 {
		perLine = 12
	}
	var b strings.Builder
	// Most words are short; 8 bytes each is a good initial estimate.
	b.Grow(8 * len(words))
	for i, w := range words {
		switch {
		case i == 0:
		case i%perLine == 0:
			b.WriteByte('\n')
		default:
			b.WriteByte(' ')
		}
		b.WriteString(w)
	}
	if len(words) > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// TargetWords extracts the distinct lowercased body words of a
// message — the vocabulary an attacker with knowledge of the target
// email (§3.3) would reproduce in attack emails. Words shorter than
// three characters are dropped (the tokenizer ignores them anyway).
func TargetWords(m *mail.Message) []string {
	fields := strings.Fields(strings.ToLower(m.Body))
	seen := make(map[string]struct{}, len(fields))
	out := make([]string, 0, len(fields))
	for _, w := range fields {
		if len(w) < 3 {
			continue
		}
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

// ExpectedSpamScore estimates E[I_a(m)] for m ~ p by Monte Carlo: the
// §3.4 objective the optimal attack maximizes. draw samples messages
// as word indicator vectors from p (a word-inclusion probability
// vector over vocabulary), score scores a word set. It is used by
// tests to verify the optimality argument, not by the attacks
// themselves.
func ExpectedSpamScore(r *stats.RNG, p map[string]float64, draws int, score func(words []string) float64) float64 {
	if draws <= 0 {
		return math.NaN()
	}
	total := 0.0
	words := make([]string, 0, len(p))
	keys := make([]string, 0, len(p))
	for w := range p {
		keys = append(keys, w)
	}
	// Deterministic iteration: sort the vocabulary.
	sort.Strings(keys)
	for i := 0; i < draws; i++ {
		words = words[:0]
		for _, w := range keys {
			if r.Bernoulli(p[w]) {
				words = append(words, w)
			}
		}
		total += score(words)
	}
	return total / float64(draws)
}
