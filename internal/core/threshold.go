package core

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/sbayes"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// DynamicThreshold implements the §5.2 defense: instead of the static
// SpamBayes cutoffs θ0 = 0.15, θ1 = 0.9, thresholds are fit to the
// score distribution the (possibly poisoned) filter actually produces
// on held-out training data. Distribution-shifting attacks raise ham
// and spam scores together, and rankings are invariant to such
// shifts, so data-driven cutoffs can keep separating the classes.
//
// Following the paper: the training set is split in half, a filter F
// is trained on one half, each message of the other half V is scored
// by F, and θ0, θ1 are chosen against the utility function
//
//	g(t) = N_{S,<}(t) / (N_{S,<}(t) + N_{H,>}(t))
//
// where N_{S,<}(t) counts spam scoring below t and N_{H,>}(t) ham
// scoring above t: θ0 is set where g ≈ Utility (0.05 or 0.10) and θ1
// where g ≈ 1 − Utility.
type DynamicThreshold struct {
	// Utility is the paper's g-target: 0.05 ("Threshold-.05") or
	// 0.10 ("Threshold-.10").
	Utility float64
}

// Name labels the defense variant as in Figure 5.
func (d DynamicThreshold) Name() string {
	return fmt.Sprintf("threshold-%.2f", d.Utility)
}

// Validate checks the utility target.
func (d DynamicThreshold) Validate() error {
	if d.Utility <= 0 || d.Utility >= 0.5 {
		return fmt.Errorf("core: dynamic threshold utility %v outside (0, 0.5)", d.Utility)
	}
	return nil
}

// FitThresholds chooses (θ0, θ1) from validation scores: hamScores
// and spamScores are filter scores of known-label messages.
//
// The fit follows the paper's utility function with explicit
// conventions for the degenerate 0/0 region between well-separated
// classes (where no spam scores below t and no ham scores above t —
// a perfect separator, so it counts as satisfying either target):
//
//   - θ0 is the largest grid point t whose "spam at or below t"
//     fraction g₀(t) = N_{S,≤}(t)/(N_{S,≤}(t)+N_{H,>}(t)) is at most
//     Utility (0/0 counts as 0). Ham classification (score ≤ θ0)
//     then mislabels at most ≈Utility-worth of spam.
//   - θ1 is the smallest grid point t ≥ θ0 whose strict fraction
//     g₁(t) = N_{S,<}(t)/(N_{S,<}(t)+N_{H,>}(t)) is at least
//     1 − Utility (0/0 counts as 1). Spam classification (score >
//     θ1) then mislabels at most ≈Utility-worth of ham.
//
// A smaller Utility therefore pushes θ0 down and θ1 up — the paper's
// observation that Threshold-.05 has a wider unsure range than
// Threshold-.10.
func (d DynamicThreshold) FitThresholds(hamScores, spamScores []float64) (theta0, theta1 float64, err error) {
	if err := d.Validate(); err != nil {
		return 0, 0, err
	}
	if len(hamScores) == 0 || len(spamScores) == 0 {
		return 0, 0, fmt.Errorf("core: FitThresholds needs scores from both classes (%d ham, %d spam)",
			len(hamScores), len(spamScores))
	}
	ham := append([]float64(nil), hamScores...)
	spam := append([]float64(nil), spamScores...)
	sort.Float64s(ham)
	sort.Float64s(spam)

	// counts at threshold t.
	spamAtOrBelow := func(t float64) int {
		return sort.Search(len(spam), func(i int) bool { return spam[i] > t })
	}
	spamBelow := func(t float64) int {
		return sort.Search(len(spam), func(i int) bool { return spam[i] >= t })
	}
	hamAbove := func(t float64) int {
		return len(ham) - sort.Search(len(ham), func(i int) bool { return ham[i] > t })
	}

	// Candidate thresholds: every observed score plus the midpoints
	// between adjacent distinct scores, and the [0, 1] endpoints.
	// Post-attack score distributions concentrate near 1.0, so a
	// uniform grid would be far too coarse exactly where the cutoffs
	// must fall; score-derived candidates give exact resolution.
	merged := make([]float64, 0, len(ham)+len(spam)+2)
	merged = append(merged, 0)
	merged = append(merged, ham...)
	merged = append(merged, spam...)
	merged = append(merged, 1)
	sort.Float64s(merged)
	cands := make([]float64, 1, 2*len(merged))
	cands[0] = merged[0]
	for i := 1; i < len(merged); i++ {
		if merged[i] == merged[i-1] {
			continue
		}
		cands = append(cands, (merged[i]+merged[i-1])/2, merged[i])
	}

	theta0 = 0
	for i := len(cands) - 1; i >= 0; i-- {
		t := cands[i]
		ns, nh := spamAtOrBelow(t), hamAbove(t)
		var g0 float64
		if ns+nh > 0 {
			g0 = float64(ns) / float64(ns+nh)
		}
		if g0 <= d.Utility {
			theta0 = t
			break
		}
	}
	theta1 = 1.0
	for _, t := range cands {
		if t < theta0 {
			continue
		}
		ns, nh := spamBelow(t), hamAbove(t)
		g1 := 1.0
		if ns+nh > 0 {
			g1 = float64(ns) / float64(ns+nh)
		}
		if g1 >= 1-d.Utility {
			theta1 = t
			break
		}
	}
	if theta1 < theta0 {
		theta1 = theta0
	}
	return clamp01(theta0), clamp01(theta1), nil
}

// Train builds a defended filter from a training corpus: it fits
// thresholds via the half-split procedure, then trains the returned
// filter on the full training set with the fitted cutoffs installed.
func (d DynamicThreshold) Train(train *corpus.Corpus, opts sbayes.Options, tok *tokenize.Tokenizer, r *stats.RNG) (*sbayes.Filter, float64, float64, error) {
	if err := d.Validate(); err != nil {
		return nil, 0, 0, err
	}
	shuffled := train.Clone()
	shuffled.Shuffle(r)
	half, val, err := shuffled.SplitFraction(0.5)
	if err != nil {
		return nil, 0, 0, err
	}
	probe := sbayes.New(opts, tok)
	for _, e := range half.Examples {
		probe.Learn(e.Msg, e.Spam)
	}
	var hamScores, spamScores []float64
	for _, e := range val.Examples {
		s := probe.Score(e.Msg)
		if e.Spam {
			spamScores = append(spamScores, s)
		} else {
			hamScores = append(hamScores, s)
		}
	}
	t0, t1, err := d.FitThresholds(hamScores, spamScores)
	if err != nil {
		return nil, 0, 0, err
	}
	final := sbayes.New(opts, tok)
	for _, e := range train.Examples {
		final.Learn(e.Msg, e.Spam)
	}
	if err := final.SetThresholds(t0, t1); err != nil {
		return nil, 0, 0, err
	}
	return final, t0, t1, nil
}

// Refit fits (θ0, θ1) to the score distribution a replacement
// classifier produces on a calibration corpus and installs them
// through the engine.ThresholdSetter capability — the swap-time
// rendition of the defense: where Train runs the half-split procedure
// as an offline batch step, Refit is called by a publish hook on every
// new snapshot just before it goes live, so the serving cutoffs track
// the live (possibly attack-shifted) score distribution generation by
// generation. The calibration corpus is typically the most recent
// admitted mail.
func (d DynamicThreshold) Refit(clf engine.Classifier, calib *corpus.Corpus) (theta0, theta1 float64, err error) {
	ts, ok := clf.(engine.ThresholdSetter)
	if !ok {
		return 0, 0, fmt.Errorf("core: %T cannot set thresholds", clf)
	}
	var hamScores, spamScores []float64
	for _, e := range calib.Examples {
		s := clf.Score(e.Msg)
		if e.Spam {
			spamScores = append(spamScores, s)
		} else {
			hamScores = append(hamScores, s)
		}
	}
	theta0, theta1, err = d.FitThresholds(hamScores, spamScores)
	if err != nil {
		return 0, 0, err
	}
	if err := ts.SetThresholds(theta0, theta1); err != nil {
		return 0, 0, err
	}
	return theta0, theta1, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
