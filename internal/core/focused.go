package core

import (
	"fmt"

	"repro/internal/mail"
	"repro/internal/stats"
)

// FocusedAttack is the Targeted Causative Availability attack of
// §3.3: the attacker knows (part of) a specific legitimate email the
// victim is about to receive and sends attack emails containing the
// words it expects that email to contain, so the trained filter
// blocks it.
//
// Knowledge is modeled exactly as in the paper's experiments: the
// attacker guesses each distinct word of the target email
// independently with probability GuessProb; guessed words form the
// attack email body. The guess is drawn once per attack instance —
// Figure 4's "tokens included in the attack" is this fixed set. The
// attack email's header is copied from a randomly chosen known spam
// message (§4.1's limited-header-control assumption).
type FocusedAttack struct {
	target     *mail.Message
	guessProb  float64
	headerPool []*mail.Message
}

// NewFocusedAttack builds the attack. headerPool supplies existing
// spam messages whose headers attack emails may reuse; it may be
// empty, in which case attack emails carry an empty header.
func NewFocusedAttack(target *mail.Message, guessProb float64, headerPool []*mail.Message) (*FocusedAttack, error) {
	if target == nil {
		return nil, fmt.Errorf("core: focused attack needs a target")
	}
	if guessProb < 0 || guessProb > 1 {
		return nil, fmt.Errorf("core: guess probability %v outside [0,1]", guessProb)
	}
	return &FocusedAttack{target: target, guessProb: guessProb, headerPool: headerPool}, nil
}

// Name identifies the attack and its knowledge level.
func (a *FocusedAttack) Name() string {
	return fmt.Sprintf("focused-p%.2f", a.guessProb)
}

// Target returns the email under attack.
func (a *FocusedAttack) Target() *mail.Message { return a.target }

// GuessProb returns the per-word guess probability.
func (a *FocusedAttack) GuessProb() float64 { return a.guessProb }

// Taxonomy: the focused attack is Causative Availability Targeted.
func (a *FocusedAttack) Taxonomy() Taxonomy {
	return Taxonomy{Causative, Availability, Targeted}
}

// GuessWords draws one realization of the attacker's knowledge: each
// distinct target body word independently with probability GuessProb.
func (a *FocusedAttack) GuessWords(r *stats.RNG) []string {
	words := TargetWords(a.target)
	out := words[:0:len(words)]
	for _, w := range words {
		if r.Bernoulli(a.guessProb) {
			out = append(out, w)
		}
	}
	return out
}

// BuildAttack constructs the attack email from one knowledge
// realization, with a header copied from a random pool spam.
func (a *FocusedAttack) BuildAttack(r *stats.RNG) *mail.Message {
	m := &mail.Message{Body: BodyFromWords(a.GuessWords(r), 12)}
	if len(a.headerPool) > 0 {
		m.Header = a.headerPool[r.Intn(len(a.headerPool))].Header.Clone()
	}
	return m
}
