package core

import (
	"fmt"

	"repro/internal/mail"
	"repro/internal/stats"
)

// FeedbackAttacker is the capability of adapting attack volume to
// observed feedback — the ROADMAP's "attacker that adapts its dose to
// observed bounce/verdict feedback". A real attacker sees bounces,
// delivery receipts, or probe accounts; the simulator reports how the
// previous chunk of poison fared and the attacker scales the next
// chunk's dose accordingly.
type FeedbackAttacker interface {
	Attacker
	// ObserveFeedback reports the previous chunk's fate: sent poison
	// messages and how many of them the training pipeline accepted
	// (sent minus rejected and quarantined). Zero sent means no
	// feedback (pre-attack weeks) and must leave the dose unchanged.
	ObserveFeedback(sent, accepted int)
	// Dose returns the attack fraction for the next chunk given the
	// campaign's base fraction.
	Dose(base float64) float64
}

// AdaptiveConfig tunes the dose controller.
type AdaptiveConfig struct {
	// HighWater is the accept rate at or above which the attacker grows
	// its dose — the pipeline is swallowing the poison, so press harder
	// (default 0.75).
	HighWater float64
	// LowWater is the accept rate at or below which the attacker backs
	// off — the pipeline is bouncing the poison, so go quiet and stop
	// wasting messages that only feed the defender's statistics
	// (default 0.25).
	LowWater float64
	// Grow multiplies the dose after a high-acceptance chunk (default 2).
	Grow float64
	// Shrink multiplies the dose after a high-rejection chunk (default 0.5).
	Shrink float64
	// MaxBoost and MinBoost clamp the cumulative multiplier (defaults 4
	// and 1/8).
	MaxBoost float64
	MinBoost float64
}

// DefaultAdaptiveConfig returns the standard controller: double on
// success, halve on rejection, within [1/8, 4] of the base dose.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		HighWater: 0.75,
		LowWater:  0.25,
		Grow:      2,
		Shrink:    0.5,
		MaxBoost:  4,
		MinBoost:  0.125,
	}
}

// Validate checks the controller parameters.
func (c AdaptiveConfig) Validate() error {
	switch {
	case c.HighWater <= 0 || c.HighWater > 1:
		return fmt.Errorf("core: adaptive HighWater %v", c.HighWater)
	case c.LowWater < 0 || c.LowWater >= c.HighWater:
		return fmt.Errorf("core: adaptive LowWater %v against HighWater %v", c.LowWater, c.HighWater)
	case c.Grow < 1:
		return fmt.Errorf("core: adaptive Grow %v", c.Grow)
	case c.Shrink <= 0 || c.Shrink > 1:
		return fmt.Errorf("core: adaptive Shrink %v", c.Shrink)
	case c.MinBoost <= 0 || c.MaxBoost < 1 || c.MinBoost > 1:
		return fmt.Errorf("core: adaptive boost bounds (%v, %v)", c.MinBoost, c.MaxBoost)
	}
	return nil
}

// AdaptiveAttacker wraps any Attacker with the dose controller: the
// payload construction is the inner attack's, but the volume of each
// chunk is the base fraction scaled by a multiplier that doubles while
// the pipeline accepts the poison and halves while it bounces it. It
// is deliberately simple — multiplicative increase/decrease off one
// observable — because that is what an attacker with only bounce
// feedback can actually run.
type AdaptiveAttacker struct {
	inner Attacker
	cfg   AdaptiveConfig
	boost float64
}

// NewAdaptiveAttacker wraps inner with a dose controller.
func NewAdaptiveAttacker(inner Attacker, cfg AdaptiveConfig) (*AdaptiveAttacker, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: adaptive attacker needs an inner attack")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &AdaptiveAttacker{inner: inner, cfg: cfg, boost: 1}, nil
}

// Name identifies the wrapped attack and the controller.
func (a *AdaptiveAttacker) Name() string { return "adaptive(" + a.inner.Name() + ")" }

// Inner returns the wrapped attack.
func (a *AdaptiveAttacker) Inner() Attacker { return a.inner }

// Taxonomy is the wrapped attack's (adapting the dose changes volume,
// not the attack's place in the §3.1 space).
func (a *AdaptiveAttacker) Taxonomy() Taxonomy { return a.inner.Taxonomy() }

// BuildAttack constructs the wrapped attack's payload.
func (a *AdaptiveAttacker) BuildAttack(r *stats.RNG) *mail.Message { return a.inner.BuildAttack(r) }

// Boost returns the current cumulative dose multiplier.
func (a *AdaptiveAttacker) Boost() float64 { return a.boost }

// ObserveFeedback updates the multiplier from the previous chunk's
// accept rate: multiplicative increase at/above HighWater, decrease
// at/below LowWater, hold in between. sent == 0 is no feedback.
func (a *AdaptiveAttacker) ObserveFeedback(sent, accepted int) {
	if sent <= 0 {
		return
	}
	rate := float64(accepted) / float64(sent)
	switch {
	case rate >= a.cfg.HighWater:
		a.boost *= a.cfg.Grow
		if a.boost > a.cfg.MaxBoost {
			a.boost = a.cfg.MaxBoost
		}
	case rate <= a.cfg.LowWater:
		a.boost *= a.cfg.Shrink
		if a.boost < a.cfg.MinBoost {
			a.boost = a.cfg.MinBoost
		}
	}
}

// Dose returns the next chunk's attack fraction: the base scaled by
// the learned multiplier, clamped below 1 (AttackSize's domain).
func (a *AdaptiveAttacker) Dose(base float64) float64 {
	dose := base * a.boost
	if dose >= 1 {
		dose = 0.99
	}
	return dose
}
