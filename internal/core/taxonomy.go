// Package core implements the paper's primary contribution: Causative
// Availability attacks against the SpamBayes learner (the dictionary
// attack family of §3.2 and the focused attack of §3.3) and the two
// defenses of §5 (Reject On Negative Impact and dynamic thresholds).
//
// Attacks produce attack emails that the victim trains as spam (the
// contamination assumption, §2.2): attackers control email bodies but
// not headers — dictionary attacks carry an empty header, the focused
// attack copies the header of a random existing spam — and attack
// messages are always labeled spam.
package core

import "fmt"

// Influence is the first axis of the attack taxonomy (§3.1): whether
// the attacker can manipulate training data or only probe a fixed
// classifier.
type Influence int8

const (
	// Causative attacks influence the training data.
	Causative Influence = iota
	// Exploratory attacks only observe classifications.
	Exploratory
)

// String returns the axis value's name.
func (i Influence) String() string {
	switch i {
	case Causative:
		return "Causative"
	case Exploratory:
		return "Exploratory"
	default:
		return fmt.Sprintf("Influence(%d)", int(i))
	}
}

// Violation is the second axis: the kind of security failure caused.
type Violation int8

const (
	// Integrity violations create false negatives (spam gets through).
	Integrity Violation = iota
	// Availability violations create false positives (ham is lost).
	Availability
)

// String returns the axis value's name.
func (v Violation) String() string {
	switch v {
	case Integrity:
		return "Integrity"
	case Availability:
		return "Availability"
	default:
		return fmt.Sprintf("Violation(%d)", int(v))
	}
}

// Specificity is the third axis: how focused the attacker's goal is.
type Specificity int8

const (
	// Targeted attacks degrade the classifier on one kind of email.
	Targeted Specificity = iota
	// Indiscriminate attacks degrade it broadly.
	Indiscriminate
)

// String returns the axis value's name.
func (s Specificity) String() string {
	switch s {
	case Targeted:
		return "Targeted"
	case Indiscriminate:
		return "Indiscriminate"
	default:
		return fmt.Sprintf("Specificity(%d)", int(s))
	}
}

// Taxonomy places an attack in the three-axis space of Barreno et
// al. [1], as summarized in §3.1 of the paper.
type Taxonomy struct {
	Influence   Influence
	Violation   Violation
	Specificity Specificity
}

// String renders the taxonomy as "Causative Availability Targeted".
func (t Taxonomy) String() string {
	return t.Influence.String() + " " + t.Violation.String() + " " + t.Specificity.String()
}
