package core

import (
	"testing"

	"repro/internal/lexicon"
	"repro/internal/sbayes"
	"repro/internal/stats"
)

func TestRONIConfigValidate(t *testing.T) {
	if err := DefaultRONIConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*RONIConfig){
		func(c *RONIConfig) { c.TrainSize = 1 },
		func(c *RONIConfig) { c.ValSize = 0 },
		func(c *RONIConfig) { c.Trials = 0 },
		func(c *RONIConfig) { c.SpamPrevalence = 1.5 },
		func(c *RONIConfig) { c.Threshold = -1 },
	}
	for i, mutate := range bad {
		c := DefaultRONIConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestRONISeparatesDictionaryAttack(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(11)
	pool := g.Corpus(r, 400, 400)
	d, err := NewRONI(DefaultRONIConfig(), pool, sbayes.DefaultOptions(), nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Config().TrainSize != 20 {
		t.Error("config not retained")
	}

	attack := NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	attackMsg := attack.BuildAttack(r)
	attackImpact := d.MeasureImpact(attackMsg, true)

	// Non-attack spam: fresh messages from the generator.
	worstSpam := 0.0
	for i := 0; i < 20; i++ {
		imp := d.MeasureImpact(g.SpamMessage(r), true)
		if imp.HamAsHamDelta < worstSpam {
			worstSpam = imp.HamAsHamDelta
		}
	}
	if attackImpact.HamAsHamDelta >= worstSpam {
		t.Errorf("attack impact %v not below worst non-attack %v",
			attackImpact.HamAsHamDelta, worstSpam)
	}
	if !d.ShouldReject(attackMsg, true) {
		t.Errorf("RONI did not reject the dictionary attack email (impact %+v)", attackImpact)
	}
}

func TestRONIAcceptsNormalMail(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(12)
	pool := g.Corpus(r, 400, 400)
	d, err := NewRONI(DefaultRONIConfig(), pool, sbayes.DefaultOptions(), nil, r)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	const n = 30
	for i := 0; i < n; i++ {
		if d.ShouldReject(g.SpamMessage(r), true) {
			rejected++
		}
		if d.ShouldReject(g.HamMessage(r), false) {
			rejected++
		}
	}
	if rejected > n/5 {
		t.Errorf("RONI rejected %d of %d normal messages", rejected, 2*n)
	}
}

func TestRONIMeasureImpactLeavesStateUnchanged(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(13)
	pool := g.Corpus(r, 200, 200)
	d, err := NewRONI(DefaultRONIConfig(), pool, sbayes.DefaultOptions(), nil, r)
	if err != nil {
		t.Fatal(err)
	}
	q := g.SpamMessage(r)
	first := d.MeasureImpact(q, true)
	for i := 0; i < 3; i++ {
		if got := d.MeasureImpact(q, true); got != first {
			t.Fatalf("impact drifted: %+v vs %+v", got, first)
		}
	}
}

func TestRONIFilterCorpus(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(14)
	pool := g.Corpus(r, 300, 300)
	d, err := NewRONI(DefaultRONIConfig(), pool, sbayes.DefaultOptions(), nil, r)
	if err != nil {
		t.Fatal(err)
	}
	candidates := g.Corpus(r, 10, 10)
	attack := NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	candidates.Add(attack.BuildAttack(r), true)
	kept, rejected := d.FilterCorpus(candidates)
	if kept.Len()+rejected.Len() != candidates.Len() {
		t.Error("FilterCorpus lost messages")
	}
	if rejected.Len() == 0 {
		t.Error("attack message not rejected")
	}
	// The attack email (huge body) must be among the rejected.
	foundAttack := false
	for _, e := range rejected.Examples {
		if len(e.Msg.Body) > 10000 {
			foundAttack = true
		}
	}
	if !foundAttack {
		t.Error("rejected set does not contain the attack email")
	}
}

func TestRONIPoolTooSmall(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(15)
	pool := g.Corpus(r, 5, 5)
	if _, err := NewRONI(DefaultRONIConfig(), pool, sbayes.DefaultOptions(), nil, r); err == nil {
		t.Error("tiny pool accepted")
	}
}

func TestDynamicThresholdValidate(t *testing.T) {
	if err := (DynamicThreshold{Utility: 0.05}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.5, -0.1, 0.9} {
		if err := (DynamicThreshold{Utility: u}).Validate(); err == nil {
			t.Errorf("utility %v validated", u)
		}
	}
	if got := (DynamicThreshold{Utility: 0.05}).Name(); got != "threshold-0.05" {
		t.Errorf("Name = %q", got)
	}
}

func TestFitThresholdsSeparatedScores(t *testing.T) {
	d := DynamicThreshold{Utility: 0.05}
	ham := []float64{0.01, 0.02, 0.05, 0.08, 0.1, 0.12, 0.15, 0.2, 0.22, 0.3}
	spam := []float64{0.7, 0.75, 0.8, 0.85, 0.9, 0.92, 0.95, 0.97, 0.99, 1.0}
	t0, t1, err := d.FitThresholds(ham, spam)
	if err != nil {
		t.Fatal(err)
	}
	if t0 < 0 || t1 > 1 || t0 > t1 {
		t.Fatalf("thresholds (%v, %v) invalid", t0, t1)
	}
	// With perfectly separated scores the cutoffs should land between
	// the classes or at their edges.
	if t0 > 0.7 {
		t.Errorf("θ0 = %v too high", t0)
	}
	if t1 < 0.3 {
		t.Errorf("θ1 = %v too low", t1)
	}
}

func TestFitThresholdsShiftedScores(t *testing.T) {
	// The defense's motivating case: an attack shifts every score up
	// but preserves ranking; fitted thresholds must follow the shift.
	d := DynamicThreshold{Utility: 0.10}
	ham := []float64{0.45, 0.5, 0.52, 0.55, 0.58, 0.6, 0.62, 0.65}
	spam := []float64{0.9, 0.92, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99}
	t0, t1, err := d.FitThresholds(ham, spam)
	if err != nil {
		t.Fatal(err)
	}
	if t0 <= 0.15 {
		t.Errorf("θ0 = %v did not adapt upward", t0)
	}
	if t1 < t0 {
		t.Errorf("θ1 = %v < θ0 = %v", t1, t0)
	}
	// The fitted cutoffs must classify the shifted scores correctly:
	// all ham at or below θ0, all spam above θ1.
	for _, s := range ham {
		if s > t0 {
			t.Errorf("ham score %v above fitted θ0 = %v", s, t0)
		}
	}
	for _, s := range spam {
		if s <= t1 {
			t.Errorf("spam score %v not above fitted θ1 = %v", s, t1)
		}
	}
}

func TestFitThresholdsErrors(t *testing.T) {
	d := DynamicThreshold{Utility: 0.05}
	if _, _, err := d.FitThresholds(nil, []float64{0.9}); err == nil {
		t.Error("missing ham scores accepted")
	}
	if _, _, err := d.FitThresholds([]float64{0.1}, nil); err == nil {
		t.Error("missing spam scores accepted")
	}
	bad := DynamicThreshold{Utility: 0.7}
	if _, _, err := bad.FitThresholds([]float64{0.1}, []float64{0.9}); err == nil {
		t.Error("invalid utility accepted")
	}
}

func TestDynamicThresholdTrainDefendsAgainstDictionary(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(16)
	train := g.Corpus(r, 400, 400)

	// Poison the training set with a dictionary attack.
	attack := NewDictionaryAttack(lexicon.Aspell(g.Universe()))
	nAttack := AttackSize(0.05, train.Len())
	attackMsg := attack.BuildAttack(r)
	poisoned := train.Clone()
	for i := 0; i < nAttack; i++ {
		poisoned.Add(attackMsg, true)
	}
	poisoned.Shuffle(r)

	probes := make([]*sbayes.Filter, 0)
	_ = probes

	// Undefended filter.
	plain := sbayes.NewDefault()
	for _, e := range poisoned.Examples {
		plain.Learn(e.Msg, e.Spam)
	}
	// Defended filter.
	def := DynamicThreshold{Utility: 0.10}
	defended, t0, t1, err := def.Train(poisoned, sbayes.DefaultOptions(), nil, r)
	if err != nil {
		t.Fatal(err)
	}
	if t0 <= sbayes.DefaultOptions().HamCutoff {
		t.Logf("fitted θ0 = %v (≤ static 0.15)", t0)
	}
	if t1 < t0 {
		t.Fatalf("fitted thresholds inverted: %v > %v", t0, t1)
	}

	hams := make([]int, 2)
	const nProbe = 60
	for i := 0; i < nProbe; i++ {
		m := g.HamMessage(r)
		if l, _ := plain.Classify(m); l == sbayes.Spam {
			hams[0]++
		}
		if l, _ := defended.Classify(m); l == sbayes.Spam {
			hams[1]++
		}
	}
	if hams[1] >= hams[0] && hams[0] > 0 {
		t.Errorf("defense did not reduce ham-as-spam: %d vs %d", hams[1], hams[0])
	}
	// The paper's observation: with dynamic thresholds ham is almost
	// never classified as spam.
	if hams[1] > nProbe/10 {
		t.Errorf("defended filter still calls %d/%d ham spam", hams[1], nProbe)
	}
}

func TestDynamicThresholdTrainErrors(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(17)
	bad := DynamicThreshold{Utility: 0}
	if _, _, _, err := bad.Train(g.Corpus(r, 10, 10), sbayes.DefaultOptions(), nil, r); err == nil {
		t.Error("invalid utility accepted by Train")
	}
}
