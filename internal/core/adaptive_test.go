package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/textgen"

	// Register the stock backends for the refit conformance loop.
	_ "repro/internal/graham"
	_ "repro/internal/sbayes"
)

func adaptiveFixture(t *testing.T) *AdaptiveAttacker {
	t.Helper()
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords: 40, StandardWords: 200, FormalWords: 60,
		ColloquialWords: 60, SpamWords: 40, PersonalWords: 100,
	})
	a, err := NewAdaptiveAttacker(NewDictionaryAttack(lexicon.Optimal(u)), DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdaptiveAttackerDoseController(t *testing.T) {
	a := adaptiveFixture(t)
	base := 0.02
	if got := a.Dose(base); got != base {
		t.Fatalf("initial dose %v, want the base %v", got, base)
	}
	// High acceptance doubles, clamped at MaxBoost.
	for i := 0; i < 5; i++ {
		a.ObserveFeedback(100, 100)
	}
	if got := a.Dose(base); got != base*4 {
		t.Errorf("after sustained acceptance dose %v, want base*MaxBoost %v", got, base*4)
	}
	// High rejection halves, clamped at MinBoost.
	for i := 0; i < 10; i++ {
		a.ObserveFeedback(100, 0)
	}
	if got := a.Dose(base); got != base*0.125 {
		t.Errorf("after sustained rejection dose %v, want base*MinBoost %v", got, base*0.125)
	}
	// Mid-band acceptance holds the dose, and zero sent is no feedback.
	before := a.Boost()
	a.ObserveFeedback(100, 50)
	a.ObserveFeedback(0, 0)
	if a.Boost() != before {
		t.Errorf("mid-band/no-op feedback moved the boost %v -> %v", before, a.Boost())
	}
	// The dose never reaches AttackSize's forbidden 1.0.
	for i := 0; i < 10; i++ {
		a.ObserveFeedback(10, 10)
	}
	if got := a.Dose(0.5); got >= 1 {
		t.Errorf("dose %v reached 1", got)
	}
}

func TestAdaptiveAttackerDelegates(t *testing.T) {
	a := adaptiveFixture(t)
	if a.Name() != "adaptive("+a.Inner().Name()+")" {
		t.Errorf("name %q", a.Name())
	}
	if a.Taxonomy() != a.Inner().Taxonomy() {
		t.Errorf("taxonomy %v differs from inner %v", a.Taxonomy(), a.Inner().Taxonomy())
	}
	if m := a.BuildAttack(stats.NewRNG(1)); m == nil || m.Body == "" {
		t.Error("BuildAttack did not delegate")
	}
	// The capability is what the scenario's validation checks for.
	var _ FeedbackAttacker = a
}

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*AdaptiveConfig){
		func(c *AdaptiveConfig) { c.HighWater = 0 },
		func(c *AdaptiveConfig) { c.LowWater = c.HighWater },
		func(c *AdaptiveConfig) { c.Grow = 0.5 },
		func(c *AdaptiveConfig) { c.Shrink = 0 },
		func(c *AdaptiveConfig) { c.MinBoost = 0 },
		func(c *AdaptiveConfig) { c.MaxBoost = 0.5 },
	}
	for i, mutate := range bad {
		c := DefaultAdaptiveConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	if _, err := NewAdaptiveAttacker(nil, DefaultAdaptiveConfig()); err == nil {
		t.Error("nil inner attack accepted")
	}
}

func TestDynamicThresholdRefit(t *testing.T) {
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords: 40, StandardWords: 200, FormalWords: 60,
		ColloquialWords: 60, SpamWords: 40, PersonalWords: 100,
	})
	g := textgen.MustNew(u, textgen.DefaultConfig())
	train := g.Corpus(stats.NewRNG(1), 150, 150)
	calib := g.Corpus(stats.NewRNG(2), 50, 50)

	d := DynamicThreshold{Utility: 0.10}
	for _, backend := range []string{"sbayes", "graham"} {
		t.Run(backend, func(t *testing.T) {
			b, err := engine.Lookup(backend)
			if err != nil {
				t.Fatal(err)
			}
			clf := b.New()
			for _, e := range train.Examples {
				clf.Learn(e.Msg, e.Spam)
			}
			t0, t1, err := d.Refit(clf, calib)
			if err != nil {
				t.Fatal(err)
			}
			if t0 < 0 || t1 > 1 || t0 > t1 {
				t.Errorf("refit thresholds (%v, %v) malformed", t0, t1)
			}
			// The calibration classes separate, so the refit cutoffs keep
			// separating them.
			conf := 0
			for _, e := range calib.Examples {
				label, _ := clf.Classify(e.Msg)
				if (e.Spam && label.String() == "spam") || (!e.Spam && label.String() == "ham") {
					conf++
				}
			}
			if rate := float64(conf) / float64(calib.Len()); rate < 0.8 {
				t.Errorf("post-refit accuracy %v on the calibration set", rate)
			}
		})
	}
	// A classifier without the ThresholdSetter capability is refused.
	if _, _, err := d.Refit(noThresholds{}, calib); err == nil {
		t.Error("refit accepted a classifier with no threshold setter")
	}
}

// noThresholds is a Classifier without the ThresholdSetter capability.
type noThresholds struct{}

func (noThresholds) Learn(*mail.Message, bool)                      {}
func (noThresholds) LearnWeighted(*mail.Message, bool, int)         {}
func (noThresholds) Unlearn(*mail.Message, bool) error              { return nil }
func (noThresholds) Classify(*mail.Message) (engine.Label, float64) { return engine.Ham, 0 }
func (noThresholds) Score(*mail.Message) float64                    { return 0 }
func (noThresholds) Counts() (int, int)                             { return 0, 0 }
