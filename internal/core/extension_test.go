package core

import (
	"strings"
	"testing"

	"repro/internal/mail"
	"repro/internal/sbayes"
	"repro/internal/stats"
)

func TestInformedAttackValidation(t *testing.T) {
	if _, err := NewInformedAttack(nil, 10); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewInformedAttack([]*mail.Message{{Body: "abc def\n"}}, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestInformedAttackPicksFrequentWords(t *testing.T) {
	sample := []*mail.Message{
		{Body: "common rare1\n"},
		{Body: "common middle\n"},
		{Body: "common middle rare2\n"},
	}
	a, err := NewInformedAttack(sample, 2)
	if err != nil {
		t.Fatal(err)
	}
	words := a.Words()
	if len(words) != 2 || words[0] != "common" || words[1] != "middle" {
		t.Errorf("words = %v", words)
	}
	if a.Budget() != 2 {
		t.Errorf("budget = %d", a.Budget())
	}
	if !strings.Contains(a.Name(), "informed") {
		t.Errorf("name = %q", a.Name())
	}
	if a.Taxonomy() != (Taxonomy{Causative, Availability, Indiscriminate}) {
		t.Errorf("taxonomy = %v", a.Taxonomy())
	}
}

func TestInformedAttackBudgetClamped(t *testing.T) {
	a, err := NewInformedAttack([]*mail.Message{{Body: "one two three\n"}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Budget() != 3 {
		t.Errorf("clamped budget = %d, want 3", a.Budget())
	}
}

func TestInformedAttackDeterministicTieBreak(t *testing.T) {
	sample := []*mail.Message{{Body: "zzz aaa mmm\n"}}
	a, _ := NewInformedAttack(sample, 2)
	b, _ := NewInformedAttack(sample, 2)
	if a.Words()[0] != "aaa" || b.Words()[0] != "aaa" {
		t.Errorf("tie break not alphabetical: %v", a.Words())
	}
}

func TestInformedAttackCoverage(t *testing.T) {
	sample := []*mail.Message{{Body: "alpha beta gamma\n"}, {Body: "alpha beta\n"}}
	a, _ := NewInformedAttack(sample, 2) // alpha, beta
	held := []*mail.Message{{Body: "alpha delta\n"}}
	if got := a.Coverage(held); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	if got := a.Coverage(nil); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
}

func TestInformedBeatsRandomAtEqualBudget(t *testing.T) {
	// The §1 claim: an informed attacker needs a smaller dictionary.
	// At the same budget, the informed attack must poison more ham
	// than a random dictionary subset.
	g := testGenerator(t)
	r := stats.NewRNG(31)
	train := g.Corpus(r, 300, 300)
	base := sbayes.NewDefault()
	for _, e := range train.Examples {
		base.Learn(e.Msg, e.Spam)
	}
	// Attacker knowledge: a sample of ham from the same distribution
	// (not the training set itself).
	sample := make([]*mail.Message, 150)
	for i := range sample {
		sample[i] = g.HamMessage(r)
	}
	const budget = 600
	informed, err := NewInformedAttack(sample, budget)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Universe()
	randomWords := make([]string, budget)
	idx := r.Sample(u.Size(), budget)
	for i, j := range idx {
		randomWords[i] = u.All()[j]
	}

	probes := make([]*mail.Message, 60)
	for i := range probes {
		probes[i] = g.HamMessage(r)
	}
	// Mean poisoned score is a more sensitive damage measure than
	// verdict flips at this scale.
	damage := func(words []string) float64 {
		f := base.Clone()
		f.LearnTokens(words, true, 30)
		total := 0.0
		for _, m := range probes {
			total += f.Score(m)
		}
		return total / float64(len(probes))
	}
	di := damage(informed.Words())
	dr := damage(randomWords)
	if di <= dr {
		t.Errorf("informed damage %v not above random damage %v at budget %d", di, dr, budget)
	}
}

func TestPseudospamValidation(t *testing.T) {
	if _, err := NewPseudospamAttack(nil, nil); err == nil {
		t.Error("empty future spam accepted")
	}
}

func TestPseudospamAttackEmail(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(33)
	future := []*mail.Message{g.SpamMessage(r), g.SpamMessage(r)}
	hamPool := []*mail.Message{g.HamMessage(r)}
	a, err := NewPseudospamAttack(future, hamPool)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "pseudospam" {
		t.Errorf("name = %q", a.Name())
	}
	if a.Taxonomy() != (Taxonomy{Causative, Integrity, Targeted}) {
		t.Errorf("taxonomy = %v", a.Taxonomy())
	}
	if len(a.FutureSpam()) != 2 {
		t.Error("future spam not retained")
	}
	msg := a.BuildAttack(r)
	// Header borrowed from the ham pool.
	if msg.Header.Get("Message-Id") != hamPool[0].Header.Get("Message-Id") {
		t.Error("attack header not from ham pool")
	}
	// Body covers the future spam vocabulary.
	bodyWords := map[string]bool{}
	for _, w := range strings.Fields(msg.Body) {
		bodyWords[w] = true
	}
	for _, m := range future {
		for _, w := range TargetWords(m) {
			if !bodyWords[w] {
				t.Fatalf("future spam word %q missing from attack body", w)
			}
		}
	}
}

func TestPseudospamDeliversFutureSpam(t *testing.T) {
	// End to end: train clean, poison with ham-labeled attack
	// emails, and the attacker's spam reaches the inbox.
	g := testGenerator(t)
	r := stats.NewRNG(35)
	train := g.Corpus(r, 300, 300)
	f := sbayes.NewDefault()
	for _, e := range train.Examples {
		f.Learn(e.Msg, e.Spam)
	}
	future := make([]*mail.Message, 10)
	for i := range future {
		future[i] = g.SpamMessage(r)
	}
	blockedBefore := 0
	for _, m := range future {
		if l, _ := f.Classify(m); l == sbayes.Spam {
			blockedBefore++
		}
	}
	if blockedBefore < 8 {
		t.Fatalf("baseline filter only blocks %d/10 future spam", blockedBefore)
	}
	attack, err := NewPseudospamAttack(future, train.Ham())
	if err != nil {
		t.Fatal(err)
	}
	f.LearnWeighted(attack.BuildAttack(r), false, 60) // trained as HAM
	delivered := 0
	for _, m := range future {
		if l, _ := f.Classify(m); l != sbayes.Spam {
			delivered++
		}
	}
	if delivered < 5 {
		t.Errorf("pseudospam attack delivered only %d/10 future spam", delivered)
	}
	// Ham classification should be largely unharmed (integrity, not
	// availability).
	probes := make([]*mail.Message, 40)
	for i := range probes {
		probes[i] = g.HamMessage(r)
	}
	if mis := countNonHam(f, probes); mis > len(probes)/4 {
		t.Errorf("pseudospam attack broke %d/%d ham", mis, len(probes))
	}
}
