package core

import (
	"testing"

	"repro/internal/lexicon"
	"repro/internal/sbayes"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

func TestBuildChunkedPartition(t *testing.T) {
	u := testUniverse()
	a := NewDictionaryAttack(lexicon.Aspell(u))
	for _, n := range []int{1, 3, 10} {
		msgs := a.BuildChunked(n)
		if len(msgs) != n {
			t.Fatalf("n=%d: %d messages", n, len(msgs))
		}
		tok := tokenize.Default()
		seen := map[string]int{}
		for _, m := range msgs {
			if len(m.Header) != 0 {
				t.Error("chunk has a header")
			}
			for _, w := range tok.TokenSet(m) {
				seen[w]++
			}
		}
		// The chunks partition the lexicon: every word exactly once.
		if len(seen) != a.Lexicon().Len() {
			t.Fatalf("n=%d: %d distinct words, want %d", n, len(seen), a.Lexicon().Len())
		}
		for w, c := range seen {
			if c != 1 {
				t.Fatalf("word %q in %d chunks", w, c)
			}
		}
	}
}

func TestBuildChunkedDegenerateArgs(t *testing.T) {
	u := testUniverse()
	a := NewDictionaryAttack(lexicon.Aspell(u))
	if got := len(a.BuildChunked(0)); got != 1 {
		t.Errorf("n=0 gave %d messages", got)
	}
	huge := a.BuildChunked(a.Lexicon().Len() * 2)
	if len(huge) != a.Lexicon().Len() {
		t.Errorf("oversized n gave %d messages", len(huge))
	}
}

func TestChunkedWeakerThanReplicated(t *testing.T) {
	// Same message count, same total vocabulary: the replicated
	// attack (whole dictionary per email) must poison strictly more
	// than the chunked one (dictionary split across emails) — the
	// stealth/strength trade-off of §4.2.
	g := testGenerator(t)
	r := stats.NewRNG(71)
	train := g.Corpus(r, 300, 300)
	base := sbayes.NewDefault()
	for _, e := range train.Examples {
		base.Learn(e.Msg, e.Spam)
	}
	msgs := make([][]string, 0, 50)
	tok := tokenize.Default()
	for i := 0; i < 50; i++ {
		msgs = append(msgs, tok.TokenSet(g.HamMessage(r)))
	}

	attack := NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	const n = 30

	meanScore := func(f *sbayes.Filter) float64 {
		total := 0.0
		for _, m := range msgs {
			total += f.ScoreTokens(m)
		}
		return total / float64(len(msgs))
	}

	replicated := base.Clone()
	replicated.LearnWeighted(attack.BuildAttack(r), true, n)
	repScore := meanScore(replicated)

	chunked := base.Clone()
	for _, m := range attack.BuildChunked(n) {
		chunked.Learn(m, true)
	}
	chunkScore := meanScore(chunked)

	if repScore <= chunkScore {
		t.Errorf("replicated attack (%v) not stronger than chunked (%v)", repScore, chunkScore)
	}
	// But chunking still hurts relative to no attack.
	baseScore := meanScore(base)
	if chunkScore <= baseScore {
		t.Errorf("chunked attack had no effect: %v vs baseline %v", chunkScore, baseScore)
	}
}
