package core

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/sbayes"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// RONI implements the Reject On Negative Impact defense (§5.1): the
// incremental effect of a query email Q is measured by training with
// and without Q on small sampled training sets and comparing
// performance on sampled validation sets; messages whose effect is
// significantly negative are excluded from training.
//
// Following the paper's preliminary experiment, each trial samples a
// 20-message training set T and a 50-message validation set V from
// the pool, and Q's impact is the average over trials of the change
// in validation classifications when training on T ∪ {Q} versus T.
// The headline statistic is the decrease in ham-classified-as-ham:
// dictionary attack messages cost at least 6.8 ham-as-ham on average
// in the paper, non-attack spam at most 4.4, so a simple threshold
// separates them.
type RONIConfig struct {
	// TrainSize is |T| (paper: 20).
	TrainSize int
	// ValSize is |V| (paper: 50).
	ValSize int
	// Trials is the number of independent (T, V) samples (paper: 5).
	Trials int
	// SpamPrevalence is the spam fraction of T and V (paper: 0.5).
	SpamPrevalence float64
	// Threshold rejects Q when its mean ham-as-ham decrease is at
	// least this many messages. The paper's measured gap (6.8 vs
	// 4.4) makes 5.5 a natural default.
	Threshold float64
}

// DefaultRONIConfig returns the paper's parameters.
func DefaultRONIConfig() RONIConfig {
	return RONIConfig{
		TrainSize:      20,
		ValSize:        50,
		Trials:         5,
		SpamPrevalence: 0.5,
		Threshold:      5.5,
	}
}

// Validate checks the configuration.
func (c RONIConfig) Validate() error {
	switch {
	case c.TrainSize < 2:
		return fmt.Errorf("core: RONI TrainSize %d", c.TrainSize)
	case c.ValSize < 1:
		return fmt.Errorf("core: RONI ValSize %d", c.ValSize)
	case c.Trials < 1:
		return fmt.Errorf("core: RONI Trials %d", c.Trials)
	case c.SpamPrevalence < 0 || c.SpamPrevalence > 1:
		return fmt.Errorf("core: RONI SpamPrevalence %v", c.SpamPrevalence)
	case c.Threshold < 0:
		return fmt.Errorf("core: RONI Threshold %v", c.Threshold)
	}
	return nil
}

// Impact summarizes a query email's measured effect on validation
// performance, averaged over trials. Negative deltas are harmful.
type Impact struct {
	// HamAsHamDelta is the mean change in validation ham classified
	// as ham after training on Q (the paper's separation statistic).
	HamAsHamDelta float64
	// CorrectDelta is the mean change in correctly classified
	// validation messages (ham as ham + spam as spam).
	CorrectDelta float64
}

// roniTrial is one sampled (T, V) pair with its baseline counts. The
// clf is any backend; the optional capability views (streamClf,
// streamLearner) are resolved once at construction so the per-query
// hot path pays no type assertions.
type roniTrial struct {
	clf           engine.Classifier
	streamClf     engine.StreamClassifier // nil: classify val messages directly
	streamLearner engine.StreamLearner    // nil: Learn/Unlearn the query message
	val           []corpus.Example
	valStreams    []*tokenize.TokenStream
	baseHamHam    int
	baseCorrect   int
}

// RONI is a reusable impact evaluator over one message pool. It works
// against any backend: trial filters are built clone-and-train style
// from a fresh classifier per trial, and queries are measured with
// Learn → re-evaluate → Unlearn, which every Classifier supports.
type RONI struct {
	cfg    RONIConfig
	tok    *tokenize.Tokenizer // non-nil: all trials share it, query streams are reused
	trials []roniTrial
}

// NewRONI samples the trial training and validation sets from pool
// and trains per-trial baseline SpamBayes filters. The pool must be
// large enough for TrainSize+ValSize messages per class split. For
// other backends use NewRONIBackend.
func NewRONI(cfg RONIConfig, pool *corpus.Corpus, opts sbayes.Options, tok *tokenize.Tokenizer, r *stats.RNG) (*RONI, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if tok == nil {
		tok = tokenize.Default()
	}
	return newRONI(cfg, pool, func() engine.Classifier { return sbayes.New(opts, tok) }, r)
}

// NewRONIBackend is NewRONI against an arbitrary backend: each trial
// filter comes from newClassifier (typically a registered Backend's
// New). Backends that expose their tokenizer and consume token
// streams get the same tokenize-once fast path as SpamBayes.
func NewRONIBackend(cfg RONIConfig, pool *corpus.Corpus, newClassifier engine.Factory, r *stats.RNG) (*RONI, error) {
	return newRONI(cfg, pool, newClassifier, r)
}

func newRONI(cfg RONIConfig, pool *corpus.Corpus, newClassifier engine.Factory, r *stats.RNG) (*RONI, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &RONI{cfg: cfg}
	for t := 0; t < cfg.Trials; t++ {
		tr := r.Split(fmt.Sprintf("roni-trial-%d", t))
		sample, err := pool.SampleInbox(tr, cfg.TrainSize+cfg.ValSize, cfg.SpamPrevalence)
		if err != nil {
			return nil, fmt.Errorf("core: RONI trial %d: %w", t, err)
		}
		trainSet := sample.Examples[:cfg.TrainSize]
		valSet := sample.Examples[cfg.TrainSize:]
		clf := newClassifier()
		for _, e := range trainSet {
			clf.Learn(e.Msg, e.Spam)
		}
		trial := roniTrial{clf: clf, val: valSet}
		trial.streamLearner, _ = clf.(engine.StreamLearner)
		// Tokenize the validation set once when the backend can both
		// expose its tokenizer and score token streams.
		if tokenizing, ok := clf.(engine.Tokenizing); ok {
			if streamClf, ok := clf.(engine.StreamClassifier); ok {
				trial.streamClf = streamClf
				for _, e := range valSet {
					trial.valStreams = append(trial.valStreams, tokenizing.Tokenizer().Stream(e.Msg))
				}
			}
		}
		trial.baseHamHam, trial.baseCorrect = trial.evaluate()
		d.trials = append(d.trials, trial)
	}
	// When every trial filter learns token streams, one tokenization of
	// the query serves all trials: a factory hands every trial an
	// identically configured tokenizer, so any trial's will do.
	allStreamLearners := len(d.trials) > 0
	for i := range d.trials {
		if d.trials[i].streamLearner == nil {
			allStreamLearners = false
			break
		}
	}
	if allStreamLearners {
		if tokenizing, ok := d.trials[0].clf.(engine.Tokenizing); ok {
			d.tok = tokenizing.Tokenizer()
		}
	}
	return d, nil
}

// evaluate scores the validation set, returning ham-as-ham and total
// correct counts.
func (t *roniTrial) evaluate() (hamHam, correct int) {
	for i, e := range t.val {
		var label engine.Label
		if t.streamClf != nil {
			label, _ = t.streamClf.ClassifyTokenStream(t.valStreams[i])
		} else {
			label, _ = t.clf.Classify(e.Msg)
		}
		if e.Spam {
			if label == engine.Spam {
				correct++
			}
		} else {
			if label == engine.Ham {
				hamHam++
				correct++
			}
		}
	}
	return hamHam, correct
}

// Config returns the defense configuration.
func (d *RONI) Config() RONIConfig { return d.cfg }

// MeasureImpact computes Q's impact: each trial filter temporarily
// learns Q (as spam or ham per qSpam), re-scores its validation set,
// and unlearns Q, leaving the evaluator unchanged. Callers already
// holding Q's token stream should use MeasureImpactStream instead, so
// Q is tokenized at most once across the whole serving path.
func (d *RONI) MeasureImpact(q *mail.Message, qSpam bool) Impact {
	return d.MeasureImpactStream(q, nil, qSpam)
}

// MeasureImpactStream is MeasureImpact for a query already tokenized
// once by the caller. ts may be nil, in which case the evaluator
// tokenizes Q itself when every trial filter learns streams (and
// falls back to whole-message Learn/Unlearn otherwise).
func (d *RONI) MeasureImpactStream(q *mail.Message, ts *tokenize.TokenStream, qSpam bool) Impact {
	if ts == nil && d.tok != nil {
		ts = d.tok.Stream(q)
	}
	var hamHamDelta, correctDelta float64
	for i := range d.trials {
		t := &d.trials[i]
		if ts != nil && t.streamLearner != nil {
			t.streamLearner.LearnTokenStream(ts, qSpam, 1)
		} else {
			t.clf.Learn(q, qSpam)
		}
		hh, corr := t.evaluate()
		var err error
		if ts != nil && t.streamLearner != nil {
			err = t.streamLearner.UnlearnTokenStream(ts, qSpam, 1)
		} else {
			err = t.clf.Unlearn(q, qSpam)
		}
		if err != nil {
			// Unlearning what was just learned cannot underflow.
			panic(fmt.Sprintf("core: RONI unlearn: %v", err))
		}
		hamHamDelta += float64(hh - t.baseHamHam)
		correctDelta += float64(corr - t.baseCorrect)
	}
	n := float64(len(d.trials))
	return Impact{HamAsHamDelta: hamHamDelta / n, CorrectDelta: correctDelta / n}
}

// ShouldReject reports whether Q's impact is significantly negative:
// the mean ham-as-ham decrease reaches the configured threshold.
func (d *RONI) ShouldReject(q *mail.Message, qSpam bool) bool {
	return d.MeasureImpact(q, qSpam).HamAsHamDelta <= -d.cfg.Threshold
}

// FilterCorpus partitions candidate training messages into kept and
// rejected sets, the integration a deployment would run before
// retraining. Messages are evaluated independently.
func (d *RONI) FilterCorpus(candidates *corpus.Corpus) (kept, rejected *corpus.Corpus) {
	kept, rejected = &corpus.Corpus{}, &corpus.Corpus{}
	for _, e := range candidates.Examples {
		if d.ShouldReject(e.Msg, e.Spam) {
			rejected.Add(e.Msg, e.Spam)
		} else {
			kept.Add(e.Msg, e.Spam)
		}
	}
	return kept, rejected
}
