package core

import (
	"fmt"

	"repro/internal/mail"
	"repro/internal/stats"
)

// PseudospamAttack is the Causative Integrity extension the paper
// flags in §2.2: "using ham-labeled attack emails could enable more
// powerful attacks that place spam in a user's inbox." The paper
// restricts its own experiments to spam-labeled attack emails; this
// type implements the lifted restriction (the "pseudospam" attack of
// the authors' follow-up work).
//
// The attacker wants specific future spam delivered. It sends benign-
// looking emails — headers imitating legitimate senders, bodies
// carrying the future spam's vocabulary — that the victim trains as
// ham (e.g., because the victim retrains on everything left in the
// inbox, or hand-labels the inoffensive-looking messages as ham).
// Once trained, the poisoned tokens score hammy and the real spam
// slips through: a Causative Integrity attack, where everything in
// the paper's main body is Causative Availability.
type PseudospamAttack struct {
	futureSpam []*mail.Message
	headerPool []*mail.Message
}

// NewPseudospamAttack builds the attack. futureSpam is the spam the
// attacker intends to send after poisoning; headerPool supplies
// legitimate-looking headers (it may be empty for headerless attack
// emails).
func NewPseudospamAttack(futureSpam, headerPool []*mail.Message) (*PseudospamAttack, error) {
	if len(futureSpam) == 0 {
		return nil, fmt.Errorf("core: pseudospam attack needs the future spam")
	}
	return &PseudospamAttack{futureSpam: futureSpam, headerPool: headerPool}, nil
}

// Name identifies the attack.
func (a *PseudospamAttack) Name() string { return "pseudospam" }

// FutureSpam returns the messages the attack shields.
func (a *PseudospamAttack) FutureSpam() []*mail.Message { return a.futureSpam }

// Taxonomy: Causative Integrity Targeted — the attack causes false
// negatives for the attacker's own future mail.
func (a *PseudospamAttack) Taxonomy() Taxonomy {
	return Taxonomy{Causative, Integrity, Targeted}
}

// BuildAttack constructs one attack email: the union of the future
// spam's distinct body words under a legitimate-looking header. The
// attack email must itself read as ham to be trained as ham, which is
// why it borrows a ham header; its body is exactly the vocabulary it
// needs to whitewash.
func (a *PseudospamAttack) BuildAttack(r *stats.RNG) *mail.Message {
	seen := map[string]struct{}{}
	var words []string
	for _, m := range a.futureSpam {
		for _, w := range TargetWords(m) {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			words = append(words, w)
		}
	}
	msg := &mail.Message{Body: BodyFromWords(words, 12)}
	if len(a.headerPool) > 0 {
		msg.Header = a.headerPool[r.Intn(len(a.headerPool))].Header.Clone()
	}
	return msg
}
