package core

import (
	"strings"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/sbayes"
	"repro/internal/stats"
	"repro/internal/textgen"
	"repro/internal/tokenize"
)

// testUniverse builds the scaled-down universe shared by core tests.
func testUniverse() *textgen.Universe {
	return textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
}

func testGenerator(t testing.TB) *textgen.Generator {
	t.Helper()
	return textgen.MustNew(testUniverse(), textgen.DefaultConfig())
}

func TestTaxonomyStrings(t *testing.T) {
	tx := Taxonomy{Causative, Availability, Indiscriminate}
	if got := tx.String(); got != "Causative Availability Indiscriminate" {
		t.Errorf("String = %q", got)
	}
	if Exploratory.String() != "Exploratory" || Integrity.String() != "Integrity" || Targeted.String() != "Targeted" {
		t.Error("axis names wrong")
	}
	if !strings.Contains(Influence(9).String(), "9") ||
		!strings.Contains(Violation(9).String(), "9") ||
		!strings.Contains(Specificity(9).String(), "9") {
		t.Error("unknown axis values should include the number")
	}
}

func TestAttackSizePaperArithmetic(t *testing.T) {
	// The paper: 1% of a 10,000-message training set = 101 attack
	// emails; 2% = 204.
	if got := AttackSize(0.01, 10000); got != 101 {
		t.Errorf("AttackSize(0.01, 10000) = %d, want 101", got)
	}
	if got := AttackSize(0.02, 10000); got != 204 {
		t.Errorf("AttackSize(0.02, 10000) = %d, want 204", got)
	}
	if got := AttackSize(0.10, 10000); got != 1111 {
		t.Errorf("AttackSize(0.10, 10000) = %d, want 1111", got)
	}
	if got := AttackSize(0, 10000); got != 0 {
		t.Errorf("AttackSize(0, ·) = %d", got)
	}
	if got := AttackSize(0.5, 0); got != 0 {
		t.Errorf("AttackSize(·, 0) = %d", got)
	}
}

func TestAttackSizePanicsAtOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AttackSize(1, ·) did not panic")
		}
	}()
	AttackSize(1, 100)
}

func TestBodyFromWords(t *testing.T) {
	got := BodyFromWords([]string{"aa", "bb", "cc", "dd", "ee"}, 2)
	want := "aa bb\ncc dd\nee\n"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	if BodyFromWords(nil, 5) != "" {
		t.Error("empty words should give empty body")
	}
	// Non-positive perLine defaults sanely.
	if !strings.Contains(BodyFromWords([]string{"aaa"}, 0), "aaa") {
		t.Error("perLine=0 broken")
	}
}

func TestTargetWords(t *testing.T) {
	m := &mail.Message{Body: "Alpha beta ALPHA of beta gamma-ray x\n"}
	got := TargetWords(m)
	want := []string{"alpha", "beta", "gamma-ray"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestDictionaryAttackEmail(t *testing.T) {
	u := testUniverse()
	lex := lexicon.Aspell(u)
	a := NewDictionaryAttack(lex)
	if a.Name() != "aspell" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.Taxonomy() != (Taxonomy{Causative, Availability, Indiscriminate}) {
		t.Errorf("Taxonomy = %v", a.Taxonomy())
	}
	m := a.BuildAttack(stats.NewRNG(1))
	// Empty header per the contamination assumption.
	if len(m.Header) != 0 {
		t.Errorf("attack email has %d header fields, want 0", len(m.Header))
	}
	// Body contains every lexicon word exactly once.
	toks := tokenize.Default().TokenSet(m)
	if len(toks) != lex.Len() {
		t.Errorf("attack token set = %d, lexicon = %d", len(toks), lex.Len())
	}
	for _, tok := range toks[:10] {
		if !lex.Contains(tok) {
			t.Errorf("attack token %q not in lexicon", tok)
		}
	}
}

func TestOptimalAttackCoversUniverse(t *testing.T) {
	u := testUniverse()
	a := NewOptimalAttack(u)
	if a.Name() != "optimal" {
		t.Errorf("Name = %q", a.Name())
	}
	m := a.BuildAttack(stats.NewRNG(1))
	toks := tokenize.Default().TokenSet(m)
	if len(toks) != u.Size() {
		t.Errorf("optimal attack tokens = %d, universe = %d", len(toks), u.Size())
	}
}

func TestFocusedAttackValidation(t *testing.T) {
	if _, err := NewFocusedAttack(nil, 0.5, nil); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewFocusedAttack(&mail.Message{}, -0.1, nil); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewFocusedAttack(&mail.Message{}, 1.1, nil); err == nil {
		t.Error("probability >1 accepted")
	}
}

func TestFocusedAttackGuessing(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(2)
	target := g.HamMessage(r)
	words := TargetWords(target)

	// p=1 guesses everything; p=0 guesses nothing.
	all, err := NewFocusedAttack(target, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := all.GuessWords(r); len(got) != len(words) {
		t.Errorf("p=1 guessed %d of %d", len(got), len(words))
	}
	none, _ := NewFocusedAttack(target, 0, nil)
	if got := none.GuessWords(r); len(got) != 0 {
		t.Errorf("p=0 guessed %d", len(got))
	}

	// p=0.5 guesses about half.
	half, _ := NewFocusedAttack(target, 0.5, nil)
	n := len(half.GuessWords(r))
	if n < len(words)/4 || n > 3*len(words)/4 {
		t.Errorf("p=0.5 guessed %d of %d", n, len(words))
	}
	if half.GuessProb() != 0.5 || half.Target() != target {
		t.Error("accessors broken")
	}
	if !strings.Contains(half.Name(), "0.50") {
		t.Errorf("Name = %q", half.Name())
	}
	if half.Taxonomy() != (Taxonomy{Causative, Availability, Targeted}) {
		t.Errorf("Taxonomy = %v", half.Taxonomy())
	}
}

func TestFocusedAttackHeaderFromPool(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(3)
	target := g.HamMessage(r)
	pool := []*mail.Message{g.SpamMessage(r), g.SpamMessage(r)}
	a, err := NewFocusedAttack(target, 0.5, pool)
	if err != nil {
		t.Fatal(err)
	}
	m := a.BuildAttack(r)
	if len(m.Header) == 0 {
		t.Fatal("attack email has no header despite pool")
	}
	// The header must be one of the pool headers.
	match := false
	for _, p := range pool {
		if m.Header.Get("Message-Id") == p.Header.Get("Message-Id") {
			match = true
		}
	}
	if !match {
		t.Error("attack header not copied from pool")
	}
	// And the body must contain only target words.
	targetSet := map[string]bool{}
	for _, w := range TargetWords(target) {
		targetSet[w] = true
	}
	for _, w := range strings.Fields(m.Body) {
		if !targetSet[w] {
			t.Errorf("attack body word %q not from target", w)
		}
	}
}

func TestFocusedAttackEmptyPoolEmptyHeader(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(4)
	a, _ := NewFocusedAttack(g.HamMessage(r), 0.5, nil)
	if m := a.BuildAttack(r); len(m.Header) != 0 {
		t.Error("no pool should mean empty header")
	}
}

// TestDictionaryAttackPoisonsFilter is the core end-to-end check: a
// trained filter misclassifies ham after dictionary poisoning.
func TestDictionaryAttackPoisonsFilter(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(5)
	train := g.Corpus(r, 300, 300)
	f := sbayes.NewDefault()
	for _, e := range train.Examples {
		f.Learn(e.Msg, e.Spam)
	}
	probes := make([]*mail.Message, 50)
	for i := range probes {
		probes[i] = g.HamMessage(r)
	}
	misBefore := countNonHam(f, probes)

	attack := NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	n := AttackSize(0.05, train.Len())
	f.LearnWeighted(attack.BuildAttack(r), true, n)
	misAfter := countNonHam(f, probes)
	if misAfter <= misBefore+25 {
		t.Errorf("attack misclassified %d → %d of %d; expected a large jump", misBefore, misAfter, len(probes))
	}
}

// TestFocusedAttackBlocksTarget checks the targeted variant flips its
// target while leaving other ham mostly alone.
func TestFocusedAttackBlocksTarget(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(6)
	train := g.Corpus(r, 300, 300)
	f := sbayes.NewDefault()
	for _, e := range train.Examples {
		f.Learn(e.Msg, e.Spam)
	}
	target := g.HamMessage(r)
	before, _ := f.Classify(target)
	if before != sbayes.Ham {
		t.Fatalf("target not ham before attack: %v", before)
	}
	attack, _ := NewFocusedAttack(target, 0.9, train.Spam())
	f.LearnWeighted(attack.BuildAttack(r), true, 60)
	after, score := f.Classify(target)
	if after == sbayes.Ham {
		t.Errorf("target still ham after focused attack (score %v)", score)
	}
	// Collateral damage on unrelated ham should be limited.
	others := make([]*mail.Message, 30)
	for i := range others {
		others[i] = g.HamMessage(r)
	}
	if mis := countNonHam(f, others); mis > len(others)/2 {
		t.Errorf("focused attack flipped %d/%d unrelated ham", mis, len(others))
	}
}

func countNonHam(f *sbayes.Filter, msgs []*mail.Message) int {
	n := 0
	for _, m := range msgs {
		if l, _ := f.Classify(m); l != sbayes.Ham {
			n++
		}
	}
	return n
}

// TestMonotonicityExpectedScore exercises the §3.4 optimality
// argument: adding words to the attack never lowers the expected spam
// score of the next message.
func TestMonotonicityExpectedScore(t *testing.T) {
	g := testGenerator(t)
	r := stats.NewRNG(7)
	train := g.Corpus(r, 100, 100)
	base := sbayes.NewDefault()
	for _, e := range train.Examples {
		base.Learn(e.Msg, e.Spam)
	}
	// Next-message distribution p: a handful of ham-ish words.
	u := g.Universe()
	p := map[string]float64{}
	for _, w := range u.Words(textgen.SegStandard)[:8] {
		p[w] = 0.6
	}
	for _, w := range u.Words(textgen.SegColloquial)[:4] {
		p[w] = 0.3
	}
	// Hold the number of attack messages fixed (the §3.4 setting:
	// the attacker chooses which words to include in a given attack
	// email) and grow only the included word set. Training even an
	// empty attack message changes all scores slightly by raising
	// the total spam count, which is why the word sets — not the
	// message counts — must vary here.
	scoreWith := func(attackWords []string) float64 {
		f := base.Clone()
		f.LearnTokens(attackWords, true, 10)
		return ExpectedSpamScore(r.Clone(), p, 60, func(words []string) float64 {
			return f.ScoreTokens(words)
		})
	}
	small := u.Words(textgen.SegStandard)[:4]
	large := u.Words(textgen.SegStandard)[:8]
	sNone := scoreWith(nil)
	sSmall := scoreWith(small)
	sLarge := scoreWith(large)
	if !(sNone <= sSmall+1e-9 && sSmall <= sLarge+1e-9) {
		t.Errorf("expected score not monotone: none=%v small=%v large=%v", sNone, sSmall, sLarge)
	}
}
