package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mail"
	"repro/internal/stats"
)

// InformedAttack realizes the constrained optimal attack sketched in
// §3.4 and left to future work by the paper: "the attacker may use
// information about the distribution of words in English text to make
// the attack more efficient, such as characteristic vocabulary or
// jargon typical of the victim. [...] From this it should be possible
// to derive an optimal constrained attack."
//
// The attacker estimates the victim's next-email word distribution p
// from a sample of messages (emails of the same organization, leaked
// mail, public postings) and, under a budget of k attack words, packs
// the attack email with the k words most likely to appear in future
// email. Because the message score I is monotonically non-decreasing
// in each included token's spam score and token scores do not
// interact (§3.4), greedily taking the k highest-probability words
// maximizes the expected number of poisoned tokens per future email —
// the §1 observation that "with more information about the email
// distribution, the attacker can select a smaller dictionary of
// high-value features that are still effective."
type InformedAttack struct {
	budget int
	words  []string
}

// NewInformedAttack estimates word document frequencies from sample
// and keeps the budget highest-frequency words (ties broken
// alphabetically for determinism). The sample plays the role of the
// attacker's knowledge; it must not be the victim's actual training
// set for the threat model to be honest.
func NewInformedAttack(sample []*mail.Message, budget int) (*InformedAttack, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("core: informed attack needs a sample of the victim's email")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("core: informed attack budget %d", budget)
	}
	df := make(map[string]int)
	for _, m := range sample {
		for _, w := range TargetWords(m) {
			df[w]++
		}
	}
	type wc struct {
		w string
		c int
	}
	all := make([]wc, 0, len(df))
	for w, c := range df {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if budget > len(all) {
		budget = len(all)
	}
	words := make([]string, budget)
	for i := 0; i < budget; i++ {
		words[i] = all[i].w
	}
	return &InformedAttack{budget: budget, words: words}, nil
}

// Name identifies the attack and its budget.
func (a *InformedAttack) Name() string {
	return fmt.Sprintf("informed-%dk", (a.budget+500)/1000)
}

// Budget returns the word budget.
func (a *InformedAttack) Budget() int { return a.budget }

// Words returns the chosen attack vocabulary (shared slice).
func (a *InformedAttack) Words() []string { return a.words }

// Taxonomy: like the dictionary attack, Causative Availability
// Indiscriminate — only the attacker's knowledge differs.
func (a *InformedAttack) Taxonomy() Taxonomy {
	return Taxonomy{Causative, Availability, Indiscriminate}
}

// BuildAttack constructs the attack email (empty header, §4.1).
func (a *InformedAttack) BuildAttack(_ *stats.RNG) *mail.Message {
	return &mail.Message{Body: BodyFromWords(a.words, 12)}
}

// Coverage estimates the fraction of a future message's words the
// attack poisons, evaluated on held-out messages.
func (a *InformedAttack) Coverage(heldOut []*mail.Message) float64 {
	if len(heldOut) == 0 {
		return 0
	}
	in := make(map[string]struct{}, len(a.words))
	for _, w := range a.words {
		in[w] = struct{}{}
	}
	total, hit := 0, 0
	for _, m := range heldOut {
		for _, w := range strings.Fields(strings.ToLower(m.Body)) {
			if len(w) < 3 {
				continue
			}
			total++
			if _, ok := in[w]; ok {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
