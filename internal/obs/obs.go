// Package obs is the observability substrate: a stdlib-only metrics
// registry (atomic counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, and a bounded decision-trace ring that
// replays per-message lifecycle decisions.
//
// The source paper's attacks are designed to be invisible in
// aggregate: a dictionary campaign raises ham loss a fraction of a
// percent per retrain, and a focused attack degrades exactly one
// victim's filter while fleet-wide accuracy holds. A one-shot JSON
// stats dump cannot show either. What an operator needs is per-stage,
// per-verdict time series (admission verdicts by reason, probe-budget
// level, quarantine depth, per-generation publish events) and
// per-message decision traces — why was this mail admitted, at which
// generation, after how many probes. This package supplies both
// primitives; engine, admission, and serve register into them.
//
// Design constraints, in order:
//
//   - The scoring hot path must not allocate: Counter.Add,
//     Gauge.Set, and Histogram.Observe are single atomic operations
//     on pre-built instruments (instrument construction — the only
//     allocating step — happens once at registration).
//   - Scrapes never stop the world: instruments are read with atomic
//     loads; a scrape racing a batch sees a value at most one
//     in-flight update stale, the same consistency Stats() offers.
//   - No dependencies: the build image has no module proxy, so the
//     exposition writer and parser are hand-rolled against the
//     Prometheus text format v0.0.4 (the subset this registry emits:
//     HELP/TYPE comments, counters, gauges, histograms).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, fixed at registration time. Every
// series this registry serves has a bounded, pre-declared label set —
// per-route, per-verdict, per-shard — never a per-request value, so
// cardinality cannot run away under attack traffic (an attacker who
// can mint new label values can OOM a registry; one who cannot, can
// only increment counters).
type Label struct {
	Key   string
	Value string
}

// L builds a Label. Registration sites read better with
// obs.L("route", "classify") than a struct literal.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone counter. The zero value is ready to use (an
// unregistered counter — updates work, nothing scrapes it), so code
// paths can be instrumented unconditionally and wired to a registry
// only where one exists.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Stored as float64 bits in
// one atomic word; Set and Add are lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets is the default histogram layout for request and
// scoring latencies: exponential from 100µs to 10s, in seconds. The
// single-message classify path sits in the low milliseconds on the
// 1-CPU bench runner, so the interesting mass lands mid-range with
// headroom on both sides.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: observation counts per
// bucket, a total count, and a sum, all maintained with lock-free
// atomics. Buckets are upper bounds in ascending order; observations
// above the last bound land in the implicit +Inf bucket. Observe is
// allocation-free, which is what lets the classify hot path carry a
// latency histogram where it used to carry a bare summed duration.
// There is deliberately no separate count field: the count is the sum
// of the bucket counts, so count and buckets cannot disagree and a
// snapshot is cumulative-monotone by construction.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-updated
}

// newHistogram builds an unregistered histogram over the bucket
// bounds (nil selects DefLatencyBuckets). Bounds must be sorted
// strictly ascending.
func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	return &Histogram{upper: upper, buckets: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search beats linear from ~16 buckets up and is branch-cheap
	// below; sort.SearchFloat64s allocates nothing.
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the one-line
// form latency call sites use.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (the bucket sum).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// SumDuration returns the sum interpreted as seconds — the cumulative
// latency the engine's Stats reports, now derived from the histogram
// instead of a separate summed counter.
func (h *Histogram) SumDuration() time.Duration {
	return time.Duration(h.Sum() * float64(time.Second))
}

// HistogramSnapshot is one consistent-enough read of a histogram:
// per-bucket cumulative counts (Counts[i] is observations ≤
// Uppers[i]; the final entry is the +Inf bucket and equals Count).
// Taken with atomic loads bucket by bucket, so a snapshot racing an
// Observe can run at most the in-flight observations behind — the
// same staleness contract as every Stats() read — while monotonicity
// of the cumulative counts holds by construction.
type HistogramSnapshot struct {
	Uppers []float64 // bucket upper bounds; +Inf implicit at the end
	Counts []uint64  // cumulative; len(Uppers)+1
	Count  uint64
	Sum    float64
}

// Snapshot reads the histogram. Count is the +Inf cumulative count —
// there is no separate tally to drift from it.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Uppers: h.upper,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    h.Sum(),
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot by
// linear interpolation within the bucket the quantile falls in — the
// same estimator PromQL's histogram_quantile uses. A quantile landing
// in the +Inf bucket reports the last finite upper bound; an empty
// histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Uppers) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Counts {
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Uppers) {
			return s.Uppers[len(s.Uppers)-1]
		}
		lower, prev := 0.0, uint64(0)
		if i > 0 {
			lower, prev = s.Uppers[i-1], s.Counts[i-1]
		}
		width := s.Uppers[i] - lower
		inBucket := float64(cum - prev)
		if inBucket == 0 {
			return s.Uppers[i]
		}
		return lower + width*(rank-float64(prev))/inBucket
	}
	return s.Uppers[len(s.Uppers)-1]
}

// Sub returns the snapshot of observations that happened after prev —
// the before/after delta a benchmark scrape uses to isolate one run's
// traffic. The snapshots must come from the same histogram layout.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Counts) != len(prev.Counts) || len(s.Uppers) != len(prev.Uppers) {
		return HistogramSnapshot{}, fmt.Errorf("obs: histogram layouts differ (%d/%d vs %d/%d buckets)",
			len(s.Uppers), len(s.Counts), len(prev.Uppers), len(prev.Counts))
	}
	out := HistogramSnapshot{
		Uppers: s.Uppers,
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		if s.Counts[i] < prev.Counts[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: bucket %d went backwards (%d < %d); not the same histogram", i, s.Counts[i], prev.Counts[i])
		}
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	out.Count = out.Counts[len(out.Counts)-1]
	return out, nil
}

// kind is a metric family's exposition TYPE.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family. Exactly one of
// the value fields is set.
type series struct {
	labels   []Label
	labelStr string // pre-rendered {k="v",...} or ""

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() float64
	gaugeFn   func() float64
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	buckets    []float64 // histogram families: the shared layout
	series     map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. A nil *Registry is valid everywhere: instrument
// getters return working unregistered instruments and function
// registrations are dropped, so a layer can instrument itself
// unconditionally and let the deployment decide what is scraped.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// get returns the family and the series slot for name+labels,
// creating either as needed. Registering the same name under a
// different kind (or a histogram under a different bucket layout) is
// a programming error and panics — two call sites disagreeing about
// what a metric is must fail loudly, not fork the time series.
func (r *Registry) get(name, help string, k kind, buckets []float64, labels []Label) *series {
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, k))
	}
	if k == histogramKind && !sameBuckets(fam.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q registered with two bucket layouts", name))
	}
	ls := renderLabels(labels)
	s := fam.series[ls]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), labelStr: ls}
		fam.series[ls] = s
	}
	return s
}

func sameBuckets(a, b []float64) bool {
	if a == nil {
		a = DefLatencyBuckets
	}
	if b == nil {
		b = DefLatencyBuckets
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter registered under name+labels, creating
// it on first use. On a nil registry it returns a fresh unregistered
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, help, counterKind, nil, labels)
	if s.counter == nil && s.counterFn == nil {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("obs: counter %q%s already registered as a function", name, renderLabels(labels)))
	}
	return s.counter
}

// Gauge returns the gauge registered under name+labels, creating it
// on first use. On a nil registry it returns a fresh unregistered
// gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, help, gaugeKind, nil, labels)
	if s.gauge == nil && s.gaugeFn == nil {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as a function", name, renderLabels(labels)))
	}
	return s.gauge
}

// Histogram returns the histogram registered under name+labels,
// creating it on first use with the bucket bounds (nil selects
// DefLatencyBuckets; every series of one family shares the layout).
// On a nil registry it returns a fresh unregistered histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, help, histogramKind, buckets, labels)
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// GaugeFunc registers a gauge sampled at scrape time — queue depths,
// buffer ages, budget levels: values some other structure already
// maintains under its own synchronization, where mirroring them into
// a stored gauge on every update would just duplicate state. fn must
// be safe to call from any goroutine. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, help, gaugeKind, nil, labels)
	if s.gauge != nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as stored", name, renderLabels(labels)))
	}
	s.gaugeFn = fn
}

// CounterFunc registers a counter sampled at scrape time, for
// monotone tallies another structure maintains under its own lock
// (probe counts, memo hits). fn must be monotone nondecreasing and
// safe from any goroutine. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, help, counterKind, nil, labels)
	if s.counter != nil {
		panic(fmt.Sprintf("obs: counter %q%s already registered as stored", name, renderLabels(labels)))
	}
	s.counterFn = fn
}

// WriteText renders the registry in Prometheus text exposition format
// v0.0.4: families sorted by name, one HELP/TYPE header each, series
// sorted by label string, histograms expanded into cumulative
// _bucket/_sum/_count samples. Safe to call concurrently with
// updates; the scrape sees each instrument at one atomic read.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(float64(s.counter.Value())))
			case s.counterFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(s.counterFn()))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(s.gauge.Value()))
			case s.gaugeFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labelStr, formatValue(s.gaugeFn()))
			case s.hist != nil:
				snap := s.hist.Snapshot()
				for i, cum := range snap.Counts {
					le := "+Inf"
					if i < len(snap.Uppers) {
						le = formatValue(snap.Uppers[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLE(s.labels, le), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labelStr, formatValue(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labelStr, snap.Count)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// renderLabels renders a sorted {k="v",...} label string ("" for
// none). Sorting makes the label set canonical, so two registration
// sites listing the same labels in different orders share one series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLE renders labels plus the histogram bucket's le label.
func withLE(labels []Label, le string) string {
	ls := append(append([]Label(nil), labels...), Label{Key: "le", Value: le})
	return renderLabels(ls)
}

// formatValue renders a sample value; integral values print without
// an exponent so counters read naturally.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
