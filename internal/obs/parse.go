package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedMetrics is a decoded Prometheus text scrape: sample values
// keyed by canonical name+labels, plus the TYPE of each family. It is
// the read side of WriteText — cmd/sbload scrapes /metrics before and
// after a run and cross-checks its client-side percentiles against
// the server-side histograms, and the race tests use it to assert the
// exposition stays parseable and internally consistent under load.
type ParsedMetrics struct {
	samples map[string]float64
	types   map[string]string
}

// ParseText decodes Prometheus text exposition format v0.0.4 (the
// subset WriteText emits, which is also the subset any conformant
// scraper accepts: HELP/TYPE comments, then name{labels} value
// samples). Unknown comment lines are skipped; malformed sample lines
// are errors — a scrape that half-parses is a scrape that silently
// lies.
func ParseText(r io.Reader) (*ParsedMetrics, error) {
	p := &ParsedMetrics{
		samples: make(map[string]float64),
		types:   make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				p.types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, valueStr, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		v, err := parseValue(valueStr)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %w", lineNo, valueStr, err)
		}
		key := name + renderLabels(labels)
		if _, dup := p.samples[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate sample %s", lineNo, key)
		}
		p.samples[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// splitSample breaks "name{k="v",...} value" (labels optional) into
// its parts.
func splitSample(line string) (name string, labels []Label, value string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample without value: %q", line)
		}
		return line[:sp], nil, strings.TrimSpace(line[sp:]), nil
	}
	name = line[:brace]
	rest := line[brace+1:]
	labels, rest, err = parseLabels(rest)
	if err != nil {
		return "", nil, "", err
	}
	return name, labels, strings.TrimSpace(rest), nil
}

// parseLabels consumes `k="v",...}` and returns the labels plus the
// remainder after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, ", \t")
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=': %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimLeft(s[eq+1:], " \t")
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Errorf("label %s: unterminated value", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, "", fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[0] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[0])
				default:
					return nil, "", fmt.Errorf("label %s: unknown escape \\%c", key, s[0])
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the sample for name+labels and whether it was present
// in the scrape.
func (p *ParsedMetrics) Value(name string, labels ...Label) (float64, bool) {
	v, ok := p.samples[name+renderLabels(labels)]
	return v, ok
}

// Type returns the exposed TYPE of a family ("" if the family had no
// TYPE line).
func (p *ParsedMetrics) Type(family string) string { return p.types[family] }

// Families returns the family names that carried a TYPE line, sorted.
func (p *ParsedMetrics) Families() []string {
	out := make([]string, 0, len(p.types))
	for name := range p.types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of samples in the scrape.
func (p *ParsedMetrics) Len() int { return len(p.samples) }

// Histogram reassembles the histogram series for name+labels (labels
// exclude le) into a HistogramSnapshot, validating what the registry
// guarantees on the write side: cumulative bucket counts are monotone
// nondecreasing, the +Inf bucket equals _count, and _sum/_count are
// present. An error here means the scrape caught a malformed or torn
// exposition — exactly what the race test exists to rule out.
func (p *ParsedMetrics) Histogram(name string, labels ...Label) (HistogramSnapshot, error) {
	base := append([]Label(nil), labels...)

	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	prefix := name + "_bucket"
	for key, v := range p.samples {
		bname, blabels, ok := p.splitKey(key)
		if !ok || bname != prefix {
			continue
		}
		le, rest, ok := extractLE(blabels)
		if !ok || renderLabels(rest) != renderLabels(base) {
			continue
		}
		buckets = append(buckets, bucket{le: le, cum: v})
	}
	if len(buckets) == 0 {
		return HistogramSnapshot{}, fmt.Errorf("obs: no %s_bucket samples for labels %s", name, renderLabels(base))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if !math.IsInf(buckets[len(buckets)-1].le, +1) {
		return HistogramSnapshot{}, fmt.Errorf("obs: histogram %s missing +Inf bucket", name)
	}

	snap := HistogramSnapshot{
		Uppers: make([]float64, 0, len(buckets)-1),
		Counts: make([]uint64, 0, len(buckets)),
	}
	prev := -1.0
	for _, b := range buckets {
		if b.cum < prev {
			return HistogramSnapshot{}, fmt.Errorf("obs: histogram %s bucket le=%g not monotone (%g < %g)", name, b.le, b.cum, prev)
		}
		prev = b.cum
		if !math.IsInf(b.le, +1) {
			snap.Uppers = append(snap.Uppers, b.le)
		}
		snap.Counts = append(snap.Counts, uint64(b.cum))
	}
	snap.Count = snap.Counts[len(snap.Counts)-1]

	sum, ok := p.Value(name+"_sum", labels...)
	if !ok {
		return HistogramSnapshot{}, fmt.Errorf("obs: histogram %s missing _sum", name)
	}
	snap.Sum = sum
	count, ok := p.Value(name+"_count", labels...)
	if !ok {
		return HistogramSnapshot{}, fmt.Errorf("obs: histogram %s missing _count", name)
	}
	if uint64(count) != snap.Count {
		return HistogramSnapshot{}, fmt.Errorf("obs: histogram %s +Inf bucket %d != _count %d", name, snap.Count, uint64(count))
	}
	return snap, nil
}

// splitKey breaks a canonical sample key back into name + labels.
func (p *ParsedMetrics) splitKey(key string) (string, []Label, bool) {
	brace := strings.IndexByte(key, '{')
	if brace < 0 {
		return key, nil, true
	}
	labels, rest, err := parseLabels(key[brace+1:])
	if err != nil || rest != "" {
		return "", nil, false
	}
	return key[:brace], labels, true
}

// extractLE pulls the le label out of a bucket's label set.
func extractLE(labels []Label) (float64, []Label, bool) {
	for i, l := range labels {
		if l.Key != "le" {
			continue
		}
		le, err := parseValue(l.Value)
		if err != nil {
			return 0, nil, false
		}
		rest := append([]Label(nil), labels[:i]...)
		rest = append(rest, labels[i+1:]...)
		return le, rest, true
	}
	return 0, nil, false
}
