package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceKind names one stage of a message's decision lifecycle.
type TraceKind uint8

const (
	// TraceClassify is the at-delivery verdict: label + score at the
	// serving generation.
	TraceClassify TraceKind = iota
	// TraceAdmit is an admission decision on a candidate training
	// example: verdict + reason.
	TraceAdmit
	// TraceHold is a quarantine hold (the admit verdict deferred the
	// candidate to swap-time review).
	TraceHold
	// TraceRelease is a quarantine review releasing a held candidate
	// back toward training; a review that drops instead records
	// TraceAdmit with the rejecting verdict.
	TraceRelease
	// TraceLearn is one example actually trained into a classifier.
	TraceLearn
	// TracePublish is a snapshot publish: a new generation went live.
	TracePublish
)

var traceKindNames = [...]string{
	TraceClassify: "classify",
	TraceAdmit:    "admit",
	TraceHold:     "hold",
	TraceRelease:  "release",
	TraceLearn:    "learn",
	TracePublish:  "publish",
}

// String names the kind for traces and logs.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name, so NDJSON trace dumps
// read without a decoder ring.
func (k TraceKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a kind name back.
func (k *TraceKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range traceKindNames {
		if name == s {
			*k = TraceKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown trace kind %q", s)
}

// TraceEvent is one recorded lifecycle event. Events are small fixed
// structs — the string fields reference strings the decision already
// produced (verdict names are constants, reasons are built once by
// the admitter) — so recording allocates nothing beyond the ring
// itself.
type TraceEvent struct {
	// Seq is the tracer-global sequence number, gapless across all
	// recorded events (sampled-out events do not consume one).
	Seq uint64 `json:"seq"`
	// At is monotonic nanoseconds since the tracer started — stamps
	// from one tracer order totally, across goroutines and wall-clock
	// adjustments.
	At int64 `json:"atNanos"`
	// Kind is the lifecycle stage.
	Kind TraceKind `json:"kind"`
	// Digest identifies the message by its token-stream digest (the
	// tokenize-once identity), 0 when the event is not message-scoped
	// (publish) or the path had no stream. All events of one sampled
	// message share a digest, which is what makes the trace a
	// lifecycle: tokenize → classify → admit → hold/release → learn.
	Digest uint64 `json:"digest,omitempty"`
	// Generation is the serving (or newly published) generation the
	// decision was made at.
	Generation uint64 `json:"generation,omitempty"`
	// Shard is the shard the decision landed on (-1 on unsharded
	// engines).
	Shard int32 `json:"shard"`
	// Verdict is the decision name: a classify label ("ham", "spam",
	// "unsure") or an admission verdict ("accept", "quarantine",
	// "reject").
	Verdict string `json:"verdict,omitempty"`
	// Score is the classify score (classify events only).
	Score float64 `json:"score,omitempty"`
	// Reason is the admission reason ("token flood: 3021 distinct
	// tokens", "roni: probe budget exhausted", ...).
	Reason string `json:"reason,omitempty"`
}

// Tracer is a bounded ring of sampled decision-trace events. The hot
// path asks Sampled(digest) first — one modulo on an atomic-free
// read — and only a sampled message pays the Record cost (a short
// critical section copying one fixed-size struct into the ring).
// Sampling is deterministic by digest, so every lifecycle stage of a
// sampled message is recorded and unsampled messages never record
// anything: the trace replays whole decisions, not a random shuffle
// of stages. A nil *Tracer records nothing and samples nothing, so
// call sites need no guards.
type Tracer struct {
	every uint64
	start time.Time

	recorded atomic.Uint64

	mu   sync.Mutex
	ring []TraceEvent
	next int  // ring index of the next write
	n    int  // valid entries (== len(ring) once wrapped)
	seq  uint64
}

// NewTracer builds a tracer holding the last capacity events (<= 0
// selects 1024), sampling one message in every (<= 1 records every
// message). Events without a digest (publishes) are always recorded.
func NewTracer(capacity, every int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	if every < 1 {
		every = 1
	}
	return &Tracer{
		every: uint64(every),
		start: time.Now(),
		ring:  make([]TraceEvent, capacity),
	}
}

// Sampled reports whether a message with this digest is traced.
// Deterministic: the same payload samples the same way at every
// stage, on every shard, in every process with the same rate.
func (t *Tracer) Sampled(digest uint64) bool {
	if t == nil {
		return false
	}
	return digest%t.every == 0
}

// Record appends one event, stamping Seq and At. Callers on a
// message-scoped path guard with Sampled(digest) so unsampled
// messages never reach the lock; generation-scoped events (publish)
// record unconditionally.
func (t *Tracer) Record(e TraceEvent) {
	if t == nil {
		return
	}
	e.At = time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	t.recorded.Add(1)
}

// Recorded returns the total number of events ever recorded
// (including ones the ring has since overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// SampleEvery returns the sampling rate (1 = every message).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Last returns the most recent n events, oldest first (n <= 0 or
// beyond the ring returns everything held). The slice is a copy.
func (t *Tracer) Last(n int) []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]TraceEvent, n)
	// next is one past the newest entry; walk back n slots.
	startIdx := (t.next - n + len(t.ring)) % len(t.ring)
	for i := 0; i < n; i++ {
		out[i] = t.ring[(startIdx+i)%len(t.ring)]
	}
	return out
}
