package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", got)
	}
	snap := h.Snapshot()
	wantCum := []uint64{1, 3, 4, 5}
	for i, w := range wantCum {
		if snap.Counts[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("snapshot count = %d, want 5", snap.Count)
	}
	// Boundary values land in their own bucket (SearchFloat64s returns
	// the index of the first bound >= v, i.e. le semantics).
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(1)
	if s := h2.Snapshot(); s.Counts[0] != 1 {
		t.Fatalf("observation at bound landed in bucket %v, want le=1", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // 25 each in (0,1], (1,2], (2,3], (3,4]
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); math.Abs(q-2) > 1e-9 {
		t.Fatalf("p50 = %g, want 2", q)
	}
	if q := snap.Quantile(0.25); math.Abs(q-1) > 1e-9 {
		t.Fatalf("p25 = %g, want 1", q)
	}
	if q := snap.Quantile(1); math.Abs(q-4) > 1e-9 {
		t.Fatalf("p100 = %g, want 4", q)
	}
	// Mass in +Inf reports the last finite bound rather than inventing
	// a value beyond it.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Fatalf("+Inf quantile = %g, want last finite bound 1", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramSub(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(5)
	after := h.Snapshot()
	delta, err := after.Sub(before)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if math.Abs(delta.Sum-10) > 1e-9 {
		t.Fatalf("delta sum = %g, want 10", delta.Sum)
	}
	if _, err := before.Sub(after); err == nil {
		t.Fatal("backwards Sub succeeded; want error")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", L("route", "classify")).Add(7)
	r.Counter("req_total", "requests", L("route", "learn")).Add(3)
	r.Gauge("queue_depth", "depth").Set(12)
	r.GaugeFunc("budget", "probe budget", func() float64 { return 0.75 })
	r.CounterFunc("probes_total", "probes", func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1}, L("route", "classify"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{route="classify"} 7`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="+Inf",route="classify"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	p, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if v, ok := p.Value("req_total", L("route", "classify")); !ok || v != 7 {
		t.Fatalf("req_total{classify} = %v,%v", v, ok)
	}
	if v, ok := p.Value("queue_depth"); !ok || v != 12 {
		t.Fatalf("queue_depth = %v,%v", v, ok)
	}
	if v, ok := p.Value("budget"); !ok || v != 0.75 {
		t.Fatalf("budget = %v,%v", v, ok)
	}
	if v, ok := p.Value("probes_total"); !ok || v != 42 {
		t.Fatalf("probes_total = %v,%v", v, ok)
	}
	if got := p.Type("latency_seconds"); got != "histogram" {
		t.Fatalf("type = %q, want histogram", got)
	}
	snap, err := p.Histogram("latency_seconds", L("route", "classify"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 3 {
		t.Fatalf("parsed count = %d, want 3", snap.Count)
	}
	if got := h.Snapshot(); got.Counts[0] != snap.Counts[0] || got.Counts[1] != snap.Counts[1] {
		t.Fatalf("parsed counts %v != live %v", snap.Counts, got.Counts)
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("same labels in different order created two series")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("why", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if v, ok := p.Value("esc_total", L("why", "a\"b\\c\nd")); !ok || v != 1 {
		t.Fatalf("escaped label lost: %v,%v in\n%s", v, ok, sb.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter name as gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestNilRegistryAndTracerAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.GaugeFunc("d", "", func() float64 { return 0 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	if tr.Sampled(0) {
		t.Fatal("nil tracer sampled")
	}
	tr.Record(TraceEvent{})
	if got := tr.Last(10); got != nil {
		t.Fatalf("nil tracer Last = %v", got)
	}
	if tr.Recorded() != 0 || tr.SampleEvery() != 0 {
		t.Fatal("nil tracer reported activity")
	}
}

func TestTracerRingAndSampling(t *testing.T) {
	tr := NewTracer(4, 8)
	if !tr.Sampled(16) || tr.Sampled(17) {
		t.Fatal("sampling is not digest mod every")
	}
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{Kind: TraceClassify, Digest: uint64(i), Shard: -1})
	}
	got := tr.Last(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// Oldest first, and the ring kept the last four records.
	for i, e := range got {
		if e.Digest != uint64(6+i) {
			t.Fatalf("event %d digest = %d, want %d (%v)", i, e.Digest, 6+i, got)
		}
		if i > 0 && (e.Seq <= got[i-1].Seq || e.At < got[i-1].At) {
			t.Fatalf("events out of order: %+v then %+v", got[i-1], e)
		}
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", tr.Recorded())
	}
	if last := tr.Last(2); len(last) != 2 || last[1].Digest != 9 {
		t.Fatalf("Last(2) = %v", last)
	}
}

func TestTraceEventJSONRoundTrip(t *testing.T) {
	e := TraceEvent{Seq: 3, At: 99, Kind: TraceAdmit, Digest: 7, Generation: 2,
		Shard: 1, Verdict: "quarantine", Reason: "roni: probe budget exhausted"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"admit"`) {
		t.Fatalf("kind not symbolic: %s", b)
	}
	var back TraceEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Fatalf("round trip %+v != %+v", back, e)
	}
	var bad TraceEvent
	if err := json.Unmarshal([]byte(`{"kind":"nonsense"}`), &bad); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

// TestConcurrentScrapeConsistency hammers every instrument type from
// writer goroutines while scraping, parsing, and validating histogram
// monotonicity from readers. Run under -race this is the registry's
// core safety claim: scrapes never tear and never block updates.
func TestConcurrentScrapeConsistency(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64, 2)
	c := r.Counter("ops_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat", "", []float64{0.001, 0.01, 0.1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 500)
				if d := uint64(i); tr.Sampled(d) {
					tr.Record(TraceEvent{Kind: TraceClassify, Digest: d, Shard: int32(w)})
				}
			}
		}(w)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		p, err := ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("scrape failed to parse: %v\n%s", err, sb.String())
		}
		// Histogram() revalidates monotone cumulative buckets and
		// +Inf == _count on every scrape.
		if _, err := p.Histogram("lat"); err != nil {
			t.Fatal(err)
		}
		if events := tr.Last(16); len(events) > 1 {
			for i := 1; i < len(events); i++ {
				if events[i].Seq != events[i-1].Seq+1 {
					t.Fatalf("trace seq gap: %d then %d", events[i-1].Seq, events[i].Seq)
				}
			}
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: the +Inf cumulative count must equal the counter of a
	// paired writer loop (each iteration did exactly one Inc and one
	// Observe).
	snap := h.Snapshot()
	if snap.Count != c.Value() {
		t.Fatalf("histogram count %d != ops counter %d after quiesce", snap.Count, c.Value())
	}
}

func TestInstrumentsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", nil)
	tr := NewTracer(16, 1)
	ev := TraceEvent{Kind: TraceLearn, Digest: 1}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
		tr.Record(ev)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %v/op, want 0", n)
	}
}
