package engine

// Guarded-engine persistence: the classifier snapshot plus the
// admission state that guards it, saved and resumed together.
//
// SaveEngine alone is amnesty-prone for a guarded deployment: the
// classifier survives the restart but the quarantine empties (a held
// attacker walks free) and the RONI probe budget refills (the
// exhaustion an attacker caused is forgotten). SaveGuarded therefore
// writes a second, sidecar envelope under the store key
// "<name>.admission" at the same generation as the classifier
// snapshot, holding whatever durable state the engine's admitter and
// quarantine sink expose through AdmissionStatePersister:
//
//	magic    "ADMS" 0x01 (format version)
//	uvarint  generation (matches the classifier snapshot's stamp)
//	uvarint  section count
//	per section:
//	  uvarint len(label), label bytes   ("admitter" | "quarantine")
//	  uvarint len(payload), payload bytes (the persister's SaveState)
//	uint32   big-endian CRC-32 (IEEE) of every preceding byte
//
// Resume is strict about presence the other way around: a missing
// sidecar is fine (snapshots from before this format, or a guard with
// no durable state), but a sidecar section whose target cannot load it
// is an error — silently dropping persisted quarantine state would
// re-open the exact amnesty this format closes.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// AdmissionStatePersister is the capability of carrying admitter or
// quarantine state across a restart. Implementations serialize their
// own versioned payload; the envelope (integrity, identification,
// generation stamp) is the engine's job.
type AdmissionStatePersister interface {
	// SaveState writes the component's durable state.
	SaveState(w io.Writer) error
	// LoadState replaces the component's state with a previously saved
	// payload.
	LoadState(r io.Reader) error
}

// admsMagic is the admission sidecar's magic plus format version.
var admsMagic = [5]byte{'A', 'D', 'M', 'S', 1}

// Sidecar section labels.
const (
	admsSectionAdmitter   = "admitter"
	admsSectionQuarantine = "quarantine"
)

// AdmissionSnapshotName is the store key of a guarded engine's
// admission sidecar: the classifier line "name" pairs with
// "name.admission" at the same generations.
func AdmissionSnapshotName(name string) string { return name + ".admission" }

// admsSection is one labeled persister payload inside the sidecar.
type admsSection struct {
	label   string
	payload []byte
}

// encodeAdmissionState builds the sidecar envelope; no sections means
// no sidecar (the caller skips the write).
func encodeAdmissionState(gen uint64, sections []admsSection) []byte {
	var b bytes.Buffer
	b.Write(admsMagic[:])
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { b.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(gen)
	put(uint64(len(sections)))
	for _, s := range sections {
		put(uint64(len(s.label)))
		b.WriteString(s.label)
		put(uint64(len(s.payload)))
		b.Write(s.payload)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])
	return b.Bytes()
}

// decodeAdmissionState parses and validates a sidecar envelope.
func decodeAdmissionState(data []byte) (gen uint64, sections []admsSection, err error) {
	if len(data) < len(admsMagic)+4 {
		return 0, nil, fmt.Errorf("engine: admission sidecar truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], admsMagic[:4]) {
		return 0, nil, fmt.Errorf("engine: bad admission sidecar magic %q", data[:4])
	}
	if data[4] != admsMagic[4] {
		return 0, nil, fmt.Errorf("engine: admission sidecar format version %d, want %d", data[4], admsMagic[4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("engine: admission sidecar checksum mismatch (have %08x, stored %08x)",
			sum, binary.BigEndian.Uint32(tail))
	}
	r := bytes.NewReader(body[len(admsMagic):])
	read := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("engine: admission sidecar %s: %w", what, err)
		}
		return v, nil
	}
	if gen, err = read("generation"); err != nil {
		return 0, nil, err
	}
	n, err := read("section count")
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(r.Len()) { // each section costs >= 1 byte
		return 0, nil, fmt.Errorf("engine: admission sidecar section count %d", n)
	}
	take := func(what string) ([]byte, error) {
		ln, err := read(what + " length")
		if err != nil {
			return nil, err
		}
		if ln > uint64(r.Len()) {
			return nil, fmt.Errorf("engine: admission sidecar truncated in %s", what)
		}
		b := make([]byte, ln)
		io.ReadFull(r, b)
		return b, nil
	}
	for i := uint64(0); i < n; i++ {
		label, err := take("section label")
		if err != nil {
			return 0, nil, err
		}
		payload, err := take("section payload")
		if err != nil {
			return 0, nil, err
		}
		sections = append(sections, admsSection{label: string(label), payload: payload})
	}
	if r.Len() != 0 {
		return 0, nil, fmt.Errorf("engine: admission sidecar has %d trailing bytes", r.Len())
	}
	return gen, sections, nil
}

// guardSections collects the persistable components of one guard —
// the shared save path of Guarded and GuardedSharded.
func guardSections(admit Admitter, sink QuarantineSink) ([]admsSection, error) {
	var sections []admsSection
	add := func(label string, p AdmissionStatePersister) error {
		var buf bytes.Buffer
		if err := p.SaveState(&buf); err != nil {
			return fmt.Errorf("engine: saving %s state: %w", label, err)
		}
		sections = append(sections, admsSection{label: label, payload: buf.Bytes()})
		return nil
	}
	if p, ok := admit.(AdmissionStatePersister); ok {
		if err := add(admsSectionAdmitter, p); err != nil {
			return nil, err
		}
	}
	if p, ok := sink.(AdmissionStatePersister); ok {
		if err := add(admsSectionQuarantine, p); err != nil {
			return nil, err
		}
	}
	return sections, nil
}

// applySections loads each sidecar section into its live component;
// a section whose target cannot load is an error, not a skip.
func applySections(sections []admsSection, admit Admitter, sink QuarantineSink) error {
	for _, s := range sections {
		var target AdmissionStatePersister
		var ok bool
		switch s.label {
		case admsSectionAdmitter:
			target, ok = admit.(AdmissionStatePersister)
			if !ok {
				return fmt.Errorf("engine: admitter %T cannot load persisted admission state", admit)
			}
		case admsSectionQuarantine:
			target, ok = sink.(AdmissionStatePersister)
			if !ok {
				return fmt.Errorf("engine: quarantine sink %T cannot load persisted quarantine state", sink)
			}
		default:
			// Unknown sections would have to be dropped to proceed, and a
			// dropped section is forgotten state — the amnesty again.
			return fmt.Errorf("engine: admission sidecar has unknown section %q", s.label)
		}
		if err := target.LoadState(bytes.NewReader(s.payload)); err != nil {
			return fmt.Errorf("engine: loading %s state: %w", s.label, err)
		}
	}
	return nil
}

// SaveGuarded persists g's serving snapshot (exactly as SaveEngine)
// plus an admission sidecar carrying the admitter's and quarantine
// sink's durable state, both stamped with the same generation. Guards
// whose components expose no durable state write no sidecar. The
// admission state is read after the classifier snapshot, so decisions
// that land between the two reads are in the sidecar but not the
// snapshot — the safe direction: a resume can re-vet, but can never
// un-forget.
func SaveGuarded(st SnapshotStore, name, backend string, g *Guarded) (uint64, error) {
	gen, err := SaveEngine(st, name, backend, g.eng)
	if err != nil {
		return 0, err
	}
	sections, err := guardSections(g.admit, g.cfg.Quarantine)
	if err != nil {
		return gen, err
	}
	if len(sections) == 0 {
		return gen, nil
	}
	if err := st.Write(AdmissionSnapshotName(name), gen, encodeAdmissionState(gen, sections)); err != nil {
		return gen, fmt.Errorf("engine: writing admission sidecar: %w", err)
	}
	return gen, nil
}

// LoadAdmissionState restores g's admitter and quarantine sink from
// name's admission sidecar at generation gen. It returns false (and
// no error) when no sidecar exists for that generation — snapshots
// saved through plain SaveEngine, or from before the sidecar format —
// and an error when a sidecar exists but cannot be applied in full.
func LoadAdmissionState(st SnapshotStore, name string, gen uint64, g *Guarded) (bool, error) {
	data, err := st.Read(AdmissionSnapshotName(name), gen)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	sgen, sections, err := decodeAdmissionState(data)
	if err != nil {
		return false, err
	}
	if sgen != gen {
		return false, fmt.Errorf("engine: admission sidecar stamped generation %d, want %d", sgen, gen)
	}
	if err := applySections(sections, g.admit, g.cfg.Quarantine); err != nil {
		return false, err
	}
	return true, nil
}

// ResumeGuarded restores a guarded engine from name's latest valid
// generation: the classifier resumes exactly as ResumeEngine, the
// fresh guard wraps it with admit and gcfg, and any admission sidecar
// saved at that generation is loaded into the guard — held mail stays
// held and the probe budget stays spent across the restart. Callers
// construct admit and gcfg exactly as for NewGuarded (the calibration
// pool, hooks, and sinks are wiring, not persisted state).
func ResumeGuarded(st SnapshotStore, name string, cfg Config, admit Admitter, gcfg GuardedConfig) (*Guarded, Envelope, error) {
	eng, env, err := ResumeEngine(st, name, cfg)
	if err != nil {
		return nil, Envelope{}, err
	}
	g := NewGuarded(eng, admit, gcfg)
	if _, err := LoadAdmissionState(st, name, env.Generation, g); err != nil {
		return nil, Envelope{}, fmt.Errorf("engine: resuming %q: %w", name, err)
	}
	return g, env, nil
}
