package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/mail"
	"repro/internal/obs"
)

// ShardKey routes a message to a shard: the Sharded engine sends m to
// shard key(m) % NumShards. A key must be a pure function of the
// message so that delivery, training, and retraining all agree on
// where a user's mail lives.
type ShardKey func(*mail.Message) uint64

// RecipientKey is the default ShardKey: an FNV-1a hash of the
// message's canonicalized To address. All of one recipient's mail
// lands on one shard, which is what makes per-user filter state — and
// the paper's §4.3 focused poisoning of a single user's filter — a
// meaningful deployment to simulate.
func RecipientKey(m *mail.Message) uint64 {
	return AddressKey(m.Header.Get("To"))
}

// AddressKey hashes one email address the way RecipientKey does:
// the display-name form "Name <user@host>" is reduced to the address
// inside the brackets, surrounding whitespace is dropped, and the
// result is lowercased before hashing, so routing never splits a
// mailbox across shards over spelling differences.
func AddressKey(addr string) uint64 {
	if i := strings.IndexByte(addr, '<'); i >= 0 {
		if j := strings.IndexByte(addr[i:], '>'); j > 0 {
			addr = addr[i+1 : i+j]
		}
	}
	addr = strings.ToLower(strings.TrimSpace(addr))
	// FNV-1a, inlined to keep the hot routing path allocation-free.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return h
}

// ShardedConfig tunes a Sharded engine.
type ShardedConfig struct {
	// Name labels the engine in stats (defaults to "sharded"); shard i
	// is labeled "Name/i".
	Name string
	// Workers is the per-shard batch parallelism. <= 0 selects
	// GOMAXPROCS divided across the shards (at least 1 each), so a
	// default-configured Sharded engine does not oversubscribe the
	// machine N-fold.
	Workers int
	// LearnBuffer is the capacity of the routing LearnStream channel
	// and of each shard's stream (<= 0 selects the Engine default).
	LearnBuffer int
	// Key routes messages to shards (nil selects RecipientKey).
	Key ShardKey
	// Obs, when non-nil, registers every shard's instruments with
	// per-shard labels (engine="Name/i"), so an operator can see one
	// shard's latency or admission mix diverge — the per-user
	// blast-radius isolation made observable.
	Obs *obs.Registry
	// Trace, when non-nil, receives each shard's sampled decision
	// events, stamped with the shard index.
	Trace *obs.Tracer
}

// Sharded is one logical filter partitioned across N independent
// Engine shards: every message is routed to the shard its ShardKey
// selects, so each shard serves — and is retrained on — a fixed slice
// of the user population. The serving surface mirrors Engine
// (Classify, ClassifyBatch, ScoreBatch, Retrain/RetrainIncremental/
// Swap, LearnStream, Stats), with batches grouped by shard, fanned
// out concurrently, and restitched into input order.
//
// Sharding buys two things the single Engine cannot offer: scoring
// throughput that scales across shards with no shared snapshot
// pointer contention, and per-user blast-radius isolation — poison
// trained into one shard degrades only the mailboxes routed there,
// which is exactly the containment the per-shard Stats breakdown
// makes observable.
type Sharded struct {
	name   string
	key    ShardKey
	shards []*Engine
}

// NewSharded partitions the serving layer across one Engine per
// classifier in clfs. Each classifier becomes shard i's generation-1
// snapshot; callers that want identically trained shards pass clones
// (or the same read-only classifier) and diverge them later through
// per-shard retraining.
func NewSharded(clfs []Classifier, cfg ShardedConfig) *Sharded {
	return newShardedAt(clfs, nil, cfg)
}

// newShardedAt builds the Sharded with each shard serving at its own
// starting generation (nil gens selects 1 everywhere) — the shared
// constructor of NewSharded and the per-shard resume path, where each
// restored shard keeps its persisted generation.
func newShardedAt(clfs []Classifier, gens []uint64, cfg ShardedConfig) *Sharded {
	if len(clfs) == 0 {
		panic("engine: NewSharded with no classifiers")
	}
	name := cfg.Name
	if name == "" {
		name = "sharded"
	}
	key := cfg.Key
	if key == nil {
		key = RecipientKey
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / len(clfs)
		if workers < 1 {
			workers = 1
		}
	}
	s := &Sharded{name: name, key: key, shards: make([]*Engine, len(clfs))}
	for i, clf := range clfs {
		gen := uint64(1)
		if gens != nil {
			gen = gens[i]
		}
		s.shards[i] = NewAt(clf, gen, Config{
			Name:        fmt.Sprintf("%s/%d", name, i),
			Workers:     workers,
			LearnBuffer: cfg.LearnBuffer,
			Obs:         cfg.Obs,
			Trace:       cfg.Trace,
		})
		s.shards[i].shard = int32(i)
	}
	return s
}

// Name returns the sharded engine's stats label.
func (s *Sharded) Name() string { return s.name }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's Engine for per-shard operations the
// combined surface does not cover (Snapshot, Generation, Classifier).
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// ShardFor returns the shard index m routes to.
func (s *Sharded) ShardFor(m *mail.Message) int {
	return int(s.key(m) % uint64(len(s.shards)))
}

// Partition splits a corpus into per-shard sub-corpora with the
// engine's own routing key: out[i] holds exactly the examples a
// delivery stream would route to shard i, in corpus order. Retraining
// shard i on out[i] therefore trains it on precisely the mail it
// serves.
func (s *Sharded) Partition(c *corpus.Corpus) []*corpus.Corpus {
	return PartitionByKey(c, len(s.shards), s.key)
}

// PartitionByKey is Partition for callers that have not built the
// Sharded engine yet (bootstrapping per-shard training corpora before
// constructing the shards). A nil key selects RecipientKey.
func PartitionByKey(c *corpus.Corpus, n int, key ShardKey) []*corpus.Corpus {
	if n < 1 {
		panic("engine: PartitionByKey with no shards")
	}
	if key == nil {
		key = RecipientKey
	}
	out := make([]*corpus.Corpus, n)
	for i := range out {
		out[i] = &corpus.Corpus{}
	}
	for _, ex := range c.Examples {
		out[key(ex.Msg)%uint64(n)].Add(ex.Msg, ex.Spam)
	}
	return out
}

// Classify routes one message to its shard and scores it there — the
// at-delivery verdict, identical to what a dedicated per-user engine
// would have returned.
func (s *Sharded) Classify(m *mail.Message) Result {
	return s.shards[s.ShardFor(m)].Classify(m)
}

// ClassifyBatch groups msgs by shard, fans the per-shard sub-batches
// out concurrently (each against its shard's single snapshot), and
// restitches the results into input order: out[i] is the verdict of
// msgs[i]. A shard retrain publishing mid-batch never mixes
// generations within that shard's slice of the batch, because each
// shard scores its whole sub-batch against the one snapshot its
// Engine loaded. It returns the first sub-batch error (and no
// results) if the context is cancelled.
func (s *Sharded) ClassifyBatch(ctx context.Context, msgs []*mail.Message) ([]Result, error) {
	if len(s.shards) == 1 {
		return s.shards[0].ClassifyBatch(ctx, msgs)
	}
	sub, idx := s.group(msgs)
	out := make([]Result, len(msgs))
	err := s.forEachShard(func(sh int) error {
		if len(sub[sh]) == 0 {
			return nil
		}
		res, err := s.shards[sh].ClassifyBatch(ctx, sub[sh])
		if err != nil {
			return err
		}
		for j, i := range idx[sh] {
			out[i] = res[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreBatch is ClassifyBatch without thresholding: out[i] is the
// spam score of msgs[i].
func (s *Sharded) ScoreBatch(ctx context.Context, msgs []*mail.Message) ([]float64, error) {
	if len(s.shards) == 1 {
		return s.shards[0].ScoreBatch(ctx, msgs)
	}
	sub, idx := s.group(msgs)
	out := make([]float64, len(msgs))
	err := s.forEachShard(func(sh int) error {
		if len(sub[sh]) == 0 {
			return nil
		}
		scores, err := s.shards[sh].ScoreBatch(ctx, sub[sh])
		if err != nil {
			return err
		}
		for j, i := range idx[sh] {
			out[i] = scores[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// group splits msgs by destination shard, remembering each message's
// original batch index for restitching.
func (s *Sharded) group(msgs []*mail.Message) (sub [][]*mail.Message, idx [][]int) {
	sub = make([][]*mail.Message, len(s.shards))
	idx = make([][]int, len(s.shards))
	for i, m := range msgs {
		sh := s.ShardFor(m)
		sub[sh] = append(sub[sh], m)
		idx[sh] = append(idx[sh], i)
	}
	return sub, idx
}

// forEachShard runs fn for every shard concurrently and returns the
// first error — the one spawn-per-shard scaffold the batch fan-out
// and the all-shards retrains share.
func (s *Sharded) forEachShard(fn func(sh int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for sh := range s.shards {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			errs[sh] = fn(sh)
		}(sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Retrain rebuilds shard sh's serving snapshot from factory and train,
// leaving every other shard untouched — the per-user retrain of a
// partitioned deployment. See Engine.Retrain for the publish
// semantics.
func (s *Sharded) Retrain(ctx context.Context, sh int, factory Factory, train *corpus.Corpus) (uint64, error) {
	return s.shards[sh].Retrain(ctx, factory, train)
}

// RetrainIncremental clones shard sh's serving snapshot, trains delta
// into the clone, and publishes it. See Engine.RetrainIncremental.
func (s *Sharded) RetrainIncremental(ctx context.Context, sh int, delta *corpus.Corpus) (uint64, error) {
	return s.shards[sh].RetrainIncremental(ctx, delta)
}

// Swap publishes clf as shard sh's new serving snapshot.
func (s *Sharded) Swap(sh int, clf Classifier) uint64 {
	return s.shards[sh].Swap(clf)
}

// RetrainAll partitions train by the routing key and rebuilds every
// shard from its own slice, concurrently; shard i is retrained on
// exactly the examples it would have served. It returns the new
// generation of every shard. Shards that finished before a
// cancellation keep their new snapshots; the returned error is the
// first ctx error observed.
func (s *Sharded) RetrainAll(ctx context.Context, factory Factory, train *corpus.Corpus) ([]uint64, error) {
	parts := s.Partition(train)
	gens := make([]uint64, len(s.shards))
	err := s.forEachShard(func(sh int) error {
		var err error
		gens[sh], err = s.shards[sh].Retrain(ctx, factory, parts[sh])
		return err
	})
	return gens, err
}

// RetrainIncrementalAll partitions delta by the routing key and
// extends every shard's snapshot with its own slice, concurrently.
// Every shard must serve a Cloner classifier.
func (s *Sharded) RetrainIncrementalAll(ctx context.Context, delta *corpus.Corpus) ([]uint64, error) {
	parts := s.Partition(delta)
	gens := make([]uint64, len(s.shards))
	err := s.forEachShard(func(sh int) error {
		var err error
		gens[sh], err = s.shards[sh].RetrainIncremental(ctx, parts[sh])
		return err
	})
	return gens, err
}

// SwapAll publishes clfs[i] as shard i's new snapshot, one shard at a
// time. len(clfs) must equal NumShards. Unlike a single Engine swap,
// the replacement is not atomic across shards: a batch in flight can
// see old snapshots on some shards and new ones on others — but never
// a mix within one shard's slice.
func (s *Sharded) SwapAll(clfs []Classifier) []uint64 {
	if len(clfs) != len(s.shards) {
		panic(fmt.Sprintf("engine: SwapAll with %d classifiers for %d shards", len(clfs), len(s.shards)))
	}
	gens := make([]uint64, len(s.shards))
	for i, clf := range clfs {
		gens[i] = s.shards[i].Swap(clf)
	}
	return gens
}

// LearnStream starts a bulk-training stream that routes each example
// to its shard's own LearnStream by the routing key: send examples on
// the returned channel, close it, then call wait for the total count
// learned across all shards (and the first error). The contract
// matches Engine.LearnStream: cancellation discards the remainder but
// keeps draining until wait observes it, so a blocked producer is
// always released, and producers must stop sending before calling
// wait.
func (s *Sharded) LearnStream(ctx context.Context) (chan<- Labeled, func() (int, error)) {
	ins := make([]chan<- Labeled, len(s.shards))
	waits := make([]func() (int, error), len(s.shards))
	for i, e := range s.shards {
		ins[i], waits[i] = e.LearnStream(ctx)
	}
	buf := s.shards[0].learnBuf
	in := make(chan Labeled, buf)
	stop := make(chan struct{})
	routerDone := make(chan struct{})
	var stopOnce sync.Once
	// cancelled records that the router shut down because of the
	// context, not a producer close. It is written before routerDone
	// closes and read after wait receives it, so the handoff is
	// ordered. Without it the cancellation error can be swallowed: the
	// router's exit closes the shard streams, and a shard consumer
	// that observes its closed channel before it happens to poll
	// ctx.Done() finishes with a nil error like any clean shutdown.
	var cancelled bool
	go func() {
		defer close(routerDone)
		// The shard streams close (and their consumers finish) exactly
		// when the router is done forwarding.
		defer func() {
			for i := range ins {
				close(ins[i])
			}
		}()
		for {
			select {
			case <-ctx.Done():
				// Mirror Engine.LearnStream's drain: keep the routing
				// channel flowing so a producer blocked on a full buffer
				// is released, stopping once wait observes cancellation.
				cancelled = true
				go drainUntil(in, stop)
				return
			case ex, ok := <-in:
				if !ok {
					return
				}
				// On cancellation a shard consumer drains its own stream
				// until its wait observes it — and wait below does not
				// collect the shard waits (which end those drains) until
				// the router has exited, so this forward is always
				// released.
				ins[s.ShardFor(ex.Msg)] <- ex
			}
		}
	}()
	wait := func() (int, error) {
		// The router must finish (closing the shard streams) before the
		// shard waits shut the per-shard drains down, or a forward
		// in flight at cancellation could block forever against a shard
		// whose drain already did its final sweep.
		<-routerDone
		total := 0
		var first error
		for i := range waits {
			n, err := waits[i]()
			total += n
			if err != nil && first == nil {
				first = err
			}
		}
		if first == nil && cancelled {
			first = ctx.Err()
		}
		stopOnce.Do(func() { close(stop) })
		return total, first
	}
	return in, wait
}

// ShardedStats aggregates the shard counters into one combined view
// plus the per-shard breakdown an operator needs to see a single
// user's filter degrading — the observability counterpart of the
// blast-radius isolation sharding provides.
type ShardedStats struct {
	Name string
	// Combined sums every shard's counters. Its Generation is the
	// oldest serving generation across shards (the laggard a rolling
	// retrain has not reached yet) and its Retrains is the total number
	// of snapshot publishes across all shards.
	Combined Stats
	// Shards is each shard's own counters, indexed by shard.
	Shards []Stats
	// Generations is each shard's serving generation, indexed by
	// shard — shards retrained independently drift apart here.
	Generations []uint64
}

// Stats returns a point-in-time aggregate of every shard's counters.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{
		Name:        s.name,
		Shards:      make([]Stats, len(s.shards)),
		Generations: make([]uint64, len(s.shards)),
	}
	st.Combined.Name = s.name
	for i, e := range s.shards {
		sh := e.Stats()
		st.Shards[i] = sh
		st.Generations[i] = sh.Generation
		if i == 0 || sh.Generation < st.Combined.Generation {
			st.Combined.Generation = sh.Generation
		}
		st.Combined.Retrains += sh.Retrains
		st.Combined.Classified += sh.Classified
		st.Combined.Scored += sh.Scored
		st.Combined.Learned += sh.Learned
		st.Combined.Batches += sh.Batches
		for l := range sh.ByLabel {
			st.Combined.ByLabel[l] += sh.ByLabel[l]
		}
		st.Combined.Publishes += sh.Publishes
		st.Combined.BatchLatency += sh.BatchLatency
		st.Combined.ClassifyLatency += sh.ClassifyLatency
		st.Combined.LearnLatency += sh.LearnLatency
		// Admission counters sum from the same per-shard snapshot the
		// breakdown reports, so sum(Shards[i].Admission) ==
		// Combined.Admission holds even against concurrent vetting —
		// the invariant class the Scored/Classified fix established.
		st.Combined.Admission.add(sh.Admission)
	}
	return st
}
