package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh, untrained classifier with the backend's
// default configuration.
type Factory func() Classifier

// Backend is one registered learner implementation.
type Backend struct {
	// Name is the registry key ("sbayes", "graham").
	Name string
	// Doc is a one-line description for usage strings.
	Doc string
	// New constructs a fresh classifier.
	New Factory
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// Register adds a backend to the registry. Backends call it from
// their package init, so importing a backend package is what makes it
// available. Register panics on an empty name, nil factory, or
// duplicate registration (programmer error).
func Register(b Backend) {
	if b.Name == "" {
		panic("engine: Register with empty backend name")
	}
	if b.New == nil {
		panic(fmt.Sprintf("engine: Register %q with nil factory", b.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("engine: backend %q registered twice", b.Name))
	}
	registry[b.Name] = b
}

// Lookup returns the named backend. The error lists the registered
// names so a typo in a -backend flag is self-explaining.
func Lookup(name string) (Backend, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return Backend{}, fmt.Errorf("engine: unknown backend %q (have %v)", name, backendsLocked())
	}
	return b, nil
}

// Backends returns the registered backend names in sorted order.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return backendsLocked()
}

func backendsLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
