package engine_test

// Guarded / GuardedSharded conformance: admission vets only the
// training path (ClassifyBatch is never blocked, even by a wedged
// admitter), decisions land in the engine's admission counters with
// the Vetted == Admitted+Quarantined+Rejected invariant, the sharded
// aggregation keeps sum(per-shard) == combined under concurrent
// vetting, and the publish hooks run in order with errors aborting the
// publish. Run under -race via `make race`.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/tokenize"
)

// markerAdmitter rejects bodies containing "poison", quarantines
// bodies containing "odd", accepts the rest.
type markerAdmitter struct{}

func (markerAdmitter) Name() string { return "marker" }
func (markerAdmitter) Admit(_ context.Context, m *mail.Message, _ *tokenize.TokenStream, _ bool) engine.AdmitDecision {
	switch {
	case strings.Contains(m.Body, "poison"):
		return engine.AdmitDecision{Verdict: engine.AdmitReject, Reason: "marker: poison"}
	case strings.Contains(m.Body, "odd"):
		return engine.AdmitDecision{Verdict: engine.AdmitQuarantine, Reason: "marker: odd"}
	default:
		return engine.AdmitDecision{Verdict: engine.AdmitAccept, Reason: "marker: clean"}
	}
}

// blockingAdmitter blocks every Admit call until released.
type blockingAdmitter struct {
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (b *blockingAdmitter) Name() string { return "blocking" }
func (b *blockingAdmitter) Admit(context.Context, *mail.Message, *tokenize.TokenStream, bool) engine.AdmitDecision {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return engine.AdmitDecision{Verdict: engine.AdmitAccept}
}

// heldSink records quarantined messages.
type heldSink struct {
	mu   sync.Mutex
	held []*mail.Message
}

func (s *heldSink) Hold(m *mail.Message, _ *tokenize.TokenStream, _ bool, _ string) {
	s.mu.Lock()
	s.held = append(s.held, m)
	s.mu.Unlock()
}

func TestGuardedLearnStreamVetsAndCounts(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		sink := &heldSink{}
		g := engine.NewGuarded(engine.New(trained(t, backend), engine.Config{}), markerAdmitter{},
			engine.GuardedConfig{Quarantine: sink})
		in, wait := g.LearnStream(context.Background())
		for i := 0; i < 30; i++ {
			body := fmt.Sprintf("clean message %d\n", i)
			switch i % 3 {
			case 1:
				body = fmt.Sprintf("poison message %d\n", i)
			case 2:
				body = fmt.Sprintf("odd message %d\n", i)
			}
			in <- engine.Labeled{Msg: msg(body), Spam: true}
		}
		close(in)
		n, err := wait()
		if err != nil {
			t.Fatal(err)
		}
		if n != 10 {
			t.Errorf("learned %d, want the 10 accepted", n)
		}
		a := g.Stats().Admission
		if a.Admitted != 10 || a.Rejected != 10 || a.Quarantined != 10 {
			t.Errorf("admission counters %+v, want 10/10/10", a)
		}
		if a.Vetted != a.Admitted+a.Quarantined+a.Rejected {
			t.Errorf("Vetted %d != sum of verdict counters (%+v)", a.Vetted, a)
		}
		if len(sink.held) != 10 {
			t.Errorf("sink holds %d, want 10", len(sink.held))
		}
	})
}

func TestGuardedNeverBlocksClassifyBatch(t *testing.T) {
	// A wedged admitter (stuck mid-probe, say) must not stall scoring:
	// the admission pipeline sits on the training path only.
	block := &blockingAdmitter{release: make(chan struct{}), entered: make(chan struct{})}
	g := engine.NewGuarded(engine.New(trained(t, "sbayes"), engine.Config{}), block, engine.GuardedConfig{})

	in, wait := g.LearnStream(context.Background())
	in <- engine.Labeled{Msg: msg("stuck example\n"), Spam: true}
	<-block.entered // the vetting goroutine is now wedged inside Admit

	batch := []*mail.Message{msg("winner lottery prize claim urgent millions\n"), msg("meeting agenda report\n")}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := g.ClassifyBatch(context.Background(), batch); err != nil {
			t.Error(err)
		}
		if g.Classify(batch[0]).Label != engine.Spam {
			t.Error("classify through the guard misfired")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ClassifyBatch blocked behind a wedged admitter")
	}
	close(block.release)
	close(in)
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardedLearnStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := engine.NewGuarded(engine.New(trained(t, "sbayes"), engine.Config{LearnBuffer: 1}), markerAdmitter{}, engine.GuardedConfig{})
	in, wait := g.LearnStream(ctx)
	in <- engine.Labeled{Msg: msg("clean a\n"), Spam: true}
	cancel()
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait returned %v, want context.Canceled", err)
	}
}

func TestGuardedRetrainVetsAndRunsHooks(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		b, err := engine.Lookup(backend)
		if err != nil {
			t.Fatal(err)
		}
		var order []string
		cfg := engine.GuardedConfig{
			PrePublish:  []func(engine.Classifier) error{func(engine.Classifier) error { order = append(order, "pre"); return nil }},
			PostPublish: []func(){func() { order = append(order, "post") }},
		}
		g := engine.NewGuarded(engine.New(b.New(), engine.Config{}), markerAdmitter{}, cfg)

		train := &corpus.Corpus{}
		for i := 0; i < 8; i++ {
			train.Add(msg(fmt.Sprintf("clean spam words %d\n", i)), true)
		}
		train.Add(msg("poison payload\n"), true)
		gen, err := g.Retrain(context.Background(), b.New, train)
		if err != nil {
			t.Fatal(err)
		}
		if gen != 2 {
			t.Fatalf("generation %d after first retrain", gen)
		}
		ns, _ := g.Engine().Classifier().Counts()
		if ns != 8 {
			t.Errorf("replacement trained on %d spam, want the 8 admitted", ns)
		}
		if strings.Join(order, ",") != "pre,post" {
			t.Errorf("hook order %v", order)
		}
		// RetrainIncremental vets too and the clone extends the admitted
		// state only.
		delta := &corpus.Corpus{}
		delta.Add(msg("clean followup\n"), true)
		delta.Add(msg("poison again\n"), true)
		if _, err := g.RetrainIncremental(context.Background(), delta); err != nil {
			t.Fatal(err)
		}
		ns, _ = g.Engine().Classifier().Counts()
		if ns != 9 {
			t.Errorf("incremental clone trained on %d spam, want 9", ns)
		}
	})
}

func TestGuardedPrePublishErrorAbortsPublish(t *testing.T) {
	b, err := engine.Lookup("sbayes")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("refit failed")
	posts := 0
	g := engine.NewGuarded(engine.New(b.New(), engine.Config{}), markerAdmitter{}, engine.GuardedConfig{
		PrePublish:  []func(engine.Classifier) error{func(engine.Classifier) error { return boom }},
		PostPublish: []func(){func() { posts++ }},
	})
	before := g.Generation()
	if _, err := g.Swap(b.New()); !errors.Is(err, boom) {
		t.Fatalf("Swap error %v, want the hook error", err)
	}
	if g.Generation() != before {
		t.Error("failed publish still advanced the generation")
	}
	if posts != 0 {
		t.Error("post-publish hook ran after an aborted publish")
	}
	// Sharded: the whole fleet publish aborts before any shard swaps.
	sh := engine.NewSharded([]engine.Classifier{b.New(), b.New()}, engine.ShardedConfig{})
	gs := engine.NewGuardedSharded(sh, markerAdmitter{}, engine.GuardedConfig{
		PrePublish: []func(engine.Classifier) error{func(engine.Classifier) error { return boom }},
	})
	if _, err := gs.SwapAll([]engine.Classifier{b.New(), b.New()}); !errors.Is(err, boom) {
		t.Fatalf("SwapAll error %v, want the hook error", err)
	}
	for i := 0; i < sh.NumShards(); i++ {
		if got := sh.Shard(i).Generation(); got != 1 {
			t.Errorf("shard %d generation %d after aborted fleet publish", i, got)
		}
	}
}

// TestGuardedShardedAdmissionCountersSumAcrossShards is the regression
// for the Sharded stats audit: under concurrent vetting from many
// goroutines, every Stats() snapshot must satisfy sum(per-shard
// admission counters) == combined, and each shard's Vetted must equal
// the sum of its verdict counters — the same invariant class the
// Scored/Classified fix established. Run under -race.
func TestGuardedShardedAdmissionCountersSumAcrossShards(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		b, err := engine.Lookup(backend)
		if err != nil {
			t.Fatal(err)
		}
		const nsh = 4
		clfs := make([]engine.Classifier, nsh)
		for i := range clfs {
			clfs[i] = b.New()
		}
		sh := engine.NewSharded(clfs, engine.ShardedConfig{})
		g := engine.NewGuardedSharded(sh, markerAdmitter{}, engine.GuardedConfig{Quarantine: &heldSink{}})

		const workers, perWorker = 8, 300
		var wg sync.WaitGroup
		stopReader := make(chan struct{})
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			for {
				st := g.Stats()
				var sum engine.AdmissionStats
				for i, s := range st.Shards {
					if s.Admission.Vetted != s.Admission.Admitted+s.Admission.Quarantined+s.Admission.Rejected {
						t.Errorf("shard %d Vetted %d != verdict sum (%+v)", i, s.Admission.Vetted, s.Admission)
					}
					sum.Vetted += s.Admission.Vetted
					sum.Admitted += s.Admission.Admitted
					sum.Quarantined += s.Admission.Quarantined
					sum.Rejected += s.Admission.Rejected
				}
				if sum != st.Combined.Admission {
					t.Errorf("sum(per-shard) %+v != combined %+v", sum, st.Combined.Admission)
				}
				select {
				case <-stopReader:
					return
				default:
				}
			}
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					body := "clean\n"
					switch i % 3 {
					case 1:
						body = "poison\n"
					case 2:
						body = "odd\n"
					}
					m := &mail.Message{
						Header: mail.Header{{Name: "To", Value: fmt.Sprintf("user%d@corp.example", (w*perWorker+i)%16)}},
						Body:   body,
					}
					g.Vet(context.Background(), m, true)
				}
			}(w)
		}
		wg.Wait()
		close(stopReader)
		<-readerDone

		st := g.Stats()
		if st.Combined.Admission.Vetted != workers*perWorker {
			t.Errorf("combined vetted %d, want %d", st.Combined.Admission.Vetted, workers*perWorker)
		}
		// Every shard saw traffic (16 users over 4 shards).
		for i, s := range st.Shards {
			if s.Admission.Vetted == 0 {
				t.Errorf("shard %d vetted nothing — routing broken", i)
			}
		}
	})
}

func TestGuardedShardedRetrainAllVetsAtGateway(t *testing.T) {
	b, err := engine.Lookup("sbayes")
	if err != nil {
		t.Fatal(err)
	}
	sh := engine.NewSharded([]engine.Classifier{b.New(), b.New()}, engine.ShardedConfig{})
	g := engine.NewGuardedSharded(sh, markerAdmitter{}, engine.GuardedConfig{})
	train := &corpus.Corpus{}
	for i := 0; i < 10; i++ {
		m := msg(fmt.Sprintf("clean words %d\n", i))
		m.Header.Set("To", fmt.Sprintf("user%d@corp.example", i%4))
		train.Add(m, true)
	}
	poison := msg("poison payload\n")
	poison.Header.Set("To", "user0@corp.example")
	train.Add(poison, true)

	gens, err := g.RetrainAll(context.Background(), b.New, train)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range gens {
		if gens[i] != 2 {
			t.Errorf("shard %d generation %d", i, gens[i])
		}
		ns, _ := sh.Shard(i).Classifier().Counts()
		total += ns
	}
	if total != 10 {
		t.Errorf("shards trained on %d spam total, want the 10 admitted", total)
	}
}
