package engine

// Admission control for the training path. The paper's causative
// threat model is that poison reaches the filter through training, so
// the serving layer grows a guard: every candidate training example is
// vetted by an Admitter before it can influence a snapshot, and the
// publish path gains hooks so swap-time defenses (dynamic-threshold
// refit, quarantine review) run exactly when a new generation goes
// live.
//
// The admission contract (AdmitVerdict, AdmitDecision, Admitter,
// QuarantineSink) is declared here — the concrete admitters live in
// internal/admission, which aliases these types the way sbayes aliases
// engine.Label — because Guarded and GuardedSharded must reference it
// and internal/admission already imports this package.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/corpus"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/tokenize"
)

// AdmitVerdict is an admission decision's three-way outcome.
type AdmitVerdict int8

const (
	// AdmitAccept admits the example into training.
	AdmitAccept AdmitVerdict = iota
	// AdmitQuarantine holds the example for later review (typically at
	// the next snapshot swap) instead of deciding now — the verdict of
	// an admitter whose probe budget is exhausted.
	AdmitQuarantine
	// AdmitReject drops the example from training.
	AdmitReject
)

// String names the verdict for reasons and traces.
func (v AdmitVerdict) String() string {
	switch v {
	case AdmitAccept:
		return "accept"
	case AdmitQuarantine:
		return "quarantine"
	case AdmitReject:
		return "reject"
	default:
		return fmt.Sprintf("AdmitVerdict(%d)", int(v))
	}
}

// AdmitDecision is one vetted training candidate's outcome.
type AdmitDecision struct {
	Verdict AdmitVerdict
	// Reason is a short human-readable explanation ("token flood: 1810
	// distinct tokens", "roni: impact -7.2", "probe budget exhausted").
	Reason string
}

// Admitter vets candidate training examples before they can influence
// a serving snapshot. Implementations must tolerate concurrent Admit
// calls — the guarded LearnStream is single-consumer, but batch
// vetting and tests exercise admitters from multiple goroutines.
type Admitter interface {
	// Name identifies the admitter in traces.
	Name() string
	// Admit decides one candidate's fate. spam is the label the example
	// would be trained under (the contamination assumption labels
	// attack mail spam; the pseudospam variant labels it ham). ts, when
	// non-nil, is m tokenized once by the caller with the tokenizer the
	// filter would learn it under — admitters consume it instead of
	// re-tokenizing (the tokenize-once contract). A nil ts means the
	// caller had no tokenizer; admitters that need tokens fall back to
	// tokenizing m themselves.
	Admit(ctx context.Context, m *mail.Message, ts *tokenize.TokenStream, spam bool) AdmitDecision
}

// QuarantineSink receives examples an Admitter quarantined. The
// concrete buffer (admission.Quarantine) holds them for re-scoring at
// the next snapshot swap; ts (possibly nil) is the candidate's token
// stream, kept alongside so the swap-time review does not re-tokenize.
type QuarantineSink interface {
	Hold(m *mail.Message, ts *tokenize.TokenStream, spam bool, reason string)
}

// ThresholdSetter is the capability of replacing a classifier's
// decision thresholds after training, as the §5.2 dynamic-threshold
// defense does when it refits cutoffs to the live score distribution.
// SpamBayes sets (θ0, θ1); Graham's binary rule uses the spam cutoff
// and ignores θ0.
type ThresholdSetter interface {
	SetThresholds(hamCutoff, spamCutoff float64) error
}

// AdmissionStats counts one engine's vetted training candidates.
type AdmissionStats struct {
	// Vetted is the total number of admission decisions recorded. It is
	// derived from the three verdict counters inside Stats — every
	// decision lands in exactly one bucket — so Vetted ==
	// Admitted+Quarantined+Rejected holds by construction even against
	// a reader racing in-flight decisions (the same derivation the
	// Classified/ByLabel invariant uses).
	Vetted uint64
	// Admitted counts candidates accepted into training.
	Admitted uint64
	// Quarantined counts candidates held for swap-time review.
	Quarantined uint64
	// Rejected counts candidates dropped from training.
	Rejected uint64
}

// add accumulates o into s field by field, recomputing nothing —
// Vetted sums too because it is itself a sum of the other three.
func (s *AdmissionStats) add(o AdmissionStats) {
	s.Vetted += o.Vetted
	s.Admitted += o.Admitted
	s.Quarantined += o.Quarantined
	s.Rejected += o.Rejected
}

// recordAdmission tallies one decision against the engine's admission
// counters. Guarded (and GuardedSharded, per destination shard) call
// it for every vetted candidate.
func (e *Engine) recordAdmission(v AdmitVerdict) {
	switch v {
	case AdmitAccept:
		e.admitted.Inc()
	case AdmitReject:
		e.admitRejected.Inc()
	default:
		e.quarantined.Inc()
	}
}

// admissionStats snapshots the counters, deriving Vetted from the
// per-verdict loads so the total always equals their sum.
func (e *Engine) admissionStats() AdmissionStats {
	a := AdmissionStats{
		Admitted:    e.admitted.Value(),
		Quarantined: e.quarantined.Value(),
		Rejected:    e.admitRejected.Value(),
	}
	a.Vetted = a.Admitted + a.Quarantined + a.Rejected
	return a
}

// GuardedConfig wires the swap-time defenses into a guarded engine's
// publish path.
type GuardedConfig struct {
	// Quarantine, if non-nil, receives every candidate the admitter
	// quarantines.
	Quarantine QuarantineSink
	// PrePublish hooks run on every replacement classifier after it is
	// built and before it is published — the one moment a swap-time
	// defense may still mutate it (e.g. a dynamic-threshold refit via
	// ThresholdSetter). A hook error aborts the publish, leaving the
	// serving snapshot unchanged.
	PrePublish []func(next Classifier) error
	// PostPublish hooks run once after each publish (a fleet-wide
	// publish on a guarded Sharded counts once) — where quarantine
	// review and admitter-pool refresh belong.
	PostPublish []func()
}

// Guarded threads admission control through an Engine's training path:
// LearnStream, Retrain, and RetrainIncremental vet every example
// through the Admitter before it is learned, quarantined examples are
// routed to the configured sink, and every publish runs the
// PrePublish/PostPublish hooks. Scoring (Classify, ClassifyBatch,
// ScoreBatch) passes straight through to the engine and is never
// blocked by admission work — vetting happens on the training path
// only.
type Guarded struct {
	eng   *Engine
	admit Admitter
	cfg   GuardedConfig
}

// NewGuarded wraps e with admission control.
func NewGuarded(e *Engine, admit Admitter, cfg GuardedConfig) *Guarded {
	if e == nil {
		panic("engine: NewGuarded with nil engine")
	}
	if admit == nil {
		panic("engine: NewGuarded with nil admitter")
	}
	return &Guarded{eng: e, admit: admit, cfg: cfg}
}

// Engine returns the wrapped engine.
func (g *Guarded) Engine() *Engine { return g.eng }

// Admitter returns the vetting policy.
func (g *Guarded) Admitter() Admitter { return g.admit }

// Name returns the wrapped engine's stats label.
func (g *Guarded) Name() string { return g.eng.Name() }

// Classify scores one message against the current snapshot,
// unguarded — admission vets training, never scoring.
func (g *Guarded) Classify(m *mail.Message) Result { return g.eng.Classify(m) }

// ClassifyBatch passes straight through to the engine; admission work
// never blocks it.
func (g *Guarded) ClassifyBatch(ctx context.Context, msgs []*mail.Message) ([]Result, error) {
	return g.eng.ClassifyBatch(ctx, msgs)
}

// ScoreBatch passes straight through to the engine.
func (g *Guarded) ScoreBatch(ctx context.Context, msgs []*mail.Message) ([]float64, error) {
	return g.eng.ScoreBatch(ctx, msgs)
}

// Generation returns the serving snapshot's generation.
func (g *Guarded) Generation() uint64 { return g.eng.Generation() }

// Stats returns the wrapped engine's counters, including the
// admission tallies this guard recorded.
func (g *Guarded) Stats() Stats { return g.eng.Stats() }

// Vet runs one candidate through the admitter, records the decision in
// the engine's admission counters, and routes a quarantine verdict to
// the configured sink. It is the tokenizing adapter over VetStream:
// the candidate is tokenized once here (with the serving snapshot's
// tokenizer, when it exposes one) and the same stream feeds the
// admitter and the quarantine sink. Callers already holding the
// stream call VetStream instead.
func (g *Guarded) Vet(ctx context.Context, m *mail.Message, spam bool) AdmitDecision {
	var ts *tokenize.TokenStream
	if tok := tokenizerOf(g.eng.Classifier()); tok != nil {
		ts = tok.Stream(m)
	}
	return g.VetStream(ctx, m, ts, spam)
}

// VetStream is the single vetting chokepoint every guarded training
// path shares: it runs one candidate (tokenized once upstream; ts may
// be nil) through the admitter, records the decision, and routes a
// quarantine verdict — stream and all — to the configured sink. It is
// exported so a deployment that trains through its own machinery (the
// scenario simulator's background rebuilds) can still vet inline
// without re-tokenizing.
func (g *Guarded) VetStream(ctx context.Context, m *mail.Message, ts *tokenize.TokenStream, spam bool) AdmitDecision {
	return vet(ctx, g.admit, g.cfg.Quarantine, g.eng, m, ts, spam)
}

// vet is the shared VetStream implementation of Guarded and
// GuardedSharded; counters land on the engine that would train the
// example.
func vet(ctx context.Context, admit Admitter, sink QuarantineSink, counters *Engine, m *mail.Message, ts *tokenize.TokenStream, spam bool) AdmitDecision {
	d := admit.Admit(ctx, m, ts, spam)
	counters.recordAdmission(d.Verdict)
	if ts != nil {
		if digest := ts.Digest(); counters.trace.Sampled(digest) {
			counters.trace.Record(obs.TraceEvent{
				Kind: obs.TraceAdmit, Digest: digest, Generation: counters.Generation(),
				Shard: counters.shard, Verdict: d.Verdict.String(), Reason: d.Reason,
			})
		}
	}
	if d.Verdict == AdmitQuarantine && sink != nil {
		sink.Hold(m, ts, spam, d.Reason)
	}
	return d
}

// VetCorpus vets every example of c in corpus order, returning the
// admitted subset. Quarantined examples go to the sink; rejected ones
// are dropped. It checks ctx between examples.
func (g *Guarded) VetCorpus(ctx context.Context, c *corpus.Corpus) (*corpus.Corpus, error) {
	tok := tokenizerOf(g.eng.Classifier())
	return vetCorpus(ctx, c, func(*mail.Message) *tokenize.Tokenizer { return tok }, g.VetStream)
}

// vetCorpus is the shared VetCorpus loop of Guarded and
// GuardedSharded, parameterized on the per-message tokenizer routing
// (tokFor returns nil when no tokenizer applies) and the vet
// chokepoint. Each example is tokenized exactly once, for the vetting
// decision and the sink together.
func vetCorpus(ctx context.Context, c *corpus.Corpus, tokFor func(*mail.Message) *tokenize.Tokenizer, vet func(context.Context, *mail.Message, *tokenize.TokenStream, bool) AdmitDecision) (*corpus.Corpus, error) {
	kept := &corpus.Corpus{}
	for _, ex := range c.Examples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ts *tokenize.TokenStream
		if tok := tokFor(ex.Msg); tok != nil {
			ts = tok.Stream(ex.Msg)
		}
		if vet(ctx, ex.Msg, ts, ex.Spam).Verdict == AdmitAccept {
			kept.Add(ex.Msg, ex.Spam)
		}
	}
	return kept, nil
}

// publish runs the PrePublish hooks on the replacement, installs it,
// then runs the PostPublish hooks. A PrePublish error aborts the
// publish with the serving snapshot unchanged, reporting the serving
// generation read once on entry (sbvet:snapshotonce — one decision,
// one snapshot read).
func (g *Guarded) publish(clf Classifier) (uint64, error) {
	cur := g.eng.Generation()
	for _, hook := range g.cfg.PrePublish {
		if err := hook(clf); err != nil {
			return cur, fmt.Errorf("engine: pre-publish hook: %w", err)
		}
	}
	gen := g.eng.Swap(clf)
	for _, hook := range g.cfg.PostPublish {
		hook()
	}
	return gen, nil
}

// Swap vets nothing — the caller built the replacement — but still
// runs the publish hooks, so swap-time defenses fire on externally
// built snapshots too (the scenario simulator's background rebuilds
// publish through here). Unlike Engine.Swap it can fail: a PrePublish
// hook error aborts the publish.
func (g *Guarded) Swap(clf Classifier) (uint64, error) {
	if clf == nil {
		panic("engine: Swap with nil classifier")
	}
	return g.publish(clf)
}

// Retrain vets train, builds a fresh classifier from the admitted
// subset, and publishes it through the hooks. See Engine.Retrain for
// the snapshot semantics; on error the serving snapshot is unchanged.
func (g *Guarded) Retrain(ctx context.Context, factory Factory, train *corpus.Corpus) (uint64, error) {
	if factory == nil {
		panic("engine: Retrain with nil factory")
	}
	cur := g.eng.Generation()
	kept, err := g.VetCorpus(ctx, train)
	if err != nil {
		return cur, err
	}
	replacement := factory()
	if err := trainAll(ctx, replacement, kept); err != nil {
		return cur, err
	}
	return g.publish(replacement)
}

// RetrainIncremental vets delta, clones the serving snapshot, trains
// the admitted subset into the clone, and publishes it through the
// hooks. It requires the serving classifier to be a Cloner. The
// classifier to clone and the generation reported on error come from
// one Snapshot() read: the previous per-call accessor reads could
// straddle a concurrent publish and pair the cloned classifier with
// another generation's number (the torn-read class sbvet:snapshotonce
// now rejects at lint time).
func (g *Guarded) RetrainIncremental(ctx context.Context, delta *corpus.Corpus) (uint64, error) {
	cur, gen := g.eng.Snapshot()
	cloner, ok := cur.(Cloner)
	if !ok {
		return gen, fmt.Errorf("engine: %T is not a Cloner; use Retrain", cur)
	}
	kept, err := g.VetCorpus(ctx, delta)
	if err != nil {
		return gen, err
	}
	replacement := cloner.CloneClassifier()
	if err := trainAll(ctx, replacement, kept); err != nil {
		return gen, err
	}
	return g.publish(replacement)
}

// LearnStream starts a guarded bulk-training stream: every example is
// vetted, admitted examples flow into the engine's own LearnStream,
// and the wait count is the number actually learned. The contract
// matches Engine.LearnStream — cancellation discards the remainder but
// keeps draining until wait observes it, and producers must stop
// sending before calling wait.
func (g *Guarded) LearnStream(ctx context.Context) (chan<- Labeled, func() (int, error)) {
	inner, innerWait := g.eng.LearnStream(ctx)
	tok := tokenizerOf(g.eng.Classifier())
	return guardStream(ctx, inner, innerWait, g.eng.learnBuf,
		func(*mail.Message) *tokenize.Tokenizer { return tok }, g.VetStream)
}

// guardStream interposes a vetting goroutine in front of a training
// stream — the shared scaffold of Guarded.LearnStream and
// GuardedSharded.LearnStream. Each example is tokenized exactly once
// (unless the producer already attached a stream): the same stream
// feeds the admission decision and, on acceptance, rides the Labeled
// into the inner learn stream so the learner never re-tokenizes. The
// drain contract mirrors the Sharded router: on cancellation the
// vetting goroutine stops forwarding and keeps the outer channel
// flowing until wait observes the error, so a producer blocked on a
// full buffer is always released.
func guardStream(ctx context.Context, inner chan<- Labeled, innerWait func() (int, error), buf int, tokFor func(*mail.Message) *tokenize.Tokenizer, vet func(context.Context, *mail.Message, *tokenize.TokenStream, bool) AdmitDecision) (chan<- Labeled, func() (int, error)) {
	in := make(chan Labeled, buf)
	stop := make(chan struct{})
	vetDone := make(chan struct{})
	var stopOnce sync.Once
	// cancelled is written before vetDone closes and read after wait
	// receives it, so the handoff is ordered (see the Sharded router
	// for why the inner wait alone can swallow the cancellation).
	var cancelled bool
	go func() {
		defer close(vetDone)
		// The inner stream closes (and its consumer finishes) exactly
		// when vetting is done forwarding.
		defer close(inner)
		for {
			select {
			case <-ctx.Done():
				cancelled = true
				go drainUntil(in, stop)
				return
			case ex, ok := <-in:
				if !ok {
					return
				}
				ts := ex.Stream
				if ts == nil {
					if tok := tokFor(ex.Msg); tok != nil {
						ts = tok.Stream(ex.Msg)
					}
				}
				if vet(ctx, ex.Msg, ts, ex.Spam).Verdict == AdmitAccept {
					// On cancellation the inner consumer drains its own
					// stream until its wait observes it, and wait below
					// does not call innerWait until vetting has exited,
					// so this forward is always released.
					ex.Stream = ts
					inner <- ex
				}
			}
		}
	}()
	wait := func() (int, error) {
		<-vetDone
		n, err := innerWait()
		if err == nil && cancelled {
			err = ctx.Err()
		}
		stopOnce.Do(func() { close(stop) })
		return n, err
	}
	return in, wait
}

// GuardedSharded threads one admission policy through a Sharded
// engine's training path — the gateway deployment, where mail is
// vetted once upstream of the partition and each decision is counted
// against the shard the example would have trained. sum(per-shard
// admission counters) == the combined view therefore holds by the same
// aggregation that keeps every other Sharded counter honest.
type GuardedSharded struct {
	sh    *Sharded
	admit Admitter
	cfg   GuardedConfig
}

// NewGuardedSharded wraps s with admission control.
func NewGuardedSharded(s *Sharded, admit Admitter, cfg GuardedConfig) *GuardedSharded {
	if s == nil {
		panic("engine: NewGuardedSharded with nil sharded engine")
	}
	if admit == nil {
		panic("engine: NewGuardedSharded with nil admitter")
	}
	return &GuardedSharded{sh: s, admit: admit, cfg: cfg}
}

// Sharded returns the wrapped sharded engine.
func (g *GuardedSharded) Sharded() *Sharded { return g.sh }

// Admitter returns the vetting policy.
func (g *GuardedSharded) Admitter() Admitter { return g.admit }

// Classify routes and scores unguarded.
func (g *GuardedSharded) Classify(m *mail.Message) Result { return g.sh.Classify(m) }

// ClassifyBatch passes straight through to the sharded engine.
func (g *GuardedSharded) ClassifyBatch(ctx context.Context, msgs []*mail.Message) ([]Result, error) {
	return g.sh.ClassifyBatch(ctx, msgs)
}

// ScoreBatch passes straight through to the sharded engine.
func (g *GuardedSharded) ScoreBatch(ctx context.Context, msgs []*mail.Message) ([]float64, error) {
	return g.sh.ScoreBatch(ctx, msgs)
}

// Stats returns the sharded engine's aggregated counters, including
// per-shard admission tallies.
func (g *GuardedSharded) Stats() ShardedStats { return g.sh.Stats() }

// Vet runs one candidate through the admitter, counting the decision
// against the shard the example routes to. Like Guarded.Vet it is the
// tokenizing adapter: the candidate is tokenized once with its
// destination shard's tokenizer and the stream shared with the sink.
func (g *GuardedSharded) Vet(ctx context.Context, m *mail.Message, spam bool) AdmitDecision {
	sh := g.sh.shards[g.sh.ShardFor(m)]
	var ts *tokenize.TokenStream
	if tok := tokenizerOf(sh.Classifier()); tok != nil {
		ts = tok.Stream(m)
	}
	return vet(ctx, g.admit, g.cfg.Quarantine, sh, m, ts, spam)
}

// VetStream vets one already-tokenized candidate (ts may be nil),
// counting the decision against the shard the example routes to.
func (g *GuardedSharded) VetStream(ctx context.Context, m *mail.Message, ts *tokenize.TokenStream, spam bool) AdmitDecision {
	return vet(ctx, g.admit, g.cfg.Quarantine, g.sh.shards[g.sh.ShardFor(m)], m, ts, spam)
}

// tokFor resolves each shard's serving tokenizer once and returns the
// per-message routing view of them, so batch vetting and the guarded
// stream tokenize each candidate exactly once with the tokenizer of
// the shard that would train it.
func (g *GuardedSharded) tokFor() func(*mail.Message) *tokenize.Tokenizer {
	toks := make([]*tokenize.Tokenizer, g.sh.NumShards())
	for i, sh := range g.sh.shards {
		toks[i] = tokenizerOf(sh.Classifier())
	}
	return func(m *mail.Message) *tokenize.Tokenizer { return toks[g.sh.ShardFor(m)] }
}

// VetCorpus vets every example in corpus order, returning the admitted
// subset (still unpartitioned — the caller routes it).
func (g *GuardedSharded) VetCorpus(ctx context.Context, c *corpus.Corpus) (*corpus.Corpus, error) {
	return vetCorpus(ctx, c, g.tokFor(), g.VetStream)
}

// RetrainAll vets train at the gateway, partitions the admitted subset
// by the routing key, rebuilds every shard from its own slice
// concurrently, and publishes each through the PrePublish hooks; the
// PostPublish hooks run once for the fleet-wide publish.
func (g *GuardedSharded) RetrainAll(ctx context.Context, factory Factory, train *corpus.Corpus) ([]uint64, error) {
	if factory == nil {
		panic("engine: RetrainAll with nil factory")
	}
	kept, err := g.VetCorpus(ctx, train)
	if err != nil {
		return nil, err
	}
	parts := g.sh.Partition(kept)
	gens := make([]uint64, g.sh.NumShards())
	err = g.sh.forEachShard(func(sh int) error {
		replacement := factory()
		if err := trainAll(ctx, replacement, parts[sh]); err != nil {
			return err
		}
		for _, hook := range g.cfg.PrePublish {
			if err := hook(replacement); err != nil {
				return fmt.Errorf("engine: pre-publish hook (shard %d): %w", sh, err)
			}
		}
		gens[sh] = g.sh.shards[sh].Swap(replacement)
		return nil
	})
	if err != nil {
		return gens, err
	}
	for _, hook := range g.cfg.PostPublish {
		hook()
	}
	return gens, nil
}

// RetrainIncrementalAll vets delta at the gateway, partitions the
// admitted subset by the routing key, and extends every shard's
// serving snapshot with its own slice concurrently — the sharded
// guarded live-learn path (the serving daemon's learn queue drains
// through here). Each shard's replacement is cloned from its own
// snapshot and passes the PrePublish hooks before its swap; the
// PostPublish hooks run once for the fleet-wide publish. Every shard
// must serve a Cloner classifier.
func (g *GuardedSharded) RetrainIncrementalAll(ctx context.Context, delta *corpus.Corpus) ([]uint64, error) {
	kept, err := g.VetCorpus(ctx, delta)
	if err != nil {
		return nil, err
	}
	parts := g.sh.Partition(kept)
	gens := make([]uint64, g.sh.NumShards())
	err = g.sh.forEachShard(func(sh int) error {
		cur, _ := g.sh.shards[sh].Snapshot()
		cloner, ok := cur.(Cloner)
		if !ok {
			return fmt.Errorf("engine: shard %d serves %T, not a Cloner", sh, cur)
		}
		replacement := cloner.CloneClassifier()
		if err := trainAll(ctx, replacement, parts[sh]); err != nil {
			return err
		}
		for _, hook := range g.cfg.PrePublish {
			if err := hook(replacement); err != nil {
				return fmt.Errorf("engine: pre-publish hook (shard %d): %w", sh, err)
			}
		}
		gens[sh] = g.sh.shards[sh].Swap(replacement)
		return nil
	})
	if err != nil {
		return gens, err
	}
	for _, hook := range g.cfg.PostPublish {
		hook()
	}
	return gens, nil
}

// SwapAll publishes clfs[i] as shard i's new snapshot, running the
// PrePublish hooks on every replacement first (so a hook error aborts
// the whole fleet publish atomically — no shard has swapped yet) and
// the PostPublish hooks once after.
func (g *GuardedSharded) SwapAll(clfs []Classifier) ([]uint64, error) {
	if len(clfs) != g.sh.NumShards() {
		panic(fmt.Sprintf("engine: SwapAll with %d classifiers for %d shards", len(clfs), g.sh.NumShards()))
	}
	for i, clf := range clfs {
		for _, hook := range g.cfg.PrePublish {
			if err := hook(clf); err != nil {
				return nil, fmt.Errorf("engine: pre-publish hook (shard %d): %w", i, err)
			}
		}
	}
	gens := g.sh.SwapAll(clfs)
	for _, hook := range g.cfg.PostPublish {
		hook()
	}
	return gens, nil
}

// LearnStream starts a guarded routed bulk-training stream: every
// example is vetted (counters on its destination shard), and admitted
// examples flow into the sharded engine's own routing LearnStream.
func (g *GuardedSharded) LearnStream(ctx context.Context) (chan<- Labeled, func() (int, error)) {
	inner, innerWait := g.sh.LearnStream(ctx)
	return guardStream(ctx, inner, innerWait, g.sh.shards[0].learnBuf, g.tokFor(), g.VetStream)
}
