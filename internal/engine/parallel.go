package engine

import (
	"context"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(0..n-1) across up to workers goroutines (n when
// workers <= 0 or workers > n) and waits for completion. Indices are
// handed out through a shared atomic cursor, so an uneven workload
// cannot starve a worker and no per-item channel send is paid — the
// scheme the Engine's batch sweep and eval's fold/shard parallelism
// share. Each index is processed exactly once; fn must be safe to run
// concurrently for distinct indices, and results are deterministic as
// long as fn(i) writes only to index-i-owned state.
//
// It stops handing out work and returns ctx.Err() once cancellation
// is observed; fn calls already started are completed.
func ParallelFor(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var cursor atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
