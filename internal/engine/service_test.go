package engine

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mail"
)

// stubClassifier is a deterministic in-memory Classifier for service
// tests: the score is parsed from the message body.
type stubClassifier struct {
	nspam, nham int
	slow        time.Duration
	calls       atomic.Int64
}

func (s *stubClassifier) Learn(m *mail.Message, isSpam bool) {
	if isSpam {
		s.nspam++
	} else {
		s.nham++
	}
}

func (s *stubClassifier) LearnWeighted(m *mail.Message, isSpam bool, weight int) {
	for i := 0; i < weight; i++ {
		s.Learn(m, isSpam)
	}
}

func (s *stubClassifier) Unlearn(m *mail.Message, isSpam bool) error {
	if isSpam && s.nspam == 0 || !isSpam && s.nham == 0 {
		return errors.New("stub: underflow")
	}
	if isSpam {
		s.nspam--
	} else {
		s.nham--
	}
	return nil
}

func (s *stubClassifier) Score(m *mail.Message) float64 {
	s.calls.Add(1)
	if s.slow > 0 {
		time.Sleep(s.slow)
	}
	v, err := strconv.ParseFloat(m.Body, 64)
	if err != nil {
		return 0.5
	}
	return v
}

func (s *stubClassifier) Classify(m *mail.Message) (Label, float64) {
	v := s.Score(m)
	switch {
	case v <= 0.15:
		return Ham, v
	case v <= 0.9:
		return Unsure, v
	default:
		return Spam, v
	}
}

func (s *stubClassifier) Counts() (int, int) { return s.nspam, s.nham }

func scoreMsg(v float64) *mail.Message {
	return &mail.Message{Body: strconv.FormatFloat(v, 'g', -1, 64)}
}

func TestClassifyBatchOrderPreserved(t *testing.T) {
	e := New(&stubClassifier{}, Config{Workers: 7})
	msgs := make([]*mail.Message, 100)
	for i := range msgs {
		msgs[i] = scoreMsg(float64(i) / 100)
	}
	out, err := e.ClassifyBatch(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if want := float64(i) / 100; res.Score != want {
			t.Fatalf("out[%d].Score = %v, want %v (order broken)", i, res.Score, want)
		}
	}
}

func TestScoreBatch(t *testing.T) {
	e := New(&stubClassifier{}, Config{Workers: 3})
	msgs := []*mail.Message{scoreMsg(0.1), scoreMsg(0.5), scoreMsg(0.95)}
	out, err := e.ScoreBatch(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.5, 0.95}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestClassifyBatchEmpty(t *testing.T) {
	e := New(&stubClassifier{}, Config{})
	out, err := e.ClassifyBatch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("%d results for empty batch", len(out))
	}
}

func TestClassifyBatchCancellation(t *testing.T) {
	clf := &stubClassifier{slow: time.Millisecond}
	e := New(clf, Config{Workers: 2})
	msgs := make([]*mail.Message, 10000)
	for i := range msgs {
		msgs[i] = scoreMsg(0.5)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := e.ClassifyBatch(ctx, msgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation stopped the sweep well short of the full batch.
	if n := clf.calls.Load(); n >= int64(len(msgs)) {
		t.Errorf("classified all %d messages despite cancellation", n)
	}
	// A cancelled batch publishes no counters.
	if s := e.Stats(); s.Classified != 0 || s.Batches != 0 {
		t.Errorf("cancelled batch published stats %+v", s)
	}
}

func TestEngineStats(t *testing.T) {
	e := New(&stubClassifier{}, Config{Name: "stub", Workers: 4})
	msgs := []*mail.Message{scoreMsg(0.05), scoreMsg(0.5), scoreMsg(0.95), scoreMsg(0.99)}
	if _, err := e.ClassifyBatch(context.Background(), msgs); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Name != "stub" {
		t.Errorf("name %q", s.Name)
	}
	if s.Classified != 4 || s.Batches != 1 {
		t.Errorf("classified %d in %d batches, want 4 in 1", s.Classified, s.Batches)
	}
	if s.ByLabel[Ham] != 1 || s.ByLabel[Unsure] != 1 || s.ByLabel[Spam] != 2 {
		t.Errorf("label counts %v, want [1 1 2]", s.ByLabel)
	}
}

// TestStatsInvariantMixedLoad is the regression for the ScoreBatch
// accounting bug: score-only traffic used to inflate Classified with
// no ByLabel entries, breaking sum(ByLabel) == Classified. Under any
// mix of Classify, ClassifyBatch, and ScoreBatch the invariant must
// hold, with score-only traffic in its own Scored counter.
func TestStatsInvariantMixedLoad(t *testing.T) {
	e := New(&stubClassifier{}, Config{Workers: 3})
	ctx := context.Background()
	batch := []*mail.Message{scoreMsg(0.05), scoreMsg(0.5), scoreMsg(0.95)}

	e.Classify(scoreMsg(0.99))
	if _, err := e.ClassifyBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScoreBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	e.Classify(scoreMsg(0.01))
	if _, err := e.ScoreBatch(ctx, batch[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ClassifyBatch(ctx, batch[:1]); err != nil {
		t.Fatal(err)
	}

	s := e.Stats()
	var byLabel uint64
	for _, n := range s.ByLabel {
		byLabel += n
	}
	if byLabel != s.Classified {
		t.Errorf("sum(ByLabel) = %d != Classified = %d", byLabel, s.Classified)
	}
	if s.Classified != 6 {
		t.Errorf("Classified = %d, want 6 (2 singles + 3 + 1 batched)", s.Classified)
	}
	if s.Scored != 5 {
		t.Errorf("Scored = %d, want 5 (3 + 2 score-only)", s.Scored)
	}
	if s.Batches != 4 {
		t.Errorf("Batches = %d, want 4", s.Batches)
	}
}

// TestClassifyLatencyRecorded is the regression for the invisible
// online hot path: single-message Classify used to record no latency
// at all, so an at-delivery deployment's scoring cost never surfaced
// in Stats.
func TestClassifyLatencyRecorded(t *testing.T) {
	e := New(&stubClassifier{slow: time.Millisecond}, Config{})
	for i := 0; i < 3; i++ {
		e.Classify(scoreMsg(0.5))
	}
	s := e.Stats()
	if s.ClassifyLatency < 3*time.Millisecond {
		t.Errorf("ClassifyLatency = %v, want >= 3ms of stub work", s.ClassifyLatency)
	}
	if s.BatchLatency != 0 {
		t.Errorf("single-message classifies leaked into BatchLatency (%v)", s.BatchLatency)
	}
	if _, err := e.ClassifyBatch(context.Background(), []*mail.Message{scoreMsg(0.5)}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats(); got.BatchLatency == 0 {
		t.Error("batch call recorded no BatchLatency")
	}
}

func TestLearnStream(t *testing.T) {
	clf := &stubClassifier{}
	e := New(clf, Config{LearnBuffer: 4})
	in, wait := e.LearnStream(context.Background())
	for i := 0; i < 25; i++ {
		in <- Labeled{Msg: scoreMsg(0.5), Spam: i%5 == 0}
	}
	close(in)
	n, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("learned %d, want 25", n)
	}
	ns, nh := clf.Counts()
	if ns != 5 || nh != 20 {
		t.Fatalf("counts (%d, %d), want (5, 20)", ns, nh)
	}
	if s := e.Stats(); s.Learned != 25 {
		t.Errorf("stats.Learned = %d", s.Learned)
	}
}

func TestLearnStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(&stubClassifier{}, Config{})
	in, wait := e.LearnStream(ctx)
	in <- Labeled{Msg: scoreMsg(0.5), Spam: true}
	cancel()
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLearnStreamCancellationUnblocksProducer(t *testing.T) {
	// After cancellation the stream keeps draining until wait observes
	// it, so a producer pushing far past the buffer capacity finishes
	// without having to close the channel. The producer signals
	// completion before wait is called (the documented contract: no
	// sends may race wait's return).
	ctx, cancel := context.WithCancel(context.Background())
	e := New(&stubClassifier{}, Config{LearnBuffer: 1})
	in, wait := e.LearnStream(ctx)
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			in <- Labeled{Msg: scoreMsg(0.5)}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after cancellation")
	}
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLearnStreamCancelledThenClosedDoesNotSpin(t *testing.T) {
	// Regression for the drain's post-stop flush: a closed channel is
	// always receivable, so the flush must exit on !ok instead of
	// spinning at 100% CPU forever. The close-then-wait pattern is the
	// one cmd/sbfilter and examples/backends use.
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		e := New(&stubClassifier{}, Config{LearnBuffer: 1})
		in, wait := e.LearnStream(ctx)
		cancel()
		in <- Labeled{Msg: scoreMsg(0.5)}
		close(in)
		// The consumer may drain the item and observe the close before
		// it observes the cancellation, so err is either nil or
		// Canceled; the property under test is that wait returns and
		// every goroutine exits.
		if _, err := wait(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain goroutines did not exit: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLearnStreamAbandonedAfterCancelDoesNotLeak(t *testing.T) {
	// Regression: a producer that abandons the channel after
	// cancellation (without closing it) used to leave the drain
	// goroutine blocked on a receive forever. The drain now stops once
	// wait observes the cancellation.
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		e := New(&stubClassifier{}, Config{LearnBuffer: 2})
		in, wait := e.LearnStream(ctx)
		in <- Labeled{Msg: scoreMsg(0.5), Spam: true}
		cancel()
		if _, err := wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
		// The channel is deliberately never closed.
		_ = in
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 abandoned streams",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRegisterValidation(t *testing.T) {
	for _, b := range []Backend{
		{Name: "", New: func() Classifier { return &stubClassifier{} }},
		{Name: "stub-no-factory"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", b)
				}
			}()
			Register(b)
		}()
	}
	// Duplicate registration panics too.
	Register(Backend{Name: "stub-dup-test", New: func() Classifier { return &stubClassifier{} }})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Backend{Name: "stub-dup-test", New: func() Classifier { return &stubClassifier{} }})
}
