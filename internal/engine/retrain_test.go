package engine

// Snapshot-swap suite: the Engine must keep scoring at full speed
// while Retrain builds a replacement, and no verdict may ever be
// computed against a half-trained filter. Run under -race (make
// race).

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mail"
)

// countingClassifier exposes exactly how many examples it has been
// trained on: Score returns float64(trained). A fully built
// replacement therefore scores len(train); any other non-initial
// value observed by a scorer is a half-trained filter leaking through
// the snapshot boundary.
type countingClassifier struct {
	trained int
}

func (c *countingClassifier) Learn(m *mail.Message, isSpam bool) { c.trained++ }
func (c *countingClassifier) LearnWeighted(m *mail.Message, isSpam bool, weight int) {
	c.trained += weight
}
func (c *countingClassifier) Unlearn(m *mail.Message, isSpam bool) error {
	if c.trained == 0 {
		return errors.New("counting: underflow")
	}
	c.trained--
	return nil
}
func (c *countingClassifier) Score(m *mail.Message) float64 { return float64(c.trained) }
func (c *countingClassifier) Classify(m *mail.Message) (Label, float64) {
	return Unsure, float64(c.trained)
}
func (c *countingClassifier) Counts() (int, int) { return c.trained, 0 }
func (c *countingClassifier) CloneClassifier() Classifier {
	return &countingClassifier{trained: c.trained}
}

// trainCorpus builds an n-example corpus of dummy messages.
func trainCorpus(n int) *corpus.Corpus {
	c := &corpus.Corpus{}
	for i := 0; i < n; i++ {
		c.Add(&mail.Message{Body: "x"}, i%2 == 0)
	}
	return c
}

func TestRetrainPublishesNewGeneration(t *testing.T) {
	e := New(&countingClassifier{}, Config{Workers: 2})
	if g := e.Generation(); g != 1 {
		t.Fatalf("initial generation %d, want 1", g)
	}
	gen, err := e.Retrain(context.Background(), func() Classifier { return &countingClassifier{} }, trainCorpus(10))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("retrained generation %d, want 2", gen)
	}
	clf, g := e.Snapshot()
	if g != gen {
		t.Fatalf("Snapshot generation %d != Retrain result %d", g, gen)
	}
	if got := clf.Score(&mail.Message{Body: "x"}); got != 10 {
		t.Fatalf("retrained snapshot scores %v, want 10 (fully trained)", got)
	}
	s := e.Stats()
	if s.Generation != 2 || s.Retrains != 1 {
		t.Fatalf("stats generation/retrains = %d/%d, want 2/1", s.Generation, s.Retrains)
	}
}

func TestRetrainCancelledKeepsServingSnapshot(t *testing.T) {
	e := New(&countingClassifier{trained: 7}, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gen, err := e.Retrain(ctx, func() Classifier { return &countingClassifier{} }, trainCorpus(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if gen != 1 || e.Generation() != 1 {
		t.Fatalf("cancelled retrain moved the generation to %d", e.Generation())
	}
	if got := e.Classifier().Score(&mail.Message{Body: "x"}); got != 7 {
		t.Fatalf("serving snapshot changed: score %v, want 7", got)
	}
}

func TestRetrainIncrementalClonesServingSnapshot(t *testing.T) {
	base := &countingClassifier{trained: 5}
	e := New(base, Config{})
	gen, err := e.RetrainIncremental(context.Background(), trainCorpus(3))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation %d, want 2", gen)
	}
	if got := e.Classifier().Score(&mail.Message{Body: "x"}); got != 8 {
		t.Fatalf("incremental snapshot scores %v, want 8 (5 cloned + 3 delta)", got)
	}
	// The previous snapshot was cloned, not mutated.
	if base.trained != 5 {
		t.Fatalf("incremental retraining mutated the old snapshot (trained = %d)", base.trained)
	}
}

func TestRetrainIncrementalRequiresCloner(t *testing.T) {
	e := New(&stubClassifier{}, Config{})
	if _, err := e.RetrainIncremental(context.Background(), trainCorpus(1)); err == nil {
		t.Fatal("RetrainIncremental accepted a non-Cloner classifier")
	}
	if g := e.Generation(); g != 1 {
		t.Fatalf("failed incremental retrain moved the generation to %d", g)
	}
}

func TestSwapPublishesExternalClassifier(t *testing.T) {
	e := New(&countingClassifier{}, Config{})
	next := &countingClassifier{trained: 42}
	if gen := e.Swap(next); gen != 2 {
		t.Fatalf("generation %d, want 2", gen)
	}
	if e.Classifier() != Classifier(next) {
		t.Fatal("Swap did not install the external classifier")
	}
}

func TestEngineClassifySingle(t *testing.T) {
	e := New(&stubClassifier{}, Config{Name: "single"})
	res := e.Classify(scoreMsg(0.99))
	if res.Label != Spam || res.Score != 0.99 {
		t.Fatalf("Classify = %+v, want spam/0.99", res)
	}
	s := e.Stats()
	if s.Classified != 1 || s.ByLabel[Spam] != 1 {
		t.Fatalf("stats after single classify: %+v", s)
	}
}

// TestServeWhileRetrainNoTornReads hammers ClassifyBatch and Classify
// concurrently with Retrain and RetrainIncremental swaps. Every score
// must be 0 (the initial empty snapshot) or a multiple of trainN (a
// fully trained replacement); any other value means a verdict was
// computed against a half-trained filter. The -race run additionally
// proves the swap itself is free of data races.
func TestServeWhileRetrainNoTornReads(t *testing.T) {
	const trainN = 400
	train := trainCorpus(trainN)
	e := New(&countingClassifier{}, Config{Workers: 4})
	msgs := make([]*mail.Message, 64)
	for i := range msgs {
		msgs[i] = &mail.Message{Body: "probe"}
	}

	ctx, stop := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// One full retrainer and one incremental retrainer publish
	// concurrently with scoring. Incremental deltas are whole corpora
	// too, so legal scores stay multiples of trainN.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := e.Retrain(context.Background(), func() Classifier { return &countingClassifier{} }, train); err != nil {
				t.Errorf("Retrain: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := e.RetrainIncremental(context.Background(), train); err != nil {
				t.Errorf("RetrainIncremental: %v", err)
				return
			}
		}
	}()

	legal := func(score float64) bool {
		n := int(score)
		return float64(n) == score && n%trainN == 0 && n >= 0
	}
	for round := 0; round < 50; round++ {
		out, err := e.ScoreBatch(context.Background(), msgs)
		if err != nil {
			t.Fatal(err)
		}
		first := out[0]
		for i, score := range out {
			if !legal(score) {
				t.Fatalf("round %d: score %v from a half-trained filter", round, score)
			}
			if score != first {
				t.Fatalf("round %d: batch mixed generations (out[0]=%v, out[%d]=%v)", round, first, i, score)
			}
		}
		if res := e.Classify(msgs[0]); !legal(res.Score) {
			t.Fatalf("round %d: single verdict %v from a half-trained filter", round, res.Score)
		}
	}
	stop()
	wg.Wait()
	if s := e.Stats(); s.Retrains == 0 {
		t.Fatal("no retrain published during the hammering")
	}
}
