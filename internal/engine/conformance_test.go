package engine_test

// Interface-conformance suite: every registered backend must honor
// the Classifier contract the same way — train/classify round-trip,
// Unlearn as the exact inverse of Learn, Save/Load fidelity, and
// race-free concurrent batch classification (run under -race).

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/mail"

	// Backends under test register themselves on import.
	_ "repro/internal/graham"
	_ "repro/internal/sbayes"
)

// msg builds a deterministic message from a body string.
func msg(body string) *mail.Message {
	return &mail.Message{
		Header: mail.Header{{Name: "Subject", Value: "conformance probe"}},
		Body:   body,
	}
}

// trainingSet returns clearly separable ham and spam messages,
// repeated often enough to clear Graham's five-occurrence evidence
// floor.
func trainingSet() (ham, spam []*mail.Message) {
	hamBodies := []string{
		"meeting agenda quarterly report budget review minutes\n",
		"project deadline milestone deliverable schedule review\n",
		"lunch tomorrow agenda notes report meeting schedule\n",
	}
	spamBodies := []string{
		"winner prize lottery claim millions urgent transfer\n",
		"cheap pills discount offer urgent winner lottery\n",
		"claim prize transfer millions discount offer pills\n",
	}
	for i := 0; i < 10; i++ {
		for _, b := range hamBodies {
			ham = append(ham, msg(b))
		}
		for _, b := range spamBodies {
			spam = append(spam, msg(b))
		}
	}
	return ham, spam
}

// trained returns a classifier of the named backend trained on the
// standard set.
func trained(t *testing.T, backend string) engine.Classifier {
	t.Helper()
	b, err := engine.Lookup(backend)
	if err != nil {
		t.Fatal(err)
	}
	clf := b.New()
	ham, spam := trainingSet()
	for _, m := range ham {
		clf.Learn(m, false)
	}
	for _, m := range spam {
		clf.Learn(m, true)
	}
	return clf
}

func TestStockBackendsRegistered(t *testing.T) {
	names := engine.Backends()
	want := map[string]bool{"sbayes": false, "graham": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
}

func TestLookupUnknownBackend(t *testing.T) {
	if _, err := engine.Lookup("nonesuch"); err == nil {
		t.Fatal("unknown backend looked up without error")
	}
}

// stockBackends are the backends held to the full conformance
// contract. (The registry may also hold test stubs registered by
// other tests in this binary, so the suite pins the list rather than
// sweeping engine.Backends().)
var stockBackends = []string{"sbayes", "graham"}

// forEachBackend runs a conformance check against every stock
// backend.
func forEachBackend(t *testing.T, check func(t *testing.T, backend string)) {
	for _, name := range stockBackends {
		t.Run(name, func(t *testing.T) { check(t, name) })
	}
}

func TestConformanceTrainClassifyRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		ns, nh := clf.Counts()
		if ns != 30 || nh != 30 {
			t.Fatalf("counts = (%d, %d), want (30, 30)", ns, nh)
		}
		spamScore := clf.Score(msg("winner lottery prize claim urgent millions\n"))
		hamScore := clf.Score(msg("meeting agenda report budget schedule\n"))
		if spamScore <= hamScore {
			t.Fatalf("spam score %v not above ham score %v", spamScore, hamScore)
		}
		if label, _ := clf.Classify(msg("winner lottery prize claim urgent millions\n")); label != engine.Spam {
			t.Errorf("trained spam message classified %v", label)
		}
		if label, _ := clf.Classify(msg("meeting agenda report budget schedule\n")); label == engine.Spam {
			t.Errorf("trained ham message classified spam")
		}
	})
}

func TestConformanceScoreAndClassifyAgree(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		probe := msg("meeting winner agenda lottery report prize\n")
		label, score := clf.Classify(probe)
		if got := clf.Score(probe); got != score {
			t.Errorf("Score = %v, Classify score = %v", got, score)
		}
		if score < 0 || score > 1 {
			t.Errorf("score %v outside [0,1]", score)
		}
		_ = label
	})
}

func TestConformanceUnlearnInverse(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		probes := []*mail.Message{
			msg("meeting winner agenda lottery report\n"),
			msg("budget pills schedule discount review\n"),
		}
		before := make([]float64, len(probes))
		for i, p := range probes {
			before[i] = clf.Score(p)
		}
		ns0, nh0 := clf.Counts()

		extra := msg("novel tokens appearing nowhere else whatsoever\n")
		clf.Learn(extra, true)
		if err := clf.Unlearn(extra, true); err != nil {
			t.Fatalf("unlearn just-learned message: %v", err)
		}
		ns1, nh1 := clf.Counts()
		if ns0 != ns1 || nh0 != nh1 {
			t.Errorf("counts (%d, %d) -> (%d, %d) after learn+unlearn", ns0, nh0, ns1, nh1)
		}
		for i, p := range probes {
			if got := clf.Score(p); got != before[i] {
				t.Errorf("probe %d score %v != %v after learn+unlearn", i, got, before[i])
			}
		}
	})
}

func TestConformanceUnlearnNeverLearnedErrors(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		if err := clf.Unlearn(msg("tokens never trained anywhere\n"), true); err == nil {
			t.Error("unlearning a never-learned message succeeded")
		}
		// An empty filter cannot unlearn anything.
		b, _ := engine.Lookup(backend)
		if err := b.New().Unlearn(msg("anything\n"), false); err == nil {
			t.Error("unlearning from an empty filter succeeded")
		}
	})
}

func TestConformanceLearnWeightedEquivalence(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		b, err := engine.Lookup(backend)
		if err != nil {
			t.Fatal(err)
		}
		naive, weighted := b.New(), b.New()
		background := msg("shared background vocabulary here\n")
		naive.Learn(background, false)
		weighted.Learn(background, false)
		attack := msg("identical attack payload words\n")
		for i := 0; i < 17; i++ {
			naive.Learn(attack, true)
		}
		weighted.LearnWeighted(attack, true, 17)
		probe := msg("attack background vocabulary payload\n")
		if a, b := naive.Score(probe), weighted.Score(probe); a != b {
			t.Errorf("naive %v != weighted %v", a, b)
		}
	})
}

func TestConformanceSaveLoadFidelity(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		p, ok := clf.(engine.Persistable)
		if !ok {
			t.Fatalf("backend %q is not Persistable", backend)
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}

		b, _ := engine.Lookup(backend)
		restored := b.New()
		if err := restored.(engine.Persistable).Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		ns0, nh0 := clf.Counts()
		ns1, nh1 := restored.Counts()
		if ns0 != ns1 || nh0 != nh1 {
			t.Fatalf("counts (%d, %d) != restored (%d, %d)", ns0, nh0, ns1, nh1)
		}
		probes := []*mail.Message{
			msg("meeting winner agenda lottery report\n"),
			msg("budget pills schedule discount review\n"),
			msg("entirely novel probe text\n"),
		}
		for i, probe := range probes {
			if a, b := clf.Score(probe), restored.Score(probe); a != b {
				t.Errorf("probe %d: original %v != restored %v", i, a, b)
			}
		}

		// Round-trip determinism: saving the restored filter yields
		// identical bytes.
		var buf2 bytes.Buffer
		if err := restored.(engine.Persistable).Save(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("save -> load -> save is not byte-identical")
		}

		// Loading a foreign database fails cleanly.
		other := "sbayes"
		if backend == "sbayes" {
			other = "graham"
		}
		ob, _ := engine.Lookup(other)
		if err := ob.New().(engine.Persistable).Load(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("backend %q loaded a %q database", other, backend)
		}
	})
}

func TestConformanceCloneIndependence(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		cloner, ok := clf.(engine.Cloner)
		if !ok {
			t.Fatalf("backend %q is not a Cloner", backend)
		}
		clone := cloner.CloneClassifier()
		ns0, nh0 := clf.Counts()
		if ns1, nh1 := clone.Counts(); ns1 != ns0 || nh1 != nh0 {
			t.Fatalf("clone counts (%d, %d) != original (%d, %d)", ns1, nh1, ns0, nh0)
		}
		probe := msg("meeting winner agenda lottery report\n")
		before := clf.Score(probe)
		if got := clone.Score(probe); got != before {
			t.Fatalf("clone scores %v, original %v", got, before)
		}
		// Training the clone must not touch the original — the
		// snapshot-swap property RetrainIncremental relies on.
		for i := 0; i < 10; i++ {
			clone.Learn(msg("meeting agenda report budget review\n"), true)
		}
		if got := clf.Score(probe); got != before {
			t.Errorf("training the clone changed the original's score %v -> %v", before, got)
		}
		if ns1, nh1 := clf.Counts(); ns1 != ns0 || nh1 != nh0 {
			t.Errorf("training the clone changed the original's counts")
		}
	})
}

// TestConformanceShardedClassifyBatch holds the sharded serving layer
// to the same contract as the single Engine for every stock backend:
// a batch fanned out across recipient-hashed shards of identically
// trained classifiers must reproduce the serial per-message verdicts
// in input order.
func TestConformanceShardedClassifyBatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		cloner, ok := clf.(engine.Cloner)
		if !ok {
			t.Fatalf("backend %q is not a Cloner", backend)
		}
		msgs := make([]*mail.Message, 150)
		for i := range msgs {
			if i%2 == 0 {
				msgs[i] = msg(fmt.Sprintf("meeting agenda report budget item%d\n", i))
			} else {
				msgs[i] = msg(fmt.Sprintf("winner lottery prize claim item%d\n", i))
			}
			msgs[i].Header.Set("To", fmt.Sprintf("user%d@corp.example", i%17))
		}
		serial := make([]engine.Result, len(msgs))
		for i, m := range msgs {
			label, score := clf.Classify(m)
			serial[i] = engine.Result{Label: label, Score: score}
		}
		clfs := make([]engine.Classifier, 4)
		for i := range clfs {
			clfs[i] = cloner.CloneClassifier()
		}
		sh := engine.NewSharded(clfs, engine.ShardedConfig{Name: backend + "-sharded", Workers: 2})
		parallel, err := sh.ClassifyBatch(context.Background(), msgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("result %d: sharded %+v != serial %+v", i, parallel[i], serial[i])
			}
		}
		for i, m := range msgs {
			if got := sh.Classify(m); got != serial[i] {
				t.Fatalf("single verdict %d: sharded %+v != serial %+v", i, got, serial[i])
			}
		}
		st := sh.Stats()
		if st.Combined.Classified != uint64(2*len(msgs)) {
			t.Errorf("combined Classified = %d, want %d", st.Combined.Classified, 2*len(msgs))
		}
	})
}

// TestConformancePersistenceRoundTrip holds every backend to the
// serving-layer durability contract: while concurrent ClassifyBatch
// traffic is in flight (run under -race via `make race`), the
// engine's snapshot is saved through the persistence envelope and
// resumed into a fresh engine, which must reproduce the original's
// verdicts and scores exactly on a held-out corpus.
func TestConformancePersistenceRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		eng := engine.New(clf, engine.Config{Name: backend, Workers: 4})

		held := make([]*mail.Message, 60)
		for i := range held {
			if i%2 == 0 {
				held[i] = msg(fmt.Sprintf("meeting agenda report budget held%d\n", i))
			} else {
				held[i] = msg(fmt.Sprintf("winner lottery prize claim held%d\n", i))
			}
		}

		// Keep batch traffic flowing against the serving snapshot for
		// the whole save — persistence must never require quiescence.
		stop := make(chan struct{})
		trafficDone := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					trafficDone <- nil
					return
				default:
					if _, err := eng.ClassifyBatch(context.Background(), held); err != nil {
						trafficDone <- err
						return
					}
				}
			}
		}()

		st := engine.NewMemStore()
		if _, err := engine.SaveEngine(st, "conformance", backend, eng); err != nil {
			t.Fatal(err)
		}
		resumed, env, err := engine.ResumeEngine(st, "conformance", engine.Config{Name: backend + "-resumed"})
		if err != nil {
			t.Fatal(err)
		}
		close(stop)
		if err := <-trafficDone; err != nil {
			t.Fatal(err)
		}
		if env.Backend != backend || resumed.Generation() != eng.Generation() {
			t.Fatalf("resumed backend %q generation %d (want %q at %d)",
				env.Backend, resumed.Generation(), backend, eng.Generation())
		}
		want, err := eng.ClassifyBatch(context.Background(), held)
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.ClassifyBatch(context.Background(), held)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("held-out %d: resumed %+v != original %+v", i, got[i], want[i])
			}
		}
	})
}

func TestConformanceConcurrentClassifyBatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		msgs := make([]*mail.Message, 200)
		for i := range msgs {
			if i%2 == 0 {
				msgs[i] = msg(fmt.Sprintf("meeting agenda report budget item%d\n", i))
			} else {
				msgs[i] = msg(fmt.Sprintf("winner lottery prize claim item%d\n", i))
			}
		}
		serial := make([]engine.Result, len(msgs))
		for i, m := range msgs {
			label, score := clf.Classify(m)
			serial[i] = engine.Result{Label: label, Score: score}
		}
		eng := engine.New(clf, engine.Config{Name: backend, Workers: 8})
		parallel, err := eng.ClassifyBatch(context.Background(), msgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("batch returned %d results for %d messages", len(parallel), len(msgs))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("result %d: parallel %+v != serial %+v (order not preserved?)", i, parallel[i], serial[i])
			}
		}
	})
}
