// Package engine defines the backend-generic classifier contract and
// a production-shaped scoring service on top of it.
//
// The paper's central claim is that Causative Availability attacks
// exploit the statistical learning approach itself, not one filter
// implementation. The repository therefore carries more than one
// learner (the SpamBayes chi-square combiner in internal/sbayes and
// Graham's naive-Bayes baseline in internal/graham), and everything
// downstream — evaluation, the RONI defense, the deployment
// simulator, the experiment drivers — speaks to them through the
// Classifier interface declared here rather than to a concrete type.
//
// The package has three layers:
//
//   - the contract: Classifier plus the optional capability
//     interfaces (TokenClassifier, TokenLearner, Persistable,
//     Tokenizing, Cloner) that fast paths, persistence, and
//     incremental retraining discover with type assertions;
//   - the Backend registry, keyed by name ("sbayes", "graham"), which
//     backends join from their package init and callers query to pick
//     a learner per deployment configuration;
//   - Engine, a zero-downtime scoring service: worker-pool
//     ClassifyBatch/ScoreBatch and single-message Classify read an
//     atomically swappable immutable snapshot, Retrain builds the
//     replacement off the serving path and publishes it in one
//     atomic store (generation-counted in Stats), and a buffered
//     LearnStream bulk-loads the initial snapshot;
//   - Sharded, the scale-out layer: one logical filter partitioned
//     across N Engines routed by a recipient-address hash (pluggable
//     ShardKey), batches fanned out per shard and restitched in
//     input order, per-shard and all-shards retraining, and Stats
//     aggregated into a combined view with per-shard breakdown.
package engine

import (
	"fmt"
	"io"

	"repro/internal/mail"
	"repro/internal/tokenize"
)

// Label is the three-way verdict shared by every backend. Backends
// without an unsure band (Graham's binary rule) simply never return
// Unsure.
type Label int8

const (
	// Ham is legitimate email.
	Ham Label = iota
	// Unsure is the in-between verdict of filters that have one.
	Unsure
	// Spam is unsolicited email.
	Spam
)

// String returns the lowercase label name.
func (l Label) String() string {
	switch l {
	case Ham:
		return "ham"
	case Unsure:
		return "unsure"
	case Spam:
		return "spam"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// Classifier is the backend-generic learner contract: incremental
// training and untraining plus scoring. Implementations are not
// required to be safe for concurrent mutation, but concurrent
// Classify/Score calls without interleaved Learn calls must be safe —
// Engine relies on that to parallelize batches.
type Classifier interface {
	// Learn trains on one message with the given label.
	Learn(m *mail.Message, isSpam bool)
	// LearnWeighted trains as if weight identical copies of the
	// message were learned. It panics if weight < 0.
	LearnWeighted(m *mail.Message, isSpam bool, weight int)
	// Unlearn removes one previously trained message, returning an
	// error (and leaving the state unchanged) if the counts show the
	// message was never trained with this label.
	Unlearn(m *mail.Message, isSpam bool) error
	// Classify returns the verdict and the spam score in [0, 1].
	Classify(m *mail.Message) (Label, float64)
	// Score returns the spam score in [0, 1] without thresholding.
	Score(m *mail.Message) float64
	// Counts returns the number of spam and ham messages trained.
	Counts() (nspam, nham int)
}

// TokenClassifier is the capability of scoring a pre-tokenized
// message (a distinct-token set). Hot loops tokenize a test corpus
// once and re-score it many times through this interface.
type TokenClassifier interface {
	ClassifyTokens(tokens []string) (Label, float64)
}

// TokenLearner is the capability of training directly on a
// distinct-token set with a multiplicity. Only backends whose
// training is per-message token presence (SpamBayes) can offer it;
// backends that count token occurrences (Graham) cannot, and callers
// must fall back to Learn/Unlearn on the message.
type TokenLearner interface {
	LearnTokens(tokens []string, isSpam bool, weight int)
	UnlearnTokens(tokens []string, isSpam bool, weight int) error
}

// StreamClassifier is the capability of scoring a tokenized message
// (a tokenize.TokenStream) directly. This is the serving-path fast
// lane of the tokenize-once pipeline: the engine tokenizes each
// message exactly once at the batch boundary and every downstream
// stage — scoring, admission vetting, learning — consumes the same
// stream through these interfaces instead of re-tokenizing.
type StreamClassifier interface {
	ClassifyTokenStream(ts *tokenize.TokenStream) (Label, float64)
	ScoreTokenStream(ts *tokenize.TokenStream) float64
}

// StreamLearner is the capability of training directly on a tokenized
// message. Unlike TokenLearner, every backend can offer it: the
// stream carries per-token occurrence counts, so occurrence-counting
// backends (Graham) recover exactly what they would have read from
// the raw message, and presence backends (SpamBayes) simply ignore
// the counts.
type StreamLearner interface {
	LearnTokenStream(ts *tokenize.TokenStream, isSpam bool, weight int)
	UnlearnTokenStream(ts *tokenize.TokenStream, isSpam bool, weight int) error
}

// Persistable is the capability of saving the trained database and
// restoring it in place. Load replaces the receiver's entire trained
// state with the stream's contents.
type Persistable interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// Tokenizing is the capability of exposing the tokenizer the
// classifier trains and scores with, so callers can pre-tokenize
// corpora consistently with the backend.
type Tokenizing interface {
	Tokenizer() *tokenize.Tokenizer
}

// Cloner is the capability of deep-copying the trained state into an
// independent classifier. The Engine's RetrainIncremental uses it to
// branch the next serving snapshot off the current one and train only
// the new examples into the branch; experiments use it to fork a
// poisoned filter off a shared clean baseline. (Backends keep their
// concrete-typed Clone for callers that need the full surface;
// CloneClassifier is the interface-typed view of the same copy.)
type Cloner interface {
	CloneClassifier() Classifier
}
