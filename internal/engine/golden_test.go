package engine_test

// Golden-file pin of the snapshot envelope format: the committed
// fixture is the exact encoding of a fixed envelope. If this test
// fails, the envelope layout changed — that must be a conscious
// decision: bump the version byte in snapMagic, keep old snapshots
// decodable (or document the migration), and regenerate with
//
//	go test ./internal/engine -run TestGoldenEnvelope -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

var updateGolden = flag.Bool("update", false, "rewrite golden format fixtures")

// goldenEnvelope is the fixed logical content the fixture pins.
func goldenEnvelope() engine.Envelope {
	return engine.Envelope{
		Backend:    "sbayes",
		Generation: 42,
		Payload:    []byte("golden snapshot payload\n"),
	}
}

func TestGoldenEnvelopeFormat(t *testing.T) {
	path := filepath.Join("testdata", "envelope_v1.snap")
	got := goldenEnvelope().Encode()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("envelope encoding no longer matches the golden fixture (%d bytes vs %d): "+
			"a format change must bump the version byte and regenerate with -update", len(got), len(want))
	}

	// The fixture must keep decoding to the same logical content.
	env, err := engine.DecodeEnvelope(want)
	if err != nil {
		t.Fatalf("decoding golden fixture: %v", err)
	}
	exp := goldenEnvelope()
	if env.Backend != exp.Backend || env.Generation != exp.Generation || !bytes.Equal(env.Payload, exp.Payload) {
		t.Fatalf("golden fixture decoded to %q gen %d payload %q", env.Backend, env.Generation, env.Payload)
	}
}
