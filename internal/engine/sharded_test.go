package engine

// Sharded serving suite: routing fidelity, input-order restitching of
// fanned-out batches, per-shard retraining isolation, stats
// aggregation, and the -race torn-read property (a shard retrain
// mid-batch must never mix generations within that shard's slice of
// the batch). Run under -race (make race).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mail"
)

// toMsg builds a message addressed to rcpt whose stub score is v.
func toMsg(rcpt string, v float64) *mail.Message {
	m := scoreMsg(v)
	m.Header.Set("To", rcpt)
	return m
}

// shardedMsgs builds n messages spread across recipients u0..u{k-1}
// with distinct scores i/n.
func shardedMsgs(n, k int) []*mail.Message {
	msgs := make([]*mail.Message, n)
	for i := range msgs {
		msgs[i] = toMsg(fmt.Sprintf("u%d@corp.example", i%k), float64(i)/float64(n))
	}
	return msgs
}

func newStubSharded(n int, cfg ShardedConfig) *Sharded {
	clfs := make([]Classifier, n)
	for i := range clfs {
		clfs[i] = &stubClassifier{}
	}
	return NewSharded(clfs, cfg)
}

func TestAddressKeyCanonicalizes(t *testing.T) {
	base := AddressKey("alice@corp.example")
	for _, variant := range []string{
		"Alice@Corp.Example",
		"  alice@corp.example  ",
		"Alice Liddell <alice@corp.example>",
		"\"A. Liddell\" <ALICE@CORP.EXAMPLE>",
	} {
		if got := AddressKey(variant); got != base {
			t.Errorf("AddressKey(%q) = %d, want %d (one mailbox split across shards)", variant, got, base)
		}
	}
	if AddressKey("alice@corp.example") == AddressKey("bob@corp.example") {
		t.Error("distinct addresses hash identically (degenerate key)")
	}
}

func TestShardedRoutesByRecipient(t *testing.T) {
	s := newStubSharded(4, ShardedConfig{Name: "route"})
	for i := 0; i < 32; i++ {
		m := toMsg(fmt.Sprintf("user%d@corp.example", i), 0.5)
		want := int(RecipientKey(m) % 4)
		if got := s.ShardFor(m); got != want {
			t.Fatalf("ShardFor(user%d) = %d, want %d", i, got, want)
		}
		s.Classify(m)
		if got := s.Shard(want).Stats().Classified; got == 0 {
			t.Fatalf("message %d did not land on shard %d", i, want)
		}
	}
	total := uint64(0)
	for i := 0; i < s.NumShards(); i++ {
		total += s.Shard(i).Stats().Classified
	}
	if total != 32 {
		t.Fatalf("shards classified %d messages in total, want 32", total)
	}
}

func TestShardedClassifyBatchOrderPreserved(t *testing.T) {
	s := newStubSharded(3, ShardedConfig{Workers: 2})
	msgs := shardedMsgs(120, 17)
	out, err := s.ClassifyBatch(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if want := float64(i) / 120; res.Score != want {
			t.Fatalf("out[%d].Score = %v, want %v (restitching broken)", i, res.Score, want)
		}
	}
}

func TestShardedScoreBatch(t *testing.T) {
	s := newStubSharded(2, ShardedConfig{})
	msgs := shardedMsgs(40, 5)
	out, err := s.ScoreBatch(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, score := range out {
		if want := float64(i) / 40; score != want {
			t.Fatalf("out[%d] = %v, want %v", i, score, want)
		}
	}
	st := s.Stats()
	if st.Combined.Scored != 40 || st.Combined.Classified != 0 {
		t.Fatalf("combined scored/classified = %d/%d, want 40/0", st.Combined.Scored, st.Combined.Classified)
	}
}

func TestShardedBatchCancellation(t *testing.T) {
	clfs := []Classifier{
		&stubClassifier{slow: time.Millisecond},
		&stubClassifier{slow: time.Millisecond},
	}
	s := NewSharded(clfs, ShardedConfig{Workers: 1})
	msgs := shardedMsgs(10000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := s.ClassifyBatch(ctx, msgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestShardedPartitionMatchesRouting(t *testing.T) {
	s := newStubSharded(3, ShardedConfig{})
	c := &corpus.Corpus{}
	msgs := shardedMsgs(60, 11)
	for i, m := range msgs {
		c.Add(m, i%2 == 0)
	}
	parts := s.Partition(c)
	if len(parts) != 3 {
		t.Fatalf("%d partitions", len(parts))
	}
	total := 0
	for sh, part := range parts {
		total += part.Len()
		for _, ex := range part.Examples {
			if got := s.ShardFor(ex.Msg); got != sh {
				t.Fatalf("partition %d holds a message routed to shard %d", sh, got)
			}
		}
	}
	if total != c.Len() {
		t.Fatalf("partitions hold %d examples, corpus has %d", total, c.Len())
	}
}

func TestShardedRetrainAllTrainsEachShardOnItsSlice(t *testing.T) {
	clfs := make([]Classifier, 4)
	for i := range clfs {
		clfs[i] = &countingClassifier{}
	}
	s := NewSharded(clfs, ShardedConfig{})
	train := &corpus.Corpus{}
	msgs := shardedMsgs(100, 13)
	for i, m := range msgs {
		train.Add(m, i%2 == 0)
	}
	gens, err := s.RetrainAll(context.Background(), func() Classifier { return &countingClassifier{} }, train)
	if err != nil {
		t.Fatal(err)
	}
	parts := s.Partition(train)
	for sh := range clfs {
		if gens[sh] != 2 {
			t.Errorf("shard %d generation %d, want 2", sh, gens[sh])
		}
		probe := &mail.Message{}
		if got := s.Shard(sh).Classifier().Score(probe); got != float64(parts[sh].Len()) {
			t.Errorf("shard %d trained on %v examples, want its slice of %d", sh, got, parts[sh].Len())
		}
	}
}

func TestShardedRetrainIncrementalAll(t *testing.T) {
	clfs := make([]Classifier, 2)
	for i := range clfs {
		clfs[i] = &countingClassifier{trained: 5}
	}
	s := NewSharded(clfs, ShardedConfig{})
	delta := &corpus.Corpus{}
	for i, m := range shardedMsgs(20, 9) {
		delta.Add(m, i%2 == 0)
	}
	if _, err := s.RetrainIncrementalAll(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	parts := s.Partition(delta)
	for sh := 0; sh < s.NumShards(); sh++ {
		want := float64(5 + parts[sh].Len())
		if got := s.Shard(sh).Classifier().Score(&mail.Message{}); got != want {
			t.Errorf("shard %d scores %v after incremental, want %v", sh, got, want)
		}
	}
	// The originals were cloned, not mutated.
	for i, clf := range clfs {
		if clf.(*countingClassifier).trained != 5 {
			t.Errorf("shard %d's original snapshot mutated", i)
		}
	}
}

func TestShardedPerShardRetrainLeavesOthersUntouched(t *testing.T) {
	clfs := []Classifier{&countingClassifier{trained: 1}, &countingClassifier{trained: 1}}
	s := NewSharded(clfs, ShardedConfig{})
	gen, err := s.Retrain(context.Background(), 1, func() Classifier { return &countingClassifier{} }, trainCorpus(9))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("shard 1 generation %d, want 2", gen)
	}
	if g := s.Shard(0).Generation(); g != 1 {
		t.Fatalf("shard 0 generation moved to %d by a shard-1 retrain", g)
	}
	if got := s.Shard(1).Classifier().Score(&mail.Message{}); got != 9 {
		t.Fatalf("shard 1 scores %v, want 9", got)
	}
	if got := s.Shard(0).Classifier().Score(&mail.Message{}); got != 1 {
		t.Fatalf("shard 0 snapshot changed: score %v, want 1", got)
	}
}

func TestShardedSwapAll(t *testing.T) {
	s := newStubSharded(2, ShardedConfig{})
	next := []Classifier{&countingClassifier{trained: 3}, &countingClassifier{trained: 4}}
	gens := s.SwapAll(next)
	for i, g := range gens {
		if g != 2 {
			t.Errorf("shard %d generation %d, want 2", i, g)
		}
		if s.Shard(i).Classifier() != next[i] {
			t.Errorf("shard %d did not install its replacement", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SwapAll with mismatched length did not panic")
		}
	}()
	s.SwapAll(next[:1])
}

func TestShardedLearnStreamRoutesByKey(t *testing.T) {
	clfs := []Classifier{&stubClassifier{}, &stubClassifier{}, &stubClassifier{}}
	s := NewSharded(clfs, ShardedConfig{LearnBuffer: 4})
	in, wait := s.LearnStream(context.Background())
	msgs := shardedMsgs(60, 12)
	for i, m := range msgs {
		in <- Labeled{Msg: m, Spam: i%3 == 0}
	}
	close(in)
	n, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("learned %d, want 60", n)
	}
	// Every example landed on the shard its key selects.
	counts := make(map[int]int)
	for _, m := range msgs {
		counts[s.ShardFor(m)]++
	}
	for sh, want := range counts {
		ns, nh := s.Shard(sh).Classifier().Counts()
		if ns+nh != want {
			t.Errorf("shard %d trained %d examples, want %d", sh, ns+nh, want)
		}
		if got := s.Shard(sh).Stats().Learned; got != uint64(want) {
			t.Errorf("shard %d Stats.Learned = %d, want %d", sh, got, want)
		}
	}
	if st := s.Stats(); st.Combined.Learned != 60 {
		t.Errorf("combined Learned = %d", st.Combined.Learned)
	}
}

func TestShardedLearnStreamCancellationUnblocksProducer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := newStubSharded(2, ShardedConfig{LearnBuffer: 1})
	in, wait := s.LearnStream(ctx)
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			in <- Labeled{Msg: toMsg("u@x", 0.5)}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after cancellation")
	}
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestShardedLearnStreamAbandonedAfterCancelDoesNotLeak(t *testing.T) {
	// Regression for the router forward race: an example in flight to
	// a full shard stream at cancellation must not strand the router
	// goroutine (wait lets the router exit before the shard drains
	// shut down), and a producer that abandons the channel without
	// closing it must not leak the drain.
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		s := newStubSharded(3, ShardedConfig{LearnBuffer: 1})
		in, wait := s.LearnStream(ctx)
		for j := 0; j < 3; j++ {
			in <- Labeled{Msg: toMsg(fmt.Sprintf("u%d@x", j), 0.5), Spam: true}
		}
		cancel()
		if _, err := wait(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
		// The channel is deliberately never closed.
		_ = in
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 abandoned sharded streams",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShardedStatsAggregates(t *testing.T) {
	s := newStubSharded(2, ShardedConfig{Name: "agg"})
	msgs := []*mail.Message{
		toMsg("a@x", 0.05), toMsg("b@x", 0.5), toMsg("c@x", 0.95), toMsg("d@x", 0.99),
	}
	if _, err := s.ClassifyBatch(context.Background(), msgs); err != nil {
		t.Fatal(err)
	}
	s.Classify(toMsg("e@x", 0.01))
	if _, err := s.ScoreBatch(context.Background(), msgs); err != nil {
		t.Fatal(err)
	}
	s.Swap(1, &stubClassifier{})

	st := s.Stats()
	if st.Name != "agg" || len(st.Shards) != 2 || len(st.Generations) != 2 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.Combined.Classified != 5 || st.Combined.Scored != 4 {
		t.Errorf("combined classified/scored = %d/%d, want 5/4", st.Combined.Classified, st.Combined.Scored)
	}
	var byLabel uint64
	for _, n := range st.Combined.ByLabel {
		byLabel += n
	}
	if byLabel != st.Combined.Classified {
		t.Errorf("combined sum(ByLabel) = %d != Classified %d", byLabel, st.Combined.Classified)
	}
	if st.Generations[0] != 1 || st.Generations[1] != 2 {
		t.Errorf("generations %v, want [1 2]", st.Generations)
	}
	if st.Combined.Generation != 1 {
		t.Errorf("combined generation %d, want 1 (oldest shard)", st.Combined.Generation)
	}
	if st.Combined.Retrains != 1 {
		t.Errorf("combined retrains %d, want 1", st.Combined.Retrains)
	}
	// The per-shard breakdown accounts for every combined counter.
	var cls, scr uint64
	for _, sh := range st.Shards {
		cls += sh.Classified
		scr += sh.Scored
	}
	if cls != st.Combined.Classified || scr != st.Combined.Scored {
		t.Errorf("per-shard breakdown (%d, %d) does not sum to combined (%d, %d)",
			cls, scr, st.Combined.Classified, st.Combined.Scored)
	}
}

// TestShardedServeWhileRetrainPerShardIsolation hammers ClassifyBatch
// across shards while every shard is concurrently retrained. Within
// one shard's slice of any batch, all scores must agree (one snapshot
// per shard per batch) and be a legal whole-corpus multiple — a shard
// retrain mid-batch must never mix generations inside that shard's
// slice, and no verdict may come from a half-trained filter. The
// -race run additionally proves the fan-out itself is race-free.
func TestShardedServeWhileRetrainPerShardIsolation(t *testing.T) {
	const trainN = 200
	const shards = 3
	clfs := make([]Classifier, shards)
	for i := range clfs {
		clfs[i] = &countingClassifier{}
	}
	s := NewSharded(clfs, ShardedConfig{Workers: 2})
	// Probes spread across enough recipients that every shard sees a
	// slice of every batch; every retrain of shard sh trains its whole
	// partition, so the only legal scores are 0 (the initial snapshot)
	// and that partition's full size.
	msgs := shardedMsgs(96, 24)
	train := &corpus.Corpus{}
	perShard := make([]int, shards)
	for _, m := range msgs {
		perShard[s.ShardFor(m)]++
	}
	for sh := 0; sh < shards; sh++ {
		if perShard[sh] == 0 {
			t.Fatalf("shard %d receives no probes; widen the recipient spread", sh)
		}
	}
	for i := 0; i < trainN*shards; i++ {
		train.Add(toMsg(fmt.Sprintf("u%d@corp.example", i%24), 0.5), i%2 == 0)
	}
	parts := s.Partition(train)

	ctx, stop := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for ctx.Err() == nil {
				if _, err := s.Retrain(context.Background(), sh,
					func() Classifier { return &countingClassifier{} }, parts[sh]); err != nil {
					t.Errorf("shard %d Retrain: %v", sh, err)
					return
				}
			}
		}(sh)
	}

	legal := func(sh int, score float64) bool {
		n := int(score)
		return float64(n) == score && n >= 0 && (n == 0 || n == parts[sh].Len())
	}
	for round := 0; round < 50; round++ {
		out, err := s.ScoreBatch(context.Background(), msgs)
		if err != nil {
			t.Fatal(err)
		}
		first := make(map[int]float64, shards)
		for i, score := range out {
			sh := s.ShardFor(msgs[i])
			if !legal(sh, score) {
				t.Fatalf("round %d: shard %d score %v from a half-trained filter", round, sh, score)
			}
			if prev, seen := first[sh]; !seen {
				first[sh] = score
			} else if score != prev {
				t.Fatalf("round %d: shard %d mixed generations within one batch (%v vs %v)",
					round, sh, prev, score)
			}
		}
	}
	stop()
	wg.Wait()
	if st := s.Stats(); st.Combined.Retrains == 0 {
		t.Fatal("no shard retrain published during the hammering")
	}
}

func TestNewShardedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSharded with no classifiers did not panic")
		}
	}()
	NewSharded(nil, ShardedConfig{})
}
