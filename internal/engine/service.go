package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mail"
)

// Config tunes an Engine.
type Config struct {
	// Name labels the engine in stats (defaults to "engine").
	Name string
	// Workers is the batch-scoring parallelism (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// LearnBuffer is the LearnStream channel capacity (<= 0 selects
	// 256).
	LearnBuffer int
}

// Engine is a scoring service over one Classifier: it fans batches
// out across a worker pool, funnels bulk training through a buffered
// stream (classifier mutation is single-writer), and keeps verdict
// and latency counters.
//
// The classifier must tolerate concurrent read-only Classify/Score
// calls; Engine never mutates it concurrently with scoring — callers
// are responsible for not training while a batch is in flight, just
// as with a bare Classifier.
type Engine struct {
	name     string
	clf      Classifier
	workers  int
	learnBuf int

	classified   atomic.Uint64
	learned      atomic.Uint64
	batches      atomic.Uint64
	byLabel      [3]atomic.Uint64
	latencyNanos atomic.Uint64
}

// New returns an Engine over clf.
func New(clf Classifier, cfg Config) *Engine {
	if clf == nil {
		panic("engine: New with nil classifier")
	}
	name := cfg.Name
	if name == "" {
		name = "engine"
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	learnBuf := cfg.LearnBuffer
	if learnBuf <= 0 {
		learnBuf = 256
	}
	return &Engine{name: name, clf: clf, workers: workers, learnBuf: learnBuf}
}

// Classifier returns the underlying classifier.
func (e *Engine) Classifier() Classifier { return e.clf }

// Name returns the engine's stats label.
func (e *Engine) Name() string { return e.name }

// Workers returns the effective batch parallelism.
func (e *Engine) Workers() int { return e.workers }

// Result is one message's verdict within a batch.
type Result struct {
	Label Label
	Score float64
}

// ClassifyBatch scores msgs across the worker pool and returns the
// results in input order: out[i] is the verdict of msgs[i]. It stops
// early and returns ctx.Err() if the context is cancelled.
func (e *Engine) ClassifyBatch(ctx context.Context, msgs []*mail.Message) ([]Result, error) {
	out := make([]Result, len(msgs))
	err := e.run(ctx, len(msgs), func(i int) {
		label, score := e.clf.Classify(msgs[i])
		out[i] = Result{Label: label, Score: score}
	})
	if err != nil {
		return nil, err
	}
	for i := range out {
		e.byLabel[labelIndex(out[i].Label)].Add(1)
	}
	return out, nil
}

// ScoreBatch is ClassifyBatch without thresholding: out[i] is the
// spam score of msgs[i].
func (e *Engine) ScoreBatch(ctx context.Context, msgs []*mail.Message) ([]float64, error) {
	out := make([]float64, len(msgs))
	err := e.run(ctx, len(msgs), func(i int) {
		out[i] = e.clf.Score(msgs[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// run executes fn(0..n-1) on the worker pool, counting work and
// latency. Indices are handed out through a shared atomic cursor so
// an uneven batch cannot starve a worker.
func (e *Engine) run(ctx context.Context, n int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	start := time.Now()
	workers := e.workers
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	e.classified.Add(uint64(n))
	e.batches.Add(1)
	e.latencyNanos.Add(uint64(time.Since(start)))
	return nil
}

// Labeled is one training example flowing through LearnStream.
type Labeled struct {
	Msg  *mail.Message
	Spam bool
}

// LearnStream starts a single-consumer bulk-training stream: send
// examples on the returned channel, close it, then call wait for the
// count of examples learned. The channel is buffered (Config
// LearnBuffer) so producers — an mbox reader, a corpus generator —
// run ahead of the learner. Training is serialized on one goroutine
// because classifier mutation is single-writer. If ctx is cancelled,
// remaining examples are discarded and wait returns ctx.Err(); the
// channel keeps accepting (and dropping) sends, but the caller must
// still close it to release the drain.
func (e *Engine) LearnStream(ctx context.Context) (chan<- Labeled, func() (int, error)) {
	in := make(chan Labeled, e.learnBuf)
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				err = ctx.Err()
				// Keep draining so a producer blocked on a full
				// buffer can finish sending and close the channel.
				go func() {
					for range in {
					}
				}()
				return
			case ex, ok := <-in:
				if !ok {
					return
				}
				e.clf.Learn(ex.Msg, ex.Spam)
				e.learned.Add(1)
				n++
			}
		}
	}()
	wait := func() (int, error) {
		<-done
		return n, err
	}
	return in, wait
}

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	Name string
	// Classified is the total number of messages scored in batches.
	Classified uint64
	// Learned is the total number of messages trained via LearnStream.
	Learned uint64
	// Batches is the number of completed batch calls.
	Batches uint64
	// ByLabel counts ClassifyBatch verdicts, indexed by Label.
	ByLabel [3]uint64
	// BatchLatency is the cumulative wall-clock time spent in
	// completed batch calls.
	BatchLatency time.Duration
}

// Stats returns the current counters. Counters from a batch are
// published only when the batch completes, so a snapshot is always
// internally consistent to within the in-flight batch.
func (e *Engine) Stats() Stats {
	return Stats{
		Name:       e.name,
		Classified: e.classified.Load(),
		Learned:    e.learned.Load(),
		Batches:    e.batches.Load(),
		ByLabel: [3]uint64{
			e.byLabel[0].Load(),
			e.byLabel[1].Load(),
			e.byLabel[2].Load(),
		},
		BatchLatency: time.Duration(e.latencyNanos.Load()),
	}
}

// labelIndex clamps a label into the counter array.
func labelIndex(l Label) int {
	if l < Ham || l > Spam {
		return int(Unsure)
	}
	return int(l)
}
