package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/tokenize"
)

// Config tunes an Engine.
type Config struct {
	// Name labels the engine in stats (defaults to "engine").
	Name string
	// Workers is the batch-scoring parallelism (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// LearnBuffer is the LearnStream channel capacity (<= 0 selects
	// 256).
	LearnBuffer int
	// Obs, when non-nil, registers the engine's instruments — the
	// classify/batch/learn latency histograms, verdict and publish
	// counters, and generation gauge, all labeled engine=Name — for
	// /metrics exposition. Nil still instruments (the counters back
	// Stats) but nothing is scraped.
	Obs *obs.Registry
	// Trace, when non-nil, receives sampled decision-trace events
	// (classify verdicts, admission decisions, learns, publishes).
	Trace *obs.Tracer
}

// snapshot is one published generation of the serving classifier.
// Snapshots are immutable once published: retraining builds a fresh
// classifier off to the side and installs it with one atomic pointer
// store, so scoring never observes a half-trained filter.
type snapshot struct {
	clf Classifier
	gen uint64
}

// Engine is a zero-downtime scoring service over a classifier: it
// fans batches out across a worker pool, holds the classifier behind
// an atomically swappable snapshot so Retrain can rebuild it while
// batches keep flowing, funnels bulk training through a buffered
// stream, and keeps verdict and latency counters.
//
// Scoring (Classify, ClassifyBatch, ScoreBatch) reads the current
// snapshot once per call and uses it throughout, so a batch never
// mixes generations. Publishing (Retrain, RetrainIncremental, Swap)
// replaces the snapshot atomically; the classifier only needs to
// tolerate concurrent read-only Classify/Score calls, which every
// backend guarantees. The one in-place mutation path, LearnStream,
// trains the snapshot current at stream start and is meant for bulk
// loading before serving begins.
type Engine struct {
	name     string
	workers  int
	learnBuf int
	// shard is this engine's index inside a Sharded fleet (-1 when
	// standalone); it stamps trace events so a replayed decision names
	// the shard it landed on.
	shard int32
	trace *obs.Tracer

	// cur is the serving snapshot. publishMu serializes publishers
	// (retraining is single-writer); readers only Load.
	cur       atomic.Pointer[snapshot]
	publishMu sync.Mutex

	// Instruments are obs-backed: the same objects feed Stats() and,
	// when a registry was configured, the /metrics exposition — one
	// counter, two readers, so the JSON stats and the scrape can never
	// disagree. Latencies are histograms, not summed durations: the
	// sum is still there (Stats derives its cumulative latency from
	// it), and the buckets show the tail a sum hides.
	scored      *obs.Counter
	learned     *obs.Counter
	batches     *obs.Counter
	byLabel     [3]*obs.Counter
	batchLat    *obs.Histogram
	classifyLat *obs.Histogram
	learnLat    *obs.Histogram
	publishes   *obs.Counter

	// Admission-control tallies, recorded by a Guarded wrapper (or a
	// GuardedSharded routing decisions to this shard); see guarded.go.
	admitted      *obs.Counter
	quarantined   *obs.Counter
	admitRejected *obs.Counter
}

// New returns an Engine serving clf as generation 1.
func New(clf Classifier, cfg Config) *Engine {
	return NewAt(clf, 1, cfg)
}

// NewAt returns an Engine serving clf at generation gen — the resume
// path: an engine restored from a persisted snapshot keeps the
// snapshot's stamped generation, so the generation line is continuous
// across restarts instead of restarting from 1. gen must be at least
// 1 (Stats.Retrains reports Generation-1, the number of publishes
// since the line began).
func NewAt(clf Classifier, gen uint64, cfg Config) *Engine {
	if clf == nil {
		panic("engine: New with nil classifier")
	}
	if gen < 1 {
		panic("engine: NewAt with generation 0")
	}
	name := cfg.Name
	if name == "" {
		name = "engine"
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	learnBuf := cfg.LearnBuffer
	if learnBuf <= 0 {
		learnBuf = 256
	}
	e := &Engine{name: name, workers: workers, learnBuf: learnBuf, shard: -1, trace: cfg.Trace}
	e.cur.Store(&snapshot{clf: clf, gen: gen})

	// Instrument registration happens once, here; the hot paths only
	// touch the pre-built instruments. A nil registry hands back
	// working unregistered instruments, so nothing below is
	// conditional.
	reg := cfg.Obs
	el := obs.L("engine", name)
	e.scored = reg.Counter("engine_scored_total", "messages scored without a verdict (ScoreBatch)", el)
	e.learned = reg.Counter("engine_learned_total", "messages trained via LearnStream", el)
	e.batches = reg.Counter("engine_batches_total", "completed batch calls (ClassifyBatch and ScoreBatch)", el)
	for i := Ham; i <= Spam; i++ {
		e.byLabel[i] = reg.Counter("engine_classified_total", "classification verdicts by label", el, obs.L("label", i.String()))
	}
	e.batchLat = reg.Histogram("engine_batch_seconds", "batch call wall-clock latency", nil, el)
	e.classifyLat = reg.Histogram("engine_classify_seconds", "single-message classify latency (the at-delivery hot path)", nil, el)
	e.learnLat = reg.Histogram("engine_learn_seconds", "per-example LearnStream training latency", nil, el)
	e.publishes = reg.Counter("engine_publishes_total", "snapshot publishes (Retrain, RetrainIncremental, Swap) by this process", el)
	e.admitted = reg.Counter("engine_admission_total", "admission decisions on training candidates, by verdict", el, obs.L("verdict", AdmitAccept.String()))
	e.quarantined = reg.Counter("engine_admission_total", "admission decisions on training candidates, by verdict", el, obs.L("verdict", AdmitQuarantine.String()))
	e.admitRejected = reg.Counter("engine_admission_total", "admission decisions on training candidates, by verdict", el, obs.L("verdict", AdmitReject.String()))
	reg.GaugeFunc("engine_generation", "serving snapshot generation", func() float64 { return float64(e.Generation()) }, el)
	return e
}

// Classifier returns the currently serving classifier.
func (e *Engine) Classifier() Classifier { return e.cur.Load().clf }

// Snapshot returns the currently serving classifier and its
// generation number in one consistent read.
func (e *Engine) Snapshot() (Classifier, uint64) {
	s := e.cur.Load()
	return s.clf, s.gen
}

// Generation returns the serving snapshot's generation number. It
// starts at 1 and increases by one per published replacement.
func (e *Engine) Generation() uint64 { return e.cur.Load().gen }

// Name returns the engine's stats label.
func (e *Engine) Name() string { return e.name }

// Workers returns the effective batch parallelism.
func (e *Engine) Workers() int { return e.workers }

// Result is one message's verdict.
type Result struct {
	Label Label
	Score float64
}

// streamPath is the resolved tokenize-once fast lane for one snapshot:
// when the serving classifier both consumes token streams and exposes
// its tokenizer, the engine tokenizes each message exactly once at the
// batch boundary and scores the stream directly. Resolution happens
// once per batch (two type assertions), not once per message.
type streamPath struct {
	sc  StreamClassifier
	tok *tokenize.Tokenizer
}

// streamPathFor resolves the fast lane for clf; ok is false when the
// classifier lacks either capability and callers must fall back to
// whole-message scoring.
func streamPathFor(clf Classifier) (streamPath, bool) {
	sc, ok := clf.(StreamClassifier)
	if !ok {
		return streamPath{}, false
	}
	tok := tokenizerOf(clf)
	if tok == nil {
		return streamPath{}, false
	}
	return streamPath{sc: sc, tok: tok}, true
}

// tokenizerOf returns clf's tokenizer when it exposes one, nil
// otherwise — the shared capability probe of the scoring fast lane and
// the guarded vetting path (which tokenizes candidates with the same
// tokenizer the filter would learn them under).
func tokenizerOf(clf Classifier) *tokenize.Tokenizer {
	if tz, ok := clf.(Tokenizing); ok {
		return tz.Tokenizer()
	}
	return nil
}

// Classify scores one message against the current snapshot — the
// at-delivery verdict an online deployment hands the user while
// retraining may be running in the background. Its wall-clock cost is
// tracked in Stats.ClassifyLatency, so the online hot path is as
// visible as batch scoring.
func (e *Engine) Classify(m *mail.Message) Result {
	start := time.Now()
	s := e.cur.Load()
	var label Label
	var score float64
	var digest uint64
	if sp, ok := streamPathFor(s.clf); ok {
		ts := sp.tok.Stream(m)
		digest = ts.Digest()
		label, score = sp.sc.ClassifyTokenStream(ts)
	} else {
		label, score = s.clf.Classify(m)
	}
	e.classifyLat.ObserveSince(start)
	e.byLabel[labelIndex(label)].Inc()
	if digest != 0 && e.trace.Sampled(digest) {
		e.trace.Record(obs.TraceEvent{
			Kind: obs.TraceClassify, Digest: digest, Generation: s.gen,
			Shard: e.shard, Verdict: label.String(), Score: score,
		})
	}
	return Result{Label: label, Score: score}
}

// ClassifyBatch scores msgs across the worker pool and returns the
// results in input order: out[i] is the verdict of msgs[i]. The whole
// batch is scored against one snapshot, even if a retrain publishes
// mid-batch. It stops early and returns ctx.Err() if the context is
// cancelled.
func (e *Engine) ClassifyBatch(ctx context.Context, msgs []*mail.Message) ([]Result, error) {
	s := e.cur.Load()
	sp, streaming := streamPathFor(s.clf)
	out := make([]Result, len(msgs))
	err := e.run(ctx, len(msgs), func(i int) {
		var label Label
		var score float64
		if streaming {
			ts := sp.tok.Stream(msgs[i])
			label, score = sp.sc.ClassifyTokenStream(ts)
			if d := ts.Digest(); e.trace.Sampled(d) {
				e.trace.Record(obs.TraceEvent{
					Kind: obs.TraceClassify, Digest: d, Generation: s.gen,
					Shard: e.shard, Verdict: label.String(), Score: score,
				})
			}
		} else {
			label, score = s.clf.Classify(msgs[i])
		}
		out[i] = Result{Label: label, Score: score}
	})
	if err != nil {
		return nil, err
	}
	for i := range out {
		e.byLabel[labelIndex(out[i].Label)].Inc()
	}
	return out, nil
}

// ScoreBatch is ClassifyBatch without thresholding: out[i] is the
// spam score of msgs[i]. Score-only traffic produces no verdicts, so
// it counts toward Stats.Scored, not Classified — keeping the
// invariant sum(ByLabel) == Classified intact.
func (e *Engine) ScoreBatch(ctx context.Context, msgs []*mail.Message) ([]float64, error) {
	clf := e.cur.Load().clf
	sp, streaming := streamPathFor(clf)
	out := make([]float64, len(msgs))
	err := e.run(ctx, len(msgs), func(i int) {
		if streaming {
			out[i] = sp.sc.ScoreTokenStream(sp.tok.Stream(msgs[i]))
		} else {
			out[i] = clf.Score(msgs[i])
		}
	})
	if err != nil {
		return nil, err
	}
	e.scored.Add(uint64(len(msgs)))
	return out, nil
}

// run executes fn(0..n-1) on the worker pool, counting batch calls
// and latency; callers publish their own message counters (Classified
// vs. Scored) once the batch completes.
func (e *Engine) run(ctx context.Context, n int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	start := time.Now()
	workers := e.workers
	if workers > n {
		workers = n
	}
	if err := ParallelFor(ctx, n, workers, fn); err != nil {
		return err
	}
	e.batches.Inc()
	e.batchLat.ObserveSince(start)
	return nil
}

// Retrain builds a fresh classifier from factory, trains it on train,
// and publishes it as the new serving snapshot in one atomic swap.
// Scoring continues against the previous snapshot for the whole build
// and never observes the half-trained replacement. Publishers are
// serialized (retraining is single-writer); concurrent scoring is
// never blocked. It returns the new snapshot's generation, or the
// current generation and ctx.Err() if cancelled mid-build (the
// serving snapshot is then left unchanged).
func (e *Engine) Retrain(ctx context.Context, factory Factory, train *corpus.Corpus) (uint64, error) {
	if factory == nil {
		panic("engine: Retrain with nil factory")
	}
	e.publishMu.Lock()
	defer e.publishMu.Unlock()
	replacement := factory()
	if err := trainAll(ctx, replacement, train); err != nil {
		return e.cur.Load().gen, err
	}
	return e.publishLocked(replacement), nil
}

// RetrainIncremental clones the serving snapshot, trains only delta
// into the clone, and publishes the clone — the cheap path when the
// new training data is a small addition to what the snapshot already
// knows (a week's kept mail versus the whole store). It requires the
// serving classifier to be a Cloner and returns an error naming the
// type otherwise.
func (e *Engine) RetrainIncremental(ctx context.Context, delta *corpus.Corpus) (uint64, error) {
	e.publishMu.Lock()
	defer e.publishMu.Unlock()
	cur := e.cur.Load()
	cloner, ok := cur.clf.(Cloner)
	if !ok {
		return cur.gen, fmt.Errorf("engine: %T is not a Cloner; use Retrain", cur.clf)
	}
	replacement := cloner.CloneClassifier()
	if err := trainAll(ctx, replacement, delta); err != nil {
		return cur.gen, err
	}
	return e.publishLocked(replacement), nil
}

// Swap publishes an externally built classifier as the new serving
// snapshot and returns its generation. Callers that build
// replacements themselves (a deployment simulator overlapping the
// build with next week's deliveries, a process loading a database
// from disk) use it as the raw publish primitive under the same
// single-writer serialization as Retrain. The classifier must not be
// mutated after the call.
func (e *Engine) Swap(clf Classifier) uint64 {
	if clf == nil {
		panic("engine: Swap with nil classifier")
	}
	e.publishMu.Lock()
	defer e.publishMu.Unlock()
	return e.publishLocked(clf)
}

// publishLocked installs clf as the next generation. Callers hold
// publishMu. Publish events always trace (they are generation-scoped,
// not message-scoped, so sampling does not apply).
func (e *Engine) publishLocked(clf Classifier) uint64 {
	gen := e.cur.Load().gen + 1
	e.cur.Store(&snapshot{clf: clf, gen: gen})
	e.publishes.Inc()
	e.trace.Record(obs.TraceEvent{Kind: obs.TracePublish, Generation: gen, Shard: e.shard})
	return gen
}

// trainAll trains every example of c into clf, checking ctx between
// examples.
func trainAll(ctx context.Context, clf Classifier, c *corpus.Corpus) error {
	for _, ex := range c.Examples {
		if err := ctx.Err(); err != nil {
			return err
		}
		clf.Learn(ex.Msg, ex.Spam)
	}
	return nil
}

// Labeled is one training example flowing through LearnStream. Stream,
// when non-nil, is Msg tokenized once upstream (a guarded stream's
// vetting stage tokenizes each candidate exactly once and forwards the
// stream here); a StreamLearner consumer trains on it directly instead
// of re-tokenizing Msg. Producers without a stream leave it nil.
type Labeled struct {
	Msg    *mail.Message
	Stream *tokenize.TokenStream
	Spam   bool
}

// LearnStream starts a single-consumer bulk-training stream into the
// snapshot current at stream start: send examples on the returned
// channel, close it, then call wait for the count of examples
// learned. The channel is buffered (Config LearnBuffer) so producers
// — an mbox reader, a corpus generator — run ahead of the learner.
// Training mutates the snapshot's classifier in place (single-writer
// on one goroutine), so the stream is for bulk loading before the
// engine starts serving; a live deployment retrains through
// Retrain's snapshot swap instead.
//
// If ctx is cancelled, remaining examples are discarded and wait
// returns ctx.Err(). The stream keeps draining until wait observes
// the cancellation, so a producer blocked on a full buffer is
// released without having to close the channel. Producers running in
// other goroutines must stop sending (or close the channel) before
// wait is called — a send racing wait's return can block forever,
// exactly like a send racing a close.
func (e *Engine) LearnStream(ctx context.Context) (chan<- Labeled, func() (int, error)) {
	cur := e.cur.Load()
	clf := cur.clf
	gen := cur.gen
	learner, _ := clf.(StreamLearner)
	in := make(chan Labeled, e.learnBuf)
	done := make(chan struct{})
	stop := make(chan struct{})
	var stopOnce sync.Once
	var n int
	var err error
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				err = ctx.Err()
				// Keep draining so a producer blocked on a full
				// buffer can finish; the drain stops once wait
				// observes the cancellation instead of leaking until
				// an abandoned channel is closed.
				go drainUntil(in, stop)
				return
			case ex, ok := <-in:
				if !ok {
					return
				}
				start := time.Now()
				if ex.Stream != nil && learner != nil {
					learner.LearnTokenStream(ex.Stream, ex.Spam, 1)
				} else {
					clf.Learn(ex.Msg, ex.Spam)
				}
				e.learnLat.ObserveSince(start)
				e.learned.Inc()
				if ex.Stream != nil {
					if d := ex.Stream.Digest(); e.trace.Sampled(d) {
						e.trace.Record(obs.TraceEvent{
							Kind: obs.TraceLearn, Digest: d, Generation: gen, Shard: e.shard,
						})
					}
				}
				n++
			}
		}
	}()
	wait := func() (int, error) {
		<-done
		stopOnce.Do(func() { close(stop) })
		return n, err
	}
	return in, wait
}

// drainUntil keeps receiving from a cancelled stream's channel so a
// producer blocked on a full buffer can finish, stopping once stop is
// closed (when the stream's wait observes the cancellation) instead
// of leaking until an abandoned channel is closed. Shared by
// Engine.LearnStream and the Sharded router, whose drain contract
// must not drift apart.
func drainUntil(in <-chan Labeled, stop <-chan struct{}) {
	for {
		select {
		case _, ok := <-in:
			if !ok {
				return
			}
		case <-stop:
			// Release any sender blocked right now, then quit. A
			// closed channel is always receivable, so check ok or the
			// flush would spin forever.
			for {
				select {
				case _, ok := <-in:
					if !ok {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	Name string
	// Generation is the serving snapshot's generation (1 is the
	// classifier the engine was constructed over).
	Generation uint64
	// Retrains is the number of snapshot publishes (Retrain,
	// RetrainIncremental, Swap) since the generation line began —
	// always Generation - 1, reported for readability. An engine
	// resumed from a persisted snapshot (NewAt) inherits the line, so
	// pre-restart publishes count.
	Retrains uint64
	// Classified is the total number of messages given verdicts
	// (Classify and ClassifyBatch). It is derived from ByLabel inside
	// Stats — every classified message lands in exactly one bucket —
	// so sum(ByLabel) == Classified holds by construction, even for a
	// reader racing an in-flight batch's counter publication.
	Classified uint64
	// Scored is the total number of messages scored without a verdict
	// (ScoreBatch) — counted apart from Classified so score-only
	// traffic cannot break the ByLabel invariant.
	Scored uint64
	// Learned is the total number of messages trained via LearnStream.
	Learned uint64
	// Batches is the number of completed batch calls (ClassifyBatch
	// and ScoreBatch).
	Batches uint64
	// ByLabel counts classification verdicts, indexed by Label.
	ByLabel [3]uint64
	// Publishes is the number of snapshot publishes performed by this
	// process. Unlike Retrains it does not count pre-restart publishes
	// an inherited generation line carries, so on a resumed engine
	// Publishes < Retrains.
	Publishes uint64
	// BatchLatency is the cumulative wall-clock time spent in
	// completed batch calls, derived from the batch latency histogram's
	// sum (the buckets behind it are exposed via /metrics).
	BatchLatency time.Duration
	// ClassifyLatency is the cumulative wall-clock time spent in
	// single-message Classify calls — the online at-delivery hot path.
	ClassifyLatency time.Duration
	// LearnLatency is the cumulative wall-clock time spent training
	// examples in LearnStream.
	LearnLatency time.Duration
	// Admission counts training candidates vetted through a Guarded
	// wrapper (zero on an unguarded engine). Its Vetted total is
	// derived from the per-verdict loads, so Vetted ==
	// Admitted+Quarantined+Rejected holds by construction.
	Admission AdmissionStats
}

// Stats returns the current counters. Counters from a batch are
// published only when the batch completes, so a snapshot is always
// internally consistent to within the in-flight batch.
func (e *Engine) Stats() Stats {
	gen := e.cur.Load().gen
	byLabel := [3]uint64{
		e.byLabel[0].Value(),
		e.byLabel[1].Value(),
		e.byLabel[2].Value(),
	}
	return Stats{
		Name:            e.name,
		Generation:      gen,
		Retrains:        gen - 1,
		Classified:      byLabel[0] + byLabel[1] + byLabel[2],
		Scored:          e.scored.Value(),
		Learned:         e.learned.Value(),
		Batches:         e.batches.Value(),
		ByLabel:         byLabel,
		Publishes:       e.publishes.Value(),
		BatchLatency:    e.batchLat.SumDuration(),
		ClassifyLatency: e.classifyLat.SumDuration(),
		LearnLatency:    e.learnLat.SumDuration(),
		Admission:       e.admissionStats(),
	}
}

// labelIndex clamps a label into the counter array.
func labelIndex(l Label) int {
	if l < Ham || l > Spam {
		return int(Unsure)
	}
	return int(l)
}
