package engine_test

// Stream-path conformance suite: the tokenize-once pipeline must be a
// pure optimization. For every stock backend, the interned-ID stream
// path (ClassifyTokenStream / LearnTokenStream) and the legacy paths
// (whole-message Classify/Learn, []string ClassifyTokens/LearnTokens)
// must produce identical verdicts, identical scores, and byte-identical
// saved snapshots — and the serving snapshot must survive clone+swap
// while stream-path classification traffic is in flight (run under
// -race via `make race`).

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/tokenize"
)

// streamCaps asserts the backend exposes the full tokenize-once
// surface and returns the capability views.
func streamCaps(t *testing.T, clf engine.Classifier) (engine.StreamClassifier, engine.StreamLearner, *tokenize.Tokenizer) {
	t.Helper()
	sc, ok := clf.(engine.StreamClassifier)
	if !ok {
		t.Fatalf("%T is not a StreamClassifier", clf)
	}
	sl, ok := clf.(engine.StreamLearner)
	if !ok {
		t.Fatalf("%T is not a StreamLearner", clf)
	}
	tz, ok := clf.(engine.Tokenizing)
	if !ok {
		t.Fatalf("%T is not Tokenizing", clf)
	}
	return sc, sl, tz.Tokenizer()
}

// streamProbes mixes trained vocabulary, unseen tokens, and repeated
// tokens (so occurrence-count handling is exercised, not just
// presence).
func streamProbes() []*mail.Message {
	return []*mail.Message{
		msg("winner lottery prize claim urgent millions\n"),
		msg("meeting agenda report budget schedule\n"),
		msg("meeting winner agenda lottery report prize\n"),
		msg("entirely novel probe text\n"),
		msg("winner winner winner lottery lottery agenda\n"),
		msg(""),
	}
}

// TestConformanceStreamVerdictEquivalence proves all classification
// entry points agree on every probe: whole-message Classify, the
// interned stream path, the legacy []string path, and a stream
// rebuilt from raw tokens through the StreamFromTokens bridge.
func TestConformanceStreamVerdictEquivalence(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		sc, _, tok := streamCaps(t, clf)
		tc, hasTokenClf := clf.(engine.TokenClassifier)
		for i, p := range streamProbes() {
			wantLabel, wantScore := clf.Classify(p)

			ts := tok.Stream(p)
			if label, score := sc.ClassifyTokenStream(ts); label != wantLabel || score != wantScore {
				t.Errorf("probe %d: stream (%v, %v) != message (%v, %v)", i, label, score, wantLabel, wantScore)
			}
			if got := sc.ScoreTokenStream(ts); got != wantScore {
				t.Errorf("probe %d: stream score %v != message score %v", i, got, wantScore)
			}
			if hasTokenClf {
				if label, score := tc.ClassifyTokens(tok.TokenSet(p)); label != wantLabel || score != wantScore {
					t.Errorf("probe %d: legacy tokens (%v, %v) != message (%v, %v)", i, label, score, wantLabel, wantScore)
				}
			}

			bridge := tokenize.StreamFromTokens(tok.Tokenize(p))
			if bridge.Digest() != ts.Digest() {
				t.Errorf("probe %d: bridge digest %x != stream digest %x", i, bridge.Digest(), ts.Digest())
			}
			if label, score := sc.ClassifyTokenStream(bridge); label != wantLabel || score != wantScore {
				t.Errorf("probe %d: bridged stream (%v, %v) != message (%v, %v)", i, label, score, wantLabel, wantScore)
			}
		}
	})
}

// TestConformanceStreamTrainingSnapshotEquivalence trains one filter
// through whole messages and a second through pre-tokenized streams,
// then demands indistinguishable filters: same counts, same verdicts,
// and byte-identical saved snapshots (the persisted symbol table is
// sorted, so intern order must not leak into the database). Where the
// backend still carries the legacy []string learner, a third filter
// trained that way must land on the same bytes.
func TestConformanceStreamTrainingSnapshotEquivalence(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		b, err := engine.Lookup(backend)
		if err != nil {
			t.Fatal(err)
		}
		viaMsg, viaStream := b.New(), b.New()
		_, sl, tok := streamCaps(t, viaStream)
		tl, hasTokenLearner := interface{}(b.New()).(engine.TokenLearner)

		ham, spam := trainingSet()
		for _, m := range ham {
			viaMsg.Learn(m, false)
			sl.LearnTokenStream(tok.Stream(m), false, 1)
			if hasTokenLearner {
				tl.LearnTokens(tok.TokenSet(m), false, 1)
			}
		}
		for _, m := range spam {
			viaMsg.Learn(m, true)
			sl.LearnTokenStream(tok.Stream(m), true, 1)
			if hasTokenLearner {
				tl.LearnTokens(tok.TokenSet(m), true, 1)
			}
		}

		ns0, nh0 := viaMsg.Counts()
		if ns1, nh1 := viaStream.Counts(); ns1 != ns0 || nh1 != nh0 {
			t.Fatalf("stream-trained counts (%d, %d) != message-trained (%d, %d)", ns1, nh1, ns0, nh0)
		}
		for i, p := range streamProbes() {
			if a, b := viaMsg.Score(p), viaStream.Score(p); a != b {
				t.Errorf("probe %d: message-trained %v != stream-trained %v", i, a, b)
			}
		}

		saved := func(clf engine.Classifier) []byte {
			var buf bytes.Buffer
			if err := clf.(engine.Persistable).Save(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		msgBytes, streamBytes := saved(viaMsg), saved(viaStream)
		if !bytes.Equal(msgBytes, streamBytes) {
			t.Error("stream-trained snapshot differs from message-trained snapshot")
		}
		if hasTokenLearner {
			if ns2, nh2 := tl.(engine.Classifier).Counts(); ns2 != ns0 || nh2 != nh0 {
				t.Fatalf("legacy-trained counts (%d, %d) != message-trained (%d, %d)", ns2, nh2, ns0, nh0)
			}
			if !bytes.Equal(msgBytes, saved(tl.(engine.Classifier))) {
				t.Error("legacy []string-trained snapshot differs from message-trained snapshot")
			}
		}
	})
}

// TestConformanceStreamPersistenceRoundTrip proves interned symbol
// tables survive the format-bumped database round-trip: a restored
// filter reproduces the original's stream-path verdicts exactly and
// re-saves to identical bytes.
func TestConformanceStreamPersistenceRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		sc, _, tok := streamCaps(t, clf)

		var buf bytes.Buffer
		if err := clf.(engine.Persistable).Save(&buf); err != nil {
			t.Fatal(err)
		}
		b, _ := engine.Lookup(backend)
		restored := b.New()
		if err := restored.(engine.Persistable).Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		rsc, _, rtok := streamCaps(t, restored)
		for i, p := range streamProbes() {
			ts, rts := tok.Stream(p), rtok.Stream(p)
			if ts.Digest() != rts.Digest() {
				t.Errorf("probe %d: restored tokenizer digest %x != original %x", i, rts.Digest(), ts.Digest())
			}
			wantLabel, wantScore := sc.ClassifyTokenStream(ts)
			if label, score := rsc.ClassifyTokenStream(rts); label != wantLabel || score != wantScore {
				t.Errorf("probe %d: restored stream (%v, %v) != original (%v, %v)", i, label, score, wantLabel, wantScore)
			}
		}
	})
}

// TestConformanceStreamUnlearnInverse holds the weighted stream
// learner to the exact-inverse contract on its own path: learning a
// stream with weight w and unlearning the same stream with weight w
// restores every probe score and the training counts.
func TestConformanceStreamUnlearnInverse(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		_, sl, tok := streamCaps(t, clf)
		probes := streamProbes()
		before := make([]float64, len(probes))
		for i, p := range probes {
			before[i] = clf.Score(p)
		}
		ns0, nh0 := clf.Counts()

		ts := tok.Stream(msg("novel tokens appearing nowhere else whatsoever\n"))
		sl.LearnTokenStream(ts, true, 3)
		if err := sl.UnlearnTokenStream(ts, true, 3); err != nil {
			t.Fatalf("unlearn just-learned stream: %v", err)
		}
		if ns1, nh1 := clf.Counts(); ns1 != ns0 || nh1 != nh0 {
			t.Errorf("counts (%d, %d) -> (%d, %d) after stream learn+unlearn", ns0, nh0, ns1, nh1)
		}
		for i, p := range probes {
			if got := clf.Score(p); got != before[i] {
				t.Errorf("probe %d score %v != %v after stream learn+unlearn", i, got, before[i])
			}
		}
	})
}

// TestConformanceStreamClassifyDuringSwap keeps stream-path batch
// classification in flight while RetrainIncremental clones the
// serving classifier, trains the clone, and swaps snapshots — the
// clone/swap property the per-snapshot symbol tables must preserve
// (run under -race via `make race`).
func TestConformanceStreamClassifyDuringSwap(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		clf := trained(t, backend)
		if _, ok := clf.(engine.Cloner); !ok {
			t.Fatalf("backend %q is not a Cloner", backend)
		}
		eng := engine.New(clf, engine.Config{Name: backend, Workers: 4})

		held := make([]*mail.Message, 40)
		for i := range held {
			if i%2 == 0 {
				held[i] = msg(fmt.Sprintf("meeting agenda report budget held%d\n", i))
			} else {
				held[i] = msg(fmt.Sprintf("winner lottery prize claim held%d\n", i))
			}
		}
		stop := make(chan struct{})
		trafficDone := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					trafficDone <- nil
					return
				default:
					if _, err := eng.ClassifyBatch(context.Background(), held); err != nil {
						trafficDone <- err
						return
					}
				}
			}
		}()

		delta := &corpus.Corpus{}
		for i := 0; i < 5; i++ {
			delta.Add(msg(fmt.Sprintf("fresh spam vocabulary wave%d\n", i)), true)
		}
		gen0 := eng.Generation()
		for i := 0; i < 3; i++ {
			if _, err := eng.RetrainIncremental(context.Background(), delta); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		if err := <-trafficDone; err != nil {
			t.Fatal(err)
		}
		if got := eng.Generation(); got != gen0+3 {
			t.Fatalf("generation %d after 3 swaps from %d", got, gen0)
		}
		// The swapped-in snapshot still serves the stream path.
		res, err := eng.ClassifyBatch(context.Background(), held)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range held {
			if got := eng.Classify(m); got != res[i] {
				t.Fatalf("held %d: single %+v != batch %+v after swaps", i, got, res[i])
			}
		}
	})
}
