package engine

// Serving-layer persistence: generation-stamped snapshot durability
// for Engine and Sharded.
//
// A deployment that retrains continuously must also survive restarts
// without losing — or silently resurrecting — filter state: a
// poisoned generation that was scrubbed, or a clean generation an
// attacker would rather the restart forget, is exactly the provenance
// the paper's threat model says to track. The unit of durability is
// therefore the published snapshot: each save captures one (clf, gen)
// pair read atomically from the serving pointer, and each resume
// rebuilds an engine at that generation, so the generation line is
// continuous across process lifetimes.
//
// On-disk unit: a self-describing envelope around the backend's own
// Persistable payload,
//
//	magic    "SNAP" 0x01 (format version)
//	uvarint  len(backend), backend registry name bytes
//	uvarint  generation
//	uvarint  len(payload), payload bytes (Persistable.Save output)
//	uint32   big-endian CRC-32 (IEEE) of every preceding byte
//
// The backend name makes the file loadable with no out-of-band
// configuration (resume looks the backend up in the registry), the
// stamped generation survives the round trip, and the trailing
// checksum rejects truncation and bit rot before a partial database
// can load. A format change must bump the version byte; the golden
// envelope fixture pins the layout.
//
// Envelopes live in a SnapshotStore keyed by (name, generation). The
// filesystem implementation (DirStore) writes each generation to its
// own file via temp-file + rename, so a crash mid-save can never
// clobber the previous good generation, and keeps old generations
// listable until Prune removes them.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// snapMagic is the envelope magic plus format version byte. Bump the
// version when the layout changes; DecodeEnvelope rejects unknown
// versions rather than guessing.
var snapMagic = [5]byte{'S', 'N', 'A', 'P', 1}

// maxBackendName bounds the backend-name field so a corrupt header
// cannot demand an absurd read.
const maxBackendName = 255

// ErrNoSnapshot reports a resume against a store holding no
// generations (or none that survive validation) for the given name.
var ErrNoSnapshot = errors.New("engine: no valid snapshot")

// Envelope is the decoded form of one persisted snapshot: which
// backend wrote the payload, the serving generation it was published
// as, and the backend's own Save output.
type Envelope struct {
	// Backend is the engine registry name that can Load the payload.
	Backend string
	// Generation is the serving generation the snapshot was saved at.
	Generation uint64
	// Payload is the backend's Persistable.Save output.
	Payload []byte
}

// Encode serializes the envelope, including the trailing checksum.
func (env Envelope) Encode() []byte {
	var b bytes.Buffer
	b.Grow(len(snapMagic) + 2*binary.MaxVarintLen64 + len(env.Backend) + len(env.Payload) + 8)
	b.Write(snapMagic[:])
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { b.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(uint64(len(env.Backend)))
	b.WriteString(env.Backend)
	put(env.Generation)
	put(uint64(len(env.Payload)))
	b.Write(env.Payload)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crc[:])
	return b.Bytes()
}

// DecodeEnvelope parses and validates an encoded envelope: magic and
// version, checksum over the entire preceding content, bounded header
// fields, and an exact-length payload (trailing bytes are corruption,
// not padding). The returned payload aliases data.
func DecodeEnvelope(data []byte) (Envelope, error) {
	if len(data) < len(snapMagic)+4 {
		return Envelope{}, fmt.Errorf("engine: snapshot truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], snapMagic[:4]) {
		return Envelope{}, fmt.Errorf("engine: bad snapshot magic %q", data[:4])
	}
	if data[4] != snapMagic[4] {
		return Envelope{}, fmt.Errorf("engine: snapshot format version %d, want %d", data[4], snapMagic[4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(tail) {
		return Envelope{}, fmt.Errorf("engine: snapshot checksum mismatch (have %08x, stored %08x)",
			sum, binary.BigEndian.Uint32(tail))
	}
	r := bytes.NewReader(body[len(snapMagic):])
	read := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("engine: snapshot %s: %w", what, err)
		}
		return v, nil
	}
	blen, err := read("backend name length")
	if err != nil {
		return Envelope{}, err
	}
	if blen == 0 || blen > maxBackendName {
		return Envelope{}, fmt.Errorf("engine: snapshot backend name length %d", blen)
	}
	if uint64(r.Len()) < blen {
		return Envelope{}, fmt.Errorf("engine: snapshot truncated in backend name")
	}
	name := make([]byte, blen)
	r.Read(name)
	gen, err := read("generation")
	if err != nil {
		return Envelope{}, err
	}
	if gen < 1 {
		// Generations start at 1 (NewAt enforces it), so a zero stamp
		// is corruption no save path can produce — reject it here so
		// no resume path can feed it to a constructor.
		return Envelope{}, fmt.Errorf("engine: snapshot stamped generation 0")
	}
	plen, err := read("payload length")
	if err != nil {
		return Envelope{}, err
	}
	if uint64(r.Len()) != plen {
		return Envelope{}, fmt.Errorf("engine: snapshot payload length %d, have %d bytes", plen, r.Len())
	}
	payload := body[len(body)-r.Len():]
	return Envelope{Backend: string(name), Generation: gen, Payload: payload}, nil
}

// SnapshotStore holds encoded snapshot envelopes keyed by logical
// name and generation. Write must be atomic with respect to readers:
// a Read of (name, gen) observes either nothing or the complete data,
// never a prefix — the property a crash-mid-save must not break.
type SnapshotStore interface {
	// Write durably stores data as (name, gen), replacing any previous
	// value of the same key.
	Write(name string, gen uint64, data []byte) error
	// Read returns the stored data for (name, gen).
	Read(name string, gen uint64) ([]byte, error)
	// Generations returns the stored generations of name in ascending
	// order (empty, not an error, when the name is unknown).
	Generations(name string) ([]uint64, error)
	// Remove deletes (name, gen).
	Remove(name string, gen uint64) error
}

// checkSnapshotName rejects names that cannot key a store safely —
// path separators and control bytes would let one logical name escape
// into another's files.
func checkSnapshotName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("engine: invalid snapshot name %q", name)
	}
	for _, r := range name {
		if r == '/' || r == '\\' || r < 0x20 {
			return fmt.Errorf("engine: invalid snapshot name %q", name)
		}
	}
	return nil
}

// DirStore is the filesystem SnapshotStore: one file per generation,
// "<name>.<generation>.snap" with the generation zero-padded so
// lexical and numeric order agree. Writes go to a temp file in the
// same directory, are synced, and land by rename — readers (and
// crash-recovery scans) never observe a partial snapshot file.
type DirStore struct {
	dir string
}

// NewDirStore returns a store over dir, creating it if needed. Stale
// temp files from writes a previous process crashed out of are swept
// on open — nothing else ever removes them (Generations skips them
// and Prune only touches landed snapshots). A concurrent writer that
// loses its temp file to the sweep fails cleanly at its rename; a
// partial snapshot still can never land.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DirStore) Dir() string { return s.dir }

// snapFile returns the file path of (name, gen).
func (s *DirStore) snapFile(name string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%020d.snap", name, gen))
}

// Write stores data atomically: temp file, sync, rename.
func (s *DirStore) Write(name string, gen uint64, data []byte) error {
	if err := checkSnapshotName(name); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, name+".*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename has landed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.snapFile(name, gen)); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable;
	// filesystems that cannot sync a directory still got the atomic
	// rename, which is the property correctness relies on.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Read returns the stored bytes of (name, gen).
func (s *DirStore) Read(name string, gen uint64) ([]byte, error) {
	if err := checkSnapshotName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(s.snapFile(name, gen))
}

// Generations lists name's stored generations in ascending order.
func (s *DirStore) Generations(name string) ([]uint64, error) {
	if err := checkSnapshotName(name); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	prefix := name + "."
	var gens []uint64
	for _, e := range entries {
		fn := e.Name()
		// Exactly the 20 zero-padded digits between prefix and suffix;
		// anything else ("name.shard0.<gen>.snap") is a different key.
		// The length check first: a name that is itself a prefix of
		// another snapshot's full filename must not slice past it.
		if len(fn) != len(prefix)+20+len(".snap") ||
			!strings.HasPrefix(fn, prefix) || !strings.HasSuffix(fn, ".snap") {
			continue
		}
		digits := fn[len(prefix) : len(fn)-len(".snap")]
		gen, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Remove deletes (name, gen).
func (s *DirStore) Remove(name string, gen uint64) error {
	if err := checkSnapshotName(name); err != nil {
		return err
	}
	return os.Remove(s.snapFile(name, gen))
}

// MemStore is an in-memory SnapshotStore for tests and simulations —
// same contract, no filesystem. It is safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	snaps map[string]map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{snaps: map[string]map[uint64][]byte{}}
}

// Write stores a private copy of data under (name, gen).
func (s *MemStore) Write(name string, gen uint64, data []byte) error {
	if err := checkSnapshotName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.snaps[name]
	if m == nil {
		m = map[uint64][]byte{}
		s.snaps[name] = m
	}
	m[gen] = append([]byte(nil), data...)
	return nil
}

// Read returns a copy of the stored bytes of (name, gen).
func (s *MemStore) Read(name string, gen uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.snaps[name][gen]
	if !ok {
		return nil, fmt.Errorf("engine: snapshot %s generation %d: %w", name, gen, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// Generations lists name's stored generations in ascending order.
func (s *MemStore) Generations(name string) ([]uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	gens := make([]uint64, 0, len(s.snaps[name]))
	for gen := range s.snaps[name] {
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Remove deletes (name, gen).
func (s *MemStore) Remove(name string, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.snaps[name][gen]; !ok {
		return fmt.Errorf("engine: snapshot %s generation %d: %w", name, gen, os.ErrNotExist)
	}
	delete(s.snaps[name], gen)
	return nil
}

// SaveEngine persists e's current serving snapshot into st under
// name: the classifier and generation are read in one consistent
// atomic load, the classifier (which must be Persistable) serializes
// itself, and the envelope is stamped with the backend registry name
// resume will reconstruct it through. Concurrent scoring is never
// blocked — published snapshots are immutable, so Save reads the same
// frozen state a racing ClassifyBatch does. It returns the persisted
// generation.
func SaveEngine(st SnapshotStore, name, backend string, e *Engine) (uint64, error) {
	if _, err := Lookup(backend); err != nil {
		return 0, err
	}
	clf, gen := e.Snapshot()
	p, ok := clf.(Persistable)
	if !ok {
		return 0, fmt.Errorf("engine: %T is not Persistable", clf)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return 0, fmt.Errorf("engine: saving snapshot %s generation %d: %w", name, gen, err)
	}
	env := Envelope{Backend: backend, Generation: gen, Payload: buf.Bytes()}
	if err := st.Write(name, gen, env.Encode()); err != nil {
		return 0, err
	}
	return gen, nil
}

// scanNewest walks name's generations newest to oldest and returns
// the first envelope that decodes, matches its stamped generation,
// and passes validate (nil accepts anything) — the one skip-corrupt
// scan every resume-side reader shares, so their notions of "valid"
// cannot drift. It fails with an error wrapping ErrNoSnapshot when
// no generation survives.
func scanNewest(st SnapshotStore, name string, validate func(Envelope) error) (Envelope, error) {
	gens, err := st.Generations(name)
	if err != nil {
		return Envelope{}, err
	}
	// The reported failure is the newest generation's — the snapshot
	// an operator expected to resume — not whichever older file
	// happened to fail last in the scan.
	var firstErr error
	skip := func(gen uint64, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("generation %d: %w", gen, err)
		}
	}
	for i := len(gens) - 1; i >= 0; i-- {
		data, err := st.Read(name, gens[i])
		if err != nil {
			skip(gens[i], err)
			continue
		}
		env, err := DecodeEnvelope(data)
		if err != nil {
			skip(gens[i], err)
			continue
		}
		if env.Generation != gens[i] {
			skip(gens[i], fmt.Errorf("envelope stamped %d", env.Generation))
			continue
		}
		if validate != nil {
			if err := validate(env); err != nil {
				skip(gens[i], err)
				continue
			}
		}
		return env, nil
	}
	if firstErr != nil {
		return Envelope{}, fmt.Errorf("%w for %q: newest failure: %v", ErrNoSnapshot, name, firstErr)
	}
	return Envelope{}, fmt.Errorf("%w for %q", ErrNoSnapshot, name)
}

// LatestEnvelope returns name's newest envelope that decodes —
// backend, generation, payload — without reconstructing the
// classifier: enough to inspect a snapshot line or continue it with
// the next generation number. Unlike the resume path it does not
// prove the payload loads into its backend. It fails with an error
// wrapping ErrNoSnapshot when no generation decodes.
func LatestEnvelope(st SnapshotStore, name string) (Envelope, error) {
	return scanNewest(st, name, nil)
}

// latestValid is the resume-side scan: the newest snapshot that
// decodes, names a registered backend, and loads — corrupt,
// truncated, or orphaned generations are skipped, so one bad file
// costs one generation of history, not the deployment.
func latestValid(st SnapshotStore, name string) (Envelope, Classifier, error) {
	var clf Classifier
	env, err := scanNewest(st, name, func(env Envelope) error {
		c, err := NewFromEnvelope(env)
		if err != nil {
			return err
		}
		clf = c
		return nil
	})
	if err != nil {
		return Envelope{}, nil, err
	}
	return env, clf, nil
}

// NewFromEnvelope reconstructs the envelope's classifier: the backend
// is looked up by its stamped registry name, constructed fresh, and
// loaded from the payload.
func NewFromEnvelope(env Envelope) (Classifier, error) {
	b, err := Lookup(env.Backend)
	if err != nil {
		return nil, err
	}
	clf := b.New()
	p, ok := clf.(Persistable)
	if !ok {
		return nil, fmt.Errorf("engine: backend %q is not Persistable", env.Backend)
	}
	if err := p.Load(bytes.NewReader(env.Payload)); err != nil {
		return nil, err
	}
	return clf, nil
}

// ResumeEngine restores an Engine from name's latest valid generation
// in st: the restored classifier serves at its persisted generation
// (not 1), so the generation line — and every consumer watching it
// for provenance — continues across the restart. The envelope of the
// resumed generation is returned alongside the engine. It fails with
// an error wrapping ErrNoSnapshot when no generation validates.
func ResumeEngine(st SnapshotStore, name string, cfg Config) (*Engine, Envelope, error) {
	env, clf, err := latestValid(st, name)
	if err != nil {
		return nil, Envelope{}, err
	}
	// DecodeEnvelope rejects a zero generation stamp, so env.Generation
	// is always a valid NewAt argument here (as in ResumeAll).
	return NewAt(clf, env.Generation, cfg), env, nil
}

// Prune removes all but the newest keep generations of name,
// returning the removed generations. keep must be at least 1, and
// the newest generation that still decodes is never pruned even if
// it falls outside the kept count — it is the restart path.
func Prune(st SnapshotStore, name string, keep int) ([]uint64, error) {
	if keep < 1 {
		return nil, fmt.Errorf("engine: Prune keep %d", keep)
	}
	gens, err := st.Generations(name)
	if err != nil {
		return nil, err
	}
	if len(gens) <= keep {
		return nil, nil
	}
	// The newest generation that still decodes is the restart path —
	// if every newer file is corrupt, it must survive the prune even
	// when the count alone would remove it, or pruning would convert
	// one rotten file into an unrecoverable line.
	restart := uint64(0)
	if env, err := LatestEnvelope(st, name); err == nil {
		restart = env.Generation
	}
	var removed []uint64
	for _, gen := range gens[:len(gens)-keep] {
		if gen == restart {
			continue
		}
		if err := st.Remove(name, gen); err != nil {
			return removed, err
		}
		removed = append(removed, gen)
	}
	return removed, nil
}

// ShardSnapshotName is the store key of one shard's snapshot line:
// shard i of a Sharded named name persists as "name.shard<i>". (The
// Engine stats label "name/i" is not filesystem-safe, so the store
// key scheme is its own.)
func ShardSnapshotName(name string, shard int) string {
	return fmt.Sprintf("%s.shard%d", name, shard)
}

// SaveAll persists every shard's current snapshot concurrently, each
// under its own ShardSnapshotName and at its own generation — shards
// retrain independently, so their generation lines diverge and must
// persist independently. It returns the persisted generation of every
// shard; on error some shards may have saved (each save is atomic,
// so no shard is ever half-saved).
func (s *Sharded) SaveAll(st SnapshotStore, backend string) ([]uint64, error) {
	gens := make([]uint64, len(s.shards))
	err := s.forEachShard(func(sh int) error {
		var err error
		gens[sh], err = SaveEngine(st, ShardSnapshotName(s.name, sh), backend, s.shards[sh])
		return err
	})
	return gens, err
}

// ResumeAll restores a Sharded of shards engines from st, each shard
// from its own snapshot line's latest valid generation (keys from
// cfg.Name, default "sharded"). Every shard must resume — a missing
// shard means the partition is serving amnesia for those users, so it
// is an error, not a silent fresh shard. The returned generations are
// each shard's resumed generation; compare them with StaleShards to
// see which shards lag the newest line.
func ResumeAll(st SnapshotStore, shards int, cfg ShardedConfig) (*Sharded, []uint64, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("engine: ResumeAll with %d shards", shards)
	}
	name := cfg.Name
	if name == "" {
		name = "sharded"
	}
	clfs := make([]Classifier, shards)
	gens := make([]uint64, shards)
	for i := 0; i < shards; i++ {
		env, clf, err := latestValid(st, ShardSnapshotName(name, i))
		if err != nil {
			return nil, nil, fmt.Errorf("engine: resuming shard %d of %q: %w", i, name, err)
		}
		clfs[i] = clf
		gens[i] = env.Generation
	}
	return newShardedAt(clfs, gens, cfg), gens, nil
}

// StaleShards returns the indices of shards whose resumed generation
// lags the newest generation across the partition — the shards whose
// snapshot line missed recent publishes (a checkpoint that did not
// cover them, a file lost to corruption) and is serving older state
// than its peers.
func StaleShards(gens []uint64) []int {
	var max uint64
	for _, g := range gens {
		if g > max {
			max = g
		}
	}
	var stale []int
	for i, g := range gens {
		if g < max {
			stale = append(stale, i)
		}
	}
	return stale
}
