package engine_test

// Persistence-subsystem tests: envelope framing and corruption
// rejection, the SnapshotStore implementations (atomic filesystem
// writes, listing, pruning), engine save/resume across generations,
// and the crash-recovery contract of a Sharded partition — a resumed
// shard serves its last published generation with byte-identical
// re-saved state, and shards whose snapshot lines lag are detected as
// stale.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/mail"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	env := engine.Envelope{Backend: "sbayes", Generation: 7, Payload: []byte("db bytes")}
	got, err := engine.DecodeEnvelope(env.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != env.Backend || got.Generation != env.Generation || !bytes.Equal(got.Payload, env.Payload) {
		t.Fatalf("round trip = %+v", got)
	}
	// Empty payload is legal (an untrained filter persists too).
	empty := engine.Envelope{Backend: "graham", Generation: 1}
	if _, err := engine.DecodeEnvelope(empty.Encode()); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
}

// seal appends a correct CRC to a hand-built envelope body, so the
// structural validation beyond the checksum is reachable.
func seal(body []byte) []byte {
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(append([]byte(nil), body...), crc[:]...)
}

func TestDecodeEnvelopeRejectsCorruption(t *testing.T) {
	valid := engine.Envelope{Backend: "sbayes", Generation: 3, Payload: []byte("payload")}.Encode()
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	cases := map[string][]byte{
		"empty":            nil,
		"short":            []byte("SN"),
		"bad magic":        seal([]byte("NOPE\x01rest")),
		"bad version":      badVersion, // also fails CRC, but version is checked first
		"flipped bit":      flipped,
		"truncated":        valid[:len(valid)-6],
		"trailing byte":    append(append([]byte(nil), valid...), 0x00),
		"zero generation":  engine.Envelope{Backend: "sbayes", Payload: []byte("p")}.Encode(),
		"zero name length": seal(append(append([]byte(nil), "SNAP\x01"...), 0)),
		"huge name length": seal(append(append([]byte(nil), "SNAP\x01"...), 0xff, 0xff, 0x03)),
		"payload mismatch": seal(append(append([]byte(nil), "SNAP\x01"...), 6, 's', 'b', 'a', 'y', 'e', 's', 1, 9, 'x')),
	}
	for name, data := range cases {
		if _, err := engine.DecodeEnvelope(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// storeContract runs the shared SnapshotStore behavior against an
// implementation.
func storeContract(t *testing.T, st engine.SnapshotStore) {
	t.Helper()
	for _, gen := range []uint64{3, 1, 2} {
		if err := st.Write("eng", gen, []byte(fmt.Sprintf("snap-%d", gen))); err != nil {
			t.Fatal(err)
		}
	}
	// A sibling name sharing the prefix must not leak into listings.
	if err := st.Write("eng.shard0", 9, []byte("other line")); err != nil {
		t.Fatal(err)
	}
	gens, err := st.Generations("eng")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gens, []uint64{1, 2, 3}) {
		t.Fatalf("generations = %v", gens)
	}
	data, err := st.Read("eng", 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "snap-2" {
		t.Fatalf("read = %q", data)
	}
	if _, err := st.Read("eng", 8); err == nil {
		t.Fatal("read of a missing generation succeeded")
	}
	// Overwrite is a replace.
	if err := st.Write("eng", 2, []byte("snap-2b")); err != nil {
		t.Fatal(err)
	}
	if data, _ := st.Read("eng", 2); string(data) != "snap-2b" {
		t.Fatalf("after overwrite read = %q", data)
	}
	// Prune keeps the newest.
	removed, err := engine.Prune(st, "eng", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []uint64{1, 2}) {
		t.Fatalf("pruned %v", removed)
	}
	if gens, _ := st.Generations("eng"); !reflect.DeepEqual(gens, []uint64{3}) {
		t.Fatalf("after prune generations = %v", gens)
	}
	if _, err := engine.Prune(st, "eng", 0); err == nil {
		t.Fatal("Prune keep 0 succeeded")
	}
	// Invalid names are rejected, not turned into paths.
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "a\nb"} {
		if err := st.Write(bad, 1, []byte("x")); err == nil {
			t.Errorf("Write accepted name %q", bad)
		}
	}
}

func TestDirStoreContract(t *testing.T) {
	st, err := engine.NewDirStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, st)
	// Stray files in the directory are not listed as generations.
	if err := os.WriteFile(filepath.Join(st.Dir(), "eng.notagen.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if gens, _ := st.Generations("eng"); !reflect.DeepEqual(gens, []uint64{3}) {
		t.Fatalf("stray file listed: %v", gens)
	}
	// A name that is itself a prefix of another snapshot's full
	// filename must list empty, not panic on the short slice.
	if gens, err := st.Generations("eng.00000000000000000003"); err != nil || len(gens) != 0 {
		t.Fatalf("filename-prefix name listed %v (%v)", gens, err)
	}
	// Stale temp files from a crashed writer are swept on open.
	stale := filepath.Join(st.Dir(), "eng.crashed.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.NewDirStore(st.Dir()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
	// No temp files left behind by completed writes.
	matches, _ := filepath.Glob(filepath.Join(st.Dir(), "*.tmp"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, engine.NewMemStore())
}

// heldOut returns a fixed mixed-probe corpus for verdict-equality
// checks.
func heldOut() []*mail.Message {
	msgs := make([]*mail.Message, 40)
	for i := range msgs {
		if i%2 == 0 {
			msgs[i] = msg(fmt.Sprintf("meeting agenda report budget probe%d\n", i))
		} else {
			msgs[i] = msg(fmt.Sprintf("winner lottery prize claim probe%d\n", i))
		}
	}
	return msgs
}

func TestSaveResumeEngine(t *testing.T) {
	st, err := engine.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clf := trained(t, "sbayes")
	eng := engine.New(clf, engine.Config{Name: "prod"})
	if gen, err := engine.SaveEngine(st, "prod", "sbayes", eng); err != nil || gen != 1 {
		t.Fatalf("save gen 1 = (%d, %v)", gen, err)
	}

	// Publish generation 2 with extra training, save it too.
	next := clf.(engine.Cloner).CloneClassifier()
	next.Learn(msg("quarterly forecast spreadsheet review\n"), false)
	eng.Swap(next)
	if gen, err := engine.SaveEngine(st, "prod", "sbayes", eng); err != nil || gen != 2 {
		t.Fatalf("save gen 2 = (%d, %v)", gen, err)
	}

	want := make([]engine.Result, 0, 40)
	for _, m := range heldOut() {
		want = append(want, eng.Classify(m))
	}

	resumed, env, err := engine.ResumeEngine(st, "prod", engine.Config{Name: "prod"})
	if err != nil {
		t.Fatal(err)
	}
	if env.Backend != "sbayes" || env.Generation != 2 || resumed.Generation() != 2 {
		t.Fatalf("resumed backend %q gen %d (engine gen %d)", env.Backend, env.Generation, resumed.Generation())
	}
	for i, m := range heldOut() {
		if got := resumed.Classify(m); got != want[i] {
			t.Fatalf("probe %d: resumed %+v != original %+v", i, got, want[i])
		}
	}
	// The resumed engine continues the generation line.
	if gen := resumed.Swap(next); gen != 3 {
		t.Fatalf("post-resume publish got generation %d, want 3", gen)
	}

	// Corrupt the newest snapshot on disk: resume must fall back to
	// the previous valid generation instead of failing or loading it.
	data, err := st.Read("prod", 2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := st.Write("prod", 2, data); err != nil {
		t.Fatal(err)
	}
	fallback, env, err := engine.ResumeEngine(st, "prod", engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if env.Generation != 1 || fallback.Generation() != 1 {
		t.Fatalf("fallback resumed generation %d, want 1", env.Generation)
	}
}

// TestPruneKeepsNewestValid pins the prune/corruption interaction:
// when the newest files have rotted, the newest generation that
// still decodes is the restart path and survives the prune even
// though the kept count alone would remove it.
func TestPruneKeepsNewestValid(t *testing.T) {
	st := engine.NewMemStore()
	for gen := uint64(1); gen <= 4; gen++ {
		env := engine.Envelope{Backend: "sbayes", Generation: gen, Payload: []byte{byte(gen)}}
		if err := st.Write("line", gen, env.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	// Generations 3 and 4 rot on disk; only 2 and 1 still decode.
	for _, gen := range []uint64{3, 4} {
		if err := st.Write("line", gen, []byte("rotten")); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := engine.Prune(st, "line", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []uint64{1, 3}) {
		t.Fatalf("pruned %v, want [1 3] (2 is the restart path)", removed)
	}
	if env, err := engine.LatestEnvelope(st, "line"); err != nil {
		t.Fatalf("line unrecoverable after prune: %v", err)
	} else if env.Generation != 2 {
		t.Fatalf("newest decodable generation %d after prune, want 2", env.Generation)
	}
}

func TestLatestEnvelope(t *testing.T) {
	st := engine.NewMemStore()
	if _, err := engine.LatestEnvelope(st, "line"); !errors.Is(err, engine.ErrNoSnapshot) {
		t.Fatalf("empty store: %v", err)
	}
	for gen := uint64(1); gen <= 3; gen++ {
		env := engine.Envelope{Backend: "sbayes", Generation: gen, Payload: []byte{byte(gen)}}
		if err := st.Write("line", gen, env.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	env, err := engine.LatestEnvelope(st, "line")
	if err != nil || env.Generation != 3 {
		t.Fatalf("latest = (%d, %v), want 3", env.Generation, err)
	}
	// A corrupt newest falls back, decode-only — no backend Load runs,
	// so even an unloadable payload of an older generation is visible.
	if err := st.Write("line", 3, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	env, err = engine.LatestEnvelope(st, "line")
	if err != nil || env.Generation != 2 {
		t.Fatalf("after corruption latest = (%d, %v), want 2", env.Generation, err)
	}
}

func TestResumeEngineErrors(t *testing.T) {
	st := engine.NewMemStore()
	if _, _, err := engine.ResumeEngine(st, "ghost", engine.Config{}); !errors.Is(err, engine.ErrNoSnapshot) {
		t.Fatalf("empty store: %v", err)
	}
	// A store holding only garbage is as empty as one holding nothing.
	if err := st.Write("ghost", 1, []byte("not an envelope")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := engine.ResumeEngine(st, "ghost", engine.Config{}); !errors.Is(err, engine.ErrNoSnapshot) {
		t.Fatalf("corrupt-only store: %v", err)
	}
	// A snapshot naming an unregistered backend cannot resume.
	env := engine.Envelope{Backend: "nonesuch", Generation: 1, Payload: nil}
	if err := st.Write("alien", 1, env.Encode()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := engine.ResumeEngine(st, "alien", engine.Config{}); !errors.Is(err, engine.ErrNoSnapshot) {
		t.Fatalf("unknown-backend store: %v", err)
	}
	// SaveEngine refuses an unregistered backend stamp up front.
	eng := engine.New(trained(t, "sbayes"), engine.Config{})
	if _, err := engine.SaveEngine(st, "prod", "nonesuch", eng); err == nil {
		t.Fatal("SaveEngine accepted an unregistered backend name")
	}
}

// TestShardedCrashRecovery is the kill-and-resume contract of the
// partitioned serving layer: persist all shards, publish (and
// persist) further generations on a subset, then "crash" — discard
// the Sharded — and resume from the store. Resumed shards must serve
// their last published generation with verdicts identical to the
// pre-crash snapshot and re-save to byte-identical snapshots, while
// the shards whose lines missed the later publishes are detected as
// stale.
func TestShardedCrashRecovery(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		st, err := engine.NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		base := trained(t, backend)
		cloner := base.(engine.Cloner)
		const nsh = 4
		clfs := make([]engine.Classifier, nsh)
		for i := range clfs {
			clfs[i] = cloner.CloneClassifier()
		}
		sh := engine.NewSharded(clfs, engine.ShardedConfig{Name: "fleet", Workers: 2})

		// Diverge every shard (generation 2 each), persist the fleet.
		for i := 0; i < nsh; i++ {
			next := cloner.CloneClassifier()
			next.Learn(msg(fmt.Sprintf("shard%d distinctive vocabulary alpha\n", i)), true)
			sh.Swap(i, next)
		}
		if gens, err := sh.SaveAll(st, backend); err != nil {
			t.Fatal(err)
		} else if !reflect.DeepEqual(gens, []uint64{2, 2, 2, 2}) {
			t.Fatalf("SaveAll gens = %v", gens)
		}

		// Shards 0 and 2 publish generation 3 and persist it; shards 1
		// and 3 crash before their next checkpoint.
		for _, i := range []int{0, 2} {
			next := cloner.CloneClassifier()
			next.Learn(msg(fmt.Sprintf("shard%d distinctive vocabulary beta\n", i)), true)
			sh.Swap(i, next)
			name := engine.ShardSnapshotName("fleet", i)
			if gen, err := engine.SaveEngine(st, name, backend, sh.Shard(i)); err != nil || gen != 3 {
				t.Fatalf("shard %d save = (%d, %v)", i, gen, err)
			}
		}
		preCrash := make(map[int][]engine.Result)
		for i := 0; i < nsh; i++ {
			for _, m := range heldOut() {
				preCrash[i] = append(preCrash[i], sh.Shard(i).Classify(m))
			}
		}
		stored := make([][]byte, nsh)
		wantGens := []uint64{3, 2, 3, 2}
		for i := 0; i < nsh; i++ {
			data, err := st.Read(engine.ShardSnapshotName("fleet", i), wantGens[i])
			if err != nil {
				t.Fatal(err)
			}
			stored[i] = data
		}

		// Crash: the Sharded is gone; resume the partition from disk.
		sh = nil
		resumed, gens, err := engine.ResumeAll(st, nsh, engine.ShardedConfig{Name: "fleet", Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gens, wantGens) {
			t.Fatalf("resumed gens = %v, want %v", gens, wantGens)
		}
		if stale := engine.StaleShards(gens); !reflect.DeepEqual(stale, []int{1, 3}) {
			t.Fatalf("StaleShards = %v, want [1 3]", stale)
		}
		for i := 0; i < nsh; i++ {
			if got := resumed.Shard(i).Generation(); got != wantGens[i] {
				t.Errorf("shard %d resumed at generation %d, want %d", i, got, wantGens[i])
			}
			for j, m := range heldOut() {
				if got := resumed.Shard(i).Classify(m); got != preCrash[i][j] {
					t.Fatalf("shard %d probe %d: resumed %+v != pre-crash %+v", i, j, got, preCrash[i][j])
				}
			}
		}

		// Re-saving the resumed fleet reproduces the stored snapshots
		// byte for byte — nothing drifted through the restart.
		st2 := engine.NewMemStore()
		if _, err := resumed.SaveAll(st2, backend); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nsh; i++ {
			data, err := st2.Read(engine.ShardSnapshotName("fleet", i), wantGens[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, stored[i]) {
				t.Errorf("shard %d re-saved snapshot differs from the stored one", i)
			}
		}

		// A missing shard line is an error, not a silently fresh shard.
		if _, _, err := engine.ResumeAll(st, nsh+1, engine.ShardedConfig{Name: "fleet"}); err == nil {
			t.Fatal("ResumeAll resumed a shard that was never saved")
		}
	})
}

// TestSaveEngineConsistentUnderPublish pins the atomicity of the
// (classifier, generation) read: a save racing publishes must stamp
// the generation that matches the payload it serialized.
func TestSaveEngineConsistentUnderPublish(t *testing.T) {
	st := engine.NewMemStore()
	clf := trained(t, "sbayes")
	eng := engine.New(clf, engine.Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cloner := clf.(engine.Cloner)
		for i := 0; i < 50; i++ {
			eng.Swap(cloner.CloneClassifier())
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := engine.SaveEngine(st, "prod", "sbayes", eng); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	gens, err := st.Generations("prod")
	if err != nil {
		t.Fatal(err)
	}
	for _, gen := range gens {
		data, err := st.Read("prod", gen)
		if err != nil {
			t.Fatal(err)
		}
		env, err := engine.DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if env.Generation != gen {
			t.Fatalf("stored generation %d stamped %d", gen, env.Generation)
		}
		if _, err := engine.NewFromEnvelope(env); err != nil {
			t.Fatalf("generation %d does not load: %v", gen, err)
		}
	}
}
