package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer,
		"stats", "statsuser")
}
