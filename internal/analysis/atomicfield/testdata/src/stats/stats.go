// Package stats is the atomicfield fixture: Counters.Hits and
// Counters.Misses are atomic fields (they appear in sync/atomic
// calls), label is not. Plain accesses outside constructors are
// flagged; the //sbvet:unatomic site is waived.
package stats

import "sync/atomic"

// Counters is a hot-path stat block.
type Counters struct {
	Hits   uint64
	Misses uint64
	label  string
}

// NewCounters seeds a counter block; constructors may write plainly —
// the value is not shared yet.
func NewCounters(seed uint64) *Counters {
	c := &Counters{label: "fixture"}
	c.Hits = seed
	return c
}

// Record bumps a counter atomically: these are the sanctioned sites.
func (c *Counters) Record(hit bool) {
	if hit {
		atomic.AddUint64(&c.Hits, 1)
	} else {
		atomic.AddUint64(&c.Misses, 1)
	}
}

// Snapshot reads both counters atomically: clean.
func (c *Counters) Snapshot() (hits, misses uint64) {
	return atomic.LoadUint64(&c.Hits), atomic.LoadUint64(&c.Misses)
}

// Total mixes a plain read with an atomic one: the plain read races.
func (c *Counters) Total() uint64 {
	h := c.Hits // want `plain access to atomic field: Counters\.Hits`
	return h + atomic.LoadUint64(&c.Misses)
}

// Reset writes plainly: a torn write on 32-bit, a race everywhere.
func (c *Counters) Reset() {
	c.Misses = 0 // want `plain access to atomic field: Counters\.Misses`
}

// Label touches the non-atomic field: clean.
func (c *Counters) Label() string { return c.label }

// drain reads plainly on a single-goroutine path and says so.
func (c *Counters) drain() uint64 {
	h := c.Hits //sbvet:unatomic fixture: single-goroutine teardown path
	return h
}
