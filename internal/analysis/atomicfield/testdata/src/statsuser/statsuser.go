// Package statsuser accesses stats.Counters from outside its package:
// the atomicFact exported by stats travels with the field, so the
// plain read here is flagged too.
package statsuser

import (
	"sync/atomic"

	"stats"
)

// Report reads plainly: flagged through the imported fact.
func Report(c *stats.Counters) uint64 {
	return c.Hits // want `plain access to atomic field: Counters\.Hits`
}

// ReportAtomic is the fixed twin.
func ReportAtomic(c *stats.Counters) uint64 {
	return atomic.LoadUint64(&c.Hits)
}
