// Package atomicfield proves the mixed-access invariant: a struct
// field accessed through sync/atomic anywhere must never be plainly
// read or written.
//
// The serving layer's hot counters (snapshot generations, per-shard
// stat counters) are updated with atomic.Add/Load/Store so scoring
// never takes a lock. One plain read of such a field compiles, passes
// tests, and is a data race that the race detector only catches if a
// test happens to hit the interleaving; one plain write can tear. The
// safe rule is all-or-nothing per field, checked mechanically.
//
// The analyzer records every field that appears as &x.f in an argument
// to a sync/atomic call (Load*, Store*, Add*, Swap*, CompareAndSwap*),
// exports an atomicFact for each such field declared in the package —
// so uses in dependent packages are checked too — and then flags every
// other plain selection of those fields.
//
// Exemptions: _test.go files; functions named init or starting with
// New/new (constructors run before the value is shared, and zeroing or
// seeding a counter there is the normal idiom); and sites annotated
// //sbvet:unatomic with a reason. Fields of the typed atomic wrappers
// (atomic.Uint64, atomic.Pointer[T]) never need this analyzer — the
// type system already forbids plain access — which is also the
// preferred fix.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "flag plain reads/writes of struct fields that are accessed with sync/atomic elsewhere",
	Run:       run,
	FactTypes: []analysis.Fact{(*atomicFact)(nil)},
}

// atomicFact marks a struct field as atomically accessed; Display is
// the Type.Field name for diagnostics in other packages.
type atomicFact struct {
	Display string
}

// AFact marks atomicFact as a fact type.
func (*atomicFact) AFact() {}

func run(pass *analysis.Pass) error {
	// First sweep: find every &x.f handed to a sync/atomic call.
	// atomicFields maps the field to its display name; atomicArgs
	// records those selector positions so the second sweep does not
	// flag the atomic sites themselves.
	atomicFields := make(map[*types.Var]string)
	atomicArgs := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field, display := fieldOf(pass, sel)
				if field == nil {
					continue
				}
				atomicArgs[sel] = true
				if atomicFields[field] == "" {
					atomicFields[field] = display
				}
			}
			return true
		})
	}

	for field, display := range atomicFields {
		if field.Pkg() == pass.Pkg {
			pass.ExportObjectFact(field, &atomicFact{Display: display})
		}
	}

	// Second sweep: every other selection of an atomic field is a
	// plain access. Constructors and init are exempt wholesale.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isConstructor(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArgs[sel] {
					return true
				}
				field, display := fieldOf(pass, sel)
				if field == nil {
					return true
				}
				if name, known := atomicFields[field]; known {
					display = name
				} else {
					var af atomicFact
					if !pass.ImportObjectFact(field, &af) {
						return true
					}
					display = af.Display
				}
				if pass.IsTestFile(sel.Pos()) || pass.ExemptedAt(sel.Pos(), "unatomic") {
					return true
				}
				pass.Reportf(sel.Pos(), "plain access to atomic field: %s is read and written with sync/atomic elsewhere; use atomic operations here too (or an atomic.Uint64-style typed field) or annotate //sbvet:unatomic with a reason", display)
				return true
			})
		}
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function (LoadUint64, AddInt64, StoreUint32, SwapPointer,
// CompareAndSwapUint64, ...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves sel to the struct field it selects, with a
// Type.Field display name, or nil for non-field selections.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) (*types.Var, string) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	display := field.Name()
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		display = named.Obj().Name() + "." + display
	}
	return field, display
}

// isConstructor reports whether a function name marks pre-publication
// initialization: init itself or a New*/new* constructor.
func isConstructor(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}
