package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to
// the real framework mechanically once the module proxy is reachable;
// only the fields this repo's analyzers need are present.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is the one-paragraph description printed by sbvet -help.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
	// FactTypes lists the fact types this analyzer exports and
	// imports, one zero value per concrete type (mirroring x/tools:
	// declaring them here is what registers them for driver
	// serialization in go vet's unitchecker mode).
	FactTypes []Fact
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The checker installs it.
	Report func(Diagnostic)

	// Graph is the call graph available to this pass: module-wide in
	// the standalone checker (every package of the load closure is
	// indexed before any analyzer runs), package-local in go vet's
	// per-package unitchecker mode — there, cross-package reachability
	// arrives through imported facts instead.
	Graph *CallGraph

	// The fact accessors, installed by the checker (func-valued
	// fields, the x/tools shape). Exports may target only the pass's
	// own package; imports may query any package analyzed earlier in
	// dependency order.
	ExportObjectFact  func(obj types.Object, fact Fact)
	ImportObjectFact  func(obj types.Object, fact Fact) bool
	ExportPackageFact func(fact Fact)
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
	AllObjectFacts    func() []ObjectFact
	AllPackageFacts   func() []PackageFact
}

// Diagnostic is one finding, positioned in Fset.
type Diagnostic struct {
	Pos token.Pos
	// Category is the reporting analyzer's name.
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos under the pass's
// analyzer name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// FileAt returns the pass file containing pos, or nil.
func (p *Pass) FileAt(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// IsTestFile reports whether pos lies in a _test.go file. The
// serving-path analyzers (snapshotonce, tokenizeonce) skip test
// files: tests tokenize messages to build expectations and read
// snapshot pointers repeatedly to assert generation changes, which is
// exactly their job. Drivers that feed test files (go vet's
// unitchecker mode does; the standalone loader does not) stay
// consistent with drivers that don't.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ExemptedAt reports whether a //sbvet:name directive covers pos: on
// the same line or the line immediately above. Analyzers call this
// before reporting so every escape hatch shares one placement rule.
func (p *Pass) ExemptedAt(pos token.Pos, name string) bool {
	f := p.FileAt(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range Directives(p.Fset, f) {
		if d.Name == name && (d.Line == line || d.Line == line-1) {
			return true
		}
	}
	return false
}
