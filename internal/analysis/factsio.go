package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Fact serialization for go vet's unitchecker protocol. The standalone
// checker keeps facts in memory across its dependency-ordered walk,
// but go vet runs the tool once per package in separate processes:
// facts must round-trip through the per-package .vetx files cmd/go
// threads from each package's run to its dependents (PackageVetx in
// the config, VetxOutput for this package's own). x/tools transports
// gob-encoded facts addressed by objectpath; this is the same design
// with a simplified object path covering the shapes the suite's facts
// attach to — package-level objects ("Name"), methods and struct
// fields of package-level named types ("Type.Name").

// factRecord is one serialized fact.
type factRecord struct {
	// PkgPath is the import path of the package owning the object (or
	// the package itself, for package facts).
	PkgPath string
	// ObjPath addresses the object within the package: "" for a
	// package fact, "Name" for a package-level object, "Type.Name"
	// for a method or field of a package-level named type.
	ObjPath string
	// Analyzer is the owning analyzer's name.
	Analyzer string
	// Fact is the fact value; its concrete type must be registered
	// (RegisterFactTypes).
	Fact Fact
}

var registerMu sync.Mutex

// RegisterFactTypes registers every fact type the analyzers declare
// with gob, so vetx encoding/decoding can transport them as interface
// values. Safe to call repeatedly.
func RegisterFactTypes(analyzers []*Analyzer) {
	registerMu.Lock()
	defer registerMu.Unlock()
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// objPath addresses obj within its package, or returns "" (with ok
// false) for objects the simplified path scheme cannot address —
// locals, anonymous types, interface methods of unnamed interfaces.
func objPath(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if obj.Parent() == pkg.Scope() {
		return obj.Name(), true
	}
	// A method: Type.Name via the receiver's named type.
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj().Parent() == pkg.Scope() {
				return named.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	// A struct field: scan the package's named types for the one whose
	// underlying struct declares it.
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return tn.Name() + "." + v.Name(), true
				}
			}
		}
	}
	return "", false
}

// resolveObjPath finds the object path addresses within pkg, or nil.
func resolveObjPath(pkg *types.Package, path string) types.Object {
	name, sel, nested := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(name)
	if obj == nil || !nested {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	found, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, sel)
	return found
}

// EncodeFacts serializes the store's facts — the current package's own
// and everything it imported, so transport is transitive the way
// x/tools' is — for the analyzers' namespaces. Facts on objects the
// path scheme cannot address are dropped (they are unreachable from
// other packages anyway). The output is deterministic.
func EncodeFacts(s *FactStore, analyzers []*Analyzer) ([]byte, error) {
	var records []factRecord
	for _, a := range analyzers {
		for _, of := range s.allObjectFacts(a.Name) {
			path, ok := objPath(of.Object)
			if !ok {
				continue
			}
			records = append(records, factRecord{
				PkgPath:  of.Object.Pkg().Path(),
				ObjPath:  path,
				Analyzer: a.Name,
				Fact:     of.Fact,
			})
		}
		for _, pf := range s.allPackageFacts(a.Name) {
			records = append(records, factRecord{
				PkgPath:  pf.Package.Path(),
				Analyzer: a.Name,
				Fact:     pf.Fact,
			})
		}
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.ObjPath != b.ObjPath {
			return a.ObjPath < b.ObjPath
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return fmt.Sprintf("%T", a.Fact) < fmt.Sprintf("%T", b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges one vetx file's facts into the store. find maps
// an import path to its type-checked package (the unitchecker's
// export-data importer); records whose package or object cannot be
// resolved are skipped — the corresponding objects are not referenced
// by the package under analysis, so their facts cannot matter to it.
func DecodeFacts(s *FactStore, data []byte, find func(path string) *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var records []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	for _, r := range records {
		pkg := find(r.PkgPath)
		if pkg == nil {
			continue
		}
		if r.ObjPath == "" {
			s.SetPackageFact(r.Analyzer, pkg, r.Fact)
			continue
		}
		if obj := resolveObjPath(pkg, r.ObjPath); obj != nil {
			s.SetObjectFact(r.Analyzer, obj, r.Fact)
		}
	}
	return nil
}
