package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum one analyzer pass attaches to a types.Object or a
// package so downstream packages can query it — the interprocedural
// layer's currency. The interface deliberately mirrors
// golang.org/x/tools/go/analysis.Fact (a marker method, pointer
// receivers, gob-serializable for driver transport) so the planned
// mechanical migration to the real framework carries the fact types
// over unchanged.
//
// Each fact type belongs to exactly one analyzer, declared in its
// FactTypes list; the store namespaces facts by (analyzer, fact type),
// so two analyzers can attach different facts to one function without
// colliding.
type Fact interface {
	// AFact is a marker method; implementations are empty.
	AFact()
}

// ObjectFact is one (object, fact) pair, as enumerated by a fact
// store.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is one (package, fact) pair.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// factKey namespaces object facts: one analyzer's fact of one concrete
// type on one object.
type factKey struct {
	analyzer string
	obj      types.Object
	factType reflect.Type
}

// pkgFactKey namespaces package facts.
type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
	factType reflect.Type
}

// FactStore holds every fact one checker run accumulates, across all
// packages, keyed by canonical types.Object identity (all packages in
// a run share one Loader, so objects are canonical). The unitchecker
// driver populates it from the vetx files of the package's
// dependencies and serializes the run's facts back out; the standalone
// driver simply keeps it in memory across the dependency-ordered walk.
type FactStore struct {
	objFacts map[factKey]Fact
	pkgFacts map[pkgFactKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objFacts: make(map[factKey]Fact),
		pkgFacts: make(map[pkgFactKey]Fact),
	}
}

// validFact panics unless fact is a pointer — the shape both gob and
// ImportObjectFact's copy-out contract require (and what x/tools
// enforces).
func validFact(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	return t
}

// SetObjectFact records fact for obj under the analyzer's namespace,
// replacing any previous fact of the same concrete type.
func (s *FactStore) SetObjectFact(analyzer string, obj types.Object, fact Fact) {
	if obj == nil {
		panic("analysis: SetObjectFact with nil object")
	}
	s.objFacts[factKey{analyzer, obj, validFact(fact)}] = fact
}

// ObjectFact copies the stored fact of *fact's concrete type for obj
// into fact, reporting whether one existed.
func (s *FactStore) ObjectFact(analyzer string, obj types.Object, fact Fact) bool {
	stored, ok := s.objFacts[factKey{analyzer, obj, validFact(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// SetPackageFact records fact for pkg under the analyzer's namespace.
func (s *FactStore) SetPackageFact(analyzer string, pkg *types.Package, fact Fact) {
	if pkg == nil {
		panic("analysis: SetPackageFact with nil package")
	}
	s.pkgFacts[pkgFactKey{analyzer, pkg, validFact(fact)}] = fact
}

// PackageFact copies the stored fact of *fact's concrete type for pkg
// into fact, reporting whether one existed.
func (s *FactStore) PackageFact(analyzer string, pkg *types.Package, fact Fact) bool {
	stored, ok := s.pkgFacts[pkgFactKey{analyzer, pkg, validFact(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// allObjectFacts returns the analyzer's object facts in a
// deterministic order (by object position, then fact type name).
func (s *FactStore) allObjectFacts(analyzer string) []ObjectFact {
	var out []ObjectFact
	for k, f := range s.objFacts {
		if k.analyzer == analyzer {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object.Pos() != out[j].Object.Pos() {
			return out[i].Object.Pos() < out[j].Object.Pos()
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// allPackageFacts returns the analyzer's package facts in a
// deterministic order (by package path, then fact type name).
func (s *FactStore) allPackageFacts(analyzer string) []PackageFact {
	var out []PackageFact
	for k, f := range s.pkgFacts {
		if k.analyzer == analyzer {
			out = append(out, PackageFact{Package: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package.Path() != out[j].Package.Path() {
			return out[i].Package.Path() < out[j].Package.Path()
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// bindFacts installs the fact accessors on a pass, scoping exports to
// the pass's own package — the x/tools contract: an analyzer may
// attach facts only to objects (or the package) it is currently
// analyzing, and may query any object whose package has already been
// analyzed.
func bindFacts(pass *Pass, store *FactStore) {
	name := pass.Analyzer.Name
	pass.ExportObjectFact = func(obj types.Object, fact Fact) {
		if obj.Pkg() != pass.Pkg {
			panic(fmt.Sprintf("analysis: %s: ExportObjectFact on %v of foreign package %v", name, obj, obj.Pkg()))
		}
		store.SetObjectFact(name, obj, fact)
	}
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		return store.ObjectFact(name, obj, fact)
	}
	pass.ExportPackageFact = func(fact Fact) {
		store.SetPackageFact(name, pass.Pkg, fact)
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact Fact) bool {
		return store.PackageFact(name, pkg, fact)
	}
	pass.AllObjectFacts = func() []ObjectFact { return store.allObjectFacts(name) }
	pass.AllPackageFacts = func() []PackageFact { return store.allPackageFacts(name) }
}
