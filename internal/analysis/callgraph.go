package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallSite is one call expression attributed to a calling function.
type CallSite struct {
	// Pos is the call's left parenthesis.
	Pos token.Pos
	// Callee is the statically resolved target: a package-level
	// function, a concrete method, or an interface method (resolve the
	// latter's implementations with Implementations).
	Callee *types.Func
}

// CallGraph is a static call graph over one or more loaded packages —
// module-wide in the standalone checker, package-local (complemented
// by imported facts) in go vet's per-package unitchecker mode.
//
// Nodes are *types.Func. Edges come from two sources:
//
//   - static calls: f() on a package-level function, x.M() on a
//     concrete receiver, and pkg.F() across packages;
//   - interface dispatch: x.M() where x's type is an interface edges
//     to the interface's method object; Implementations resolves that
//     object to every concrete method of a known type that satisfies
//     the declared interface (the engine's Classifier/Admitter shape).
//
// Calls inside a function literal are attributed to the enclosing
// named function: the graph answers "can running f cause this call?",
// and a closure f builds is work f set in motion (the background
// builder goroutines the scenario layer uses). Calls through function
// variables are not resolved; the analyzers that need soundness there
// (admitflow, hookorder) additionally recognize their sinks by shape
// at every call site, so indirection can hide a caller but not a sink.
type CallGraph struct {
	sites map[*types.Func][]CallSite
	// ifaceMethods is every interface method object seen while adding
	// packages; implementations are resolved lazily against the
	// accumulated concrete types.
	ifaceMethods map[*types.Func]bool
	// named is every package-level named type (with methods) seen.
	named []*types.Named
	// impls caches Implementations results; reset on AddPackage.
	impls map[*types.Func][]*types.Func
	funcs []*types.Func
}

// NewCallGraph returns an empty graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		sites:        make(map[*types.Func][]CallSite),
		ifaceMethods: make(map[*types.Func]bool),
		impls:        make(map[*types.Func][]*types.Func),
	}
}

// AddPackage indexes pkg's function bodies and named types into the
// graph. Packages added later extend interface-method resolution for
// everything already indexed.
func (g *CallGraph) AddPackage(pkg *Package) {
	// New concrete types can extend any interface method's
	// implementation set.
	g.impls = make(map[*types.Func][]*types.Func)

	if pkg.Types != nil {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.named = append(g.named, named)
				if iface, ok := named.Underlying().(*types.Interface); ok {
					for i := 0; i < iface.NumExplicitMethods(); i++ {
						g.ifaceMethods[iface.ExplicitMethod(i)] = true
					}
				}
			}
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if caller == nil {
				continue
			}
			g.funcs = append(g.funcs, caller)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(pkg.TypesInfo, call); callee != nil {
					g.sites[caller] = append(g.sites[caller], CallSite{Pos: call.Lparen, Callee: callee})
				}
				return true
			})
		}
	}
}

// Callee statically resolves a call expression to the *types.Func it
// invokes: a package-level function, a method (concrete or interface),
// or nil for calls through function values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		// No selection: a package-qualified call, pkg.F().
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CallSites returns f's call sites in source order. The slice is
// shared; callers must not mutate it.
func (g *CallGraph) CallSites(f *types.Func) []CallSite { return g.sites[f] }

// Funcs returns every function with an indexed body, in the order the
// packages were added (deterministic: AST order within a package).
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// IsInterfaceMethod reports whether m is an explicit method of a named
// interface type the graph has seen.
func (g *CallGraph) IsInterfaceMethod(m *types.Func) bool {
	if g.ifaceMethods[m] {
		return true
	}
	// Interface methods reached through embedded interfaces or
	// non-package-level declarations: detect by receiver type.
	sig, ok := m.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// Implementations resolves an interface method to the corresponding
// concrete methods of every known named type that satisfies the
// method's interface — the "declared interface types" resolution the
// engine's Classifier/Admitter dispatch needs. Results are cached and
// deterministic (indexed-type order).
func (g *CallGraph) Implementations(m *types.Func) []*types.Func {
	if cached, ok := g.impls[m]; ok {
		return cached
	}
	var out []*types.Func
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		g.impls[m] = nil
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		g.impls[m] = nil
		return nil
	}
	for _, named := range g.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok && fn != m {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	g.impls[m] = out
	return out
}
