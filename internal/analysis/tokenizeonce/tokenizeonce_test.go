package tokenizeonce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tokenizeonce"
)

// TestFixtures proves the analyzer fences the tokenizer's entry
// points: direct calls in a non-allowlisted package are flagged,
// while the tokenize package itself, an allowlisted pre-tokenizing
// consumer, derived-fact helpers, and the //sbvet:retokenize escape
// hatch stay quiet.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", tokenizeonce.Analyzer,
		"internal/tokenize", "internal/eval", "serving")
}
