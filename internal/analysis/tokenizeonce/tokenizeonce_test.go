package tokenizeonce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tokenizeonce"
)

// TestFixtures proves the analyzer fences the tokenizer's entry
// points (including the tokenize-once Stream constructor): direct
// calls in a non-allowlisted package are flagged, while the tokenize
// package itself, an allowlisted pre-tokenizing consumer,
// derived-fact helpers, and the //sbvet:retokenize escape hatch stay
// quiet. It also proves the (*TokenStream).Strings fence holds in
// every package except internal/tokenize — allowlisted or not.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", tokenizeonce.Analyzer,
		"internal/tokenize", "internal/eval", "serving")
}
