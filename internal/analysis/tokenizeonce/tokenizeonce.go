// Package tokenizeonce fences tokenization into the layer that owns
// it. BENCH_PR3 showed batch scoring flat from 1→8 workers because
// every stage re-tokenizes what the previous stage already tokenized;
// the tokenize-once pipeline fixed that by tokenizing once per
// message and flowing a *tokenize.TokenStream through
// score/vet/learn. That invariant only holds if new double-tokenize
// call sites cannot creep in, so this analyzer forbids direct calls
// to the tokenizer's per-message entry points
// ((*tokenize.Tokenizer).Tokenize, TokenSet, TokenizeText, Stream)
// outside an allowlist of packages that legitimately own
// tokenization:
//
//   - internal/tokenize itself;
//   - internal/sbayes and internal/graham, the backends whose
//     Learn/Classify/Score are the single sanctioned
//     message->tokens boundary;
//   - internal/engine, which tokenizes once at the batch boundary
//     (streamPath, guardStream, vetCorpus) and hands the same stream
//     to Classify, Admit, and the learn path;
//   - internal/eval, whose TokenizeCorpus/StreamCorpus ARE the
//     tokenize-once pattern (pre-tokenize, then score many times);
//   - internal/core and internal/experiments, the offline exhibit
//     layer that pre-tokenizes attack payloads and validation pools
//     once per run, off the serving path.
//
// Everything else — admission, scenario, the CLIs, the facade and
// examples — must either flow pre-computed streams or carry an
// explicit //sbvet:retokenize directive stating why this call site
// may pay (and re-pay) the tokenization cost.
//
// The analyzer also fences (*tokenize.TokenStream).Strings in EVERY
// package except internal/tokenize, allowlisted or not: converting a
// stream back to []string rebuilds the materialized slice the
// interned pipeline exists to avoid, so only diagnostics and
// deliberately annotated call sites may do it.
//
// _test.go files are exempt from both checks: tests tokenize to
// construct expected token sets.
package tokenizeonce

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the tokenizeonce check.
var Analyzer = &analysis.Analyzer{
	Name: "tokenizeonce",
	Doc:  "flag direct tokenizer calls outside the packages that own tokenization",
	Run:  run,
}

// Allow lists the package-path suffixes permitted to call the
// tokenizer directly. A package is allowed when its import path
// equals an entry or ends in "/"+entry.
var Allow = []string{
	"internal/tokenize",
	"internal/sbayes",
	"internal/graham",
	"internal/engine",
	"internal/eval",
	"internal/core",
	"internal/experiments",
}

// entryPoints are the per-message tokenizer methods being fenced.
var entryPoints = map[string]bool{
	"Tokenize":     true,
	"TokenSet":     true,
	"TokenizeText": true,
	"Stream":       true,
}

func run(pass *analysis.Pass) error {
	pkgAllowed := allowed(pass.Pkg.Path())
	streamOwner := isPkg(pass.Pkg.Path(), "internal/tokenize")
	if pkgAllowed && streamOwner {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fencedEntry := !pkgAllowed && entryPoints[sel.Sel.Name]
			fencedStrings := !streamOwner && sel.Sel.Name == "Strings"
			if !fencedEntry && !fencedStrings {
				return true
			}
			fn := analysis.MethodCallee(pass.TypesInfo, sel)
			if fn == nil {
				return true
			}
			// Tests tokenize to construct expected token sets; the
			// once-per-message economy is a serving-path concern.
			if pass.IsTestFile(call.Lparen) {
				return true
			}
			switch {
			case fencedEntry && isTokenizeMethod(fn, "Tokenizer"):
				if pass.ExemptedAt(call.Lparen, "retokenize") {
					return true
				}
				pass.Reportf(call.Lparen, "direct call to (*tokenize.Tokenizer).%s outside the tokenization layer; the hot path must tokenize each message once and flow the tokens (see the tokenize-once roadmap item) — move the work behind an allowlisted package or annotate //sbvet:retokenize with a reason", sel.Sel.Name)
			case fencedStrings && isTokenizeMethod(fn, "TokenStream"):
				if pass.ExemptedAt(call.Lparen, "retokenize") {
					return true
				}
				pass.Reportf(call.Lparen, "call to (*tokenize.TokenStream).Strings outside internal/tokenize; materializing the stream back into a []string defeats the interned token pipeline — iterate At/Count instead or annotate //sbvet:retokenize with a reason")
			}
			return true
		})
	}
	return nil
}

// allowed reports whether pkgPath may tokenize directly.
func allowed(pkgPath string) bool {
	for _, entry := range Allow {
		if isPkg(pkgPath, entry) {
			return true
		}
	}
	return false
}

// isPkg reports whether pkgPath equals entry or ends in "/"+entry.
func isPkg(pkgPath, entry string) bool {
	return pkgPath == entry || strings.HasSuffix(pkgPath, "/"+entry)
}

// isTokenizeMethod reports whether fn is a method on the named type
// recv from the tokenize package.
func isTokenizeMethod(fn *types.Func, recv string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == recv && obj.Pkg() != nil && obj.Pkg().Name() == "tokenize"
}
