// Package tokenizeonce fences tokenization into the layer that owns
// it. BENCH_PR3 showed batch scoring flat from 1→8 workers because
// every stage re-tokenizes what the previous stage already tokenized;
// the planned fix is to tokenize once per message and flow tokens
// through score/vet/learn. That refactor is only worth doing if new
// double-tokenize call sites cannot creep in meanwhile, so this
// analyzer forbids direct calls to the tokenizer's per-message entry
// points ((*tokenize.Tokenizer).Tokenize, TokenSet, TokenizeText)
// outside an allowlist of packages that legitimately own
// tokenization:
//
//   - internal/tokenize itself;
//   - internal/sbayes and internal/graham, the backends whose
//     Learn/Classify/Score are the single sanctioned
//     message->tokens boundary;
//   - internal/eval, whose TokenizeCorpus IS the tokenize-once
//     pattern (pre-tokenize, then score many times);
//   - internal/core and internal/experiments, the offline exhibit
//     layer that pre-tokenizes attack payloads and validation pools
//     once per run, off the serving path.
//
// Everything else — engine, admission, scenario, the CLIs, the facade
// and examples — must either flow pre-computed tokens or carry an
// explicit //sbvet:retokenize directive stating why this call site
// may pay (and re-pay) the tokenization cost. _test.go files are
// exempt: tests tokenize to construct expected token sets.
package tokenizeonce

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the tokenizeonce check.
var Analyzer = &analysis.Analyzer{
	Name: "tokenizeonce",
	Doc:  "flag direct tokenizer calls outside the packages that own tokenization",
	Run:  run,
}

// Allow lists the package-path suffixes permitted to call the
// tokenizer directly. A package is allowed when its import path
// equals an entry or ends in "/"+entry.
var Allow = []string{
	"internal/tokenize",
	"internal/sbayes",
	"internal/graham",
	"internal/eval",
	"internal/core",
	"internal/experiments",
}

// entryPoints are the per-message tokenizer methods being fenced.
var entryPoints = map[string]bool{
	"Tokenize":     true,
	"TokenSet":     true,
	"TokenizeText": true,
}

func run(pass *analysis.Pass) error {
	if allowed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !entryPoints[sel.Sel.Name] {
				return true
			}
			fn := analysis.MethodCallee(pass.TypesInfo, sel)
			if fn == nil || !isTokenizer(fn) {
				return true
			}
			// Tests tokenize to construct expected token sets; the
			// once-per-message economy is a serving-path concern.
			if pass.IsTestFile(call.Lparen) {
				return true
			}
			if pass.ExemptedAt(call.Lparen, "retokenize") {
				return true
			}
			pass.Reportf(call.Lparen, "direct call to (*tokenize.Tokenizer).%s outside the tokenization layer; the hot path must tokenize each message once and flow the tokens (see the tokenize-once roadmap item) — move the work behind an allowlisted package or annotate //sbvet:retokenize with a reason", sel.Sel.Name)
			return true
		})
	}
	return nil
}

// allowed reports whether pkgPath may tokenize directly.
func allowed(pkgPath string) bool {
	for _, entry := range Allow {
		if pkgPath == entry || strings.HasSuffix(pkgPath, "/"+entry) {
			return true
		}
	}
	return false
}

// isTokenizer reports whether fn is a method on the tokenize
// package's Tokenizer type.
func isTokenizer(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tokenizer" && obj.Pkg() != nil && obj.Pkg().Name() == "tokenize"
}
