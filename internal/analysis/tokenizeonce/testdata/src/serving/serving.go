// Fixture for a fenced consumer: a serving-path package that is not
// on the allowlist. Direct tokenizer calls here are the
// double-tokenize creep the analyzer blocks.
package serving

import "internal/tokenize"

// Score re-tokenizes at score time — the BENCH_PR3 hot-path bug
// class.
func Score(tok *tokenize.Tokenizer, m string) int {
	return len(tok.TokenSet(m)) // want `direct call to \(\*tokenize\.Tokenizer\)\.TokenSet outside the tokenization layer`
}

// Stream re-tokenizes the body variant.
func Stream(tok *tokenize.Tokenizer, body string) []string {
	return tok.TokenizeText(body) // want `direct call to \(\*tokenize\.Tokenizer\)\.TokenizeText outside the tokenization layer`
}

// StreamEntry shows the tokenize-once entry point itself is fenced
// for non-owners: the stream must arrive from the engine layer.
func StreamEntry(tok *tokenize.Tokenizer, m string) *tokenize.TokenStream {
	return tok.Stream(m) // want `direct call to \(\*tokenize\.Tokenizer\)\.Stream outside the tokenization layer`
}

// Rematerialize converts a stream back to []string on the serving
// path — the regression the Strings fence blocks.
func Rematerialize(ts *tokenize.TokenStream) []string {
	return ts.Strings() // want `call to \(\*tokenize\.TokenStream\)\.Strings outside internal/tokenize`
}

// WaivedStrings shows the escape hatch applies to the Strings fence
// too.
func WaivedStrings(ts *tokenize.TokenStream) []string {
	//sbvet:retokenize fixture: trace rendering materializes tokens once, off the hot path
	return ts.Strings()
}

// DerivedFact asks the tokenize package for a fact about the message
// instead of tokenizing — the sanctioned alternative.
func DerivedFact(tok *tokenize.Tokenizer, m string) int {
	return tok.DistinctCount(m)
}

// Waived shows the escape hatch: an annotated intentional call.
func Waived(tok *tokenize.Tokenizer, m string) int {
	//sbvet:retokenize fixture: exhibit code inspects tokens once, off the hot path
	return len(tok.TokenSet(m))
}
