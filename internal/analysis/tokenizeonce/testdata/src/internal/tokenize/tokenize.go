// Fixture stand-in for the real tokenize package: same package name,
// same Tokenizer type and entry points, so the analyzer's type-based
// matching exercises the real shapes.
package tokenize

// Tokenizer mimics the real tokenizer.
type Tokenizer struct{}

// Default returns a tokenizer.
func Default() *Tokenizer { return &Tokenizer{} }

// Tokenize may call sibling entry points freely: the package owns
// tokenization.
func (t *Tokenizer) Tokenize(m string) []string { return t.TokenizeText(m) }

// TokenSet dedups the stream; calling Tokenize here is in-package and
// allowed.
func (t *Tokenizer) TokenSet(m string) []string { return t.Tokenize(m) }

// TokenizeText tokenizes a bare body.
func (t *Tokenizer) TokenizeText(s string) []string { return []string{s} }

// DistinctCount is a derived-fact helper: callers outside the layer
// ask for facts about tokens instead of tokenizing themselves.
func (t *Tokenizer) DistinctCount(m string) int { return len(t.TokenSet(m)) }

// TokenStream mimics the real interned stream.
type TokenStream struct{ toks []string }

// Stream is the tokenize-once entry point; fenced like the others.
func (t *Tokenizer) Stream(m string) *TokenStream { return &TokenStream{toks: t.Tokenize(m)} }

// Strings materializes the stream back into a slice. The owning
// package may call it (this call is in-package and quiet).
func (s *TokenStream) Strings() []string { return append([]string(nil), s.toks...) }

// Render uses Strings in-package: the owner is allowed.
func (s *TokenStream) Render() []string { return s.Strings() }
