// Fixture stand-in for the real tokenize package: same package name,
// same Tokenizer type and entry points, so the analyzer's type-based
// matching exercises the real shapes.
package tokenize

// Tokenizer mimics the real tokenizer.
type Tokenizer struct{}

// Default returns a tokenizer.
func Default() *Tokenizer { return &Tokenizer{} }

// Tokenize may call sibling entry points freely: the package owns
// tokenization.
func (t *Tokenizer) Tokenize(m string) []string { return t.TokenizeText(m) }

// TokenSet dedups the stream; calling Tokenize here is in-package and
// allowed.
func (t *Tokenizer) TokenSet(m string) []string { return t.Tokenize(m) }

// TokenizeText tokenizes a bare body.
func (t *Tokenizer) TokenizeText(s string) []string { return []string{s} }

// DistinctCount is a derived-fact helper: callers outside the layer
// ask for facts about tokens instead of tokenizing themselves.
func (t *Tokenizer) DistinctCount(m string) int { return len(t.TokenSet(m)) }
