// Fixture for an allowlisted consumer: internal/eval owns the
// pre-tokenization (tokenize-once) pattern, so its direct calls are
// sanctioned and must produce no diagnostics.
package eval

import "internal/tokenize"

// TokenizeCorpus pre-tokenizes once so downstream scoring never
// re-tokenizes — the pattern the analyzer exists to protect.
func TokenizeCorpus(tok *tokenize.Tokenizer, msgs []string) [][]string {
	out := make([][]string, len(msgs))
	for i, m := range msgs {
		out[i] = tok.TokenSet(m)
	}
	return out
}
