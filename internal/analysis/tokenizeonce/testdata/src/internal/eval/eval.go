// Fixture for an allowlisted consumer: internal/eval owns the
// pre-tokenization (tokenize-once) pattern, so its direct calls are
// sanctioned and must produce no diagnostics.
package eval

import "internal/tokenize"

// TokenizeCorpus pre-tokenizes once so downstream scoring never
// re-tokenizes — the pattern the analyzer exists to protect.
func TokenizeCorpus(tok *tokenize.Tokenizer, msgs []string) [][]string {
	out := make([][]string, len(msgs))
	for i, m := range msgs {
		out[i] = tok.TokenSet(m)
	}
	return out
}

// StreamCorpus pre-tokenizes into streams — same sanctioned pattern,
// stream entry point.
func StreamCorpus(tok *tokenize.Tokenizer, msgs []string) []*tokenize.TokenStream {
	out := make([]*tokenize.TokenStream, len(msgs))
	for i, m := range msgs {
		out[i] = tok.Stream(m)
	}
	return out
}

// Rematerialize is flagged even though eval is allowlisted for
// tokenizer entry points: only internal/tokenize may convert a
// stream back into a []string.
func Rematerialize(ts *tokenize.TokenStream) []string {
	return ts.Strings() // want `call to \(\*tokenize\.TokenStream\)\.Strings outside internal/tokenize`
}
