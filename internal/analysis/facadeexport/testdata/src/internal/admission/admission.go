// Package admission is a fixture API package that is fully covered:
// its one real export is aliased by the facade and its alias of the
// engine contract opts out, so no diagnostic fires for it.
package admission

import "internal/engine"

// Policy decides what to admit; the facade aliases it.
type Policy struct{ Threshold float64 }

//sbvet:nofacade fixture: alias of the engine-declared contract, exported there
type Msg = engine.Message
