// Package engine is a fixture API package: some of its exported
// surface is aliased by the fixture facade, some is missing (the
// diagnostic), and one declaration opts out with //sbvet:nofacade.
package engine

// Message stands in for mail.Message; the facade aliases it.
type Message struct{ Body string }

// Engine serves a classifier; the facade aliases it.
type Engine struct{}

// Factory builds classifiers by name; the facade forgot it.
type Factory func() *Engine

// QuarantineSink receives rejected candidates; the facade forgot it
// too.
type QuarantineSink interface {
	Reject(m *Message)
}

// Store persists snapshots; the facade re-exports it under a clearer
// name, which counts as surfaced.
type Store interface {
	Save(m *Message)
}

// shardState is unexported: never part of the contract.
type shardState struct{}

//sbvet:nofacade fixture: internal plumbing shared with admission only
type Plumbing struct{}
