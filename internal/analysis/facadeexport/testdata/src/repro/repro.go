// Package repro is the fixture facade: it aliases part of the engine
// surface and all of admission's, so the engine import is flagged with
// the two missing names and the admission import is clean.
package repro

import (
	"internal/admission"
	"internal/engine" // want `facade gap: internal/engine exports Factory, QuarantineSink but the repro facade does not re-export them`
)

// Message is the training/scoring unit.
type Message = engine.Message

// Engine is the serving engine.
type Engine = engine.Engine

// Policy is the admission policy.
type Policy = admission.Policy

// SnapshotStore persists snapshots: a renamed re-export of
// engine.Store, still surfaced.
type SnapshotStore = engine.Store
