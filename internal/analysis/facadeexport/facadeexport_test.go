package facadeexport_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/facadeexport"
)

func TestFacadeexport(t *testing.T) {
	analysistest.Run(t, "testdata", facadeexport.Analyzer,
		"internal/engine", "internal/admission", "repro")
}
