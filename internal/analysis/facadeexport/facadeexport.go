// Package facadeexport proves the facade-completeness invariant:
// every exported capability of the API packages — internal/engine,
// internal/admission and internal/serve — must be re-exported by the
// repro facade.
//
// The module's internal/ layout makes the facade the only public
// surface: a symbol exported from internal/engine but not aliased in
// package repro is unreachable outside the module, so the capability
// silently does not exist for users. Earlier PRs grew the engine
// faster than the facade and shipped exactly such gaps.
//
// The analyzer has two halves joined by facts:
//
//   - on an API package, it exports a nofacadeFact for each exported
//     declaration annotated //sbvet:nofacade — the declaration's own
//     package opts it out of the facade contract, with a reason (for
//     example, admission's aliases of the engine-declared contract,
//     which the facade already re-exports from the engine side);
//   - on the facade — the package named "repro" — it compares each
//     imported API package's exported scope against what the facade
//     surfaces and reports one diagnostic per API package, at that
//     package's import, listing every missing name in sorted order.
//
// A capability counts as surfaced when the facade declares the same
// exported name, or references the symbol anywhere in its files — an
// alias under a clearer name (EngineConfig = engine.Config), a
// wrapper function's body, or a re-exported constant all mention the
// symbol, so renamed re-exports are not false positives.
//
// The fix is to add the alias (or wrapper) to the facade with a doc
// comment, or to annotate the declaration //sbvet:nofacade where the
// omission is deliberate. A //sbvet:nofacade directive on the import
// line waives the whole package. _test.go files are exempt.
package facadeexport

import (
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the facadeexport check.
var Analyzer = &analysis.Analyzer{
	Name:      "facadeexport",
	Doc:       "flag exported API-package capabilities the repro facade fails to re-export",
	Run:       run,
	FactTypes: []analysis.Fact{(*nofacadeFact)(nil)},
}

// nofacadeFact marks an exported declaration as deliberately excluded
// from the facade contract by its own package.
type nofacadeFact struct{}

// AFact marks nofacadeFact as a fact type.
func (*nofacadeFact) AFact() {}

// APIPackages lists the package-path suffixes whose exported surface
// the facade must mirror.
var APIPackages = []string{
	"internal/engine",
	"internal/admission",
	"internal/serve",
	"internal/obs",
}

// FacadeName is the package name identifying the facade.
const FacadeName = "repro"

func run(pass *analysis.Pass) error {
	if matchesSuffix(pass.Pkg.Path(), APIPackages) {
		// API-package half: record the opt-outs.
		for _, name := range pass.Pkg.Scope().Names() {
			obj := pass.Pkg.Scope().Lookup(name)
			if !obj.Exported() {
				continue
			}
			if pass.ExemptedAt(obj.Pos(), "nofacade") {
				pass.ExportObjectFact(obj, &nofacadeFact{})
			}
		}
		return nil
	}

	if pass.Pkg.Name() != FacadeName {
		return nil
	}

	// Facade half: every exported API name must be surfaced — same
	// name in our scope, or the symbol referenced somewhere in our
	// files (a renamed alias, a wrapper, a re-exported constant).
	facade := make(map[string]bool)
	for _, name := range pass.Pkg.Scope().Names() {
		facade[name] = true
	}
	used := make(map[types.Object]bool)
	for _, obj := range pass.TypesInfo.Uses {
		used[obj] = true
	}
	for _, imp := range pass.Pkg.Imports() {
		if !matchesSuffix(imp.Path(), APIPackages) {
			continue
		}
		var missing []string
		for _, name := range imp.Scope().Names() {
			obj := imp.Scope().Lookup(name)
			if !obj.Exported() || facade[name] || used[obj] {
				continue
			}
			var nf nofacadeFact
			if pass.ImportObjectFact(obj, &nf) {
				continue
			}
			missing = append(missing, name)
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		pos := importPos(pass, imp.Path())
		if pass.IsTestFile(pos) || pass.ExemptedAt(pos, "nofacade") {
			continue
		}
		pass.Reportf(pos, "facade gap: %s exports %s but the %s facade does not re-export %s; alias %s in the facade with a doc comment or annotate the declaration //sbvet:nofacade with a reason",
			imp.Path(), strings.Join(missing, ", "), FacadeName,
			plural(missing, "it", "them"), plural(missing, "it", "them"))
	}
	return nil
}

// importPos finds the import spec for path in the facade's files,
// falling back to the first file's package clause.
func importPos(pass *analysis.Pass, path string) token.Pos {
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil && p == path {
				return spec.Pos()
			}
		}
	}
	return pass.Files[0].Name.Pos()
}

// plural picks one for a single missing name, many otherwise.
func plural(missing []string, one, many string) string {
	if len(missing) == 1 {
		return one
	}
	return many
}

// matchesSuffix reports whether pkgPath equals an entry or ends in
// "/"+entry.
func matchesSuffix(pkgPath string, entries []string) bool {
	for _, entry := range entries {
		if pkgPath == entry || strings.HasSuffix(pkgPath, "/"+entry) {
			return true
		}
	}
	return false
}
