// Package analysistest runs an analyzer over want-annotated fixture
// packages, mirroring golang.org/x/tools/go/analysis/analysistest so
// the fixtures (and the tests over them) survive a future migration
// to the real framework unchanged.
//
// Fixtures live under <testdata>/src/<pkgpath>/ and are loaded with
// the same source loader sbvet uses. Expected diagnostics are
// end-of-line comments of the form
//
//	code() // want `regexp`
//
// (double-quoted strings also work). Each reported diagnostic must
// match a want on its line, and each want must be matched by a
// diagnostic — either direction failing fails the test, which is what
// proves an analyzer actually catches the bug class its fixture
// encodes.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under testdata/src and checks a's
// diagnostics against the // want annotations.
//
// All listed packages share one checker: the call graph spans the
// whole fixture load closure, and facts exported while analyzing one
// fixture package are visible when analyzing its dependents — the
// same interprocedural view the standalone driver gives the real
// module. Packages are analyzed in dependency order (imports first),
// with unlisted fixture dependencies analyzed facts-only: their
// findings are not matched against wants.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := analysis.NewLoader(filepath.Join(testdata, "src"), "")
	listed := make(map[string]bool)
	var pkgs []*analysis.Package
	for _, path := range pkgpaths {
		pkg, err := l.LoadImport(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %q does not type-check: %v", path, terr)
		}
		listed[path] = true
		pkgs = append(pkgs, pkg)
	}

	c := analysis.NewChecker([]*analysis.Analyzer{a})
	for _, pkg := range l.LoadedPackages() {
		c.AddPackage(pkg)
	}

	var wants []*want
	var findings []analysis.Finding
	analyzed := make(map[string]bool)
	var run func(pkg *analysis.Package)
	run = func(pkg *analysis.Package) {
		if analyzed[pkg.PkgPath] {
			return
		}
		analyzed[pkg.PkgPath] = true
		if pkg.Types != nil {
			for _, imp := range pkg.Types.Imports() {
				if dep := l.Loaded(imp.Path()); dep != nil {
					run(dep)
				}
			}
		}
		fs := c.RunPackage(pkg)
		if listed[pkg.PkgPath] {
			wants = append(wants, collectWants(t, pkg)...)
			findings = append(findings, fs...)
		}
	}
	for _, pkg := range pkgs {
		run(pkg)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose
// regexp matches, and reports whether one existed.
func claim(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want annotations out of a fixture
// package.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pat, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s: malformed want %q: %v", pkg.Fset.Position(c.Slash), rest, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Slash), pat, err)
				}
				pos := pkg.Fset.Position(c.Slash)
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
