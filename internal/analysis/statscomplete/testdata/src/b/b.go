// Fixture for statscomplete's obs extension: structs whose counters
// migrated onto registry-backed instruments. The obligation follows
// them — a metric field a snapshot method never reads makes /stats
// and /metrics disagree about the same accounting — and it attaches
// to Snapshot() the same as Stats().
package b

import "obs"

// Report is the reported snapshot.
type Report struct {
	Scored  uint64
	Labels  [3]uint64
	Latency float64
}

// Good reads every instrument in Stats, including the per-label
// array and the histogram; the Tracer carries no stored value, so no
// obligation attaches to it.
type Good struct {
	scored  *obs.Counter
	byLabel [3]*obs.Counter
	lat     *obs.Histogram
	trace   *obs.Tracer
}

func (g *Good) Stats() Report {
	return Report{
		Scored:  g.scored.Value(),
		Labels:  [3]uint64{g.byLabel[0].Value(), g.byLabel[1].Value(), g.byLabel[2].Value()},
		Latency: g.lat.Sum(),
	}
}

// Bad grew instruments that Stats never reads: the registry still
// renders them, but /stats silently under-reports.
type Bad struct {
	scored *obs.Counter
	shed   *obs.Counter   // want `obs metric Bad\.shed is never read in Bad\.Stats`
	depth  *obs.Gauge     // want `obs metric Bad\.depth is never read in Bad\.Stats`
	lat    *obs.Histogram // want `obs metric Bad\.lat is never read in Bad\.Stats`
}

func (b *Bad) Stats() Report {
	return Report{Scored: b.scored.Value()}
}

// Snap reports through Snapshot() instead of Stats(); the obligation
// attaches there the same way.
type Snap struct {
	scored *obs.Counter
	missed *obs.Counter // want `obs metric Snap\.missed is never read in Snap\.Snapshot`
}

func (s *Snap) Snapshot() Report {
	return Report{Scored: s.scored.Value()}
}

// Helper reads one instrument through a same-type helper method; the
// transitive read counts.
type Helper struct {
	scored *obs.Counter
	lat    *obs.Histogram
}

func (h *Helper) Stats() Report {
	return Report{Scored: h.scored.Value(), Latency: h.latency()}
}

func (h *Helper) latency() float64 { return h.lat.Sum() }

// Waived shows the escape hatch for a deliberately unreported
// instrument.
type Waived struct {
	scored *obs.Counter
	//sbvet:nostat fixture: scrape-only instrument, intentionally not in Stats
	scrapes *obs.Counter
}

func (w *Waived) Stats() Report {
	return Report{Scored: w.scored.Value()}
}

// NoSnapshot has instruments but no reporting method; the obligation
// only attaches to Stats/Snapshot-bearing types.
type NoSnapshot struct {
	scored *obs.Counter
}

func (n *NoSnapshot) Scored() uint64 { return n.scored.Value() }
