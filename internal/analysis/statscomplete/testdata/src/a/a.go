// Fixture for statscomplete: structs with atomic counters and Stats
// methods. The want-annotated field is the PR 3/PR 5 accounting bug
// class — a counter added to the struct but never surfaced in Stats.
package a

import "sync/atomic"

// Stats is the reported snapshot.
type Stats struct {
	Scored uint64
	Labels [3]uint64
	Extra  uint64
}

// Good reads every counter in Stats, including the per-label array,
// and its atomic.Pointer is state, not a tally — no obligation.
type Good struct {
	cur     atomic.Pointer[Stats]
	scored  atomic.Uint64
	byLabel [3]atomic.Uint64
}

func (g *Good) Stats() Stats {
	return Stats{
		Scored: g.scored.Load(),
		Labels: [3]uint64{g.byLabel[0].Load(), g.byLabel[1].Load(), g.byLabel[2].Load()},
	}
}

// Bad grew a counter that Stats never reads: the tally silently
// vanishes from every aggregation built on Stats.
type Bad struct {
	scored  atomic.Uint64
	dropped atomic.Uint64 // want `atomic counter Bad\.dropped is never read in Bad\.Stats`
}

func (b *Bad) Stats() Stats {
	return Stats{Scored: b.scored.Load()}
}

// Helper reads one counter through a same-type helper method, the
// engine's Stats -> admissionStats shape; the transitive read counts.
type Helper struct {
	scored atomic.Uint64
	admits atomic.Uint64
}

func (h *Helper) Stats() Stats {
	s := Stats{Scored: h.scored.Load()}
	s.Extra = h.admissionTotal()
	return s
}

func (h *Helper) admissionTotal() uint64 { return h.admits.Load() }

// NoStats exposes plain accessors instead of a Stats method; the
// obligation only attaches to Stats-bearing types.
type NoStats struct {
	skipped atomic.Uint64
}

func (n *NoStats) Skipped() uint64 { return n.skipped.Load() }

// Waived shows the escape hatch: a deliberately unreported counter.
type Waived struct {
	scored atomic.Uint64
	//sbvet:nostat fixture: debug-only counter, intentionally not in Stats
	debug atomic.Uint64
}

func (w *Waived) Stats() Stats {
	return Stats{Scored: w.scored.Load()}
}
