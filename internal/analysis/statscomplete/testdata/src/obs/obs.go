// Package obs is a fixture stub of the real metrics instruments: just
// enough surface for the statscomplete fixtures to declare and read
// Counter/Gauge/Histogram fields. The analyzer matches instruments by
// package-path suffix and type name, so this stub exercises the same
// detection as repro/internal/obs.
package obs

// Counter is a monotone tally.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution.
type Histogram struct{ sum float64 }

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.sum += v }

// Sum returns the total of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Tracer carries no stored metric value; fields of this type are not
// obligated.
type Tracer struct{}
