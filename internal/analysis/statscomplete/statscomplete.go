// Package statscomplete enforces the accounting invariant behind the
// engine's sum(per-shard) == combined guarantees: every atomic
// counter field on a struct that exposes a Stats() (or Snapshot())
// method must be Load()ed somewhere in it (directly or through
// same-type helper methods it calls, like the engine's
// admissionStats), and — since the obs migration — every stored
// metric instrument field (obs.Counter/Gauge/Histogram, behind any
// pointer, arrays included) must likewise be read there: any method
// call with the field as receiver (Value, Sum, Snapshot, ...) counts.
//
// The failure mode is historical: PR 3 and PR 5 each added counters
// and each had to separately fix the aggregation that silently
// dropped them — a counter missing from Stats never fails a test, it
// just under-reports forever. Moving a counter onto the metrics
// registry does not lift the obligation: /stats and /metrics must
// agree, so the snapshot method reads the same instruments the
// registry renders. A field that is intentionally absent carries
// //sbvet:nostat with a reason.
package statscomplete

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the statscomplete check.
var Analyzer = &analysis.Analyzer{
	Name: "statscomplete",
	Doc:  "flag atomic counter and obs metric fields that a struct's Stats()/Snapshot() method never reads",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, typ := range namedStructs(pass) {
		checkType(pass, typ)
	}
	return nil
}

// namedStructs returns every named struct type declared in the pass's
// files.
func namedStructs(pass *analysis.Pass) []*types.Named {
	var out []*types.Named
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); ok {
					out = append(out, named)
				}
			}
		}
	}
	return out
}

// snapshotMethods are the reporting methods that carry the
// completeness obligation, in preference order for diagnostics.
var snapshotMethods = []string{"Stats", "Snapshot"}

// checkType verifies one struct type: if it has atomic counter or obs
// metric fields and a Stats/Snapshot method, every such field must be
// read somewhere in the closure of those methods over same-type
// method calls.
func checkType(pass *analysis.Pass, named *types.Named) {
	st := named.Underlying().(*types.Struct)
	counters := make(map[*types.Var]bool)
	metrics := make(map[*types.Var]bool)
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		switch {
		case analysis.IsAtomicCounter(fld.Type()):
			counters[fld] = true
		case analysis.IsObsMetric(fld.Type()):
			metrics[fld] = true
		}
	}
	if len(counters) == 0 && len(metrics) == 0 {
		return
	}
	methods := methodDecls(pass, named)
	var roots []string
	for _, name := range snapshotMethods {
		if methods[name] != nil {
			roots = append(roots, name)
		}
	}
	if len(roots) == 0 {
		return
	}

	// Walk the snapshot methods and, transitively, every same-type
	// method they call, collecting the counter fields that get Load()ed
	// and the metric fields that receive any method call.
	loaded := make(map[*types.Var]bool)
	visited := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if visited[name] {
			continue
		}
		visited[name] = true
		decl := methods[name]
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn := analysis.MethodCallee(pass.TypesInfo, sel); fn != nil {
				if recvNamed(fn) == named.Obj() {
					queue = append(queue, fn.Name())
				}
			}
			if sel.Sel.Name == "Load" {
				if fld := loadedCounter(pass, sel); fld != nil && counters[fld] {
					loaded[fld] = true
				}
			}
			if fld := metricReceiver(pass, sel); fld != nil && metrics[fld] {
				loaded[fld] = true
			}
			return true
		})
	}

	root := roots[0]
	for fld := range counters {
		if loaded[fld] {
			continue
		}
		if pass.ExemptedAt(fld.Pos(), "nostat") {
			continue
		}
		pass.Reportf(fld.Pos(), "atomic counter %s.%s is never read in %s.%s(); a counter missing from %s silently drops out of the sum(per-shard) == combined accounting — load it in %s or annotate //sbvet:nostat", named.Obj().Name(), fld.Name(), named.Obj().Name(), root, root, root)
	}
	for fld := range metrics {
		if loaded[fld] {
			continue
		}
		if pass.ExemptedAt(fld.Pos(), "nostat") {
			continue
		}
		pass.Reportf(fld.Pos(), "obs metric %s.%s is never read in %s.%s(); an instrument missing from %s makes /stats and /metrics disagree about the same accounting — read it (Value/Sum/Snapshot) in %s or annotate //sbvet:nostat", named.Obj().Name(), fld.Name(), named.Obj().Name(), root, root, root)
	}
}

// methodDecls collects the package's method declarations whose
// receiver base type is named.
func methodDecls(pass *analysis.Pass, named *types.Named) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj != nil && recvNamed(obj) == named.Obj() {
				out[fn.Name.Name] = fn
			}
		}
	}
	return out
}

// recvNamed returns the type name of a method's receiver base type.
func recvNamed(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// loadedCounter resolves x.field.Load() or x.field[i].Load() to the
// struct field being loaded, if the receiver is an atomic counter.
func loadedCounter(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !analysis.IsAtomicCounter(s.Recv()) {
		return nil
	}
	recv := sel.X
	if idx, ok := recv.(*ast.IndexExpr); ok {
		recv = idx.X
	}
	fieldSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if fs, ok := pass.TypesInfo.Selections[fieldSel]; ok && fs.Kind() == types.FieldVal {
		if v, ok := fs.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// metricReceiver resolves x.field.Method() or x.field[i].Method() to
// the struct field being called through, if the receiver is an obs
// metric instrument. Any method counts as a read: the instruments'
// accessors (Value, Sum, Snapshot, SumDuration) are all reads, and a
// snapshot method has no business calling anything else on one.
func metricReceiver(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || !analysis.IsObsMetric(s.Recv()) {
		return nil
	}
	recv := sel.X
	if idx, ok := recv.(*ast.IndexExpr); ok {
		recv = idx.X
	}
	fieldSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if fs, ok := pass.TypesInfo.Selections[fieldSel]; ok && fs.Kind() == types.FieldVal {
		if v, ok := fs.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
