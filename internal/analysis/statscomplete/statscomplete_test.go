package statscomplete_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statscomplete"
)

// TestFixtures proves the analyzer catches a counter missing from
// Stats and stays quiet on complete Stats, transitive helper reads,
// non-Stats types, atomic non-counter state, and the //sbvet:nostat
// escape hatch. Package b covers the obs extension: registry-backed
// instrument fields carry the same obligation, attached to Snapshot()
// as well as Stats().
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", statscomplete.Analyzer, "a", "b")
}
