package statscomplete_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statscomplete"
)

// TestFixtures proves the analyzer catches a counter missing from
// Stats and stays quiet on complete Stats, transitive helper reads,
// non-Stats types, atomic non-counter state, and the //sbvet:nostat
// escape hatch.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", statscomplete.Analyzer, "a")
}
