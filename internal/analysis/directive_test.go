package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseOne parses src as a single file and returns it with its fset.
func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

// TestDirectivesCRLF: a file saved with Windows line endings must not
// leak the \r into the directive's reason.
func TestDirectivesCRLF(t *testing.T) {
	src := strings.ReplaceAll(`package p

func f() {
	_ = 0 //sbvet:drain cancelled on return
}
`, "\n", "\r\n")
	fset, f := parseOne(t, src)
	ds := Directives(fset, f)
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	if ds[0].Name != "drain" {
		t.Errorf("Name = %q, want drain", ds[0].Name)
	}
	if ds[0].Reason != "cancelled on return" {
		t.Errorf("Reason = %q; a CRLF ending leaked into the reason", ds[0].Reason)
	}
}

// TestDirectivesStacked: one comment can carry several directives,
// each reason running to the next marker, all on the comment's line.
func TestDirectivesStacked(t *testing.T) {
	src := `package p

func f() {
	_ = 0 //sbvet:drain done //sbvet:nostat derived elsewhere
}
`
	fset, f := parseOne(t, src)
	ds := Directives(fset, f)
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2", len(ds))
	}
	if ds[0].Name != "drain" || ds[0].Reason != "done" {
		t.Errorf("first = %q %q, want drain/done", ds[0].Name, ds[0].Reason)
	}
	if ds[1].Name != "nostat" || ds[1].Reason != "derived elsewhere" {
		t.Errorf("second = %q %q, want nostat/\"derived elsewhere\"", ds[1].Name, ds[1].Reason)
	}
	if ds[0].Line != ds[1].Line {
		t.Errorf("stacked directives on different lines: %d vs %d", ds[0].Line, ds[1].Line)
	}
}

// TestDirectivesMalformed: a bare //sbvet: surfaces with an empty name
// so the checker can diagnose it rather than silently ignoring it.
func TestDirectivesMalformed(t *testing.T) {
	src := `package p

func f() {
	_ = 0 //sbvet:
}
`
	fset, f := parseOne(t, src)
	ds := Directives(fset, f)
	if len(ds) != 1 || ds[0].Name != "" {
		t.Fatalf("got %+v, want one directive with empty name", ds)
	}
}

// exemptPass builds a Pass sufficient for ExemptedAt over one parsed
// file.
func exemptPass(fset *token.FileSet, f *ast.File) *Pass {
	return &Pass{Fset: fset, Files: []*ast.File{f}}
}

// stmtPos finds the position of the statement assigning to sink.
func stmtPos(t *testing.T, f *ast.File) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			pos = as.Pos()
		}
		return true
	})
	if !pos.IsValid() {
		t.Fatal("no assignment found in fixture source")
	}
	return pos
}

// TestExemptedAtAdjacency: a directive waives the site on its own line
// or the line directly below — but a blank line between directive and
// site breaks the association, so a stale comment cannot waive code
// that drifted away from it.
func TestExemptedAtAdjacency(t *testing.T) {
	adjacent := `package p

func f() (x int) {
	//sbvet:drain reason
	x = 1
	return
}
`
	fset, f := parseOne(t, adjacent)
	if !exemptPass(fset, f).ExemptedAt(stmtPos(t, f), "drain") {
		t.Error("directive directly above the site did not waive it")
	}

	separated := `package p

func f() (x int) {
	//sbvet:drain reason

	x = 1
	return
}
`
	fset, f = parseOne(t, separated)
	if exemptPass(fset, f).ExemptedAt(stmtPos(t, f), "drain") {
		t.Error("blank-line-separated directive waived the site; adjacency is required")
	}

	wrongName := `package p

func f() (x int) {
	//sbvet:drain reason
	x = 1
	return
}
`
	fset, f = parseOne(t, wrongName)
	if exemptPass(fset, f).ExemptedAt(stmtPos(t, f), "nostat") {
		t.Error("a drain directive waived a nostat site; names must match")
	}
}

// TestUnknownDirectiveDiagnosed: the checker reports any //sbvet:
// comment whose name is not in KnownDirectives, so a typo cannot
// silently waive nothing.
func TestUnknownDirectiveDiagnosed(t *testing.T) {
	src := `package p

func f() {
	_ = 0 //sbvet:ungarded typo for unguarded
}
`
	fset, f := parseOne(t, src)
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &Package{
		PkgPath: "p", Fset: fset, Files: []*ast.File{f},
		Types: tpkg, TypesInfo: info,
	}
	findings := CheckPackage(pkg, nil)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	msg := findings[0].Message
	if !strings.Contains(msg, "unknown directive //sbvet:ungarded") {
		t.Errorf("message %q does not name the unknown directive", msg)
	}
	if !strings.Contains(msg, "unguarded") || !strings.Contains(msg, "drain") {
		t.Errorf("message %q does not list the known directive names", msg)
	}
}
