package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package — the unit a
// Pass analyzes.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds any type-check errors. Analysis still runs on a
	// partially checked package, mirroring go vet, but the checker
	// surfaces these so a broken build is never reported as "clean".
	TypeErrors []error
}

// Loader parses and type-checks packages from source with no help
// from the go command: module-internal imports resolve against the
// module root, everything else falls back to a source-level stdlib
// importer. It exists because this environment has no module proxy —
// the real golang.org/x/tools loaders are unreachable — and doubles
// as the fixture loader for the analysistest harness (a testdata/src
// tree is just a Loader with an empty module path).
type Loader struct {
	fset *token.FileSet
	// root is the directory package dirs resolve under.
	root string
	// modPath is the module path declared by root's go.mod; "" means
	// fixture mode, where import paths are directories under root.
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	// order records load completion order: dependencies before
	// dependents, deterministically (parse order drives import order).
	order   []*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at dir. modPath is the module
// path import paths are resolved against; pass "" for a fixture tree
// whose import paths are root-relative directories.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// NewModuleLoader reads root/go.mod for the module path and returns a
// loader for the module rooted there.
func NewModuleLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	return NewLoader(root, modPath), nil
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to a directory under root, or "" if the
// path is not module-internal.
func (l *Loader) dirFor(path string) string {
	if l.modPath == "" {
		dir := filepath.Join(l.root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
		return ""
	}
	if path == l.modPath {
		return l.root
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer, so the loader can hand itself to
// types.Config and have module-internal imports recurse.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadImport loads (or returns the cached) package for an
// internal import path.
func (l *Loader) LoadImport(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: %q is not under the load root", path)
	}
	return l.load(path, dir)
}

// load parses dir's non-test Go files (honoring build constraints via
// go/build) and type-checks them.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{PkgPath: path, Fset: l.fset, TypesInfo: info}
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error;
	// the collected TypeErrors carry the failure.
	tpkg, _ := cfg.Check(path, l.fset, files, info)
	pkg.Types = tpkg
	pkg.Files = files
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// Loaded returns the already-loaded package for an import path, or
// nil. It never triggers a load, so checkers can map a type-checked
// import back to its source package without risking re-entrancy.
func (l *Loader) Loaded(path string) *Package { return l.pkgs[path] }

// LoadedPackages returns every package this loader has loaded, in
// completion order: dependencies before dependents. The slice is
// shared; callers must not mutate it.
func (l *Loader) LoadedPackages() []*Package { return l.order }

// Packages enumerates the import paths of every package under root
// matching the patterns. Supported patterns are the go tool's common
// forms: "./...", "dir/...", and plain directories; an empty pattern
// list means "./...". Directories named testdata, vendored trees, and
// hidden or underscore-prefixed directories are skipped, as the go
// tool skips them.
func (l *Loader) Packages(patterns ...string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var all []string
	err := filepath.WalkDir(l.root, func(dir string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		bp, err := build.ImportDir(dir, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil // not a buildable package; keep walking
		}
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return err
		}
		all = append(all, l.pathFor(filepath.ToSlash(rel)))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var out []string
	for _, path := range all {
		for _, pat := range patterns {
			if l.match(pat, path) {
				out = append(out, path)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// pathFor converts a root-relative directory to an import path.
func (l *Loader) pathFor(rel string) string {
	switch {
	case l.modPath == "":
		return rel
	case rel == ".":
		return l.modPath
	default:
		return l.modPath + "/" + rel
	}
}

// match reports whether a package path matches one go-style pattern.
func (l *Loader) match(pat, path string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" {
		return true
	}
	pat = l.pathFor(strings.TrimSuffix(pat, "/"))
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return path == rest || strings.HasPrefix(path, rest+"/")
	}
	return path == pat
}
