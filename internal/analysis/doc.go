// Package analysis is the sbvet static-analysis framework: a
// stdlib-only, API-compatible subset of golang.org/x/tools/go/analysis
// plus a module-aware source loader, built so the repo's serving,
// accounting, and drain invariants are enforced at lint time instead
// of depending on a -race window opening.
//
// The concrete analyzers live in subpackages, one invariant class per
// analyzer, each grounded in a bug this repo has actually had to fix:
//
//   - snapshotonce (internal/analysis/snapshotonce): the serving
//     snapshot pointer is read at most once per function body and
//     never inside a loop, so a batch or decision can never mix
//     generations (the PR 2 torn-read invariant, previously guarded
//     only by TestServeWhileRetrainNoTornReads winning a race).
//   - statscomplete (internal/analysis/statscomplete): every atomic
//     counter field on a struct with a Stats method is loaded
//     somewhere in Stats, so a newly added counter cannot silently
//     vanish from the sum(per-shard) == combined aggregation (the
//     accounting class PR 3 and PR 5 each had to re-fix).
//   - ctxdrain (internal/analysis/ctxdrain): a for-range over a
//     channel inside a context-aware function must either select on
//     ctx.Done() or carry an explicit drain annotation (the PR 4
//     Sharded.LearnStream cancellation-swallowing class).
//   - tokenizeonce (internal/analysis/tokenizeonce): direct tokenizer
//     calls are confined to the tokenization layer's own packages, so
//     new double-tokenize call sites cannot creep into the serving or
//     admission paths while the tokenize-once refactor is pending.
//
// cmd/sbvet aggregates the suite into one binary that runs standalone
// (go run ./cmd/sbvet ./...) or as a go vet tool
// (go vet -vettool=$(which sbvet) ./...).
//
// # Directives
//
// Intentional violations are annotated, never silent. A directive is
// a line comment of the form
//
//	//sbvet:NAME optional justification
//
// placed on the offending line or the line immediately above it
// (mirroring //nolint and //go:build placement). Each analyzer
// honors exactly one directive name, so an annotation states which
// invariant is being waived and the justification is auditable with
// `grep -rn "//sbvet:"`:
//
//	//sbvet:reload      snapshotonce — this re-read is intentional
//	//sbvet:nostat      statscomplete — this counter is deliberately
//	                    absent from Stats
//	//sbvet:drain       ctxdrain — this loop is an intentional
//	                    drain-to-close and must ignore cancellation
//	//sbvet:retokenize  tokenizeonce — this call site may invoke the
//	                    tokenizer directly
//
// Directive parsing is shared (see Directives and ExemptedAt) so all
// analyzers agree on placement rules, and unknown directive names are
// themselves diagnosed by the checker, so a typo like //sbvet:drian
// cannot silently waive nothing.
package analysis
