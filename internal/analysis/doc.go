// Package analysis is the sbvet static-analysis framework: a
// stdlib-only, API-compatible subset of golang.org/x/tools/go/analysis
// plus a module-aware source loader, built so the repo's serving,
// accounting, and drain invariants are enforced at lint time instead
// of depending on a -race window opening.
//
// The concrete analyzers live in subpackages, one invariant class per
// analyzer, each grounded in a bug this repo has actually had to fix:
//
//   - snapshotonce (internal/analysis/snapshotonce): the serving
//     snapshot pointer is read at most once per function body and
//     never inside a loop, so a batch or decision can never mix
//     generations (the PR 2 torn-read invariant, previously guarded
//     only by TestServeWhileRetrainNoTornReads winning a race).
//   - statscomplete (internal/analysis/statscomplete): every atomic
//     counter field on a struct with a Stats method is loaded
//     somewhere in Stats, so a newly added counter cannot silently
//     vanish from the sum(per-shard) == combined aggregation (the
//     accounting class PR 3 and PR 5 each had to re-fix).
//   - ctxdrain (internal/analysis/ctxdrain): a for-range over a
//     channel inside a context-aware function must either select on
//     ctx.Done() or carry an explicit drain annotation (the PR 4
//     Sharded.LearnStream cancellation-swallowing class).
//   - tokenizeonce (internal/analysis/tokenizeonce): direct tokenizer
//     calls are confined to the tokenization layer's own packages, so
//     new double-tokenize call sites cannot creep into the serving or
//     admission paths while the tokenize-once refactor is pending.
//
// The second round adds an interprocedural layer — a module-wide call
// graph (CallGraph) over the already-type-checked packages, static
// calls plus method calls resolved through declared interface types,
// and an exported-facts mechanism (Fact, FactStore) — and four
// analyzers that prove call-path invariants no single function body
// can show:
//
//   - admitflow (internal/analysis/admitflow): outside the packages
//     that own training, no call path may reach the engine's training
//     surface (LearnStream / Retrain* / Swap*) or a backend's raw
//     Learn/LearnWeighted without passing through Guarded/Admitter —
//     the guarded-training invariant the PR 5 admission layer exists
//     to enforce, closed against future call sites.
//   - hookorder (internal/analysis/hookorder): a PrePublish or
//     PostPublish hook, or anything it transitively calls, must not
//     call Swap / publish / Retrain* — a hook runs inside publish, so
//     re-entering the publish path is a deadlock shipping in a config
//     struct.
//   - facadeexport (internal/analysis/facadeexport): every exported
//     capability of internal/engine and internal/admission must be
//     surfaced by the repro facade (same name, or referenced by a
//     renamed alias or wrapper) — with internal/ packages, an
//     unexported capability does not exist for users.
//   - atomicfield (internal/analysis/atomicfield): a struct field
//     accessed through sync/atomic anywhere must never be plainly
//     read or written — one plain read of a hot counter is a data
//     race the race detector only catches if a test wins the
//     interleaving.
//
// cmd/sbvet aggregates the suite into one binary that runs standalone
// (go run ./cmd/sbvet ./...) or as a go vet tool
// (go vet -vettool=$(which sbvet) ./...). Findings are reported in a
// deterministic order (file, line, column, analyzer) in both modes.
//
// # Facts and the x/tools correspondence
//
// The framework mirrors golang.org/x/tools/go/analysis field for
// field — Analyzer{Name, Doc, Run, FactTypes}, Pass with
// ExportObjectFact / ImportObjectFact / ExportPackageFact /
// ImportPackageFact, and Fact's AFact marker — so analyzers written
// here port to the real driver mechanically once a module proxy is
// reachable. Facts are how interprocedural results cross package
// boundaries: an analyzer running on package P may attach a fact
// (a serializable struct with an AFact method, registered via
// FactTypes) to P's own objects; when a dependent package is analyzed
// later, ImportObjectFact retrieves it. In-process the checker keeps
// facts in a FactStore; under go vet's unitchecker protocol each
// package's facts are gob-encoded into a .vetx file (factsio.go) and
// transported to dependent compilations, exactly as x/tools does.
// Dependency order is guaranteed in both modes: the checker analyzes
// a package only after all its imports.
//
// # Directives
//
// Intentional violations are annotated, never silent. A directive is
// a line comment of the form
//
//	//sbvet:NAME optional justification
//
// placed on the offending line or the line immediately above it
// (mirroring //nolint and //go:build placement). Each analyzer
// honors exactly one directive name, so an annotation states which
// invariant is being waived and the justification is auditable with
// `grep -rn "//sbvet:"`:
//
//	//sbvet:reload      snapshotonce — this re-read is intentional
//	//sbvet:nostat      statscomplete — this counter is deliberately
//	                    absent from Stats
//	//sbvet:drain       ctxdrain — this loop is an intentional
//	                    drain-to-close and must ignore cancellation
//	//sbvet:retokenize  tokenizeonce — this call site may invoke the
//	                    tokenizer directly
//	//sbvet:unguarded   admitflow — this training call is deliberately
//	                    unguarded (an attack demo, an operator
//	                    bootstrap); the waiver also sanitizes the
//	                    function for its callers
//	//sbvet:reentrant   hookorder — this hook's publish call is
//	                    intentional
//	//sbvet:nofacade    facadeexport — this exported declaration is
//	                    deliberately not part of the facade contract
//	//sbvet:unatomic    atomicfield — this plain access is safe (for
//	                    example, a single-goroutine teardown path)
//
// A typical waiver, from the experiment layer, reads:
//
//	f.LearnWeighted(attackMsg, true, n) //sbvet:unguarded the attack injection being measured
//
// Directive parsing is shared (see Directives and ExemptedAt) so all
// analyzers agree on placement rules: one comment may stack several
// directives, CRLF endings are tolerated, and a blank line between
// the directive and the site breaks the waiver — adjacency is
// required, so a stale comment cannot waive code that drifted away
// from it. Unknown directive names are themselves diagnosed by the
// checker, so a typo like //sbvet:drian cannot silently waive
// nothing.
package analysis
