package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //sbvet:NAME comment.
type Directive struct {
	// Name is the directive keyword ("drain", "retokenize", ...).
	Name string
	// Reason is the free-form justification after the keyword.
	Reason string
	// Line is the 1-based source line the comment sits on.
	Line int
	Pos  token.Pos
}

// KnownDirectives is the set of directive names the suite honors,
// directive name -> analyzer name. The checker diagnoses any
// //sbvet: comment whose name is not here, so a typo cannot silently
// waive nothing.
var KnownDirectives = map[string]string{
	"reload":     "snapshotonce",
	"nostat":     "statscomplete",
	"drain":      "ctxdrain",
	"retokenize": "tokenizeonce",
	"unguarded":  "admitflow",
	"reentrant":  "hookorder",
	"nofacade":   "facadeexport",
	"unatomic":   "atomicfield",
}

// directivePrefix is the comment marker. Like //go:build, there is no
// space after the slashes, which keeps directives grep-distinct from
// prose mentioning sbvet.
const directivePrefix = "//sbvet:"

// Directives returns every //sbvet: directive in f, in source order.
// A comment may stack several directives ("//sbvet:drain done
// //sbvet:nostat derived"): each one's reason runs to the next marker.
// Malformed directives (bare "//sbvet:" with no name) are returned
// with an empty Name so the checker can diagnose them. Trailing \r
// from CRLF sources is trimmed with the rest of the whitespace.
func Directives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			for _, rest := range strings.Split(c.Text, directivePrefix)[1:] {
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, Directive{
					Name:   strings.TrimSpace(name),
					Reason: strings.TrimSpace(reason),
					Line:   fset.Position(c.Slash).Line,
					Pos:    c.Slash,
				})
			}
		}
	}
	return out
}
