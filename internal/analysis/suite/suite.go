// Package suite aggregates the sbvet analyzers into the one list
// cmd/sbvet, make lint, and the self-check smoke test all share, so
// "the suite" cannot mean different things in different drivers.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/admitflow"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/ctxdrain"
	"repro/internal/analysis/facadeexport"
	"repro/internal/analysis/hookorder"
	"repro/internal/analysis/snapshotonce"
	"repro/internal/analysis/statscomplete"
	"repro/internal/analysis/tokenizeonce"
)

// Analyzers is the full sbvet suite: the four intraprocedural checks
// from the first round, then the four interprocedural call-graph
// checks.
var Analyzers = []*analysis.Analyzer{
	snapshotonce.Analyzer,
	statscomplete.Analyzer,
	ctxdrain.Analyzer,
	tokenizeonce.Analyzer,
	admitflow.Analyzer,
	hookorder.Analyzer,
	facadeexport.Analyzer,
	atomicfield.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// CheckModule runs the whole suite over the module rooted at root —
// the exact code path cmd/sbvet's standalone mode executes, exported
// so the self-check test and the binary cannot drift.
func CheckModule(root string, patterns ...string) ([]analysis.Finding, error) {
	l, err := analysis.NewModuleLoader(root)
	if err != nil {
		return nil, err
	}
	return analysis.Check(l, Analyzers, patterns...)
}
