package suite_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis/suite"
)

// moduleRoot locates the repo root from this file's position, so the
// test works regardless of the test binary's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	// file = <root>/internal/analysis/suite/suite_test.go
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// TestRepoIsClean is the smoke test the issue requires: the sbvet
// suite, run over the whole repository through the same code path as
// `go run ./cmd/sbvet ./...`, must report nothing. Every invariant
// violation the suite flushed out of the pre-existing code was fixed
// or explicitly annotated in this PR; this test keeps it that way.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("source-loads the whole module; skipped in -short")
	}
	findings, err := suite.CheckModule(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("CheckModule: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s): the tree violates an invariant sbvet enforces; fix it or annotate with a //sbvet: directive", len(findings))
	}
}

// TestByName pins the suite's composition: eight analyzers, one per
// invariant class, resolvable by name.
func TestByName(t *testing.T) {
	for _, name := range []string{
		"snapshotonce", "statscomplete", "ctxdrain", "tokenizeonce",
		"admitflow", "hookorder", "facadeexport", "atomicfield",
	} {
		if suite.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil; the suite lost an analyzer", name)
		}
	}
	if suite.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) returned an analyzer")
	}
	if len(suite.Analyzers) != 8 {
		t.Errorf("suite has %d analyzers, want 8", len(suite.Analyzers))
	}
}
