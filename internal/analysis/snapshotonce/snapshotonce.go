// Package snapshotonce enforces the serving layer's torn-read
// invariant: within one function body the atomically published
// snapshot pointer is read at most once, and never inside a loop.
//
// The Engine serves its classifier behind an atomic.Pointer that a
// retrain can swap at any instant. Every decision — a batch score, an
// error-path generation report, a clone-for-retrain — must therefore
// be computed against ONE load of that pointer; a second load in the
// same body can observe a different generation, silently mixing a
// batch across filters (the PR 2 bug class that
// TestServeWhileRetrainNoTornReads only catches when the race window
// happens to open). The analyzer counts two kinds of read:
//
//   - direct loads: x.field.Load() where field is an atomic.Pointer;
//   - accessor loads: calls to same-package methods whose body is a
//     direct load of their receiver's atomic.Pointer field (the
//     engine's Classifier/Generation/Snapshot accessors), keyed by
//     the pointer they load, so eng.Classifier()+eng.Generation() in
//     one body is recognized as two reads of one pointer.
//
// Reads inside a loop are flagged even on first occurrence, unless
// the pointer expression depends on a loop variable (per-shard reads
// in a fan-out are reads of N different pointers, which is fine).
// Intentional re-reads carry a //sbvet:reload directive. _test.go
// files are exempt: tests re-read pointers to assert that a publish
// changed the generation.
package snapshotonce

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the snapshotonce check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotonce",
	Doc:  "flag function bodies that read an atomically published snapshot pointer more than once, or inside a loop",
	Run:  run,
}

// event is one snapshot-pointer read.
type event struct {
	pos token.Pos
	// key names the pointer being read, e.g. "e.cur" for a direct
	// load or "g.eng.cur" for a read through an accessor method.
	key string
	// recv is the expression the pointer hangs off, for the loop-
	// dependence test.
	recv ast.Expr
	// loop is the innermost enclosing for/range statement, nil if
	// none.
	loop ast.Node
}

func run(pass *analysis.Pass) error {
	accessors := findAccessors(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, accessors, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, accessors, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody collects every snapshot read in one function body
// (closures excluded — they are their own bodies) and reports
// multiple reads of one pointer and loop-invariant reads in loops.
func checkBody(pass *analysis.Pass, accessors map[*types.Func]string, body *ast.BlockStmt) {
	var events []event
	collect(pass, accessors, body, nil, &events)

	first := make(map[string]token.Pos)
	for _, ev := range events {
		// Tests read snapshot pointers repeatedly on purpose — to
		// assert that a publish changed the generation.
		if pass.IsTestFile(ev.pos) {
			continue
		}
		if ev.loop != nil && !analysis.LoopDependent(pass.TypesInfo, ev.loop, ev.recv) {
			if !pass.ExemptedAt(ev.pos, "reload") {
				pass.Reportf(ev.pos, "snapshot pointer %s is read inside a loop; an iteration running after a publish would mix generations — hoist one read above the loop or annotate //sbvet:reload", ev.key)
			}
			continue
		}
		at, seen := first[ev.key]
		if !seen {
			first[ev.key] = ev.pos
			continue
		}
		if !pass.ExemptedAt(ev.pos, "reload") {
			pass.Reportf(ev.pos, "snapshot pointer %s is read again in the same function body (first read at line %d); one decision must see one generation — load it once (e.g. a single Snapshot()) or annotate //sbvet:reload", ev.key, pass.Fset.Position(at).Line)
		}
	}
}

// collect walks stmts (not descending into closures), tracking the
// innermost enclosing loop.
func collect(pass *analysis.Pass, accessors map[*types.Func]string, n ast.Node, loop ast.Node, events *[]event) {
	switch s := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.ForStmt:
		collectChildren(pass, accessors, s, s, events)
		return
	case *ast.RangeStmt:
		collectChildren(pass, accessors, s, s, events)
		return
	case *ast.CallExpr:
		if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
			if key, recv, ok := snapshotRead(pass, accessors, sel); ok {
				*events = append(*events, event{pos: s.Lparen, key: key, recv: recv, loop: loop})
			}
		}
	}
	collectChildren(pass, accessors, n, loop, events)
}

// collectChildren recurses into n's direct children with the given
// loop context.
func collectChildren(pass *analysis.Pass, accessors map[*types.Func]string, n ast.Node, loop ast.Node, events *[]event) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		collect(pass, accessors, c, loop, events)
		return false
	})
}

// snapshotRead classifies one selector call as a snapshot-pointer
// read, returning the pointer key and the receiver expression.
func snapshotRead(pass *analysis.Pass, accessors map[*types.Func]string, sel *ast.SelectorExpr) (string, ast.Expr, bool) {
	// Direct load: x.field.Load() on an atomic.Pointer.
	if sel.Sel.Name == "Load" {
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal && analysis.AtomicTypeName(s.Recv()) == "Pointer" {
			return types.ExprString(sel.X), sel.X, true
		}
	}
	// Accessor load: a call to a same-package method whose body is a
	// direct load of its receiver's pointer field.
	if fn := analysis.MethodCallee(pass.TypesInfo, sel); fn != nil {
		if field, ok := accessors[fn]; ok {
			return types.ExprString(sel.X) + "." + field, sel.X, true
		}
	}
	return "", nil, false
}

// findAccessors maps each method in this package that is a pure
// snapshot accessor to the atomic.Pointer field it loads. A pure
// accessor's body makes exactly one call, and that call is a direct
// recv.field.Load() of an atomic.Pointer field — the engine's
// Classifier/Generation/Snapshot shape. Its whole result is derived
// from one load, so a call to it IS a pointer read at the call site.
// Methods that merely use the snapshot internally (Classify loads
// once, then scores) are not accessors: calling them twice is two
// self-consistent decisions, not a torn read.
func findAccessors(pass *analysis.Pass) map[*types.Func]string {
	out := make(map[*types.Func]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			calls := 0
			field := ""
			analysis.WalkSkipFuncLit(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				calls++
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Load" {
					return true
				}
				s, ok := pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.MethodVal || analysis.AtomicTypeName(s.Recv()) != "Pointer" {
					return true
				}
				// The loaded pointer must be a field directly on the
				// method receiver (recvIdent.field.Load()).
				fieldSel, ok := sel.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if _, ok := fieldSel.X.(*ast.Ident); !ok {
					return true
				}
				if fs, ok := pass.TypesInfo.Selections[fieldSel]; ok && fs.Kind() == types.FieldVal {
					field = fieldSel.Sel.Name
				}
				return true
			})
			if calls == 1 && field != "" {
				out[obj] = field
			}
		}
	}
	return out
}
