package snapshotonce_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotonce"
)

// TestFixtures proves the analyzer catches the torn-read bug classes
// (double load, loop load, accessor-pair load) and stays quiet on the
// sanctioned patterns (hoisted loads, per-shard loops, closures, the
// //sbvet:reload escape hatch). analysistest fails in both
// directions, so removing the analyzer's checks fails this test.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotonce.Analyzer, "a")
}
