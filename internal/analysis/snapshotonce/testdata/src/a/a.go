// Fixture for snapshotonce: a miniature of the engine's serving
// shape. Each want-annotated line is the historical bug class the
// analyzer must catch; the unannotated functions are the sanctioned
// patterns and must stay clean.
package a

import "sync/atomic"

type snapshot struct {
	clf int
	gen uint64
}

// Engine mimics the serving engine: one atomically published
// snapshot pointer.
type Engine struct {
	cur atomic.Pointer[snapshot]
}

// Pure accessors: one load each, results derived from it.
func (e *Engine) Classifier() int     { return e.cur.Load().clf }
func (e *Engine) Generation() uint64  { return e.cur.Load().gen }
func (e *Engine) Snapshot() (int, uint64) {
	s := e.cur.Load()
	return s.clf, s.gen
}

// Torn is the PR 2 bug class: two loads in one body can straddle a
// publish and pair a classifier with the wrong generation.
func (e *Engine) Torn() (int, uint64) {
	clf := e.cur.Load().clf
	gen := e.cur.Load().gen // want `snapshot pointer e\.cur is read again in the same function body`
	return clf, gen
}

// LoopLoad re-reads the pointer every iteration: a publish mid-loop
// mixes generations within one batch.
func (e *Engine) LoopLoad(msgs []int) int {
	total := 0
	for range msgs {
		total += e.cur.Load().clf // want `snapshot pointer e\.cur is read inside a loop`
	}
	return total
}

// HoistedLoad is the fix for LoopLoad and must stay clean.
func (e *Engine) HoistedLoad(msgs []int) int {
	clf := e.cur.Load().clf
	total := 0
	for range msgs {
		total += clf
	}
	return total
}

// Guarded mimics a wrapper reading the snapshot through accessors.
type Guarded struct {
	eng *Engine
}

// TornAccessors is the wrapper variant of the same torn read: two
// accessor calls are two loads of one pointer.
func (g *Guarded) TornAccessors() (int, uint64) {
	clf := g.eng.Classifier()
	return clf, g.eng.Generation() // want `snapshot pointer g\.eng\.cur is read again in the same function body`
}

// OneSnapshot is the fix for TornAccessors and must stay clean.
func (g *Guarded) OneSnapshot() (int, uint64) {
	return g.eng.Snapshot()
}

// Sharded mimics the fan-out: per-shard reads in a loop are reads of
// N different pointers and must stay clean.
type Sharded struct {
	shards []*Engine
}

func (s *Sharded) Generations() []uint64 {
	out := make([]uint64, 0, len(s.shards))
	for _, e := range s.shards {
		out = append(out, e.Generation())
	}
	return out
}

// Closures are their own bodies: one load in the method plus one in
// the goroutine is not a torn read of one decision.
func (e *Engine) Background(done chan<- uint64) int {
	clf := e.cur.Load().clf
	go func() {
		done <- e.cur.Load().gen
	}()
	return clf
}

// Waived shows the escape hatch: an annotated intentional re-read.
func (e *Engine) Waived() (int, uint64) {
	clf := e.cur.Load().clf
	//sbvet:reload fixture: deliberately re-reads to demonstrate the directive
	gen := e.cur.Load().gen
	return clf, gen
}
