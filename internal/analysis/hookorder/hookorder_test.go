package hookorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hookorder"
)

func TestHookorder(t *testing.T) {
	analysistest.Run(t, "testdata", hookorder.Analyzer,
		"internal/engine", "pubutil", "hooks")
}
