// Package engine is a fixture mirror of the publish path: the Engine
// and Guarded publish surface, and the Config struct carrying the
// PrePublish/PostPublish hook slices.
package engine

// Message stands in for mail.Message.
type Message struct{ Body string }

// Classifier is the backend contract.
type Classifier interface {
	Learn(m *Message, spam bool)
}

// Config carries the publish hooks.
type Config struct {
	// PrePublish hooks run on each replacement before it is published.
	PrePublish []func(next Classifier) error
	// PostPublish hooks run once after each publish.
	PostPublish []func()
}

// Engine serves a classifier.
type Engine struct{ clf Classifier }

// Swap publishes a replacement.
func (e *Engine) Swap(clf Classifier) uint64 {
	e.clf = clf
	return 1
}

// Guarded wraps an Engine with hooks.
type Guarded struct {
	eng *Engine
	cfg Config
}

// NewGuarded wraps e with cfg.
func NewGuarded(e *Engine, cfg Config) *Guarded {
	return &Guarded{eng: e, cfg: cfg}
}

// publish runs the PrePublish hooks, installs clf, then runs the
// PostPublish hooks — the mechanism hookorder protects.
func (g *Guarded) publish(clf Classifier) (uint64, error) {
	for _, hook := range g.cfg.PrePublish {
		if err := hook(clf); err != nil {
			return 0, err
		}
	}
	gen := g.eng.Swap(clf)
	for _, hook := range g.cfg.PostPublish {
		hook()
	}
	return gen, nil
}

// Swap publishes through the hooks.
func (g *Guarded) Swap(clf Classifier) (uint64, error) { return g.publish(clf) }

// Retrain rebuilds and publishes through the hooks.
func (g *Guarded) Retrain(train []*Message) (uint64, error) {
	for _, m := range train {
		g.eng.clf.Learn(m, true)
	}
	return g.publish(g.eng.clf)
}
