// Package pubutil is a non-engine helper whose RebuildAndPublish
// reaches the publish surface — the cross-package fact leg of the
// hookorder fixture.
package pubutil

import "internal/engine"

// RebuildAndPublish retrains and publishes; it exports a
// publishesFact, so registering any caller of it as a hook is flagged
// from another package.
func RebuildAndPublish(g *engine.Guarded, train []*engine.Message) error {
	_, err := g.Retrain(train)
	return err
}

// Audit is publish-free; hooks may call it.
func Audit(g *engine.Guarded) int { return 0 }
