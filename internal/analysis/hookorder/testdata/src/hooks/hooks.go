// Package hooks registers publish hooks: the checked surface of the
// hookorder fixture. Literal hooks are flagged at the offending call,
// named hooks at the registration site, and the cross-package leg
// flags a hook whose publish call is two packages away.
package hooks

import (
	"internal/engine"

	"pubutil"
)

var gg *engine.Guarded

// setupLiteral registers a literal PrePublish hook that swaps — the
// deadlock in miniature — next to a clean one that only inspects.
func setupLiteral(e *engine.Engine) *engine.Guarded {
	cfg := engine.Config{
		PrePublish: []func(engine.Classifier) error{
			func(next engine.Classifier) error {
				_, err := gg.Swap(next) // want `publish hook re-enters the publish path: calls \(\*internal/engine\.Guarded\)\.Swap`
				return err
			},
			func(next engine.Classifier) error {
				pubutil.Audit(gg)
				return nil
			},
		},
	}
	return engine.NewGuarded(e, cfg)
}

// refresh retrains through the guard; fine as a function, fatal as a
// hook.
func refresh() {
	gg.Retrain(nil)
}

// audit is publish-free.
func audit() {
	pubutil.Audit(gg)
}

// wrapper publishes two hops away: wrapper -> pubutil.RebuildAndPublish
// -> Guarded.Retrain, joined by the exported publishesFact.
func wrapper() {
	pubutil.RebuildAndPublish(gg, nil)
}

// setupNamed registers named hooks: the publishing ones are flagged at
// the registration site, the clean one is not.
func setupNamed(cfg *engine.Config) {
	cfg.PostPublish = append(cfg.PostPublish, refresh) // want `publish hook re-enters the publish path: hooks\.refresh reaches \(\*internal/engine\.Guarded\)\.Retrain`
	cfg.PostPublish = append(cfg.PostPublish, audit)
	cfg.PostPublish = append(cfg.PostPublish, wrapper) // want `publish hook re-enters the publish path: hooks\.wrapper reaches \(\*internal/engine\.Guarded\)\.Retrain`
}

// setupWaived registers a deliberately re-entrant hook and says so;
// the directive waives both forms.
func setupWaived(cfg *engine.Config) {
	//sbvet:reentrant fixture: deliberate re-entrancy under test
	cfg.PostPublish = append(cfg.PostPublish, refresh)
	cfg.PrePublish = append(cfg.PrePublish, func(next engine.Classifier) error {
		_, err := gg.Swap(next) //sbvet:reentrant fixture: deliberate re-entrancy under test
		return err
	})
}
