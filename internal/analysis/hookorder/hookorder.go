// Package hookorder proves the publish-hook ordering invariant: a
// PrePublish or PostPublish hook — or anything it transitively calls —
// must not re-enter the publish path.
//
// Guarded.publish (internal/engine/guarded.go) runs the PrePublish
// hooks, installs the replacement, then runs the PostPublish hooks,
// all under the guard's swap lock. A hook that calls Swap, Retrain, or
// publish itself therefore deadlocks on the lock it is already inside
// of — or, on the unlocked Engine surface, publishes a snapshot out
// from under the very publish that invoked it. Nothing at the type
// level prevents registering such a hook; the failure only appears at
// the first swap, in production.
//
// The analyzer works in two halves joined by facts:
//
//   - everywhere, it computes which functions (transitively) call the
//     publish surface — Swap / SwapAll / publish / Retrain /
//     RetrainIncremental / RetrainAll / RetrainIncrementalAll on the
//     engine package's Engine, Sharded, Guarded, or GuardedSharded —
//     and exports a publishesFact for each, so the reachability
//     crosses package boundaries;
//   - at every hook registration — a PrePublish/PostPublish field in a
//     composite literal, or an assignment or append to such a field —
//     it inspects the registered values: a function literal is flagged
//     at the offending call inside it, and a named function or method
//     that reaches the publish surface is flagged at the registration
//     site.
//
// A //sbvet:reentrant directive (with a reason) waives one site:
// either the registration line or the offending call inside a literal
// hook. _test.go files are exempt.
package hookorder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hookorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "hookorder",
	Doc:       "flag PrePublish/PostPublish hooks that re-enter the publish path (Swap/publish/Retrain*)",
	Run:       run,
	FactTypes: []analysis.Fact{(*publishesFact)(nil)},
}

// publishesFact marks an exported function as (transitively) calling
// the publish surface; Callee names the publish method reached.
type publishesFact struct {
	Callee string
}

// AFact marks publishesFact as a fact type.
func (*publishesFact) AFact() {}

// hookFields are the struct fields whose elements are publish hooks.
var hookFields = map[string]bool{
	"PrePublish":  true,
	"PostPublish": true,
}

// publishNames is the publish surface: calling any of these from
// inside a hook re-enters the publish path.
var publishNames = map[string]bool{
	"Swap":                  true,
	"SwapAll":               true,
	"publish":               true,
	"Retrain":               true,
	"RetrainIncremental":    true,
	"RetrainAll":            true,
	"RetrainIncrementalAll": true,
}

// publishRecvs are the engine types carrying the publish surface.
var publishRecvs = map[string]bool{
	"Engine":         true,
	"Sharded":        true,
	"Guarded":        true,
	"GuardedSharded": true,
}

// enginePkgs are the package-path suffixes where the publish surface
// lives.
var enginePkgs = []string{"internal/engine"}

func run(pass *analysis.Pass) error {
	var funcs []*types.Func
	for _, f := range pass.Graph.Funcs() {
		if f.Pkg() == pass.Pkg {
			funcs = append(funcs, f)
		}
	}

	// Bottom-up: which functions in this package reach the publish
	// surface. The engine package's own methods are left out — publish
	// calling the hooks it runs is the mechanism, not a violation —
	// but everything above them taints normally.
	publishes := make(map[*types.Func]string)
	ownSurface := isEnginePkg(pass.Pkg.Path())
	if !ownSurface {
		for changed := true; changed; {
			changed = false
			for _, f := range funcs {
				if publishes[f] != "" {
					continue
				}
				for _, site := range pass.Graph.CallSites(f) {
					if callee := reaches(pass, publishes, site.Callee); callee != "" {
						publishes[f] = callee
						changed = true
						break
					}
				}
			}
		}
		for _, f := range funcs {
			if callee := publishes[f]; callee != "" {
				pass.ExportObjectFact(f, &publishesFact{Callee: callee})
			}
		}
	}

	// Top-down: inspect every hook registration in this package.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && hookFields[key.Name] {
						checkHookExpr(pass, publishes, kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !hookFields[sel.Sel.Name] || i >= len(n.Rhs) {
						continue
					}
					checkHookExpr(pass, publishes, n.Rhs[i])
				}
			}
			return true
		})
	}
	return nil
}

// checkHookExpr walks an expression registered as a hook (or a slice
// of hooks, or an append producing one) and flags any hook that
// re-enters the publish path.
func checkHookExpr(pass *analysis.Pass, publishes map[*types.Func]string, expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkHookBody(pass, publishes, n)
			return false
		case *ast.Ident, *ast.SelectorExpr:
			fn, ok := funcValue(pass, n.(ast.Expr))
			if !ok {
				return true
			}
			if pass.IsTestFile(n.Pos()) || pass.ExemptedAt(n.Pos(), "reentrant") {
				return false
			}
			if callee := reaches(pass, publishes, fn); callee != "" {
				pass.Reportf(n.Pos(), "publish hook re-enters the publish path: %s reaches %s; a hook runs inside publish and must not swap or retrain — restructure it or annotate //sbvet:reentrant with a reason", fn.FullName(), callee)
			}
			return false
		}
		return true
	})
}

// checkHookBody flags publish-path calls inside a literal hook, at the
// offending call site.
func checkHookBody(pass *analysis.Pass, publishes map[*types.Func]string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if pass.IsTestFile(call.Pos()) || pass.ExemptedAt(call.Pos(), "reentrant") {
			return true
		}
		if target := reaches(pass, publishes, callee); target != "" {
			pass.Reportf(call.Pos(), "publish hook re-enters the publish path: calls %s; a hook runs inside publish and must not swap or retrain — restructure it or annotate //sbvet:reentrant with a reason", target)
		}
		return true
	})
}

// reaches reports the publish-surface method a call to callee reaches
// ("" for none): the callee is a publish method itself, is locally
// known to publish, carries an imported publishesFact, or is an
// interface method one of whose implementations publishes.
func reaches(pass *analysis.Pass, publishes map[*types.Func]string, callee *types.Func) string {
	if callee == nil {
		return ""
	}
	if isPublishMethod(callee) {
		return callee.FullName()
	}
	if c := publishes[callee]; c != "" {
		return c
	}
	var pf publishesFact
	if pass.ImportObjectFact(callee, &pf) {
		return pf.Callee
	}
	if pass.Graph.IsInterfaceMethod(callee) {
		for _, impl := range pass.Graph.Implementations(callee) {
			if c := publishes[impl]; c != "" {
				return c
			}
			if pass.ImportObjectFact(impl, &pf) {
				return pf.Callee
			}
		}
	}
	return ""
}

// isPublishMethod reports whether fn is a method on the engine's
// publish surface.
func isPublishMethod(fn *types.Func) bool {
	if !publishNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return publishRecvs[named.Obj().Name()] && isEnginePkg(named.Obj().Pkg().Path())
}

// funcValue resolves an identifier or selector used as a value to the
// *types.Func it denotes, if any.
func funcValue(pass *analysis.Pass, expr ast.Expr) (*types.Func, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// isEnginePkg reports whether pkgPath is the engine package.
func isEnginePkg(pkgPath string) bool {
	for _, entry := range enginePkgs {
		if pkgPath == entry || strings.HasSuffix(pkgPath, "/"+entry) {
			return true
		}
	}
	return false
}
