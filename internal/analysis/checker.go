package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one positioned diagnostic, resolved for printing.
type Finding struct {
	Position token.Position
	Category string
	Message  string
}

// String formats the finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Category)
}

// Check runs every analyzer over every package matching patterns
// under the loader's root and returns the findings sorted by
// position. A package that fails to load or type-check yields one
// finding per error under the "sbvet" category — the suite never
// reports a broken build as clean.
func Check(l *Loader, analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	paths, err := l.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	var findings []Finding
	for _, path := range paths {
		pkg, err := l.LoadImport(path)
		if err != nil {
			findings = append(findings, Finding{Category: "sbvet", Message: err.Error()})
			continue
		}
		findings = append(findings, CheckPackage(pkg, analyzers)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// CheckPackage runs the analyzers over one loaded package.
func CheckPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	report := func(d Diagnostic) {
		findings = append(findings, Finding{
			Position: pkg.Fset.Position(d.Pos),
			Category: d.Category,
			Message:  d.Message,
		})
	}
	for _, err := range pkg.TypeErrors {
		findings = append(findings, Finding{Category: "sbvet", Message: fmt.Sprintf("%s: type error: %v", pkg.PkgPath, err)})
	}
	// Unknown or malformed directives are findings themselves: a typo
	// like //sbvet:drian must not silently waive nothing.
	for _, f := range pkg.Files {
		for _, d := range Directives(pkg.Fset, f) {
			if _, ok := KnownDirectives[d.Name]; !ok {
				report(Diagnostic{
					Pos:      d.Pos,
					Category: "sbvet",
					Message:  fmt.Sprintf("unknown directive //sbvet:%s (known: drain, nostat, reload, retokenize)", d.Name),
				})
			}
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    report,
		}
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{Category: a.Name, Message: fmt.Sprintf("%s: analyzer error: %v", pkg.PkgPath, err)})
		}
	}
	return findings
}
