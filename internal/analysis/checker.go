package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one positioned diagnostic, resolved for printing.
type Finding struct {
	Position token.Position
	Category string
	Message  string
}

// String formats the finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Category)
}

// SortFindings orders findings deterministically — file, line, column,
// analyzer name, message — so CI diffs, -json output, and self-check
// failure dumps are stable across runs regardless of analyzer
// scheduling.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
}

// Checker runs a fixed analyzer list over a sequence of packages with
// shared interprocedural state: one call graph accumulating every
// package added, and one fact store carrying analyzer facts from
// dependency passes to dependent passes. The standalone driver feeds
// it the whole module; the unitchecker driver feeds it one package
// with the fact store pre-populated from the dependencies' vetx files.
type Checker struct {
	analyzers []*Analyzer
	// Graph is the shared call graph. Add every package of the load
	// closure (AddPackage) before the first RunPackage so passes see
	// the module-wide view.
	Graph *CallGraph
	// Facts is the shared fact store.
	Facts *FactStore
}

// NewChecker returns a checker for the analyzer list. Fact types
// declared by the analyzers are registered for driver serialization.
func NewChecker(analyzers []*Analyzer) *Checker {
	RegisterFactTypes(analyzers)
	return &Checker{
		analyzers: analyzers,
		Graph:     NewCallGraph(),
		Facts:     NewFactStore(),
	}
}

// AddPackage indexes pkg into the shared call graph without running
// any analyzer.
func (c *Checker) AddPackage(pkg *Package) { c.Graph.AddPackage(pkg) }

// Check runs every analyzer over every package matching patterns
// under the loader's root and returns the findings sorted by position
// and analyzer name. Packages are analyzed in dependency order —
// imports before importers — with unmatched internal dependencies
// analyzed facts-only (their findings are discarded), so a pattern
// like ./internal/... still sees facts from the module root's other
// packages it imports. A package that fails to load or type-check
// yields one finding per error under the "sbvet" category — the suite
// never reports a broken build as clean.
func Check(l *Loader, analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	paths, err := l.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	var findings []Finding
	matched := make(map[string]bool)
	var loaded []*Package
	for _, path := range paths {
		pkg, err := l.LoadImport(path)
		if err != nil {
			findings = append(findings, Finding{Category: "sbvet", Message: err.Error()})
			continue
		}
		matched[path] = true
		loaded = append(loaded, pkg)
	}

	c := NewChecker(analyzers)
	// Index the whole load closure — matched packages and every
	// internal dependency their type-checking pulled in — before any
	// analyzer runs, so every pass sees the module-wide call graph.
	for _, pkg := range l.LoadedPackages() {
		c.AddPackage(pkg)
	}

	// Analyze dependencies first so facts exist when importers query
	// them.
	analyzed := make(map[string]bool)
	var run func(pkg *Package)
	run = func(pkg *Package) {
		if analyzed[pkg.PkgPath] {
			return
		}
		analyzed[pkg.PkgPath] = true
		if pkg.Types != nil {
			for _, imp := range pkg.Types.Imports() {
				if dep := l.Loaded(imp.Path()); dep != nil {
					run(dep)
				}
			}
		}
		fs := c.RunPackage(pkg)
		if matched[pkg.PkgPath] {
			findings = append(findings, fs...)
		}
	}
	for _, pkg := range loaded {
		run(pkg)
	}
	SortFindings(findings)
	return findings, nil
}

// RunPackage runs the checker's analyzers over one package, sharing
// the accumulated call graph and fact store, and returns that
// package's findings sorted.
func (c *Checker) RunPackage(pkg *Package) []Finding {
	var findings []Finding
	report := func(d Diagnostic) {
		findings = append(findings, Finding{
			Position: pkg.Fset.Position(d.Pos),
			Category: d.Category,
			Message:  d.Message,
		})
	}
	for _, err := range pkg.TypeErrors {
		findings = append(findings, Finding{Category: "sbvet", Message: fmt.Sprintf("%s: type error: %v", pkg.PkgPath, err)})
	}
	// Unknown or malformed directives are findings themselves: a typo
	// like //sbvet:drian must not silently waive nothing.
	for _, f := range pkg.Files {
		for _, d := range Directives(pkg.Fset, f) {
			if _, ok := KnownDirectives[d.Name]; !ok {
				report(Diagnostic{
					Pos:      d.Pos,
					Category: "sbvet",
					Message:  fmt.Sprintf("unknown directive //sbvet:%s (known: %s)", d.Name, strings.Join(directiveNames(), ", ")),
				})
			}
		}
	}
	for _, a := range c.analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    report,
			Graph:     c.Graph,
		}
		bindFacts(pass, c.Facts)
		if err := a.Run(pass); err != nil {
			findings = append(findings, Finding{Category: a.Name, Message: fmt.Sprintf("%s: analyzer error: %v", pkg.PkgPath, err)})
		}
	}
	SortFindings(findings)
	return findings
}

// CheckPackage runs the analyzers over one loaded package in
// isolation: a fresh checker whose call graph holds only this package
// and whose fact store starts empty. Multi-package analysis goes
// through Check or an explicit Checker.
func CheckPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	c := NewChecker(analyzers)
	c.AddPackage(pkg)
	return c.RunPackage(pkg)
}

// directiveNames returns the known directive names, sorted.
func directiveNames() []string {
	names := make([]string, 0, len(KnownDirectives))
	for name := range KnownDirectives {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
