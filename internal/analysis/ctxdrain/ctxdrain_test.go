package ctxdrain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxdrain"
)

// TestFixtures proves the analyzer catches the cancellation-swallowing
// drain bug class (including the goroutine-closure variant where the
// PR 4 bug actually lived) and stays quiet on for/select loops,
// ctx-free drains, non-channel ranges, and the //sbvet:drain escape
// hatch.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdrain.Analyzer, "a")
}
