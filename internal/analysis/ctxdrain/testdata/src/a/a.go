// Fixture for ctxdrain: channel consumption in context-aware
// functions. The want-annotated loops are the PR 4
// Sharded.LearnStream bug class — a range that never observes
// ctx.Done(), so a cancelled caller blocks until the channel closes.
package a

import "context"

// Bad is the bug: ctx is accepted, then ignored for the whole drain.
func Bad(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch { // want `for-range over a channel in a context-aware function never observes ctx\.Done`
		total += v
	}
	return total
}

// GoodSelect is the sanctioned pattern: every receive races
// ctx.Done().
func GoodSelect(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

// InnerSelect polls cancellation between receives; blocking receives
// can still stall, but the loop is cancellation-aware, which is the
// contract the analyzer enforces.
func InnerSelect(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch {
		total += v
		select {
		case <-ctx.Done():
			return total
		default:
		}
	}
	return total
}

// Goroutine is where the original bug actually lived: the range hides
// inside a closure that captures the caller's ctx.
func Goroutine(ctx context.Context, ch <-chan int) {
	go func() {
		for range ch { // want `for-range over a channel in a context-aware function never observes ctx\.Done`
		}
	}()
}

// OwnCtx declares its own context parameter, so the closure is its
// own unit — and being cancellation-aware, it is clean.
func OwnCtx(ctx context.Context, ch <-chan int) func(context.Context) int {
	return func(inner context.Context) int {
		for {
			select {
			case <-inner.Done():
				return 0
			case _, ok := <-ch:
				if !ok {
					return 0
				}
			}
		}
	}
}

// NoCtx makes no cancellation promise; draining to close is its
// documented contract (the engine's drainUntil shape).
func NoCtx(ch <-chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// NotAChannel ranges over a slice; only channel ranges block
// indefinitely.
func NotAChannel(ctx context.Context, xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Waived shows the escape hatch: an annotated intentional drain.
func Waived(ctx context.Context, ch <-chan int) {
	//sbvet:drain fixture: intentional drain-to-close, must ignore cancellation
	for range ch {
	}
}
