// Package ctxdrain enforces the LearnStream drain contract: inside a
// function that receives a context.Context, a for-range over a
// channel is a cancellation bug waiting to happen — the loop blocks
// in the receive and never observes ctx.Done(), so a cancelled caller
// is ignored until the channel happens to close (exactly the PR 4
// Sharded.LearnStream bug, which -race reruns only caught by luck).
//
// The analyzer flags such loops, including loops in goroutine
// closures nested inside a context-aware function (where the original
// bug lived), unless the loop body itself selects on ctx.Done()
// between receives, or the loop carries a //sbvet:drain directive
// declaring it an intentional drain-to-close that must ignore
// cancellation (the engine's drainUntil is the canonical example).
package ctxdrain

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxdrain check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdrain",
	Doc:  "flag for-range over a channel in context-aware functions, where cancellation would be silently ignored",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasContextParam(pass, ft) {
				return true
			}
			checkBody(pass, body)
			// The walk continues into nested functions; checkBody
			// itself stops at closures that declare their own
			// context parameter (they are re-checked as units).
			return true
		})
	}
	return nil
}

// hasContextParam reports whether the function type declares a
// context.Context parameter.
func hasContextParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[fld.Type]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkBody flags channel range loops in body and in nested closures
// that do not declare their own context parameter (those capture the
// outer context and inherit its cancellation obligation).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A closure with its own ctx param is its own unit; run
			// re-checks it with that context.
			if hasContextParam(pass, s.Type) {
				return false
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[s.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			if pass.ExemptedAt(s.For, "drain") || selectsOnDone(pass, s.Body) {
				return true
			}
			pass.Reportf(s.For, "for-range over a channel in a context-aware function never observes ctx.Done(); a cancelled caller blocks until the channel closes (the LearnStream drain bug class) — use for/select with a ctx.Done() case or annotate //sbvet:drain")
		}
		return true
	})
}

// selectsOnDone reports whether body contains a select with a
// <-ctx.Done() case — the loop is then at least cancellation-aware
// between receives.
func selectsOnDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			return true
		}
		var expr ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			expr = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				expr = s.Rhs[0]
			}
		}
		un, ok := expr.(*ast.UnaryExpr)
		if !ok {
			return true
		}
		call, ok := un.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && analysis.IsContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}
