// Package admitflow proves the guarded-training invariant
// interprocedurally: outside the packages that own training, no call
// path may reach the serving engine's training surface — or a
// backend's raw learners — without passing through the admission
// guard.
//
// The paper's defense (§5, RONI) only works if every training path is
// vetted. PR 5 wired admission through engine.Guarded, but nothing
// stopped a future call site from training an Engine directly and
// silently reopening the poisoning hole; the PR 6 analyzers are
// intraprocedural and cannot see a sink two calls away. This analyzer
// walks the call graph:
//
//   - sinks are the engine-level training surface — methods named
//     LearnStream / Retrain / RetrainIncremental / RetrainAll /
//     RetrainIncrementalAll / Swap / SwapAll on the engine package's
//     Engine and Sharded types — and the backend-level learners,
//     any method shaped like Learn(x, bool) or
//     LearnWeighted(x, bool, int), including the Classifier
//     interface's own (so dispatch through the declared interface is
//     caught, not just concrete calls);
//   - guards stop the search: methods on Guarded / GuardedSharded
//     (every training path through them is vetted by construction)
//     and functions that vet inline — a direct call to an Admitter's
//     Admit or a guard's Vet;
//   - taint flows bottom-up: a function with an unwaived sink call is
//     itself an unvetted training path, and so is anything that calls
//     it, across packages via exported trainsFact facts (calls inside
//     function literals are attributed to the enclosing function);
//   - interface dispatch resolves to known implementations: a locally
//     declared interface whose method set is satisfied by the engine
//     (a front-end abstracting "something I can Swap") does not
//     launder the path — the dispatched call is flagged as reaching
//     the concrete sink.
//
// Within the owner packages — internal/engine and internal/admission
// (the guard itself), internal/sbayes and internal/graham (the
// backends ARE the learners), internal/core and internal/eval (the
// clone-and-probe measurement layer and the sanctioned corpus-training
// primitives, which train throwaway classifiers off the serving path)
// — training is the package's job and nothing is reported or tainted.
// Everywhere else a diagnostic fires at every call site on an unvetted
// path: the direct sink call and each hop above it, so the report
// points at both the hole and the door to it.
//
// A //sbvet:unguarded directive (with a reason) waives one call site
// and sanitizes its function for callers: the annotation asserts this
// unguarded training is intentional — the scenario simulator's
// unguarded baseline arm, an example demonstrating the attack — so
// paths through it are deliberate, not leaks. _test.go files are
// exempt: tests train fixtures directly as setup.
package admitflow

import (
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the admitflow check.
var Analyzer = &analysis.Analyzer{
	Name:      "admitflow",
	Doc:       "flag call paths that reach the engine's training surface without passing through the admission guard",
	Run:       run,
	FactTypes: []analysis.Fact{(*trainsFact)(nil)},
}

// trainsFact marks an exported function as an unvetted training path:
// calling it (transitively) trains without admission. Sink names the
// training method the path reaches, for the diagnostic.
type trainsFact struct {
	Sink string
}

// AFact marks trainsFact as a fact type.
func (*trainsFact) AFact() {}

// Owners lists the package-path suffixes that own training: no
// diagnostics inside them, and their functions never taint callers —
// ownership is the sanction. A package matches when its import path
// equals an entry or ends in "/"+entry.
var Owners = []string{
	"internal/engine",
	"internal/admission",
	"internal/sbayes",
	"internal/graham",
	"internal/core",
	"internal/eval",
}

// engineOwners is the subset whose Engine/Sharded types carry the
// serving-level sink methods.
var engineOwners = []string{"internal/engine"}

// engineSinkNames is the serving engine's training surface.
var engineSinkNames = map[string]bool{
	"LearnStream":           true,
	"Retrain":               true,
	"RetrainIncremental":    true,
	"RetrainAll":            true,
	"RetrainIncrementalAll": true,
	"Swap":                  true,
	"SwapAll":               true,
}

func run(pass *analysis.Pass) error {
	if matchesSuffix(pass.Pkg.Path(), Owners) {
		return nil
	}

	var funcs []*types.Func
	for _, f := range pass.Graph.Funcs() {
		if f.Pkg() == pass.Pkg {
			funcs = append(funcs, f)
		}
	}

	guard := make(map[*types.Func]bool, len(funcs))
	for _, f := range funcs {
		guard[f] = isGuard(pass.Graph, f)
	}

	// Bottom-up taint: a function is an unvetted training path if any
	// unwaived call site reaches a sink, directly or through an
	// already-tainted callee (local fixpoint; cross-package through
	// imported facts). Waived sites sanitize: an annotated function is
	// intentional, so its callers are not flagged through it.
	tainted := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if guard[f] || tainted[f] != "" {
				continue
			}
			for _, site := range pass.Graph.CallSites(f) {
				if pass.IsTestFile(site.Pos) || pass.ExemptedAt(site.Pos, "unguarded") {
					continue
				}
				if sink := calleeSink(pass, tainted, site.Callee); sink != "" {
					tainted[f] = sink
					changed = true
					break
				}
			}
		}
	}

	for _, f := range funcs {
		if guard[f] {
			continue
		}
		for _, site := range pass.Graph.CallSites(f) {
			if pass.IsTestFile(site.Pos) || pass.ExemptedAt(site.Pos, "unguarded") {
				continue
			}
			if sink := sinkName(site.Callee); sink != "" {
				pass.Reportf(site.Pos, "unvetted training path: direct call to %s outside an admission guard; route it through Guarded/Admitter or annotate //sbvet:unguarded with a reason", sink)
				continue
			}
			if sink := calleeSink(pass, tainted, site.Callee); sink != "" {
				pass.Reportf(site.Pos, "unvetted training path: call to %s reaches %s without passing an admission guard; route the path through Guarded/Admitter or annotate //sbvet:unguarded with a reason", site.Callee.FullName(), sink)
			}
		}
	}

	for _, f := range funcs {
		if sink := tainted[f]; sink != "" {
			pass.ExportObjectFact(f, &trainsFact{Sink: sink})
		}
	}
	return nil
}

// calleeSink reports the training sink a call to callee reaches
// unvetted, or "" for a clean callee. It checks, in order: the callee
// is itself a sink; the callee is locally tainted; an imported
// trainsFact marks it; or it is an interface method one of whose known
// implementations is a sink or an unvetted training path (the
// call-graph resolution through declared interface types — including
// a locally declared interface satisfied by the engine itself).
func calleeSink(pass *analysis.Pass, tainted map[*types.Func]string, callee *types.Func) string {
	if callee == nil {
		return ""
	}
	if sink := sinkName(callee); sink != "" {
		return sink
	}
	if sink := tainted[callee]; sink != "" {
		return sink
	}
	var tf trainsFact
	if pass.ImportObjectFact(callee, &tf) {
		return tf.Sink
	}
	if pass.Graph.IsInterfaceMethod(callee) {
		for _, impl := range pass.Graph.Implementations(callee) {
			// The implementation may itself BE a sink — a locally declared
			// interface over the engine's training surface (a serving
			// front-end abstracting "something I can Swap/LearnStream")
			// resolves here, so wrapping the engine in an interface cannot
			// launder an unvetted training path.
			if sink := sinkName(impl); sink != "" {
				return sink
			}
			if sink := tainted[impl]; sink != "" {
				return sink
			}
			if pass.ImportObjectFact(impl, &tf) {
				return tf.Sink
			}
		}
	}
	return ""
}

// sinkName reports fn's full name if it is a training sink, else "".
func sinkName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch name := fn.Name(); {
	case engineSinkNames[name]:
		recv, pkg := recvNamed(sig)
		if (recv == "Engine" || recv == "Sharded") && pkg != nil && matchesSuffix(pkg.Path(), engineOwners) {
			return fn.FullName()
		}
	case name == "Learn":
		if p := sig.Params(); p.Len() == 2 && isBool(p.At(1).Type()) {
			return fn.FullName()
		}
	case name == "LearnWeighted":
		if p := sig.Params(); p.Len() == 3 && isBool(p.At(1).Type()) && isInt(p.At(2).Type()) {
			return fn.FullName()
		}
	}
	return ""
}

// isGuard reports whether f's training calls are vetted by
// construction: a method on Guarded/GuardedSharded, or a function
// that vets inline (a direct call to an Admitter's Admit or a guard's
// Vet).
func isGuard(g *analysis.CallGraph, f *types.Func) bool {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv, _ := recvNamed(sig); recv == "Guarded" || recv == "GuardedSharded" {
			return true
		}
	}
	for _, site := range g.CallSites(f) {
		if site.Callee == nil {
			continue
		}
		switch site.Callee.Name() {
		case "Admit":
			return true
		case "Vet":
			if sig, ok := site.Callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if recv, _ := recvNamed(sig); recv == "Guarded" || recv == "GuardedSharded" {
					return true
				}
			}
		}
	}
	return false
}

// recvNamed returns the name and package of a method's receiver's
// named type, stripping one pointer.
func recvNamed(sig *types.Signature) (string, *types.Package) {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name(), named.Obj().Pkg()
	}
	return "", nil
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// matchesSuffix reports whether pkgPath equals an entry or ends in
// "/"+entry.
func matchesSuffix(pkgPath string, entries []string) bool {
	for _, entry := range entries {
		if pkgPath == entry || strings.HasSuffix(pkgPath, "/"+entry) {
			return true
		}
	}
	return false
}
