package admitflow_test

import (
	"testing"

	"repro/internal/analysis/admitflow"
	"repro/internal/analysis/analysistest"
)

func TestAdmitflow(t *testing.T) {
	analysistest.Run(t, "testdata", admitflow.Analyzer,
		"internal/engine", "deployutil", "deploy")
}
