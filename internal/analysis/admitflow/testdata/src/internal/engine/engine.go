// Package engine is a fixture mirror of the real serving layer: the
// Engine training surface (sinks), the Guarded wrapper and Admitter
// contract (guards), and a backend Classifier interface. Its path ends
// in internal/engine, so it is an owner package — nothing in here is
// diagnosed even though it trains freely.
package engine

// Message stands in for mail.Message.
type Message struct{ Body string }

// Decision is an admission outcome.
type Decision struct{ Accept bool }

// Admitter vets training candidates.
type Admitter interface {
	Admit(m *Message, spam bool) Decision
}

// Classifier is the backend contract; Learn/LearnWeighted are
// backend-level sinks.
type Classifier interface {
	Learn(m *Message, spam bool)
	LearnWeighted(m *Message, spam bool, weight int)
}

// Engine serves a classifier; its training methods are the
// engine-level sinks.
type Engine struct{ clf Classifier }

// Retrain rebuilds the serving classifier. Owner package: not
// diagnosed here.
func (e *Engine) Retrain(train []*Message) uint64 {
	for _, m := range train {
		e.clf.Learn(m, true)
	}
	return 1
}

// Swap publishes a replacement.
func (e *Engine) Swap(clf Classifier) uint64 {
	e.clf = clf
	return 1
}

// LearnStream opens a bulk-training stream.
func (e *Engine) LearnStream() chan<- *Message { return make(chan *Message) }

// Guarded wraps an Engine with admission control; its methods are
// guards — calling them is the sanctioned training path.
type Guarded struct {
	eng   *Engine
	admit Admitter
}

// NewGuarded wraps e.
func NewGuarded(e *Engine, admit Admitter) *Guarded {
	return &Guarded{eng: e, admit: admit}
}

// Vet runs one candidate through the admitter.
func (g *Guarded) Vet(m *Message, spam bool) Decision { return g.admit.Admit(m, spam) }

// Retrain vets then trains.
func (g *Guarded) Retrain(train []*Message) uint64 {
	var kept []*Message
	for _, m := range train {
		if g.admit.Admit(m, true).Accept {
			kept = append(kept, m)
		}
	}
	return g.eng.Retrain(kept)
}

// Swap publishes through the hooks.
func (g *Guarded) Swap(clf Classifier) uint64 { return g.eng.Swap(clf) }
