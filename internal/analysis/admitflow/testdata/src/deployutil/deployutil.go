// Package deployutil is a non-owner helper package: its exported
// Rebuild trains an Engine directly, so it both gets a diagnostic at
// the sink call and exports a trainsFact that flags its callers in
// other packages — the cross-package leg of the fixture.
package deployutil

import "internal/engine"

// Rebuild trains the serving engine with no admission guard; callers
// anywhere inherit the taint.
func Rebuild(e *engine.Engine, train []*engine.Message) {
	e.Retrain(train) // want `unvetted training path: direct call to \(\*internal/engine\.Engine\)\.Retrain`
}

// RebuildVetted is the guarded twin: it routes through Guarded, so
// neither this call nor its callers are flagged.
func RebuildVetted(g *engine.Guarded, train []*engine.Message) {
	g.Retrain(train)
}

// InjectAnnotated trains deliberately — the demonstration-attack
// pattern — and says so; the directive sanitizes it for callers.
func InjectAnnotated(clf engine.Classifier, m *engine.Message) {
	//sbvet:unguarded fixture: deliberate poison injection, the attack being demonstrated
	clf.Learn(m, false)
}
