// Package deploy is the checked surface: a deployment that must route
// all training through the admission guard. The fixture proves the
// acceptance case — an unguarded Retrain two hops from the entry point
// is flagged at every hop, while the Guarded-routed twin is clean —
// plus the backend-level sinks, interface dispatch, inline vetting,
// and the //sbvet:unguarded waiver.
package deploy

import (
	"internal/engine"

	"deployutil"
)

// entry is two hops above the sink: entry -> helper -> Engine.Retrain.
// The call below never mentions training, but the path reaches it.
func entry(e *engine.Engine, train []*engine.Message) {
	helper(e, train) // want `unvetted training path: call to deploy\.helper reaches \(\*internal/engine\.Engine\)\.Retrain`
}

// helper is one hop above the sink.
func helper(e *engine.Engine, train []*engine.Message) {
	e.Retrain(train) // want `unvetted training path: direct call to \(\*internal/engine\.Engine\)\.Retrain`
}

// entryGuarded is the twin routed through Guarded: clean at every hop.
func entryGuarded(g *engine.Guarded, train []*engine.Message) {
	helperGuarded(g, train)
}

// helperGuarded trains through the guard.
func helperGuarded(g *engine.Guarded, train []*engine.Message) {
	g.Retrain(train)
}

// crossPackage inherits deployutil.Rebuild's taint through its
// exported fact; the guarded twin does not.
func crossPackage(e *engine.Engine, g *engine.Guarded, train []*engine.Message) {
	deployutil.Rebuild(e, train) // want `unvetted training path: call to deployutil\.Rebuild reaches \(\*internal/engine\.Engine\)\.Retrain`
	deployutil.RebuildVetted(g, train)
	deployutil.InjectAnnotated(nil, nil)
}

// backendDirect hits the backend-level sinks: the interface methods
// and a stream.
func backendDirect(e *engine.Engine, clf engine.Classifier, m *engine.Message) {
	clf.Learn(m, true)              // want `unvetted training path: direct call to \(internal/engine\.Classifier\)\.Learn`
	clf.LearnWeighted(m, true, 10)  // want `unvetted training path: direct call to \(internal/engine\.Classifier\)\.LearnWeighted`
	in := e.LearnStream()           // want `unvetted training path: direct call to \(\*internal/engine\.Engine\)\.LearnStream`
	in <- m
}

// vetsInline calls the Admitter itself before training: a guard, so
// its training call is sanctioned.
func vetsInline(e *engine.Engine, admit engine.Admitter, train []*engine.Message) {
	var kept []*engine.Message
	for _, m := range train {
		if admit.Admit(m, true).Accept {
			kept = append(kept, m)
		}
	}
	e.Retrain(kept)
}

// waived trains unguarded on purpose and says so; the directive also
// sanitizes it for waivedCaller below.
func waived(e *engine.Engine, train []*engine.Message) {
	e.Retrain(train) //sbvet:unguarded fixture: the deliberately unguarded baseline arm
}

// waivedCaller is clean: the annotated site does not taint its
// function.
func waivedCaller(e *engine.Engine, train []*engine.Message) {
	waived(e, train)
}

// trainer is a deploy-declared abstraction over "something that can
// publish a classifier" — the shape a network front-end is tempted to
// introduce. Its known implementations are the raw Engine (a sink)
// and Guarded (a guard); the analyzer resolves the dispatch to the
// concrete sink, so wrapping the engine in a local interface does not
// launder the training path.
type trainer interface {
	Swap(clf engine.Classifier) uint64
}

// launderedSwap dispatches through the interface: still flagged,
// because one resolved implementation is Engine.Swap.
func launderedSwap(tr trainer, clf engine.Classifier) {
	tr.Swap(clf) // want `unvetted training path: call to \(deploy\.trainer\)\.Swap reaches \(\*internal/engine\.Engine\)\.Swap`
}

// launderedEntry sits a hop above the laundered dispatch and inherits
// its taint.
func launderedEntry(tr trainer, clf engine.Classifier) {
	launderedSwap(tr, clf) // want `unvetted training path: call to deploy\.launderedSwap reaches \(\*internal/engine\.Engine\)\.Swap`
}

// closureBuilder trains inside a function literal; the call is
// attributed to this function, so the site is still flagged.
func closureBuilder(e *engine.Engine, train []*engine.Message) {
	go func() {
		e.Retrain(train) // want `unvetted training path: direct call to \(\*internal/engine\.Engine\)\.Retrain`
	}()
}
