package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicTypeName returns the type name ("Pointer", "Uint64", ...) if
// t (after stripping pointers) is a named type from sync/atomic, else
// "".
func AtomicTypeName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		// Instantiated generics (atomic.Pointer[T]) still present as
		// *types.Named; aliases resolve via Unalias.
		if a, ok := types.Unalias(t).(*types.Named); ok {
			named = a
		} else {
			return ""
		}
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return obj.Name()
}

// IsAtomicCounter reports whether t is one of sync/atomic's integer
// counter types, or an array of them (the engine's per-label counter
// array). Pointer, Value, and Bool are not counters: they carry
// state, not tallies, so statscomplete leaves them alone.
func IsAtomicCounter(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	switch AtomicTypeName(t) {
	case "Int32", "Int64", "Uint32", "Uint64":
		return true
	}
	return false
}

// IsObsMetric reports whether t is one of the obs package's stored
// instruments — Counter, Gauge, or Histogram — behind any pointer, or
// an array of them (the engine's per-label counter array). These are
// the registered-metric analogue of the atomic counters: a struct
// field holding one is accounting state its snapshot method is
// obligated to surface. Tracer, Registry, and the func-sampled
// instruments carry no stored value, so they are not metrics here.
func IsObsMetric(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if path := obj.Pkg().Path(); path != "obs" && !strings.HasSuffix(path, "/obs") {
		return false
	}
	switch obj.Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

// MethodCallee returns the *types.Func a selector call resolves to if
// it is a method value call, else nil.
func MethodCallee(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	fn, _ := s.Obj().(*types.Func)
	return fn
}

// WalkSkipFuncLit walks n in depth-first order like ast.Inspect but
// does not descend into function literals, so one function body can
// be analyzed as a unit with nested closures treated as their own
// bodies.
func WalkSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}

// LoopDependent reports whether expr mentions any identifier whose
// declaration lies inside loop — i.e. whether the expression can name
// a different object on each iteration (a range variable, a loop-
// local). Per-iteration reads of per-item state are legitimate; only
// loop-invariant re-reads are torn-read bugs.
func LoopDependent(info *types.Info, loop ast.Node, expr ast.Expr) bool {
	dependent := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() {
			dependent = true
		}
		return true
	})
	return dependent
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
