package lexicon

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/textgen"
)

func smallUniverse() *textgen.Universe {
	return textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
}

func TestNewDeduplicates(t *testing.T) {
	l := New("test", []string{"bb b", "aaa", "bb b", "", "ccc"})
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if !l.Contains("aaa") || l.Contains("") || l.Contains("zzz") {
		t.Error("Contains misbehaved")
	}
	if l.Words()[0] != "bb b" {
		t.Error("order not preserved")
	}
	if l.Name() != "test" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestOverlap(t *testing.T) {
	a := New("a", []string{"x", "y", "z"})
	b := New("b", []string{"y", "z", "w", "v"})
	if got := a.Overlap(b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if got := b.Overlap(a); got != 2 {
		t.Errorf("reverse Overlap = %d, want 2", got)
	}
	if got := a.Overlap(New("empty", nil)); got != 0 {
		t.Errorf("empty Overlap = %d", got)
	}
}

func TestCoverage(t *testing.T) {
	l := New("l", []string{"aaa", "bbb"})
	toks := []string{"aaa", "aaa", "ccc", "bbb"}
	if got := l.Coverage(toks); got != 0.75 {
		t.Errorf("Coverage = %v, want 0.75", got)
	}
	if got := l.Coverage(nil); got != 0 {
		t.Errorf("empty Coverage = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := New("rt", []string{"one", "two", "three"})
	var buf strings.Builder
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load("rt", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || !got.Contains("two") {
		t.Errorf("round trip = %v", got.Words())
	}
	if got.Words()[0] != "one" {
		t.Error("order lost")
	}
}

func TestAspellComposition(t *testing.T) {
	u := smallUniverse()
	asp := Aspell(u)
	wantLen := u.SegmentSize(textgen.SegCommon) + u.SegmentSize(textgen.SegStandard) + u.SegmentSize(textgen.SegFormal)
	if asp.Len() != wantLen {
		t.Errorf("aspell size = %d, want %d", asp.Len(), wantLen)
	}
	// Contains standard but not colloquial/spam/personal words.
	if !asp.Contains(u.Words(textgen.SegStandard)[0]) {
		t.Error("aspell missing standard word")
	}
	if !asp.Contains(u.Words(textgen.SegFormal)[0]) {
		t.Error("aspell missing formal word")
	}
	for _, seg := range []textgen.Segment{textgen.SegColloquial, textgen.SegSpam, textgen.SegPersonal} {
		if asp.Contains(u.Words(seg)[0]) {
			t.Errorf("aspell contains %v word", seg)
		}
	}
	if asp.Name() != "aspell" {
		t.Errorf("name = %q", asp.Name())
	}
}

func TestAspellDefaultUniverseSize(t *testing.T) {
	if testing.Short() {
		t.Skip("default universe build in -short mode")
	}
	u := textgen.MustUniverse(textgen.DefaultUniverseConfig())
	if got := Aspell(u).Len(); got != 98568 {
		t.Errorf("default aspell size = %d, want 98568 (GNU aspell 6.0-0)", got)
	}
}

func TestOptimal(t *testing.T) {
	u := smallUniverse()
	opt := Optimal(u)
	if opt.Len() != u.Size() {
		t.Errorf("optimal size = %d, want %d", opt.Len(), u.Size())
	}
	for _, seg := range textgen.Segments() {
		if !opt.Contains(u.Words(seg)[0]) {
			t.Errorf("optimal missing %v word", seg)
		}
	}
}

func TestUsenetTopK(t *testing.T) {
	tokens := []string{"ccc", "aaa", "bbb", "aaa", "ccc", "aaa", "ddd"}
	l := UsenetTopK(tokens, 2)
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Words()[0] != "aaa" || l.Words()[1] != "ccc" {
		t.Errorf("top-2 = %v", l.Words())
	}
	// k beyond vocabulary size.
	if got := UsenetTopK(tokens, 100).Len(); got != 4 {
		t.Errorf("over-k Len = %d, want 4", got)
	}
}

func TestUsenetTopKTieBreak(t *testing.T) {
	a := UsenetTopK([]string{"bbb", "aaa"}, 1)
	b := UsenetTopK([]string{"aaa", "bbb"}, 1)
	if a.Words()[0] != "aaa" || b.Words()[0] != "aaa" {
		t.Error("tie-break not alphabetical/deterministic")
	}
}

func TestUsenetFromGeneratorShape(t *testing.T) {
	u := smallUniverse()
	g := textgen.MustNew(u, textgen.DefaultConfig())
	r := stats.NewRNG(21)
	// Scaled-down: universe usenet vocab = 50 common + 590 standard
	// ranks + 290 colloquial = 930 words; sample enough to saturate.
	k := 900
	l := UsenetFromGenerator(g, r, 400000, k)
	if l.Len() != k {
		t.Fatalf("usenet lexicon size = %d, want %d", l.Len(), k)
	}
	asp := Aspell(u)
	overlap := l.Overlap(asp)
	// Overlap must be common + (most of the capped standard ranks);
	// colloquial words must NOT be in aspell.
	usenetRanks := textgen.UsenetStandardRanks(u)
	maxOverlap := u.SegmentSize(textgen.SegCommon) + usenetRanks
	if overlap > maxOverlap {
		t.Errorf("overlap %d exceeds structural bound %d", overlap, maxOverlap)
	}
	if overlap < maxOverlap*8/10 {
		t.Errorf("overlap %d below 80%% of bound %d — corpus not saturated?", overlap, maxOverlap)
	}
	// And the lexicon must contain colloquial words aspell lacks.
	collo := 0
	for _, w := range l.Words() {
		if seg, ok := u.SegmentOf(w); ok && seg == textgen.SegColloquial {
			collo++
		}
	}
	if collo < u.SegmentSize(textgen.SegColloquial)/2 {
		t.Errorf("usenet lexicon has only %d colloquial words", collo)
	}
}

func TestUsenetName(t *testing.T) {
	if got := usenetName(90000); got != "usenet-90k" {
		t.Errorf("usenetName(90000) = %q", got)
	}
	if got := usenetName(25500); got != "usenet-26k" {
		t.Errorf("usenetName(25500) = %q", got)
	}
}
