// Package lexicon builds the word sources the paper's dictionary
// attacks draw on:
//
//   - the standard English dictionary (GNU aspell 6.0-0, 98,568
//     words) → Aspell, built from the synthetic universe's common,
//     standard, and formal segments — same size, same coverage role;
//   - the refined Usenet dictionary (the 90,000 most frequent words
//     of a Usenet posting corpus) → UsenetTopK over a generated
//     Usenet token stream;
//   - the infeasible "optimal" word source (every possible word,
//     §3.4) → Optimal, the whole universe.
package lexicon

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
	"repro/internal/textgen"
)

// Lexicon is an ordered, duplicate-free word list with O(1)
// membership tests.
type Lexicon struct {
	name  string
	words []string
	set   map[string]struct{}
}

// New builds a lexicon from words, dropping duplicates while
// preserving first-seen order.
func New(name string, words []string) *Lexicon {
	l := &Lexicon{
		name: name,
		set:  make(map[string]struct{}, len(words)),
	}
	for _, w := range words {
		if _, dup := l.set[w]; dup || w == "" {
			continue
		}
		l.set[w] = struct{}{}
		l.words = append(l.words, w)
	}
	return l
}

// Name returns the lexicon's name (used in experiment tables).
func (l *Lexicon) Name() string { return l.name }

// Len returns the number of words.
func (l *Lexicon) Len() int { return len(l.words) }

// Words returns the word list (shared slice; do not modify).
func (l *Lexicon) Words() []string { return l.words }

// Contains reports membership.
func (l *Lexicon) Contains(w string) bool {
	_, ok := l.set[w]
	return ok
}

// Overlap returns |l ∩ other|.
func (l *Lexicon) Overlap(other *Lexicon) int {
	a, b := l, other
	if b.Len() < a.Len() {
		a, b = b, a
	}
	n := 0
	for _, w := range a.words {
		if b.Contains(w) {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of tokens (with multiplicity) that
// are lexicon members. It returns 0 for an empty stream.
func (l *Lexicon) Coverage(tokens []string) float64 {
	if len(tokens) == 0 {
		return 0
	}
	hit := 0
	for _, t := range tokens {
		if l.Contains(t) {
			hit++
		}
	}
	return float64(hit) / float64(len(tokens))
}

// Save writes the lexicon one word per line.
func (l *Lexicon) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, word := range l.words {
		if _, err := bw.WriteString(word); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a lexicon written by Save.
func Load(name string, r io.Reader) (*Lexicon, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var words []string
	for sc.Scan() {
		words = append(words, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lexicon: loading %s: %w", name, err)
	}
	return New(name, words), nil
}

// Aspell builds the synthetic standard dictionary: the universe's
// common, standard and formal segments. With the default universe
// this is exactly 98,568 words, the size of GNU aspell 6.0-0.
func Aspell(u *textgen.Universe) *Lexicon {
	var words []string
	for _, seg := range []textgen.Segment{textgen.SegCommon, textgen.SegStandard, textgen.SegFormal} {
		words = append(words, u.Words(seg)...)
	}
	return New("aspell", words)
}

// Optimal builds the whole-universe word source that simulates the
// paper's optimal attack (§3.4: "include all possible words").
func Optimal(u *textgen.Universe) *Lexicon {
	return New("optimal", u.All())
}

// topKByCount returns the k most frequent words in counts, ties
// broken alphabetically so the result is deterministic.
func topKByCount(counts map[string]int, k int) []string {
	type wc struct {
		w string
		c int
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if k > len(all) {
		k = len(all)
	}
	words := make([]string, k)
	for i := 0; i < k; i++ {
		words[i] = all[i].w
	}
	return words
}

// usenetName labels a top-k Usenet lexicon.
func usenetName(k int) string {
	return fmt.Sprintf("usenet-%dk", (k+500)/1000)
}

// UsenetTopK counts a Usenet token stream and keeps the k most
// frequent words. This mirrors the paper's "90,000 top ranked words
// from the Usenet corpus".
func UsenetTopK(tokens []string, k int) *Lexicon {
	counts := make(map[string]int)
	for _, t := range tokens {
		counts[t]++
	}
	return New(usenetName(k), topKByCount(counts, k))
}

// UsenetFromGenerator samples a Usenet corpus of streamTokens tokens
// from the generator and returns its top-k lexicon. streamTokens
// should be large enough that the vocabulary saturates (the full-
// scale experiments use 20 million tokens for the 90k-word lexicon).
func UsenetFromGenerator(g *textgen.Generator, r *stats.RNG, streamTokens, k int) *Lexicon {
	// Count in chunks to avoid materializing the whole stream.
	counts := make(map[string]int, 2*k)
	const chunk = 1 << 16
	for remaining := streamTokens; remaining > 0; {
		n := chunk
		if n > remaining {
			n = remaining
		}
		for _, t := range g.UsenetTokens(r, n) {
			counts[t]++
		}
		remaining -= n
	}
	return New(usenetName(k), topKByCount(counts, k))
}
