package mail

import (
	"io"
	"strings"
	"testing"

	"repro/internal/stats"
)

// statsRNG builds a deterministic RNG for tests.
func statsRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

func sampleMessages() []*Message {
	m1 := &Message{Body: "hello world\nsecond line\n"}
	m1.Header.Add("From", "alice@example.com")
	m1.Header.Add("Subject", "greetings")
	m2 := &Message{Body: "From the top\n>From quoted already\nplain\n"}
	m2.Header.Add("From", "Bob Jones <bob@example.org>")
	m2.Header.Add("Subject", "mbox quoting")
	m3 := &Message{Body: "final message\n"}
	m3.Header.Add("Subject", "no sender")
	return []*Message{m1, m2, m3}
}

func TestMboxRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	for _, m := range msgs {
		if err := w.WriteMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewMboxReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("read %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if got[i].Body != msgs[i].Body {
			t.Errorf("message %d body = %q, want %q", i, got[i].Body, msgs[i].Body)
		}
		if got[i].Subject() != msgs[i].Subject() {
			t.Errorf("message %d subject = %q, want %q", i, got[i].Subject(), msgs[i].Subject())
		}
	}
}

func TestMboxFromQuoting(t *testing.T) {
	m := &Message{Body: "From here\n>From there\n>>From everywhere\n"}
	m.Header.Add("Subject", "q")
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, want := range []string{"\n>From here\n", "\n>>From there\n", "\n>>>From everywhere\n"} {
		if !strings.Contains(raw, want) {
			t.Errorf("raw mbox missing %q:\n%s", want, raw)
		}
	}
	got, err := NewMboxReader(strings.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Body != m.Body {
		t.Errorf("unquoting failed: %q", got[0].Body)
	}
}

func TestMboxEnvelopeAddress(t *testing.T) {
	m := &Message{Body: "b\n"}
	m.Header.Add("From", "Carol Smith <carol@corp.com>")
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !strings.HasPrefix(buf.String(), "From carol@corp.com ") {
		t.Errorf("envelope = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestMboxDefaultEnvelope(t *testing.T) {
	m := &Message{Body: "b\n"}
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !strings.HasPrefix(buf.String(), "From MAILER-DAEMON") {
		t.Errorf("envelope = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestMboxEmptyArchive(t *testing.T) {
	r := NewMboxReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty archive Next() err = %v, want EOF", err)
	}
	msgs, err := NewMboxReader(strings.NewReader("\n\n")).ReadAll()
	if err != nil || len(msgs) != 0 {
		t.Errorf("blank archive = %v msgs, err %v", len(msgs), err)
	}
}

func TestMboxGarbagePrefix(t *testing.T) {
	if _, err := NewMboxReader(strings.NewReader("garbage\n")).Next(); err == nil {
		t.Error("content before first envelope should error")
	}
}

func TestMboxReaderAfterEOF(t *testing.T) {
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(sampleMessages()[0]); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := NewMboxReader(strings.NewReader(buf.String()))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("post-EOF Next() err = %v, want EOF", err)
		}
	}
}

func TestMboxSingleMessage(t *testing.T) {
	m := &Message{Body: "only\n"}
	m.Header.Add("Subject", "solo")
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := NewMboxReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Subject() != "solo" || got[0].Body != "only\n" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestMboxEmptyBodyMessage(t *testing.T) {
	m := &Message{}
	m.Header.Add("Subject", "empty")
	other := &Message{Body: "x\n"}
	other.Header.Add("Subject", "next")
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	for _, msg := range []*Message{m, other} {
		if err := w.WriteMessage(msg); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	got, err := NewMboxReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d messages", len(got))
	}
	if got[0].Body != "" || got[0].Subject() != "empty" {
		t.Errorf("first message = %+v", got[0])
	}
	if got[1].Body != "x\n" {
		t.Errorf("second message body = %q", got[1].Body)
	}
}

func TestMboxWriteReadWriteFixedPoint(t *testing.T) {
	msgs := sampleMessages()
	write := func(ms []*Message) string {
		var buf strings.Builder
		w := NewMboxWriter(&buf)
		for _, m := range ms {
			if err := w.WriteMessage(m); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		return buf.String()
	}
	first := write(msgs)
	reread, err := NewMboxReader(strings.NewReader(first)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	second := write(reread)
	if first != second {
		t.Errorf("write→read→write is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestMboxLargeMessage(t *testing.T) {
	// A body wider than the default scanner buffer must not fail.
	m := &Message{Body: strings.Repeat("w", 300000) + "\n"}
	m.Header.Add("Subject", "big")
	var buf strings.Builder
	w := NewMboxWriter(&buf)
	if err := w.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := NewMboxReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Body) != len(m.Body) {
		t.Errorf("large body corrupted: got %d bytes", len(got[0].Body))
	}
}
