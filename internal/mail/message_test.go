package mail

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHeaderGetSetAdd(t *testing.T) {
	var h Header
	if h.Get("Subject") != "" {
		t.Error("Get on empty header should return empty string")
	}
	h.Add("Subject", "hello")
	h.Add("Received", "hop1")
	h.Add("Received", "hop2")
	if got := h.Get("subject"); got != "hello" {
		t.Errorf("case-insensitive Get = %q", got)
	}
	if got := h.GetAll("RECEIVED"); len(got) != 2 || got[0] != "hop1" || got[1] != "hop2" {
		t.Errorf("GetAll = %v", got)
	}
	if !h.Has("subject") || h.Has("x-missing") {
		t.Error("Has misbehaved")
	}
	h.Set("Subject", "world")
	if got := h.Get("Subject"); got != "world" {
		t.Errorf("after Set, Get = %q", got)
	}
	if len(h) != 3 {
		t.Errorf("Set should replace, not append: %v", h)
	}
	h.Set("X-New", "v")
	if got := h.Get("X-New"); got != "v" {
		t.Errorf("Set-append failed: %q", got)
	}
}

func TestHeaderClone(t *testing.T) {
	var h Header
	h.Add("A", "1")
	c := h.Clone()
	c.Set("A", "2")
	if h.Get("A") != "1" {
		t.Error("Clone is not deep")
	}
	if Header(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{Body: "line one\nline two\n"}
	m.Header.Add("From", "alice@example.com")
	m.Header.Add("To", "bob@example.org")
	m.Header.Add("Subject", "quarterly report")
	s := m.String()
	got, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.From() != "alice@example.com" || got.Subject() != "quarterly report" {
		t.Errorf("parsed header = %v", got.Header)
	}
	if got.Body != m.Body {
		t.Errorf("body = %q, want %q", got.Body, m.Body)
	}
	// Serialization is a fixed point.
	if got.String() != s {
		t.Errorf("re-serialization differs:\n%q\n%q", got.String(), s)
	}
}

func TestMessageEmptyHeader(t *testing.T) {
	m := &Message{Body: "just a body\n"}
	got, err := ParseString(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header) != 0 {
		t.Errorf("header = %v, want empty", got.Header)
	}
	if got.Body != "just a body\n" {
		t.Errorf("body = %q", got.Body)
	}
}

func TestMessageEmptyBody(t *testing.T) {
	m := &Message{}
	m.Header.Add("Subject", "nothing")
	got, err := ParseString(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Body != "" {
		t.Errorf("body = %q, want empty", got.Body)
	}
	if got.Subject() != "nothing" {
		t.Errorf("subject = %q", got.Subject())
	}
}

func TestMessageCompletelyEmpty(t *testing.T) {
	m := &Message{}
	got, err := ParseString(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header) != 0 || got.Body != "" {
		t.Errorf("round-trip of empty message = %+v", got)
	}
}

func TestParseFoldedHeader(t *testing.T) {
	raw := "Subject: a very\n\tlong subject\nFrom: x@y.com\n\nbody\n"
	m, err := ParseString(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Subject(); got != "a very\nlong subject" {
		t.Errorf("folded subject = %q", got)
	}
	// Folding must survive re-serialization.
	m2, err := ParseString(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Subject() != m.Subject() {
		t.Errorf("folded subject did not round-trip: %q", m2.Subject())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("\tcontinuation first\n\nbody\n"); err == nil {
		t.Error("continuation before any field should fail")
	}
	if _, err := ParseString("not a header line\n\nbody\n"); err == nil {
		t.Error("colon-less header line should fail")
	}
}

func TestParseHeaderOnly(t *testing.T) {
	m, err := ParseString("Subject: s\nFrom: f@g.h")
	if err != nil {
		t.Fatal(err)
	}
	if m.Subject() != "s" || m.Body != "" {
		t.Errorf("header-only parse = %+v", m)
	}
}

func TestClone(t *testing.T) {
	m := &Message{Body: "b\n"}
	m.Header.Add("A", "1")
	c := m.Clone()
	c.Header.Set("A", "2")
	c.Body = "changed\n"
	if m.Header.Get("A") != "1" || m.Body != "b\n" {
		t.Error("Clone is not deep")
	}
}

func TestSynthesizeHeaderDeterministic(t *testing.T) {
	mk := func() Header {
		rng := statsRNG(42)
		return SynthesizeHeader(rng, HeaderProfile{
			From: "a@b.com", To: "c@d.org", Subject: "hi", Hops: 3, Spammy: true,
		})
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("field %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSynthesizeHeaderStructure(t *testing.T) {
	rng := statsRNG(7)
	h := SynthesizeHeader(rng, HeaderProfile{
		From: "alice@corp.com", To: "bob@other.net", Subject: "meeting", Hops: 2,
	})
	if got := len(h.GetAll("Received")); got != 2 {
		t.Errorf("Received hops = %d, want 2", got)
	}
	for _, name := range []string{"Message-Id", "Date", "From", "To", "Subject", "Content-Type"} {
		if !h.Has(name) {
			t.Errorf("missing %s field", name)
		}
	}
	if h.Get("From") != "alice@corp.com" || h.Get("Subject") != "meeting" {
		t.Error("profile fields not propagated")
	}
	if !strings.Contains(h.Get("Message-Id"), "@corp.com>") {
		t.Errorf("Message-Id domain = %q", h.Get("Message-Id"))
	}
	if !strings.Contains(h.Get("Content-Type"), "text/plain") {
		t.Errorf("ham Content-Type = %q", h.Get("Content-Type"))
	}
}

func TestSynthesizeHeaderSpammy(t *testing.T) {
	rng := statsRNG(9)
	h := SynthesizeHeader(rng, HeaderProfile{
		From: "x@spam.biz", To: "y@victim.com", Subject: "buy now", Hops: 1, Spammy: true,
	})
	if !strings.Contains(h.Get("Content-Type"), "text/html") {
		t.Errorf("spam Content-Type = %q", h.Get("Content-Type"))
	}
}

func TestSynthesizeHeaderMinHops(t *testing.T) {
	rng := statsRNG(11)
	h := SynthesizeHeader(rng, HeaderProfile{From: "a@b.c", To: "d@e.f"})
	if got := len(h.GetAll("Received")); got != 1 {
		t.Errorf("default hops = %d, want 1", got)
	}
}

func TestSynthAddress(t *testing.T) {
	rng := statsRNG(13)
	addr := SynthAddress(rng, "carol")
	if !strings.HasPrefix(addr, "carol@") || !strings.Contains(addr, ".") {
		t.Errorf("SynthAddress = %q", addr)
	}
}

func TestSynthesizedHeaderParses(t *testing.T) {
	// A message with a synthesized header must survive a round trip.
	rng := statsRNG(17)
	m := &Message{
		Header: SynthesizeHeader(rng, HeaderProfile{
			From: "a@b.com", To: "c@d.net", Subject: "status update", Hops: 4,
		}),
		Body: "see attachment\n",
	}
	got, err := ParseString(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Subject() != "status update" || len(got.GetAllReceived()) != 4 {
		t.Errorf("round-trip lost fields: %+v", got.Header)
	}
}

// GetAllReceived is a tiny test helper on Message.
func (m *Message) GetAllReceived() []string { return m.Header.GetAll("Received") }

// Property: any header built from printable tokens round-trips.
func TestQuickHeaderRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r < 32 || r > 126 || r == ':' {
				return -1
			}
			return r
		}, s)
		return strings.TrimSpace(s)
	}
	f := func(name, value, body string) bool {
		name = sanitize(name)
		if name == "" {
			name = "X-Test"
		}
		value = sanitize(value)
		m := &Message{Body: "payload\n"}
		m.Header.Add(name, value)
		m.Body = strings.ReplaceAll(body, "\r", "") // CR is out of scope
		got, err := ParseString(m.String())
		if err != nil {
			return false
		}
		return got.Header.Get(name) == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
