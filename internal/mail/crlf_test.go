package mail

import "testing"

func TestParseCRLFHeader(t *testing.T) {
	raw := "Subject: hello\r\nFrom: a@b.com\r\n\r\nbody line\n"
	m, err := ParseString(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Subject() != "hello" {
		t.Errorf("subject = %q", m.Subject())
	}
	if m.From() != "a@b.com" {
		t.Errorf("from = %q", m.From())
	}
	if m.Body != "body line\n" {
		t.Errorf("body = %q", m.Body)
	}
}

func TestParseCRLFBlankSeparator(t *testing.T) {
	// A "\r\n" blank line must end the header too.
	raw := "Subject: s\r\n\r\npayload\n"
	m, err := ParseString(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Header) != 1 || m.Body != "payload\n" {
		t.Errorf("parse = %+v", m)
	}
}

func TestParseCRLFFoldedHeader(t *testing.T) {
	raw := "Subject: part one\r\n\tpart two\r\n\r\n"
	m, err := ParseString(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Subject(); got != "part one\npart two" {
		t.Errorf("folded subject = %q", got)
	}
}
