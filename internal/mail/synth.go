package mail

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Synthetic header generation. The TREC 2005 corpus carries full
// Received chains, Message-IDs, and client fingerprints; SpamBayes
// tokenizes several of these fields, so generated corpora need
// plausible headers rather than bare Subject lines. Everything here is
// driven by the caller's RNG so corpora are reproducible.

// Weekday/month names for RFC-2822-style date synthesis. We format
// dates by hand instead of using package time so that generation can
// never accidentally observe the wall clock.
var (
	synthWeekdays = []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	synthMonths   = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	synthTLDs     = []string{"com", "net", "org", "edu", "biz", "info"}
	synthMailers  = []string{
		"Microsoft Outlook Express 6.00.2800.1106",
		"Mozilla Thunderbird 1.0.6",
		"Evolution 2.0.4",
		"Mutt/1.5.9i",
		"Apple Mail (2.746.2)",
		"The Bat! (v3.0)",
	}
	synthRelays = []string{"smtp", "mail", "mx1", "mx2", "relay", "out", "mta"}
)

// HeaderProfile controls header synthesis.
type HeaderProfile struct {
	// From and To are complete address values ("user@host").
	From string
	To   string
	// Subject is the subject line.
	Subject string
	// Hops is the number of Received lines to fabricate (at least 1).
	Hops int
	// Spammy adds the header quirks common in the spam half of the
	// corpus (forged Outlook versions, bulk precedence, HTML type).
	Spammy bool
}

// SynthesizeHeader builds a deterministic, plausible RFC-822 header
// from the profile using rng.
func SynthesizeHeader(rng *stats.RNG, p HeaderProfile) Header {
	var h Header
	hops := p.Hops
	if hops < 1 {
		hops = 1
	}
	date := synthDate(rng)
	fromDomain := domainOf(p.From)
	for i := hops - 1; i >= 0; i-- {
		relay := synthRelays[rng.Intn(len(synthRelays))]
		h.Add("Received", fmt.Sprintf(
			"from %s.%s ([%d.%d.%d.%d]) by %s.%s with SMTP id %s; %s",
			relay, fromDomain,
			1+rng.Intn(254), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254),
			synthRelays[rng.Intn(len(synthRelays))], domainOf(p.To),
			synthToken(rng, 10), date))
	}
	h.Add("Message-Id", fmt.Sprintf("<%s.%s@%s>", synthToken(rng, 12), synthToken(rng, 6), fromDomain))
	h.Add("Date", date)
	h.Add("From", p.From)
	h.Add("To", p.To)
	h.Add("Subject", p.Subject)
	h.Add("Mime-Version", "1.0")
	if p.Spammy {
		h.Add("Content-Type", "text/html; charset=\"us-ascii\"")
		if rng.Bernoulli(0.5) {
			h.Add("X-Mailer", synthMailers[rng.Intn(2)])
		}
		if rng.Bernoulli(0.4) {
			h.Add("Precedence", "bulk")
		}
		if rng.Bernoulli(0.3) {
			h.Add("X-Priority", fmt.Sprintf("%d", 1+rng.Intn(3)))
		}
	} else {
		h.Add("Content-Type", "text/plain; charset=\"us-ascii\"")
		if rng.Bernoulli(0.6) {
			h.Add("X-Mailer", synthMailers[rng.Intn(len(synthMailers))])
		}
	}
	return h
}

// SynthAddress fabricates an email address from a local part and a
// random domain.
func SynthAddress(rng *stats.RNG, local string) string {
	return fmt.Sprintf("%s@%s", local, synthDomain(rng))
}

// synthDomain fabricates a random domain name.
func synthDomain(rng *stats.RNG) string {
	return fmt.Sprintf("%s.%s", synthToken(rng, 4+rng.Intn(8)), synthTLDs[rng.Intn(len(synthTLDs))])
}

// synthDate fabricates an RFC-2822 date in 2004-2005 (the TREC 2005
// collection window).
func synthDate(rng *stats.RNG) string {
	year := 2004 + rng.Intn(2)
	month := rng.Intn(12)
	day := 1 + rng.Intn(28)
	return fmt.Sprintf("%s, %d %s %d %02d:%02d:%02d -0%d00",
		synthWeekdays[rng.Intn(7)], day, synthMonths[month], year,
		rng.Intn(24), rng.Intn(60), rng.Intn(60), 4+rng.Intn(5))
}

// synthToken fabricates a lowercase alphanumeric token of length n.
func synthToken(rng *stats.RNG, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

// domainOf extracts the domain of an address, defaulting to
// "example.com" when absent.
func domainOf(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 && i+1 < len(addr) {
		return addr[i+1:]
	}
	return "example.com"
}
