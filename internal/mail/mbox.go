package mail

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements mboxrd-style archive I/O: messages are
// separated by "From " envelope lines, and body lines beginning with
// one or more '>' characters followed by "From " are quoted with one
// extra '>' on write and unquoted on read, so archives round-trip
// exactly.

// mboxSeparatorPrefix begins every envelope line.
const mboxSeparatorPrefix = "From "

// defaultEnvelope is used when a message carries no usable sender.
const defaultEnvelope = "From MAILER-DAEMON Thu Jan  1 00:00:00 1970"

// MboxWriter writes messages to an mbox archive.
type MboxWriter struct {
	w     *bufio.Writer
	wrote bool
}

// NewMboxWriter returns a writer that appends messages to w.
func NewMboxWriter(w io.Writer) *MboxWriter {
	return &MboxWriter{w: bufio.NewWriter(w)}
}

// WriteMessage appends one message, preceded by an envelope line and
// followed by a blank line, with From-quoting applied to the payload.
func (mw *MboxWriter) WriteMessage(m *Message) error {
	envelope := defaultEnvelope
	if from := m.From(); from != "" {
		envelope = mboxSeparatorPrefix + sanitizeEnvelopeAddr(from) + " Thu Jan  1 00:00:00 1970"
	}
	if mw.wrote {
		if _, err := mw.w.WriteString("\n"); err != nil {
			return err
		}
	}
	if _, err := mw.w.WriteString(envelope + "\n"); err != nil {
		return err
	}
	payload := m.String()
	sc := bufio.NewScanner(strings.NewReader(payload))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if isQuotedFrom(line) {
			if err := mw.w.WriteByte('>'); err != nil {
				return err
			}
		}
		if _, err := mw.w.WriteString(line); err != nil {
			return err
		}
		if err := mw.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	mw.wrote = true
	return nil
}

// Flush flushes buffered output to the underlying writer.
func (mw *MboxWriter) Flush() error { return mw.w.Flush() }

// isQuotedFrom reports whether line is "From " or ">...>From ", i.e.
// needs an extra level of '>' quoting in mboxrd.
func isQuotedFrom(line string) bool {
	i := 0
	for i < len(line) && line[i] == '>' {
		i++
	}
	return strings.HasPrefix(line[i:], mboxSeparatorPrefix)
}

// sanitizeEnvelopeAddr reduces a From header value to a plausible
// envelope address token (no spaces or angle brackets).
func sanitizeEnvelopeAddr(from string) string {
	if i := strings.IndexByte(from, '<'); i >= 0 {
		if j := strings.IndexByte(from[i:], '>'); j > 0 {
			from = from[i+1 : i+j]
		}
	}
	from = strings.TrimSpace(from)
	if k := strings.IndexAny(from, " \t"); k >= 0 {
		from = from[:k]
	}
	if from == "" {
		return "MAILER-DAEMON"
	}
	return from
}

// MboxReader reads messages back from an mbox archive written by
// MboxWriter (or any mboxrd archive).
type MboxReader struct {
	sc      *bufio.Scanner
	pending string // lookahead line (an envelope), if any
	started bool
	done    bool
}

// NewMboxReader returns a reader over r.
func NewMboxReader(r io.Reader) *MboxReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	return &MboxReader{sc: sc}
}

// Next returns the next message in the archive, or io.EOF when the
// archive is exhausted.
func (mr *MboxReader) Next() (*Message, error) {
	if mr.done {
		return nil, io.EOF
	}
	// Find the opening envelope line.
	if !mr.started {
		for {
			if !mr.sc.Scan() {
				mr.done = true
				if err := mr.sc.Err(); err != nil {
					return nil, err
				}
				return nil, io.EOF
			}
			line := mr.sc.Text()
			if strings.HasPrefix(line, mboxSeparatorPrefix) {
				mr.started = true
				break
			}
			if strings.TrimSpace(line) != "" {
				return nil, fmt.Errorf("mail: mbox content before first envelope line: %q", line)
			}
		}
	} else if mr.pending == "" {
		// Previous call consumed everything including trailing EOF.
		mr.done = true
		return nil, io.EOF
	}
	mr.pending = ""

	var payload strings.Builder
	sawAny := false
	for mr.sc.Scan() {
		line := mr.sc.Text()
		if strings.HasPrefix(line, mboxSeparatorPrefix) {
			mr.pending = line
			return finishMboxMessage(payload.String())
		}
		// Unquote >From lines.
		if len(line) > 0 && line[0] == '>' && isQuotedFrom(line[1:]) {
			line = line[1:]
		}
		if sawAny {
			payload.WriteByte('\n')
		}
		payload.WriteString(line)
		sawAny = true
	}
	mr.done = true
	if err := mr.sc.Err(); err != nil {
		return nil, err
	}
	return finishMboxMessage(payload.String())
}

// ReadAll drains the archive and returns every message.
func (mr *MboxReader) ReadAll() ([]*Message, error) {
	var msgs []*Message
	for {
		m, err := mr.Next()
		if err == io.EOF {
			return msgs, nil
		}
		if err != nil {
			return msgs, err
		}
		msgs = append(msgs, m)
	}
}

func finishMboxMessage(payload string) (*Message, error) {
	// The writer emits a blank separator line between messages; strip
	// one trailing empty line so archives round-trip.
	payload = strings.TrimSuffix(payload, "\n")
	m, err := ParseString(payload)
	if err != nil {
		return nil, fmt.Errorf("mail: parsing mbox message: %w", err)
	}
	// Bodies are stored newline-terminated on disk; normalize the
	// parsed form the same way so write→read→write is a fixed point.
	if m.Body != "" && !strings.HasSuffix(m.Body, "\n") {
		m.Body += "\n"
	}
	return m, nil
}
