// Package mail implements the email substrate the reproduction rests
// on: an RFC-822-style message model, parsing and serialization, mbox
// archive I/O, and synthetic header generation for the generated
// corpora.
//
// SpamBayes tokenizes message headers as well as bodies, and the
// paper's attacks differ precisely in how they construct headers
// (empty for dictionary attacks, copied from a random training spam
// for the focused attack), so messages carry a full ordered header
// rather than a bag of strings.
package mail

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Field is a single header field. Name retains its original spelling;
// lookups are case-insensitive.
type Field struct {
	Name  string
	Value string
}

// Header is an ordered sequence of header fields. Order is preserved
// because real mail software (and the SpamBayes tokenizer) observes it.
type Header []Field

// Get returns the value of the first field with the given name
// (case-insensitive), or "" if the header has no such field.
func (h Header) Get(name string) string {
	for _, f := range h {
		if strings.EqualFold(f.Name, name) {
			return f.Value
		}
	}
	return ""
}

// GetAll returns the values of every field with the given name, in
// order of appearance.
func (h Header) GetAll(name string) []string {
	var vals []string
	for _, f := range h {
		if strings.EqualFold(f.Name, name) {
			vals = append(vals, f.Value)
		}
	}
	return vals
}

// Has reports whether a field with the given name exists.
func (h Header) Has(name string) bool {
	for _, f := range h {
		if strings.EqualFold(f.Name, name) {
			return true
		}
	}
	return false
}

// Add appends a field to the header.
func (h *Header) Add(name, value string) {
	*h = append(*h, Field{Name: name, Value: value})
}

// Set replaces the first field with the given name, or appends one if
// none exists. Additional fields with the same name are left in place.
func (h *Header) Set(name, value string) {
	for i, f := range *h {
		if strings.EqualFold(f.Name, name) {
			(*h)[i].Value = value
			return
		}
	}
	h.Add(name, value)
}

// Clone returns a deep copy of the header.
func (h Header) Clone() Header {
	if h == nil {
		return nil
	}
	c := make(Header, len(h))
	copy(c, h)
	return c
}

// Message is a single email: an ordered header and a flat text body.
// The zero value is an empty message, which is valid (the paper's
// dictionary attack emails have empty headers).
type Message struct {
	Header Header
	Body   string
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	return &Message{Header: m.Header.Clone(), Body: m.Body}
}

// Subject is a convenience accessor for the Subject header field.
func (m *Message) Subject() string { return m.Header.Get("Subject") }

// From is a convenience accessor for the From header field.
func (m *Message) From() string { return m.Header.Get("From") }

// WriteTo serializes the message in RFC-822 style: header fields as
// "Name: value" lines, a blank separator line, then the body. Header
// values containing newlines are folded with a leading tab so the
// output always re-parses to an equivalent message.
func (m *Message) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	for _, f := range m.Header {
		val := strings.ReplaceAll(f.Value, "\n", "\n\t")
		if err := count(fmt.Fprintf(bw, "%s: %s\n", f.Name, val)); err != nil {
			return n, err
		}
	}
	if err := count(bw.WriteString("\n")); err != nil {
		return n, err
	}
	if err := count(bw.WriteString(m.Body)); err != nil {
		return n, err
	}
	if m.Body != "" && !strings.HasSuffix(m.Body, "\n") {
		if err := count(bw.WriteString("\n")); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// String returns the serialized form of the message.
func (m *Message) String() string {
	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		// strings.Builder never fails; this is unreachable.
		panic(err)
	}
	return b.String()
}

// Parse reads one RFC-822-style message from r: header lines up to the
// first blank line (folded continuation lines are unfolded), then the
// body until EOF. A message with no blank line is treated as all
// header; a message starting with a blank line has an empty header.
// CRLF line endings are accepted in the header (the CR is stripped);
// body bytes are preserved as read.
func Parse(r io.Reader) (*Message, error) {
	br := bufio.NewReader(r)
	m := &Message{}
	inHeader := true
	var body strings.Builder
	for {
		line, err := br.ReadString('\n')
		if inHeader && line != "" {
			trimmed := strings.TrimRight(line, "\r\n")
			switch {
			case trimmed == "":
				inHeader = false
			case line[0] == ' ' || line[0] == '\t':
				// Continuation of the previous field.
				if len(m.Header) == 0 {
					return nil, fmt.Errorf("mail: continuation line before any header field: %q", trimmed)
				}
				m.Header[len(m.Header)-1].Value += "\n" + strings.TrimLeft(trimmed, " \t")
			default:
				name, value, ok := strings.Cut(trimmed, ":")
				if !ok {
					return nil, fmt.Errorf("mail: malformed header line: %q", trimmed)
				}
				m.Header.Add(strings.TrimSpace(name), strings.TrimSpace(value))
			}
		} else if line != "" {
			body.WriteString(line)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	m.Body = body.String()
	return m, nil
}

// ParseString parses a message from a string.
func ParseString(s string) (*Message, error) {
	return Parse(strings.NewReader(s))
}
