package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV export: every result type can write its series as CSV so the
// paper's figures can be re-plotted with external tools. Columns are
// stable and documented here; cmd/subvert's -csv flag writes one file
// per exhibit.

// CSVWriter is implemented by every experiment result.
type CSVWriter interface {
	WriteCSV(w io.Writer) error
}

// Static interface checks.
var (
	_ CSVWriter = (*Fig1Result)(nil)
	_ CSVWriter = (*Fig2Result)(nil)
	_ CSVWriter = (*Fig3Result)(nil)
	_ CSVWriter = (*Fig4Result)(nil)
	_ CSVWriter = (*Fig5Result)(nil)
	_ CSVWriter = (*RONIResult)(nil)
	_ CSVWriter = (*TokenRatioResult)(nil)
	_ CSVWriter = (*InformedResult)(nil)
	_ CSVWriter = (*PseudospamResult)(nil)
	_ CSVWriter = (*TransferResult)(nil)
	_ CSVWriter = (*BackendTransferResult)(nil)
)

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func i64(v int) string     { return strconv.Itoa(v) }

// writeAll writes rows and flushes, returning the first error.
func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits attack,fraction,num_attack,ham_as_spam,
// ham_misclassified,spam_misclassified (baseline as fraction 0).
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"attack", "fraction", "num_attack", "ham_as_spam", "ham_misclassified", "spam_misclassified"}}
	rows = append(rows, []string{"baseline", "0", "0",
		f64(r.Baseline.HamAsSpamRate()), f64(r.Baseline.HamMisclassifiedRate()), f64(r.Baseline.SpamMisclassifiedRate())})
	for _, s := range r.Series {
		for _, p := range s.Points {
			rows = append(rows, []string{s.Attack, f64(p.Fraction), i64(p.NumAttack),
				f64(p.Confusion.HamAsSpamRate()), f64(p.Confusion.HamMisclassifiedRate()),
				f64(p.Confusion.SpamMisclassifiedRate())})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits guess_p,ham,unsure,spam,changed_rate.
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"guess_p", "ham", "unsure", "spam", "changed_rate"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{f64(c.GuessProb), i64(c.Ham), i64(c.Unsure), i64(c.Spam), f64(c.ChangedRate())})
	}
	return writeAll(w, rows)
}

// WriteCSV emits fraction,num_attack,spam_rate,misclassified_rate.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"fraction", "num_attack", "spam_rate", "misclassified_rate"}}
	for _, p := range r.Points {
		rows = append(rows, []string{f64(p.Fraction), i64(p.NumAttack), f64(p.SpamRate()), f64(p.MisclassifiedRate())})
	}
	return writeAll(w, rows)
}

// WriteCSV emits panel,guess_p,token,before,after,included — the raw
// scatter points of every panel.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"panel", "guess_p", "token", "before", "after", "included"}}
	for _, t := range r.Targets {
		for _, s := range t.Shifts {
			rows = append(rows, []string{t.Outcome.String(), f64(t.GuessProb), s.Token,
				f64(s.Before), f64(s.After), strconv.FormatBool(s.Included)})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits defense,fraction,num_attack,ham_as_spam,
// ham_misclassified,spam_as_unsure,theta0,theta1.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"defense", "fraction", "num_attack", "ham_as_spam", "ham_misclassified", "spam_as_unsure", "theta0", "theta1"}}
	for _, s := range r.Series {
		for _, c := range s.Cells {
			rows = append(rows, []string{s.Defense, f64(c.Fraction), i64(c.NumAttack),
				f64(c.Confusion.HamAsSpamRate()), f64(c.Confusion.HamMisclassifiedRate()),
				f64(c.Confusion.SpamAsUnsureRate()), f64(c.Theta0), f64(c.Theta1)})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits candidate,rep,ham_as_ham_delta,rejected — one row
// per impact measurement.
func (r *RONIResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"candidate", "rep", "ham_as_ham_delta", "rejected"}}
	add := func(name string, deltas []float64, rejected func(d float64) bool) {
		for i, d := range deltas {
			rows = append(rows, []string{name, i64(i), f64(d), strconv.FormatBool(rejected(d))})
		}
	}
	byThreshold := func(d float64) bool { return d <= -r.Config.Threshold }
	for _, v := range r.Variants {
		add(v.Variant, v.HamAsHamDeltas, byThreshold)
	}
	add("non-attack-spam", r.NonAttackSpamDeltas, byThreshold)
	add("non-attack-ham", r.NonAttackHamDeltas, byThreshold)
	add("focused-attack", r.FocusedDeltas, byThreshold)
	return writeAll(w, rows)
}

// WriteCSV emits attack,fraction,num_attack,attack_tokens,
// corpus_tokens,ratio.
func (r *TokenRatioResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"attack", "fraction", "num_attack", "attack_tokens", "corpus_tokens", "ratio"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Attack, f64(row.Fraction), i64(row.NumAttack),
			i64(row.AttackTokens), i64(row.CorpusTokens), f64(row.Ratio())})
	}
	return writeAll(w, rows)
}

// WriteCSV emits budget,source,ham_misclassified,coverage.
func (r *InformedResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"budget", "source", "ham_misclassified", "coverage"}}
	for _, c := range r.Cells {
		for i, src := range r.Sources {
			rows = append(rows, []string{i64(c.Budget), src,
				f64(c.Confusions[i].HamMisclassifiedRate()), f64(c.Coverages[i])})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits fraction,num_attack,delivered_rate,not_blocked_rate,
// ham_misclassified (baseline as fraction 0).
func (r *PseudospamResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"fraction", "num_attack", "delivered_rate", "not_blocked_rate", "ham_misclassified"}}
	emit := func(p PseudospamPoint) {
		rows = append(rows, []string{f64(p.Fraction), i64(p.NumAttack),
			f64(p.DeliveredRate()), f64(p.NotBlockedRate()), f64(p.HamConfusion.HamMisclassifiedRate())})
	}
	emit(r.Baseline)
	for _, p := range r.Points {
		emit(p)
	}
	return writeAll(w, rows)
}

// WriteCSV emits profile,baseline_accuracy,baseline_ham_misclassified,
// attacked_ham_as_spam,attacked_ham_misclassified.
func (r *TransferResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"profile", "baseline_accuracy", "baseline_ham_misclassified", "attacked_ham_as_spam", "attacked_ham_misclassified"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Profile.Name,
			f64(row.Baseline.Accuracy()), f64(row.Baseline.HamMisclassifiedRate()),
			f64(row.Attacked.HamAsSpamRate()), f64(row.Attacked.HamMisclassifiedRate())})
	}
	return writeAll(w, rows)
}

// WriteCSV emits backend,baseline_accuracy,baseline_ham_misclassified,
// attacked_ham_as_spam,attacked_ham_misclassified.
func (r *BackendTransferResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"backend", "baseline_accuracy", "baseline_ham_misclassified", "attacked_ham_as_spam", "attacked_ham_misclassified"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Backend,
			f64(row.Baseline.Accuracy()), f64(row.Baseline.HamMisclassifiedRate()),
			f64(row.Attacked.HamAsSpamRate()), f64(row.Attacked.HamMisclassifiedRate())})
	}
	return writeAll(w, rows)
}
