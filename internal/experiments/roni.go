package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/sbayes"
	"repro/internal/stats"
)

// RONIVariantResult summarizes the RONI impact measurements for one
// dictionary attack variant.
type RONIVariantResult struct {
	Variant string
	// HamAsHamDeltas holds the mean ham-as-ham change per repetition
	// (negative = harmful).
	HamAsHamDeltas []float64
	// Rejected counts repetitions flagged by the threshold rule.
	Rejected int
}

// Summary summarizes the per-rep deltas.
func (v RONIVariantResult) Summary() stats.Summary { return stats.Summarize(v.HamAsHamDeltas) }

// DetectionRate is the fraction of attack emails flagged.
func (v RONIVariantResult) DetectionRate() float64 {
	if len(v.HamAsHamDeltas) == 0 {
		return 0
	}
	return float64(v.Rejected) / float64(len(v.HamAsHamDeltas))
}

// RONIResult holds the §5.1 reproduction: the per-variant attack
// impacts and the non-attack control measurements.
type RONIResult struct {
	Config core.RONIConfig
	// Variants are the dictionary attack variants (paper: seven).
	Variants []RONIVariantResult
	// NonAttackSpamDeltas are per-candidate impacts of ordinary spam.
	NonAttackSpamDeltas []float64
	// NonAttackSpamRejected counts falsely flagged ordinary spam.
	NonAttackSpamRejected int
	// NonAttackHamDeltas extends the paper's control to ham-labeled
	// training candidates.
	NonAttackHamDeltas []float64
	// NonAttackHamRejected counts falsely flagged ham.
	NonAttackHamRejected int
	// FocusedDeltas are impacts of focused attack emails — which the
	// paper reports RONI cannot distinguish from ordinary spam (the
	// attack targets a future email, so its harm is invisible on the
	// training distribution).
	FocusedDeltas []float64
	// FocusedRejected counts flagged focused attack emails.
	FocusedRejected int
}

// WorstNonAttack returns the most harmful (most negative) non-attack
// spam impact — the paper reports "at most an average decrease of
// 4.4 ham-as-ham messages".
func (r *RONIResult) WorstNonAttack() float64 {
	worst := 0.0
	for _, d := range r.NonAttackSpamDeltas {
		if d < worst {
			worst = d
		}
	}
	return worst
}

// BestAttack returns the least harmful attack impact across all
// variants and reps — the paper reports "at least an average
// decrease of 6.8".
func (r *RONIResult) BestAttack() float64 {
	best := stats.Summarize(nil).Mean // NaN when empty
	first := true
	for _, v := range r.Variants {
		for _, d := range v.HamAsHamDeltas {
			if first || d > best {
				best = d
				first = false
			}
		}
	}
	return best
}

// Separable reports whether a single threshold separates every attack
// measurement from every non-attack spam measurement.
func (r *RONIResult) Separable() bool {
	return r.BestAttack() < r.WorstNonAttack()
}

// RunRONI reproduces the §5.1 experiment: the RONI defense measured
// against dictionary attack variants and ordinary spam/ham training
// candidates.
func RunRONI(env *Env) (*RONIResult, error) {
	cfg := env.Cfg
	r := env.RNG("roni")
	defense, err := core.NewRONI(cfg.RONI, env.Pool, sbayes.DefaultOptions(), env.Tok, r)
	if err != nil {
		return nil, fmt.Errorf("roni: %w", err)
	}
	res := &RONIResult{Config: cfg.RONI}

	// Seven dictionary attack variants, as in the paper: the three
	// full word sources plus random subsets of the two realistic
	// dictionaries. Subset variants redraw their words each
	// repetition, so repetitions vary; full-lexicon variants are
	// deterministic. (Random subsets rather than top-k prefixes keep
	// each variant's coverage proportional across the whole document-
	// frequency spectrum at any experiment scale.)
	type variant struct {
		name  string
		build func(vr *stats.RNG) *mail.Message
	}
	fullAttack := func(lex *lexicon.Lexicon) func(*stats.RNG) *mail.Message {
		msg := core.NewDictionaryAttack(lex).BuildAttack(r)
		return func(*stats.RNG) *mail.Message { return msg }
	}
	randomSubset := func(lex *lexicon.Lexicon, frac float64, name string) variant {
		return variant{name: name, build: func(vr *stats.RNG) *mail.Message {
			words := lex.Words()
			idx := vr.Sample(len(words), int(frac*float64(len(words))))
			sub := make([]string, len(idx))
			for i, j := range idx {
				sub[i] = words[j]
			}
			return &mail.Message{Body: core.BodyFromWords(sub, 12)}
		}}
	}
	union := lexicon.New("aspell+usenet", append(append([]string{}, env.Aspell.Words()...), env.Usenet.Words()...))
	variants := []variant{
		{name: "optimal", build: fullAttack(env.Optimal)},
		{name: "aspell", build: fullAttack(env.Aspell)},
		{name: env.Usenet.Name(), build: fullAttack(env.Usenet)},
		{name: union.Name(), build: fullAttack(union)},
		randomSubset(env.Aspell, 0.75, "aspell-3q"),
		randomSubset(env.Usenet, 0.75, "usenet-3q"),
		randomSubset(env.Usenet, 0.50, "usenet-half"),
	}

	for vi, v := range variants {
		vres := RONIVariantResult{Variant: v.name}
		for rep := 0; rep < cfg.RONIAttackReps; rep++ {
			vr := r.Split(fmt.Sprintf("variant%d-rep%d", vi, rep))
			msg := v.build(vr)
			impact := defense.MeasureImpact(msg, true)
			vres.HamAsHamDeltas = append(vres.HamAsHamDeltas, impact.HamAsHamDelta)
			if impact.HamAsHamDelta <= -cfg.RONI.Threshold {
				vres.Rejected++
			}
		}
		res.Variants = append(res.Variants, vres)
	}

	// Non-attack controls: ordinary spam (the paper's 120) and ham.
	spamPool := env.Pool.Spam()
	hamPool := env.Pool.Ham()
	for i, idx := range r.Sample(len(spamPool), min(cfg.RONINonAttack, len(spamPool))) {
		_ = i
		impact := defense.MeasureImpact(spamPool[idx], true)
		res.NonAttackSpamDeltas = append(res.NonAttackSpamDeltas, impact.HamAsHamDelta)
		if impact.HamAsHamDelta <= -cfg.RONI.Threshold {
			res.NonAttackSpamRejected++
		}
	}
	for _, idx := range r.Sample(len(hamPool), min(cfg.RONINonAttack, len(hamPool))) {
		impact := defense.MeasureImpact(hamPool[idx], false)
		res.NonAttackHamDeltas = append(res.NonAttackHamDeltas, impact.HamAsHamDelta)
		if impact.HamAsHamDelta <= -cfg.RONI.Threshold {
			res.NonAttackHamRejected++
		}
	}

	// Focused attack emails: the paper's negative result — RONI
	// cannot tell them from ordinary spam. One attack email per
	// target at the fixed knowledge level.
	targets := r.Sample(len(hamPool), min(cfg.FocusedTargets, len(hamPool)))
	for ti, idx := range targets {
		attack, err := core.NewFocusedAttack(hamPool[idx], cfg.FixedGuessProb, spamPool)
		if err != nil {
			return nil, err
		}
		msg := attack.BuildAttack(r.Split(fmt.Sprintf("focused-%d", ti)))
		impact := defense.MeasureImpact(msg, true)
		res.FocusedDeltas = append(res.FocusedDeltas, impact.HamAsHamDelta)
		if impact.HamAsHamDelta <= -cfg.RONI.Threshold {
			res.FocusedRejected++
		}
	}
	return res, nil
}

// Render prints the §5.1 statistics.
func (r *RONIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RONI defense (§5.1): train=%d, validation=%d, %d trials, threshold=%.1f ham-as-ham.\n",
		r.Config.TrainSize, r.Config.ValSize, r.Config.Trials, r.Config.Threshold)
	t := newTable("candidate", "reps", "mean Δham-as-ham", "min", "max", "rejected")
	for _, v := range r.Variants {
		s := v.Summary()
		t.addRow(v.Variant, fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%+.2f", s.Mean), fmt.Sprintf("%+.2f", s.Min), fmt.Sprintf("%+.2f", s.Max),
			fmt.Sprintf("%d/%d (%s)", v.Rejected, s.N, pct(v.DetectionRate())))
	}
	ss := stats.Summarize(r.NonAttackSpamDeltas)
	t.addRow("non-attack spam", fmt.Sprintf("%d", ss.N),
		fmt.Sprintf("%+.2f", ss.Mean), fmt.Sprintf("%+.2f", ss.Min), fmt.Sprintf("%+.2f", ss.Max),
		fmt.Sprintf("%d/%d", r.NonAttackSpamRejected, ss.N))
	hs := stats.Summarize(r.NonAttackHamDeltas)
	t.addRow("non-attack ham", fmt.Sprintf("%d", hs.N),
		fmt.Sprintf("%+.2f", hs.Mean), fmt.Sprintf("%+.2f", hs.Min), fmt.Sprintf("%+.2f", hs.Max),
		fmt.Sprintf("%d/%d", r.NonAttackHamRejected, hs.N))
	fs := stats.Summarize(r.FocusedDeltas)
	t.addRow("focused attack", fmt.Sprintf("%d", fs.N),
		fmt.Sprintf("%+.2f", fs.Mean), fmt.Sprintf("%+.2f", fs.Min), fmt.Sprintf("%+.2f", fs.Max),
		fmt.Sprintf("%d/%d", r.FocusedRejected, fs.N))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "attack emails cost at least %.1f ham-as-ham on average; ", -r.BestAttack())
	fmt.Fprintf(&b, "non-attack spam at most %.1f.\n", -r.WorstNonAttack())
	if r.Separable() {
		b.WriteString("attack and non-attack impacts are separable by a threshold, as in the paper.\n")
	} else {
		b.WriteString("WARNING: impacts are not cleanly separable at this scale.\n")
	}
	fmt.Fprintf(&b, "focused attack emails flagged: %d/%d — RONI fails to differentiate them (paper §5.1).\n",
		r.FocusedRejected, len(r.FocusedDeltas))
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
