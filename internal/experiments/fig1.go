package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/sbayes"
)

// Fig1Point is one (attack, fraction) cell of Figure 1, aggregated
// over all cross-validation folds.
type Fig1Point struct {
	Fraction  float64
	NumAttack int // attack messages per fold at this fraction
	Confusion eval.Confusion
}

// Fig1Series is one attack's curve.
type Fig1Series struct {
	Attack string
	Points []Fig1Point
}

// Fig1Result holds the dictionary-attack sweep: baseline plus one
// series per word source.
type Fig1Result struct {
	TrainSize int
	Folds     int
	Baseline  eval.Confusion
	Series    []Fig1Series
}

// RunFig1 reproduces Figure 1: the optimal, Usenet and Aspell
// dictionary attacks on a TrainSize-message training set, K-fold
// cross-validated, measuring ham misclassification as the attack
// fraction grows. Attack emails have empty headers and are trained
// as spam (contamination assumption).
func RunFig1(env *Env) (*Fig1Result, error) {
	cfg := env.Cfg
	rng := env.RNG("fig1")
	inbox, err := env.Pool.SampleInbox(rng, cfg.InboxSize(), cfg.SpamPrevalence)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	folds, err := inbox.KFold(cfg.Folds)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}

	attacks := []*core.DictionaryAttack{
		core.NewDictionaryAttack(env.Optimal),
		core.NewDictionaryAttack(env.Usenet),
		core.NewDictionaryAttack(env.Aspell),
	}
	// Attack emails are deterministic; tokenize each once.
	attackTokens := make([][]string, len(attacks))
	for i, a := range attacks {
		attackTokens[i] = env.Tok.TokenSet(a.BuildAttack(rng))
	}

	type foldOut struct {
		baseline eval.Confusion
		cells    [][]eval.Confusion // [attack][fraction]
	}
	outs := make([]foldOut, len(folds))
	eval.Parallel(len(folds), cfg.Workers, func(fi int) {
		fold := folds[fi]
		base := eval.TrainFilter(fold.Train, sbayes.DefaultOptions(), env.Tok)
		test := eval.TokenizeCorpus(fold.Test, env.Tok)
		out := foldOut{cells: make([][]eval.Confusion, len(attacks))}
		out.baseline = eval.EvaluateTokenSet(base, test)
		trainN := fold.Train.Len()
		for ai := range attacks {
			f := base.Clone()
			prev := 0
			out.cells[ai] = make([]eval.Confusion, len(cfg.Fractions))
			for pi, frac := range cfg.Fractions {
				n := core.AttackSize(frac, trainN)
				if n > prev {
					f.LearnTokens(attackTokens[ai], true, n-prev)
					prev = n
				}
				out.cells[ai][pi] = eval.EvaluateTokenSet(f, test)
			}
		}
		outs[fi] = out
	})

	res := &Fig1Result{TrainSize: cfg.TrainSize, Folds: cfg.Folds}
	for _, o := range outs {
		res.Baseline.Add(o.baseline)
	}
	for ai, a := range attacks {
		series := Fig1Series{Attack: a.Name()}
		for pi, frac := range cfg.Fractions {
			pt := Fig1Point{
				Fraction:  frac,
				NumAttack: core.AttackSize(frac, folds[0].Train.Len()),
			}
			for _, o := range outs {
				pt.Confusion.Add(o.cells[ai][pi])
			}
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints the Figure 1 series: for each attack, the percent of
// test ham classified as spam (the paper's dashed lines) and as spam
// or unsure (solid lines) per attack fraction.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: dictionary attacks on an initial training set of %d messages (%d-fold CV).\n",
		r.TrainSize, r.Folds)
	fmt.Fprintf(&b, "Baseline (no attack): ham as spam %s, ham as spam+unsure %s, spam misclassified %s.\n",
		pct(r.Baseline.HamAsSpamRate()), pct(r.Baseline.HamMisclassifiedRate()),
		pct(r.Baseline.SpamMisclassifiedRate()))
	header := []string{"atk%", "#atk"}
	for _, s := range r.Series {
		header = append(header, s.Attack+" spam", s.Attack+" s+u")
	}
	t := newTable(header...)
	for pi := range r.Series[0].Points {
		row := []string{
			fmt.Sprintf("%.1f", 100*r.Series[0].Points[pi].Fraction),
			fmt.Sprintf("%d", r.Series[0].Points[pi].NumAttack),
		}
		for _, s := range r.Series {
			row = append(row,
				pct(s.Points[pi].Confusion.HamAsSpamRate()),
				pct(s.Points[pi].Confusion.HamMisclassifiedRate()))
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// SeriesByName returns the named series, or nil.
func (r *Fig1Result) SeriesByName(name string) *Fig1Series {
	for i := range r.Series {
		if r.Series[i].Attack == name {
			return &r.Series[i]
		}
	}
	return nil
}
