package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sbayes"
)

// Fig3Point aggregates target verdicts at one attack volume.
type Fig3Point struct {
	Fraction  float64
	NumAttack int
	Ham       int
	Unsure    int
	Spam      int
}

// SpamRate is the fraction of targets misclassified as spam (the
// figure's dashed line).
func (p Fig3Point) SpamRate() float64 {
	if t := p.Ham + p.Unsure + p.Spam; t > 0 {
		return float64(p.Spam) / float64(t)
	}
	return 0
}

// MisclassifiedRate is the fraction misclassified as unsure or spam
// (the solid line).
func (p Fig3Point) MisclassifiedRate() float64 {
	if t := p.Ham + p.Unsure + p.Spam; t > 0 {
		return float64(p.Unsure+p.Spam) / float64(t)
	}
	return 0
}

// Fig3Result is the attack-volume sweep of Figure 3.
type Fig3Result struct {
	InboxSize int
	GuessProb float64
	Points    []Fig3Point
}

// RunFig3 reproduces Figure 3: the focused attack's effect as the
// number of attack emails grows, with the per-token guess
// probability fixed (p = 0.5). The knowledge realization is drawn
// once per (repetition, target) and held fixed across the volume
// sweep, so each target's curve is a monotone threshold crossing —
// larger volumes only add copies of the same attack email.
func RunFig3(env *Env) (*Fig3Result, error) {
	cfg := env.Cfg
	res := &Fig3Result{InboxSize: cfg.FocusedInbox, GuessProb: cfg.FixedGuessProb}
	res.Points = make([]Fig3Point, len(cfg.VolumeSteps))
	for i, frac := range cfg.VolumeSteps {
		res.Points[i].Fraction = frac
		res.Points[i].NumAttack = core.AttackSize(frac, cfg.FocusedInbox)
	}
	for rep := 0; rep < cfg.FocusedReps; rep++ {
		r := env.RNG(fmt.Sprintf("fig3-rep%d", rep))
		fr, err := env.newFocusedRep(r)
		if err != nil {
			return nil, fmt.Errorf("fig3 rep %d: %w", rep, err)
		}
		for ti, target := range fr.targets {
			attack, err := core.NewFocusedAttack(target, cfg.FixedGuessProb, fr.spam)
			if err != nil {
				return nil, err
			}
			attackMsg := attack.BuildAttack(r.Split(fmt.Sprintf("t%d", ti)))
			tokens := env.Tok.TokenSet(attackMsg)
			// Sweep volumes incrementally: learn only the delta.
			trained := 0
			for pi := range res.Points {
				n := res.Points[pi].NumAttack
				if n > trained {
					fr.filter.LearnTokens(tokens, true, n-trained)
					trained = n
				}
				label, _ := fr.filter.Classify(target)
				switch label {
				case sbayes.Ham:
					res.Points[pi].Ham++
				case sbayes.Unsure:
					res.Points[pi].Unsure++
				default:
					res.Points[pi].Spam++
				}
			}
			if err := fr.filter.UnlearnTokens(tokens, true, trained); err != nil {
				return nil, fmt.Errorf("fig3: restoring filter: %w", err)
			}
		}
	}
	return res, nil
}

// Render prints the Figure 3 series.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: focused attack vs. number of attack emails (guess p=%.1f,\n", r.GuessProb)
	fmt.Fprintf(&b, "%d-message initial inbox, 50%% spam).\n", r.InboxSize)
	t := newTable("atk%", "#atk", "target as spam", "target as spam+unsure")
	for _, p := range r.Points {
		t.addRow(
			fmt.Sprintf("%.1f", 100*p.Fraction),
			fmt.Sprintf("%d", p.NumAttack),
			pct(p.SpamRate()),
			pct(p.MisclassifiedRate()))
	}
	b.WriteString(t.String())
	return b.String()
}
