package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/mail"
	"repro/internal/sbayes"
	"repro/internal/stats"
)

// focusedRep is one repetition of the focused-attack methodology
// (§4.3): a clean inbox sampled from the pool, a filter trained on
// it, and target ham emails drawn from the pool but not present in
// the inbox.
type focusedRep struct {
	filter  *sbayes.Filter
	inbox   *corpus.Corpus
	spam    []*mail.Message // header pool for attack emails
	targets []*mail.Message
}

// newFocusedRep builds one repetition.
func (e *Env) newFocusedRep(r *stats.RNG) (*focusedRep, error) {
	cfg := e.Cfg
	inbox, err := e.Pool.SampleInbox(r, cfg.FocusedInbox, cfg.SpamPrevalence)
	if err != nil {
		return nil, err
	}
	rep := &focusedRep{
		inbox:  inbox,
		filter: eval.TrainFilter(inbox, sbayes.DefaultOptions(), e.Tok),
		spam:   inbox.Spam(),
	}
	// Targets: pool ham not in the training inbox, as in the paper
	// (the target is a future email the victim has not yet received).
	inInbox := make(map[*mail.Message]bool, inbox.Len())
	for _, ex := range inbox.Examples {
		inInbox[ex.Msg] = true
	}
	var candidates []*mail.Message
	for _, m := range e.Pool.Ham() {
		if !inInbox[m] {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) < cfg.FocusedTargets {
		return nil, fmt.Errorf("experiments: only %d candidate targets, need %d",
			len(candidates), cfg.FocusedTargets)
	}
	for _, i := range r.Sample(len(candidates), cfg.FocusedTargets) {
		rep.targets = append(rep.targets, candidates[i])
	}
	return rep, nil
}

// attackAndClassify trains n copies of the attack email, classifies
// the target, and restores the filter exactly.
func (rep *focusedRep) attackAndClassify(e *Env, attackMsg *mail.Message, n int, target *mail.Message) sbayes.Label {
	tokens := e.Tok.TokenSet(attackMsg)
	rep.filter.LearnTokens(tokens, true, n)
	label, _ := rep.filter.Classify(target)
	if err := rep.filter.UnlearnTokens(tokens, true, n); err != nil {
		panic(fmt.Sprintf("experiments: unlearn after focused attack: %v", err))
	}
	return label
}
