package experiments

import (
	"strings"
	"testing"
)

func TestInformedShapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunInformed(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(env.Cfg.InformedBudgets) {
		t.Fatalf("%d cells", len(res.Cells))
	}
	if len(res.Sources) != 3 {
		t.Fatalf("sources = %v", res.Sources)
	}
	for _, c := range res.Cells {
		if len(c.Confusions) != 3 || len(c.Coverages) != 3 {
			t.Fatalf("budget %d incomplete", c.Budget)
		}
		// The informed source must cover at least as much future-ham
		// vocabulary as the random source at every budget.
		if c.Coverages[0] < c.Coverages[2] {
			t.Errorf("budget %d: informed coverage %v below random %v",
				c.Budget, c.Coverages[0], c.Coverages[2])
		}
	}
	// Informed damage is monotone-ish in budget: the largest budget
	// must do at least as much damage as the smallest.
	first := res.Cells[0].Confusions[0].HamMisclassifiedRate()
	last := res.Cells[len(res.Cells)-1].Confusions[0].HamMisclassifiedRate()
	if last < first {
		t.Errorf("informed damage fell with budget: %v -> %v", first, last)
	}
	// At the largest budget the informed attack must beat random.
	li := len(res.Cells) - 1
	if res.Cells[li].Confusions[0].HamMisclassifiedRate() < res.Cells[li].Confusions[2].HamMisclassifiedRate() {
		t.Error("informed attack not above random at max budget")
	}
	if !strings.Contains(res.Render(), "EXTENSION") {
		t.Error("render missing extension banner")
	}
}

func TestInformedSmallBudgetEffectiveness(t *testing.T) {
	// The §1 claim behind the extension: a small informed dictionary
	// achieves most of the damage of a full-size one.
	env := smallEnv(t)
	res, err := RunInformed(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) < 2 {
		t.Skip("need at least two budgets")
	}
	// Knowledge beats volume: SOME informed budget strictly below the
	// maximum must already match the random attack at the maximum
	// budget.
	largest := res.Cells[len(res.Cells)-1]
	randomAtMax := largest.Confusions[2].HamMisclassifiedRate()
	matched := false
	for _, c := range res.Cells[:len(res.Cells)-1] {
		if c.Confusions[0].HamMisclassifiedRate() >= randomAtMax {
			matched = true
			break
		}
	}
	if !matched {
		t.Errorf("no informed budget below %d matches random@max (%v)",
			largest.Budget, randomAtMax)
	}
}

func TestTransferShapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunTransfer(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d profiles", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Every profile must be a working spam filter before the
		// attack...
		if acc := row.Baseline.Accuracy(); acc < 0.8 {
			t.Errorf("%s baseline accuracy %v", row.Profile.Name, acc)
		}
		// ...and substantially degraded after it (the conclusion's
		// transfer claim).
		before := row.Baseline.HamMisclassifiedRate()
		after := row.Attacked.HamMisclassifiedRate()
		if after < before+0.3 {
			t.Errorf("%s: attack did not transfer (%v -> %v)", row.Profile.Name, before, after)
		}
	}
	out := res.Render()
	for _, want := range []string{"spambayes", "bogofilter", "sa-bayes"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestBackendTransferShapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunBackendTransfer(env)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]BackendTransferRow{}
	for _, row := range res.Rows {
		rows[row.Backend] = row
		// Every backend must be a working spam filter before the
		// attack.
		if acc := row.Baseline.Accuracy(); acc < 0.8 {
			t.Errorf("%s baseline accuracy %v", row.Backend, acc)
		}
	}
	sb, ok := rows["sbayes"]
	if !ok {
		t.Fatal("no sbayes row")
	}
	gr, ok := rows["graham"]
	if !ok {
		t.Fatal("no graham row")
	}
	// The dictionary attack breaks SpamBayes at this dose...
	if after := sb.Attacked.HamMisclassifiedRate(); after < sb.Baseline.HamMisclassifiedRate()+0.3 {
		t.Errorf("sbayes: attack did not bite (%v -> %v)", sb.Baseline.HamMisclassifiedRate(), after)
	}
	// ...while Graham's clamps and 15-token cap need roughly an order
	// of magnitude more volume: at the same dose it must not lose
	// more ham than SpamBayes (the measured dose-response gap).
	if gr.Attacked.HamMisclassifiedRate() > sb.Attacked.HamMisclassifiedRate() {
		t.Errorf("graham lost more ham (%v) than sbayes (%v) at the same dose",
			gr.Attacked.HamMisclassifiedRate(), sb.Attacked.HamMisclassifiedRate())
	}
	// Graham's verdict is binary: no unsure cells.
	if gr.Baseline.HamAsUnsure != 0 || gr.Attacked.HamAsUnsure != 0 {
		t.Errorf("graham produced unsure verdicts: %+v / %+v", gr.Baseline, gr.Attacked)
	}
	out := res.Render()
	for _, want := range []string{"sbayes", "graham", "EXTENSION"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTransferProfilesValid(t *testing.T) {
	for _, p := range TransferProfiles() {
		if err := p.Opts.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
		if p.Note == "" {
			t.Errorf("profile %s has no provenance note", p.Name)
		}
	}
}

func TestPseudospamShapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunPseudospam(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(env.Cfg.PseudospamFractions) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Baseline: the filter blocks the future spam.
	if res.Baseline.NotBlockedRate() > 0.3 {
		t.Errorf("baseline already passes %v of future spam", res.Baseline.NotBlockedRate())
	}
	// Delivery grows with attack volume and succeeds at the largest.
	last := res.Points[len(res.Points)-1]
	if last.NotBlockedRate() < 0.5 {
		t.Errorf("largest attack unblocks only %v", last.NotBlockedRate())
	}
	if last.NotBlockedRate() < res.Points[0].NotBlockedRate() {
		t.Error("delivery fell with attack volume")
	}
	// Integrity attack: collateral ham damage stays small.
	if hamLoss := last.HamConfusion.HamMisclassifiedRate(); hamLoss > 0.25 {
		t.Errorf("pseudospam attack broke %v of ham", hamLoss)
	}
	if !strings.Contains(res.Render(), "EXTENSION") {
		t.Error("render missing extension banner")
	}
}
