package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

// parseCSV parses output and returns header plus records, failing on
// malformed CSV.
func parseCSV(t *testing.T, out string) (header []string, records [][]string) {
	t.Helper()
	r := csv.NewReader(strings.NewReader(out))
	all, err := r.ReadAll()
	if err != nil {
		t.Fatalf("malformed CSV: %v", err)
	}
	if len(all) == 0 {
		t.Fatal("empty CSV")
	}
	return all[0], all[1:]
}

func TestFig1CSV(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig1(env)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	header, records := parseCSV(t, b.String())
	if header[0] != "attack" || header[3] != "ham_as_spam" {
		t.Errorf("header = %v", header)
	}
	// baseline + 3 series × |fractions| rows.
	want := 1 + 3*len(env.Cfg.Fractions)
	if len(records) != want {
		t.Errorf("%d records, want %d", len(records), want)
	}
	if records[0][0] != "baseline" {
		t.Errorf("first record = %v", records[0])
	}
}

func TestFig2And3CSV(t *testing.T) {
	env := smallEnv(t)
	r2, err := RunFig2(env)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	_, records := parseCSV(t, b.String())
	if len(records) != len(env.Cfg.GuessProbs) {
		t.Errorf("fig2: %d records", len(records))
	}

	r3, err := RunFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := r3.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	_, records = parseCSV(t, b.String())
	if len(records) != len(env.Cfg.VolumeSteps) {
		t.Errorf("fig3: %d records", len(records))
	}
}

func TestFig4CSV(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig4(env)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	header, records := parseCSV(t, b.String())
	if header[2] != "token" || len(records) == 0 {
		t.Errorf("fig4 CSV: header %v, %d records", header, len(records))
	}
}

func TestFig5CSV(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	_, records := parseCSV(t, b.String())
	want := len(res.Series) * (1 + len(env.Cfg.ThresholdFractions))
	if len(records) != want {
		t.Errorf("fig5: %d records, want %d", len(records), want)
	}
}

func TestRONIAndExtensionCSV(t *testing.T) {
	env := smallEnv(t)
	roni, err := RunRONI(env)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := roni.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	_, records := parseCSV(t, b.String())
	wantRONI := 7*env.Cfg.RONIAttackReps +
		len(roni.NonAttackSpamDeltas) + len(roni.NonAttackHamDeltas) + len(roni.FocusedDeltas)
	if len(records) != wantRONI {
		t.Errorf("roni: %d records, want %d", len(records), wantRONI)
	}

	ratio, err := RunTokenRatio(env)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := ratio.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if _, records := parseCSV(t, b.String()); len(records) != 2 {
		t.Errorf("ratios: %d records", len(records))
	}

	inf, err := RunInformed(env)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := inf.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if _, records := parseCSV(t, b.String()); len(records) != 3*len(env.Cfg.InformedBudgets) {
		t.Errorf("informed: %d records", len(records))
	}

	ps, err := RunPseudospam(env)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := ps.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if _, records := parseCSV(t, b.String()); len(records) != 1+len(env.Cfg.PseudospamFractions) {
		t.Errorf("pseudospam: %d records", len(records))
	}

	tr, err := RunTransfer(env)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if _, records := parseCSV(t, b.String()); len(records) != 3 {
		t.Errorf("transfer: %d records", len(records))
	}
}
