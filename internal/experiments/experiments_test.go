package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sharedEnv caches the small-scale environment across tests (building
// the usenet lexicon dominates setup time).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func smallEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(SmallScale())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestConfigValidate(t *testing.T) {
	if err := FullScale().Validate(); err != nil {
		t.Errorf("FullScale invalid: %v", err)
	}
	if err := SmallScale().Validate(); err != nil {
		t.Errorf("SmallScale invalid: %v", err)
	}
	bad := SmallScale()
	bad.Fractions = []float64{1.5}
	if err := bad.Validate(); err == nil {
		t.Error("fraction 1.5 validated")
	}
	bad = SmallScale()
	bad.Folds = 1
	if err := bad.Validate(); err == nil {
		t.Error("folds=1 validated")
	}
	bad = SmallScale()
	bad.GuessProbs = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty guess probs validated")
	}
}

func TestFullScaleMatchesPaperParameters(t *testing.T) {
	cfg := FullScale()
	if cfg.TrainSize != 10000 || cfg.Folds != 10 {
		t.Error("dictionary attack parameters differ from Table 1")
	}
	if cfg.FocusedInbox != 5000 || cfg.FocusedTargets != 20 || cfg.FocusedReps != 5 || cfg.FocusedCount != 300 {
		t.Error("focused attack parameters differ from Table 1")
	}
	if cfg.RONI.TrainSize != 20 || cfg.RONI.ValSize != 50 || cfg.RONI.Trials != 5 {
		t.Error("RONI parameters differ from Table 1")
	}
	if cfg.UsenetK != 90000 {
		t.Error("usenet lexicon size differs from the paper")
	}
	if got := cfg.Universe.CommonWords + cfg.Universe.StandardWords + cfg.Universe.FormalWords; got != 98568 {
		t.Errorf("aspell size = %d", got)
	}
	if len(cfg.GuessProbs) != 4 {
		t.Error("guess probability sweep differs from Figure 2")
	}
}

func TestInboxSize(t *testing.T) {
	cfg := FullScale()
	if got := cfg.InboxSize(); got != 11111 {
		t.Errorf("InboxSize = %d, want 11111", got)
	}
}

func TestEnvironment(t *testing.T) {
	env := smallEnv(t)
	cfg := env.Cfg
	if env.Pool.NumHam() != cfg.PoolHam || env.Pool.NumSpam() != cfg.PoolSpam {
		t.Errorf("pool = %d/%d", env.Pool.NumHam(), env.Pool.NumSpam())
	}
	if env.Usenet.Len() > cfg.UsenetK {
		t.Errorf("usenet lexicon = %d > %d", env.Usenet.Len(), cfg.UsenetK)
	}
	if env.Optimal.Len() != env.Universe.Size() {
		t.Error("optimal lexicon wrong size")
	}
	if !strings.Contains(env.Describe(), "overlap") {
		t.Errorf("Describe = %q", env.Describe())
	}
	// Deterministic RNG streams.
	if env.RNG("x").Uint64() != env.RNG("x").Uint64() {
		t.Error("env RNG not deterministic")
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1(FullScale())
	for _, want := range []string{
		"Training set size", "10000", "5000", "20",
		"Spam prevalence", "0.50",
		"Folds of validation", "5 repetitions",
		"Target emails",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	// Baseline must be accurate.
	if acc := res.Baseline.Accuracy(); acc < 0.9 {
		t.Errorf("baseline accuracy %v", acc)
	}
	opt := res.SeriesByName("optimal")
	asp := res.SeriesByName("aspell")
	if opt == nil || asp == nil {
		t.Fatal("missing series")
	}
	us := res.Series[1] // usenet-*k name depends on config
	// Shape 1: misclassification grows with attack fraction for the
	// optimal attack.
	first := opt.Points[0].Confusion.HamMisclassifiedRate()
	last := opt.Points[len(opt.Points)-1].Confusion.HamMisclassifiedRate()
	if last < first {
		t.Errorf("optimal attack not monotone: %v -> %v", first, last)
	}
	// Shape 2: at the largest fraction the filter is unusable.
	if last < 0.5 {
		t.Errorf("optimal attack at max fraction only %v misclassified", last)
	}
	// Shape 3: ordering optimal >= usenet >= aspell at the largest
	// fraction (allowing small-scale noise of a few points).
	li := len(opt.Points) - 1
	oRate := opt.Points[li].Confusion.HamMisclassifiedRate()
	uRate := us.Points[li].Confusion.HamMisclassifiedRate()
	aRate := asp.Points[li].Confusion.HamMisclassifiedRate()
	if oRate+0.05 < uRate || uRate+0.05 < aRate {
		t.Errorf("ordering violated: optimal %v, usenet %v, aspell %v", oRate, uRate, aRate)
	}
	// Shape 4: spam classification is barely affected (paper: "their
	// effect on spam is marginal").
	if sm := opt.Points[li].Confusion.SpamMisclassifiedRate(); sm > 0.2 {
		t.Errorf("optimal attack broke spam classification: %v", sm)
	}
	// Render sanity.
	out := res.Render()
	for _, want := range []string{"Figure 1", "optimal", "aspell", "atk%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(env.Cfg.GuessProbs) {
		t.Fatalf("%d cells", len(res.Cells))
	}
	total := env.Cfg.FocusedReps * env.Cfg.FocusedTargets
	for _, c := range res.Cells {
		if c.Total() != total {
			t.Errorf("p=%v total = %d, want %d", c.GuessProb, c.Total(), total)
		}
	}
	// Attack success grows with knowledge; full knowledge flips
	// almost everything.
	first := res.Cells[0].ChangedRate()
	last := res.Cells[len(res.Cells)-1].ChangedRate()
	if last < first {
		t.Errorf("success not monotone in p: %v -> %v", first, last)
	}
	if last < 0.7 {
		t.Errorf("high-knowledge attack changed only %v", last)
	}
	if !strings.Contains(res.Render(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig3Shapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(env.Cfg.VolumeSteps) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Fixed guess sets + growing volume: misclassification of targets
	// must be non-decreasing (threshold crossings only).
	prev := -1.0
	for _, p := range res.Points {
		mis := p.MisclassifiedRate()
		if mis < prev-1e-9 {
			t.Errorf("misclassification decreased: %v -> %v at %v", prev, mis, p.Fraction)
		}
		prev = mis
	}
	last := res.Points[len(res.Points)-1]
	if last.MisclassifiedRate() < 0.5 {
		t.Errorf("largest attack volume misclassified only %v of targets", last.MisclassifiedRate())
	}
	if last.SpamRate() < res.Points[0].SpamRate() {
		t.Errorf("target-as-spam fell from %v to %v across the sweep",
			res.Points[0].SpamRate(), last.SpamRate())
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFig4Shapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) == 0 {
		t.Fatal("no panels")
	}
	for _, tgt := range res.Targets {
		if len(tgt.Shifts) == 0 {
			t.Fatal("panel with no token shifts")
		}
		incMean, excMean := tgt.IncludedDeltaSummary()
		// Included tokens' scores rise; excluded tokens' scores fall
		// slightly (Figure 4's observation).
		if incMean <= 0 {
			t.Errorf("included tokens mean delta %v, want > 0", incMean)
		}
		if excMean >= 0.05 {
			t.Errorf("excluded tokens mean delta %v, want ≈<0", excMean)
		}
	}
	out := res.Render()
	for _, want := range []string{"Figure 4", "included", "score distribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRONIShapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunRONI(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 7 {
		t.Fatalf("%d variants, want 7", len(res.Variants))
	}
	// Every dictionary attack variant must be harmful on average.
	for _, v := range res.Variants {
		if s := v.Summary(); s.Mean >= 0 {
			t.Errorf("variant %s mean impact %v, want negative", v.Variant, s.Mean)
		}
	}
	// Attack impacts separate from non-attack impacts.
	if !res.Separable() {
		t.Errorf("not separable: best attack %v, worst non-attack %v",
			res.BestAttack(), res.WorstNonAttack())
	}
	// Full detection of attacks, no false positives on ham, few on
	// ordinary spam.
	for _, v := range res.Variants {
		if v.DetectionRate() < 1 {
			t.Errorf("variant %s detected at rate %v", v.Variant, v.DetectionRate())
		}
	}
	if res.NonAttackSpamRejected > len(res.NonAttackSpamDeltas)/5 {
		t.Errorf("rejected %d/%d ordinary spam", res.NonAttackSpamRejected, len(res.NonAttackSpamDeltas))
	}
	if res.NonAttackHamRejected > 0 {
		t.Errorf("rejected %d ordinary ham", res.NonAttackHamRejected)
	}
	// The paper's negative result: RONI cannot tell focused attack
	// emails from ordinary spam.
	if len(res.FocusedDeltas) == 0 {
		t.Error("no focused attack candidates measured")
	}
	if res.FocusedRejected > len(res.FocusedDeltas)/3 {
		t.Errorf("RONI flagged %d/%d focused attack emails; the paper reports it cannot",
			res.FocusedRejected, len(res.FocusedDeltas))
	}
	if !strings.Contains(res.Render(), "RONI") {
		t.Error("render missing title")
	}
}

func TestFig5Shapes(t *testing.T) {
	env := smallEnv(t)
	res, err := RunFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	undefended := res.SeriesByName("no defense")
	defended := res.SeriesByName("threshold-0.10")
	if undefended == nil || defended == nil {
		t.Fatal("missing series")
	}
	li := len(undefended.Cells) - 1
	// The defense must cut ham-as-spam at the largest attack.
	uRate := undefended.Cells[li].Confusion.HamAsSpamRate()
	dRate := defended.Cells[li].Confusion.HamAsSpamRate()
	if dRate > uRate {
		t.Errorf("defense increased ham-as-spam: %v vs %v", dRate, uRate)
	}
	// Paper: with the defense ham is (almost) never classified spam.
	if dRate > 0.1 {
		t.Errorf("defended ham-as-spam %v", dRate)
	}
	// And the documented side effect: much spam becomes unsure under
	// attack with dynamic thresholds.
	if su := defended.Cells[li].Confusion.SpamAsUnsureRate(); su == 0 {
		t.Log("no spam-as-unsure side effect at small scale (acceptable)")
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestTokenRatio(t *testing.T) {
	env := smallEnv(t)
	res, err := RunTokenRatio(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Ratio() <= 0 {
			t.Errorf("%s ratio = %v", row.Attack, row.Ratio())
		}
	}
	if !strings.Contains(res.Render(), "Token-volume") {
		t.Error("render missing title")
	}
}

func TestFig1AlternateParameters(t *testing.T) {
	// Table 1 also lists spam prevalence 0.75 and training size
	// 2,000/test 200; the attack ordering must survive both.
	cfg := SmallScale()
	cfg.SpamPrevalence = 0.75
	cfg.TrainSize = 300
	cfg.Fractions = []float64{0.01, 0.10}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFig1(env)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Baseline.Accuracy(); acc < 0.85 {
		t.Errorf("baseline accuracy at 0.75 prevalence: %v", acc)
	}
	li := len(res.Series[0].Points) - 1
	opt := res.SeriesByName("optimal").Points[li].Confusion.HamMisclassifiedRate()
	asp := res.SeriesByName("aspell").Points[li].Confusion.HamMisclassifiedRate()
	if opt < 0.5 {
		t.Errorf("optimal attack weak at 0.75 prevalence: %v", opt)
	}
	if opt+0.1 < asp {
		t.Errorf("ordering violated at 0.75 prevalence: optimal %v < aspell %v", opt, asp)
	}
}

func TestDeterminism(t *testing.T) {
	// Two environments with the same config produce identical Fig2
	// results.
	cfg := SmallScale()
	cfg.FocusedReps = 1
	cfg.FocusedTargets = 3
	run := func() []Fig2Cell {
		env, err := NewEnv(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFig2(env)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cells
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %+v vs %+v", a[i], b[i])
		}
	}
}
