package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mail"
	"repro/internal/sbayes"
)

// InformedCell compares word sources at one attack-dictionary budget.
type InformedCell struct {
	Budget int
	// One confusion per source, same order as InformedResult.Sources.
	Confusions []eval.Confusion
	// Coverages estimate each source's share of future-ham words.
	Coverages []float64
}

// InformedResult is the §3.4-extension experiment: at a fixed attack
// fraction, how does damage scale with dictionary size for an
// informed attacker (top-k words by estimated document frequency)
// versus the paper's Usenet refinement (top-k by Usenet frequency)
// versus an uninformed random-k dictionary?
type InformedResult struct {
	Fraction  float64
	NumAttack int
	Sample    int
	Sources   []string
	Cells     []InformedCell
}

// RunInformed runs the extension experiment. The attacker's knowledge
// is a fresh ham sample from the generator — same distribution as the
// victim's email, disjoint from the training inbox (§3.4: "the
// attacker may use information about the distribution of words in
// English text... characteristic vocabulary or jargon typical of the
// victim").
func RunInformed(env *Env) (*InformedResult, error) {
	cfg := env.Cfg
	r := env.RNG("informed")
	inbox, err := env.Pool.SampleInbox(r, cfg.TrainSize, cfg.SpamPrevalence)
	if err != nil {
		return nil, fmt.Errorf("informed: %w", err)
	}
	base := eval.TrainFilter(inbox, sbayes.DefaultOptions(), env.Tok)

	// Attacker knowledge sample and held-out evaluation ham.
	sample := make([]*mail.Message, cfg.InformedSample)
	for i := range sample {
		sample[i] = env.Gen.HamMessage(r)
	}
	testSize := cfg.TrainSize / 10
	test := env.Gen.Corpus(r, testSize/2, testSize/2)
	testTokens := eval.TokenizeCorpus(test, env.Tok)
	heldOut := test.Ham()

	n := core.AttackSize(cfg.InformedFraction, cfg.TrainSize)
	res := &InformedResult{
		Fraction:  cfg.InformedFraction,
		NumAttack: n,
		Sample:    cfg.InformedSample,
		Sources:   []string{"informed", "usenet-top", "random"},
	}

	usenetWords := env.Usenet.Words()
	allWords := env.Universe.All()
	for _, budget := range cfg.InformedBudgets {
		cell := InformedCell{Budget: budget}
		informed, err := core.NewInformedAttack(sample, budget)
		if err != nil {
			return nil, err
		}
		k := budget
		if k > len(usenetWords) {
			k = len(usenetWords)
		}
		topUsenet := usenetWords[:k]
		kr := budget
		if kr > len(allWords) {
			kr = len(allWords)
		}
		random := make([]string, kr)
		for i, j := range r.Split(fmt.Sprintf("rand-%d", budget)).Sample(len(allWords), kr) {
			random[i] = allWords[j]
		}
		for _, words := range [][]string{informed.Words(), topUsenet, random} {
			f := base.Clone()
			f.LearnTokens(dedupe(words), true, n)
			cell.Confusions = append(cell.Confusions, eval.EvaluateTokenSet(f, testTokens))
			cell.Coverages = append(cell.Coverages, coverage(words, heldOut))
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// dedupe removes duplicate words, preserving order.
func dedupe(words []string) []string {
	seen := make(map[string]struct{}, len(words))
	out := make([]string, 0, len(words))
	for _, w := range words {
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

// coverage is the share of held-out ham body words present in words.
func coverage(words []string, heldOut []*mail.Message) float64 {
	in := make(map[string]struct{}, len(words))
	for _, w := range words {
		in[w] = struct{}{}
	}
	total, hit := 0, 0
	for _, m := range heldOut {
		for _, w := range strings.Fields(strings.ToLower(m.Body)) {
			if len(w) < 3 {
				continue
			}
			total++
			if _, ok := in[w]; ok {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// Render prints the budget sweep.
func (r *InformedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION — informed (constrained-optimal) attack, §3.4 future work.\n")
	fmt.Fprintf(&b, "Attack fraction %.1f%% (%d emails); attacker observes %d ham messages.\n",
		100*r.Fraction, r.NumAttack, r.Sample)
	header := []string{"budget"}
	for _, s := range r.Sources {
		header = append(header, s+" s+u", s+" cover")
	}
	t := newTable(header...)
	for _, c := range r.Cells {
		row := []string{fmt.Sprintf("%d", c.Budget)}
		for i := range r.Sources {
			row = append(row,
				pct(c.Confusions[i].HamMisclassifiedRate()),
				pct(c.Coverages[i]))
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	b.WriteString("an informed attacker matches the full dictionary attacks with a far smaller dictionary\n")
	b.WriteString("(the paper's §1: \"a smaller dictionary of high-value features\").\n")
	return b.String()
}
