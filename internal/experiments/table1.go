package experiments

import (
	"fmt"
	"strings"
)

// Table1 renders the experimental parameter matrix (the paper's
// Table 1) from the active configuration, so the printed parameters
// are always the ones the other drivers actually use.
func Table1(cfg Config) string {
	joinF := func(fs []float64, format string) string {
		parts := make([]string, len(fs))
		for i, f := range fs {
			parts[i] = fmt.Sprintf(format, f)
		}
		return strings.Join(parts, ", ")
	}
	t := newTable("Parameter", "Dictionary Attack", "Focused Attack", "RONI Defense", "Threshold Defense")
	t.addRow("Training set size",
		fmt.Sprintf("%d", cfg.TrainSize),
		fmt.Sprintf("%d", cfg.FocusedInbox),
		fmt.Sprintf("%d", cfg.RONI.TrainSize),
		fmt.Sprintf("%d", cfg.TrainSize))
	t.addRow("Test set size",
		fmt.Sprintf("%d", cfg.InboxSize()-cfg.TrainSize),
		"N/A",
		fmt.Sprintf("%d", cfg.RONI.ValSize),
		fmt.Sprintf("%d", cfg.InboxSize()-cfg.TrainSize))
	t.addRow("Spam prevalence",
		fmt.Sprintf("%.2f", cfg.SpamPrevalence),
		fmt.Sprintf("%.2f", cfg.SpamPrevalence),
		fmt.Sprintf("%.2f", cfg.RONI.SpamPrevalence),
		fmt.Sprintf("%.2f", cfg.SpamPrevalence))
	t.addRow("Attack fraction",
		joinF(cfg.Fractions, "%.3f"),
		fmt.Sprintf("%.3f to %.3f (%d steps)",
			cfg.VolumeSteps[0], cfg.VolumeSteps[len(cfg.VolumeSteps)-1], len(cfg.VolumeSteps)),
		"per-message",
		joinF(cfg.ThresholdFractions, "%.3f"))
	t.addRow("Folds of validation",
		fmt.Sprintf("%d", cfg.Folds),
		fmt.Sprintf("%d repetitions", cfg.FocusedReps),
		fmt.Sprintf("%d repetitions", cfg.RONI.Trials),
		fmt.Sprintf("%d", cfg.ThresholdFolds))
	t.addRow("Target emails",
		"N/A",
		fmt.Sprintf("%d", cfg.FocusedTargets),
		"N/A",
		"N/A")
	return "Table 1: Parameters used in our experiments.\n" + t.String()
}
