package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/mail"
	"repro/internal/sbayes"
	"repro/internal/tokenize"

	// The backend transfer experiment runs every registered backend.
	_ "repro/internal/graham"
)

// FilterProfile bundles learner and tokenizer settings to mimic the
// learning element of a deployed filter. The paper's footnote 1: "the
// primary difference between the learning elements of these three
// filters [SpamBayes, BogoFilter, SpamAssassin] is in their
// tokenization methods" — all three share the Robinson/Fisher
// chi-square core this repository implements, so each profile is a
// parameterization of the same learner.
type FilterProfile struct {
	Name string
	Opts sbayes.Options
	Tok  tokenize.Options
	// Note documents how faithful the profile is.
	Note string
}

// TransferProfiles returns the three filter profiles of the paper's
// conclusion.
func TransferProfiles() []FilterProfile {
	spambayes := FilterProfile{
		Name: "spambayes",
		Opts: sbayes.DefaultOptions(),
		Tok:  tokenize.DefaultOptions(),
		Note: "reference configuration (x=0.5, s=0.45, 150 discriminators, cutoffs 0.15/0.9)",
	}

	// BogoFilter documented defaults: robx=0.52, robs=0.0178,
	// min_dev=0.1, ham_cutoff=0.45, spam_cutoff=0.99, and no cap on
	// the number of discriminating tokens. Its tokenizer does not
	// emit skip tokens for overlong words.
	bogoOpts := sbayes.DefaultOptions()
	bogoOpts.UnknownWordProb = 0.52
	bogoOpts.UnknownWordStrength = 0.0178
	bogoOpts.MinProbStrength = 0.1
	bogoOpts.MaxDiscriminators = 1 << 20
	bogoOpts.HamCutoff = 0.45
	bogoOpts.SpamCutoff = 0.99
	bogoTok := tokenize.DefaultOptions()
	bogoTok.SkipTokens = false
	bogofilter := FilterProfile{
		Name: "bogofilter",
		Opts: bogoOpts,
		Tok:  bogoTok,
		Note: "documented defaults (robx=0.52, robs=0.0178, min_dev=0.1, cutoffs 0.45/0.99, uncapped)",
	}

	// SpamAssassin's Bayes component: same chi-square combining with
	// its own tokenizer (it mines Received headers aggressively) and
	// effectively band-based use of the score (BAYES_xx rules). We
	// approximate the bands with cutoffs 0.35/0.78 and note that in
	// deployment the learner is only one signal among many — the
	// paper makes the same caveat (§1).
	saOpts := sbayes.DefaultOptions()
	saOpts.HamCutoff = 0.35
	saOpts.SpamCutoff = 0.78
	saTok := tokenize.DefaultOptions()
	saTok.MineReceived = true
	spamassassin := FilterProfile{
		Name: "sa-bayes",
		Opts: saOpts,
		Tok:  saTok,
		Note: "approximation: chi-square core, Received mining, score bands 0.35/0.78; one signal of many in deployment",
	}
	return []FilterProfile{spambayes, bogofilter, spamassassin}
}

// TransferRow is one profile's baseline and post-attack confusions.
type TransferRow struct {
	Profile  FilterProfile
	Baseline eval.Confusion
	Attacked eval.Confusion
}

// TransferResult is the conclusion-claim experiment: the same
// dictionary attack against the three filter profiles.
type TransferResult struct {
	TrainSize int
	Fraction  float64
	NumAttack int
	Attack    string
	Rows      []TransferRow
}

// transferSetup samples the shared train/test corpora and builds the
// Usenet dictionary attack at the informed-attack fraction (1% at
// full scale) — the common scaffold of both transfer exhibits.
func transferSetup(env *Env, rngLabel string) (inbox, test *corpus.Corpus, attackMsg *mail.Message, attackName string, n int, err error) {
	cfg := env.Cfg
	r := env.RNG(rngLabel)
	inbox, err = env.Pool.SampleInbox(r, cfg.TrainSize, cfg.SpamPrevalence)
	if err != nil {
		return nil, nil, nil, "", 0, err
	}
	testSize := cfg.TrainSize / 10
	test = env.Gen.Corpus(r, testSize/2, testSize/2)
	attack := core.NewDictionaryAttack(env.Usenet)
	n = core.AttackSize(cfg.InformedFraction, cfg.TrainSize)
	attackMsg = attack.BuildAttack(r)
	return inbox, test, attackMsg, attack.Name(), n, nil
}

// RunTransfer trains each profile on the same inbox, applies the
// Usenet dictionary attack, and measures ham misclassification before
// and after.
func RunTransfer(env *Env) (*TransferResult, error) {
	cfg := env.Cfg
	inbox, test, attackMsg, attackName, n, err := transferSetup(env, "transfer")
	if err != nil {
		return nil, fmt.Errorf("transfer: %w", err)
	}

	res := &TransferResult{
		TrainSize: cfg.TrainSize,
		Fraction:  cfg.InformedFraction,
		NumAttack: n,
		Attack:    attackName,
	}
	for _, p := range TransferProfiles() {
		tok := tokenize.New(p.Tok)
		f := eval.TrainFilter(inbox, p.Opts, tok)
		testTokens := eval.TokenizeCorpus(test, tok)
		row := TransferRow{Profile: p, Baseline: eval.EvaluateTokenSetBatch(f, testTokens, cfg.Workers)}
		f.LearnWeighted(attackMsg, true, n) //sbvet:unguarded the attack injection being measured: the experiment trains the poison in deliberately
		row.Attacked = eval.EvaluateTokenSetBatch(f, testTokens, cfg.Workers)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BackendTransferRow is one backend's baseline and post-attack
// confusions.
type BackendTransferRow struct {
	Backend  string
	Doc      string
	Baseline eval.Confusion
	Attacked eval.Confusion
}

// BackendTransferResult is the cross-learner transfer experiment: the
// same dictionary attack against every registered backend. Where
// RunTransfer varies the parameterization of one combining rule,
// this varies the learning algorithm itself — the paper's claim that
// the vulnerability is a property of the statistical approach.
type BackendTransferResult struct {
	TrainSize int
	Fraction  float64
	NumAttack int
	Attack    string
	Rows      []BackendTransferRow
}

// RunBackendTransfer trains every registered backend on the same
// inbox, applies the same Usenet dictionary attack to each, and
// measures ham misclassification before and after.
func RunBackendTransfer(env *Env) (*BackendTransferResult, error) {
	cfg := env.Cfg
	inbox, test, attackMsg, attackName, n, err := transferSetup(env, "backend-transfer")
	if err != nil {
		return nil, fmt.Errorf("backend transfer: %w", err)
	}

	res := &BackendTransferResult{
		TrainSize: cfg.TrainSize,
		Fraction:  cfg.InformedFraction,
		NumAttack: n,
		Attack:    attackName,
	}
	for _, name := range engine.Backends() {
		backend, err := engine.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("backend transfer: %w", err)
		}
		clf := eval.TrainBackend(backend.New, inbox)
		row := BackendTransferRow{
			Backend:  name,
			Doc:      backend.Doc,
			Baseline: eval.EvaluateBatch(clf, test, cfg.Workers),
		}
		clf.LearnWeighted(attackMsg, true, n) //sbvet:unguarded the attack injection being measured: the experiment trains the poison in deliberately
		row.Attacked = eval.EvaluateBatch(clf, test, cfg.Workers)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the backend transfer table.
func (r *BackendTransferResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION — attack transfer across learner backends (the attack poisons\n")
	fmt.Fprintf(&b, "token statistics, so it applies to any learner built on them). %s attack,\n", r.Attack)
	fmt.Fprintf(&b, "%.1f%% control (%d emails), train %d.\n", 100*r.Fraction, r.NumAttack, r.TrainSize)
	t := newTable("backend", "base acc", "base ham lost", "attacked ham spam", "attacked ham lost")
	for _, row := range r.Rows {
		t.addRow(row.Backend,
			pct(row.Baseline.Accuracy()),
			pct(row.Baseline.HamMisclassifiedRate()),
			pct(row.Attacked.HamAsSpamRate()),
			pct(row.Attacked.HamMisclassifiedRate()))
	}
	b.WriteString(t.String())
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %s: %s\n", row.Backend, row.Doc)
	}
	return b.String()
}

// Render prints the transfer table.
func (r *TransferResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION — attack transfer across filter profiles (paper conclusion:\n")
	fmt.Fprintf(&b, "\"our attacks should also apply to BogoFilter and the Bayesian component\n")
	fmt.Fprintf(&b, "of SpamAssassin\"). %s attack, %.1f%% control (%d emails), train %d.\n",
		r.Attack, 100*r.Fraction, r.NumAttack, r.TrainSize)
	t := newTable("profile", "base acc", "base ham lost", "attacked ham spam", "attacked ham lost")
	for _, row := range r.Rows {
		t.addRow(row.Profile.Name,
			pct(row.Baseline.Accuracy()),
			pct(row.Baseline.HamMisclassifiedRate()),
			pct(row.Attacked.HamAsSpamRate()),
			pct(row.Attacked.HamMisclassifiedRate()))
	}
	b.WriteString(t.String())
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %s: %s\n", row.Profile.Name, row.Profile.Note)
	}
	return b.String()
}
