package experiments

import (
	"fmt"
	"strings"
)

// table accumulates aligned rows for textual rendering. It is a small
// helper shared by all experiment Render methods.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addRowf(format string, args ...any) {
	t.addRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// String renders with column alignment and a separator line.
func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// pct formats a fraction as a percentage with one decimal.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
