// Package experiments contains one driver per exhibit of the paper's
// evaluation (Table 1, Figures 1–5, and the §5.1 RONI statistics plus
// the §4.2 token-ratio check). Each driver returns a typed result and
// renders the same rows/series the paper reports; cmd/subvert and the
// top-level benchmarks are thin wrappers around this package.
//
// Every driver takes an Env (shared corpus, lexicons, generator) and
// is deterministic for a given Config.Seed.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/textgen"
)

// Config collects every experimental parameter. FullScale reproduces
// Table 1; SmallScale is a fast configuration with the same structure
// for tests and benchmarks.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Universe and Gen configure the synthetic data substitution.
	Universe textgen.UniverseConfig
	Gen      textgen.Config

	// PoolHam and PoolSpam size the generated source corpus (the
	// TREC-2005 stand-in) per class.
	PoolHam  int
	PoolSpam int

	// UsenetStreamTokens and UsenetK configure the Usenet lexicon:
	// top UsenetK words of a UsenetStreamTokens-token sample.
	UsenetStreamTokens int
	UsenetK            int

	// Dictionary attack sweep (Figure 1 and Figure 5).
	TrainSize      int       // training messages per fold (10,000)
	Folds          int       // cross-validation folds (10)
	SpamPrevalence float64   // training spam fraction (0.5)
	Fractions      []float64 // attack fractions of the training set

	// Focused attack (Figures 2–4).
	FocusedInbox   int       // clean inbox size (5,000)
	FocusedTargets int       // target emails (20)
	FocusedReps    int       // repetitions with fresh inboxes (5)
	FocusedCount   int       // attack emails for Figure 2 (300)
	GuessProbs     []float64 // Figure 2 knowledge sweep
	VolumeSteps    []float64 // Figure 3 attack fractions
	FixedGuessProb float64   // Figures 3–4 (0.5)

	// RONI defense (§5.1).
	RONI           core.RONIConfig
	RONINonAttack  int // non-attack spam candidates (120)
	RONIAttackReps int // repetitions per attack variant (15)

	// Dynamic threshold defense (Figure 5).
	ThresholdUtilities []float64 // 0.05 and 0.10
	ThresholdFractions []float64 // attack fractions
	ThresholdFolds     int       // folds (5)

	// Extension: informed (constrained-optimal) attack, §3.4 future
	// work. InformedBudgets are the attack-dictionary sizes swept;
	// InformedSample is how many ham messages the attacker observes;
	// InformedFraction is the attack fraction used in the comparison.
	InformedBudgets  []int
	InformedSample   int
	InformedFraction float64

	// Extension: pseudospam (ham-labeled) attack, §2.2 remark.
	// PseudospamFractions sweeps the attack volume.
	PseudospamFractions []float64

	// Workers bounds fold-level parallelism (0 = all folds at once).
	Workers int
}

// FullScale returns the paper's parameters (Table 1).
func FullScale() Config {
	return Config{
		Seed:     20080415, // LEET'08 workshop date
		Universe: textgen.DefaultUniverseConfig(),
		Gen:      textgen.DefaultConfig(),

		PoolHam:  6500,
		PoolSpam: 6500,

		UsenetStreamTokens: 20_000_000,
		UsenetK:            90_000,

		TrainSize:      10_000,
		Folds:          10,
		SpamPrevalence: 0.5,
		Fractions:      []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.10},

		FocusedInbox:   5_000,
		FocusedTargets: 20,
		FocusedReps:    5,
		FocusedCount:   300,
		GuessProbs:     []float64{0.1, 0.3, 0.5, 0.9},
		VolumeSteps:    volumeSteps(),
		FixedGuessProb: 0.5,

		RONI:           core.DefaultRONIConfig(),
		RONINonAttack:  120,
		RONIAttackReps: 15,

		ThresholdUtilities: []float64{0.05, 0.10},
		ThresholdFractions: []float64{0.001, 0.01, 0.05, 0.10},
		ThresholdFolds:     5,

		InformedBudgets:  []int{5000, 10000, 25000, 50000, 90000},
		InformedSample:   1000,
		InformedFraction: 0.01,

		PseudospamFractions: []float64{0.001, 0.005, 0.01, 0.02, 0.05},

		Workers: 0,
	}
}

// volumeSteps is the Figure 3 sweep: attack fractions from 0.4% to
// 10% in 25 steps (Table 1 lists 25 increments for the focused
// volume sweep; the figure's x-axis runs 0–10% control).
func volumeSteps() []float64 {
	steps := make([]float64, 0, 25)
	for i := 1; i <= 25; i++ {
		steps = append(steps, 0.10*float64(i)/25)
	}
	return steps
}

// SmallScale returns a structurally identical configuration sized for
// unit tests and benchmarks (runs in seconds).
func SmallScale() Config {
	cfg := FullScale()
	cfg.Universe = textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	}
	cfg.PoolHam, cfg.PoolSpam = 500, 500
	cfg.UsenetStreamTokens = 300_000
	cfg.UsenetK = 900
	cfg.TrainSize = 400
	cfg.Folds = 4
	cfg.Fractions = []float64{0.01, 0.05, 0.10}
	cfg.FocusedInbox = 300
	cfg.FocusedTargets = 6
	cfg.FocusedReps = 2
	cfg.FocusedCount = 40
	cfg.VolumeSteps = []float64{0.01, 0.02, 0.05, 0.10, 0.20}
	cfg.RONINonAttack = 20
	cfg.RONIAttackReps = 3
	cfg.ThresholdFractions = []float64{0.01, 0.10}
	cfg.ThresholdFolds = 2
	cfg.InformedBudgets = []int{100, 300, 600, 900}
	cfg.InformedSample = 150
	cfg.InformedFraction = 0.05
	cfg.PseudospamFractions = []float64{0.01, 0.05, 0.10}
	return cfg
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if err := c.Universe.Validate(); err != nil {
		return err
	}
	if err := c.Gen.Validate(); err != nil {
		return err
	}
	if err := c.RONI.Validate(); err != nil {
		return err
	}
	switch {
	case c.PoolHam < 1 || c.PoolSpam < 1:
		return fmt.Errorf("experiments: pool sizes %d/%d", c.PoolHam, c.PoolSpam)
	case c.UsenetStreamTokens < 1 || c.UsenetK < 1:
		return fmt.Errorf("experiments: usenet config %d/%d", c.UsenetStreamTokens, c.UsenetK)
	case c.TrainSize < 2 || c.Folds < 2:
		return fmt.Errorf("experiments: train size %d, folds %d", c.TrainSize, c.Folds)
	case c.SpamPrevalence <= 0 || c.SpamPrevalence >= 1:
		return fmt.Errorf("experiments: prevalence %v", c.SpamPrevalence)
	case len(c.Fractions) == 0 || len(c.GuessProbs) == 0 || len(c.VolumeSteps) == 0:
		return fmt.Errorf("experiments: empty sweep")
	case c.FocusedInbox < 10 || c.FocusedTargets < 1 || c.FocusedReps < 1 || c.FocusedCount < 1:
		return fmt.Errorf("experiments: focused config")
	case c.FixedGuessProb <= 0 || c.FixedGuessProb > 1:
		return fmt.Errorf("experiments: fixed guess probability %v", c.FixedGuessProb)
	case c.RONINonAttack < 1 || c.RONIAttackReps < 1:
		return fmt.Errorf("experiments: RONI candidates")
	case len(c.ThresholdUtilities) == 0 || len(c.ThresholdFractions) == 0 || c.ThresholdFolds < 2:
		return fmt.Errorf("experiments: threshold config")
	case len(c.InformedBudgets) == 0 || c.InformedSample < 1:
		return fmt.Errorf("experiments: informed attack config")
	case c.InformedFraction <= 0 || c.InformedFraction >= 1:
		return fmt.Errorf("experiments: informed attack fraction %v", c.InformedFraction)
	case len(c.PseudospamFractions) == 0:
		return fmt.Errorf("experiments: pseudospam config")
	}
	for _, k := range c.InformedBudgets {
		if k < 1 {
			return fmt.Errorf("experiments: informed budget %d", k)
		}
	}
	for _, f := range c.PseudospamFractions {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("experiments: pseudospam fraction %v", f)
		}
	}
	for _, f := range append(append([]float64{}, c.Fractions...), c.ThresholdFractions...) {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("experiments: attack fraction %v", f)
		}
	}
	for _, p := range c.GuessProbs {
		if p <= 0 || p > 1 {
			return fmt.Errorf("experiments: guess probability %v", p)
		}
	}
	return nil
}

// InboxSize returns the working-set size for the dictionary-attack
// cross-validation: K-fold CV over this many messages trains on
// TrainSize per fold.
func (c Config) InboxSize() int {
	return c.TrainSize * c.Folds / (c.Folds - 1)
}
