package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/sbayes"
)

// Fig5Cell is one (defense, fraction) cell aggregated over folds.
type Fig5Cell struct {
	Fraction  float64
	NumAttack int
	// Theta0/Theta1 are the mean fitted thresholds across folds
	// (static defaults for the no-defense row).
	Theta0    float64
	Theta1    float64
	Confusion eval.Confusion
}

// Fig5Series is one defense's curve.
type Fig5Series struct {
	Defense string
	Cells   []Fig5Cell
}

// Fig5Result holds the dynamic-threshold defense sweep.
type Fig5Result struct {
	TrainSize int
	Folds     int
	Attack    string
	Series    []Fig5Series
}

// RunFig5 reproduces Figure 5: the dictionary attack (Usenet word
// source) against an undefended filter and against the dynamic
// threshold defense at utilities 0.05 and 0.10.
//
// Threshold fitting follows §5.2: the poisoned training set is split
// in half, a probe filter is trained on one half, the other half is
// scored, and θ0/θ1 are fit to the utility targets. Because all
// attack copies are identical, the poisoned halves are simulated
// exactly by training the clean half plus n/2 weighted attack copies
// and scoring the clean other half plus the attack email with
// multiplicity n/2.
func RunFig5(env *Env) (*Fig5Result, error) {
	cfg := env.Cfg
	rng := env.RNG("fig5")
	inbox, err := env.Pool.SampleInbox(rng, cfg.TrainSize*cfg.ThresholdFolds/(cfg.ThresholdFolds-1), cfg.SpamPrevalence)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	folds, err := inbox.KFold(cfg.ThresholdFolds)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	attack := core.NewDictionaryAttack(env.Usenet)
	attackTokens := env.Tok.TokenSet(attack.BuildAttack(rng))

	defenses := make([]string, 0, 1+len(cfg.ThresholdUtilities))
	defenses = append(defenses, "no defense")
	for _, u := range cfg.ThresholdUtilities {
		defenses = append(defenses, core.DynamicThreshold{Utility: u}.Name())
	}

	type cellOut struct {
		conf   eval.Confusion
		theta0 float64
		theta1 float64
	}
	// outs[fold][defense][fraction]
	outs := make([][][]cellOut, len(folds))
	fracs := append([]float64{0}, cfg.ThresholdFractions...)

	eval.Parallel(len(folds), cfg.Workers, func(fi int) {
		fold := folds[fi]
		opts := sbayes.DefaultOptions()
		base := eval.TrainFilter(fold.Train, opts, env.Tok)
		test := eval.TokenizeCorpus(fold.Test, env.Tok)
		// Split the clean training fold in half for threshold fitting.
		half1, half2, _ := fold.Train.SplitFraction(0.5)
		probeBase := eval.TrainFilter(half1, opts, env.Tok)
		half2Tokens := eval.TokenizeCorpus(half2, env.Tok)

		out := make([][]cellOut, len(defenses))
		for di := range out {
			out[di] = make([]cellOut, len(fracs))
		}
		poisoned := base.Clone()
		probe := probeBase.Clone()
		prevN := 0
		for pi, frac := range fracs {
			n := core.AttackSize(frac, fold.Train.Len())
			if n > prevN {
				poisoned.LearnTokens(attackTokens, true, n-prevN)
				probe.LearnTokens(attackTokens, true, (n-prevN+1)/2)
				prevN = n
			}
			// Validation scores under the poisoned probe: the clean
			// half plus n/2 attack copies (identical, scored once).
			var hamScores, spamScores []float64
			for _, ex := range half2Tokens {
				s := probe.ScoreTokens(ex.Tokens)
				if ex.Spam {
					spamScores = append(spamScores, s)
				} else {
					hamScores = append(hamScores, s)
				}
			}
			if n/2 > 0 {
				s := probe.ScoreTokens(attackTokens)
				for i := 0; i < n/2; i++ {
					spamScores = append(spamScores, s)
				}
			}
			for di, name := range defenses {
				theta0, theta1 := opts.HamCutoff, opts.SpamCutoff
				if di > 0 {
					d := core.DynamicThreshold{Utility: cfg.ThresholdUtilities[di-1]}
					theta0, theta1, err = d.FitThresholds(hamScores, spamScores)
					if err != nil {
						panic(fmt.Sprintf("fig5: fitting thresholds: %v", err))
					}
				}
				evalFilter := poisoned.Clone()
				if err := evalFilter.SetThresholds(theta0, theta1); err != nil {
					panic(fmt.Sprintf("fig5: applying thresholds (%v, %v): %v", theta0, theta1, err))
				}
				out[di][pi] = cellOut{
					conf:   eval.EvaluateTokenSet(evalFilter, test),
					theta0: theta0,
					theta1: theta1,
				}
				_ = name
			}
		}
		outs[fi] = out
	})

	res := &Fig5Result{TrainSize: cfg.TrainSize, Folds: cfg.ThresholdFolds, Attack: attack.Name()}
	for di, name := range defenses {
		series := Fig5Series{Defense: name}
		for pi, frac := range fracs {
			cell := Fig5Cell{Fraction: frac, NumAttack: core.AttackSize(frac, folds[0].Train.Len())}
			for fi := range outs {
				cell.Confusion.Add(outs[fi][di][pi].conf)
				cell.Theta0 += outs[fi][di][pi].theta0 / float64(len(outs))
				cell.Theta1 += outs[fi][di][pi].theta1 / float64(len(outs))
			}
			series.Cells = append(series.Cells, cell)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// SeriesByName returns the named defense series, or nil.
func (r *Fig5Result) SeriesByName(name string) *Fig5Series {
	for i := range r.Series {
		if r.Series[i].Defense == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Render prints the Figure 5 table: ham-as-spam (dashed) and ham
// misclassified (solid) per defense, plus the spam-as-unsure side
// effect the paper highlights.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: dynamic threshold defense vs. the %s dictionary attack\n", r.Attack)
	fmt.Fprintf(&b, "(%d-message training set, %d folds).\n", r.TrainSize, r.Folds)
	header := []string{"atk%"}
	for _, s := range r.Series {
		header = append(header, s.Defense+" spam", s.Defense+" s+u", s.Defense+" spam→u")
	}
	t := newTable(header...)
	for ci := range r.Series[0].Cells {
		row := []string{fmt.Sprintf("%.1f", 100*r.Series[0].Cells[ci].Fraction)}
		for _, s := range r.Series {
			c := s.Cells[ci]
			row = append(row,
				pct(c.Confusion.HamAsSpamRate()),
				pct(c.Confusion.HamMisclassifiedRate()),
				pct(c.Confusion.SpamAsUnsureRate()))
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean fitted thresholds at the largest attack: ")
	for _, s := range r.Series[1:] {
		last := s.Cells[len(s.Cells)-1]
		fmt.Fprintf(&b, "%s θ0=%.3f θ1=%.3f  ", s.Defense, last.Theta0, last.Theta1)
	}
	b.WriteByte('\n')
	return b.String()
}
