package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// TokenRatioRow is one attack's token-volume arithmetic at a given
// fraction (§4.2: at 2% control the Usenet attack carries ≈6.4× the
// corpus's tokens, the Aspell attack ≈7×).
type TokenRatioRow struct {
	Attack       string
	Fraction     float64
	NumAttack    int
	AttackTokens int
	CorpusTokens int
}

// Ratio is attack tokens over corpus tokens.
func (r TokenRatioRow) Ratio() float64 {
	if r.CorpusTokens == 0 {
		return 0
	}
	return float64(r.AttackTokens) / float64(r.CorpusTokens)
}

// TokenRatioResult holds the §4.2 check.
type TokenRatioResult struct {
	TrainSize      int
	MeanBodyTokens float64
	Rows           []TokenRatioRow
}

// RunTokenRatio reproduces the paper's token-volume observation: the
// attack is small in message count but large in token count.
func RunTokenRatio(env *Env) (*TokenRatioResult, error) {
	cfg := env.Cfg
	// Average tokens per message over a corpus sample (token stream
	// length, multiplicity included, as the paper counts).
	sample := env.Pool.Examples
	if len(sample) > 2000 {
		sample = sample[:2000]
	}
	total := 0
	for _, e := range sample {
		total += len(env.Tok.Tokenize(e.Msg))
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("token ratio: empty pool")
	}
	mean := float64(total) / float64(len(sample))
	corpusTokens := int(mean * float64(cfg.TrainSize))

	res := &TokenRatioResult{TrainSize: cfg.TrainSize, MeanBodyTokens: mean}
	const fraction = 0.02
	n := core.AttackSize(fraction, cfg.TrainSize)
	for _, lex := range []interface {
		Name() string
		Len() int
	}{env.Usenet, env.Aspell} {
		res.Rows = append(res.Rows, TokenRatioRow{
			Attack:       lex.Name(),
			Fraction:     fraction,
			NumAttack:    n,
			AttackTokens: n * lex.Len(),
			CorpusTokens: corpusTokens,
		})
	}
	return res, nil
}

// Render prints the §4.2 arithmetic.
func (r *TokenRatioResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Token-volume check (§4.2): mean %.0f tokens/message, %d-message training set.\n",
		r.MeanBodyTokens, r.TrainSize)
	t := newTable("attack", "atk%", "#atk", "attack tokens", "corpus tokens", "ratio")
	for _, row := range r.Rows {
		t.addRow(row.Attack,
			fmt.Sprintf("%.0f", 100*row.Fraction),
			fmt.Sprintf("%d", row.NumAttack),
			fmt.Sprintf("%d", row.AttackTokens),
			fmt.Sprintf("%d", row.CorpusTokens),
			fmt.Sprintf("%.1fx", row.Ratio()))
	}
	b.WriteString(t.String())
	return b.String()
}
