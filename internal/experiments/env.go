package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/stats"
	"repro/internal/textgen"
	"repro/internal/tokenize"
)

// Env is the shared experimental environment: the synthetic source
// corpus standing in for TREC 2005, the attack lexicons, and the
// generator. Building it once and passing it to each driver mirrors
// the paper's single-corpus methodology and keeps the expensive
// artifacts (the 20M-token Usenet sample) shared.
type Env struct {
	Cfg      Config
	Universe *textgen.Universe
	Gen      *textgen.Generator
	// Pool is the source corpus experiments sample inboxes from.
	Pool *corpus.Corpus
	// Aspell, Usenet and Optimal are the §3.2/§3.4 word sources.
	Aspell  *lexicon.Lexicon
	Usenet  *lexicon.Lexicon
	Optimal *lexicon.Lexicon
	// Tok is the tokenizer every filter uses.
	Tok *tokenize.Tokenizer

	root *stats.RNG
}

// NewEnv builds the environment for a configuration.
func NewEnv(cfg Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u, err := textgen.NewUniverse(cfg.Universe)
	if err != nil {
		return nil, err
	}
	g, err := textgen.New(u, cfg.Gen)
	if err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)
	pool := g.Corpus(root.Split("pool"), cfg.PoolHam, cfg.PoolSpam)
	env := &Env{
		Cfg:      cfg,
		Universe: u,
		Gen:      g,
		Pool:     pool,
		Aspell:   lexicon.Aspell(u),
		Optimal:  lexicon.Optimal(u),
		Usenet:   lexicon.UsenetFromGenerator(g, root.Split("usenet"), cfg.UsenetStreamTokens, cfg.UsenetK),
		Tok:      tokenize.Default(),
		root:     root,
	}
	return env, nil
}

// RNG derives the deterministic random stream for a named experiment.
func (e *Env) RNG(label string) *stats.RNG { return e.root.Split(label) }

// Describe summarizes the environment for experiment headers.
func (e *Env) Describe() string {
	return fmt.Sprintf(
		"universe=%d words; pool=%d ham + %d spam; aspell=%d; usenet=%d (overlap %d); optimal=%d",
		e.Universe.Size(), e.Pool.NumHam(), e.Pool.NumSpam(),
		e.Aspell.Len(), e.Usenet.Len(), e.Usenet.Overlap(e.Aspell), e.Optimal.Len())
}
