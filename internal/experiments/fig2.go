package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sbayes"
)

// Fig2Cell aggregates target verdicts for one knowledge level.
type Fig2Cell struct {
	GuessProb float64
	Ham       int
	Unsure    int
	Spam      int
}

// Total returns the number of attacked targets behind the cell.
func (c Fig2Cell) Total() int { return c.Ham + c.Unsure + c.Spam }

// ChangedRate is the fraction of targets whose classification the
// attack changed away from ham (the paper's headline: 60% at p=0.3).
func (c Fig2Cell) ChangedRate() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.Unsure+c.Spam) / float64(c.Total())
}

// Fig2Result is the knowledge sweep of Figure 2.
type Fig2Result struct {
	InboxSize   int
	AttackCount int
	Cells       []Fig2Cell
}

// RunFig2 reproduces Figure 2: the focused attack's effect as a
// function of the probability p of guessing each target token, with
// a fixed number of attack emails (300 against a 5,000-message
// inbox). Each repetition samples a fresh inbox and targets; each
// (target, p) pair draws one knowledge realization and injects
// AttackCount identical attack emails.
func RunFig2(env *Env) (*Fig2Result, error) {
	cfg := env.Cfg
	res := &Fig2Result{InboxSize: cfg.FocusedInbox, AttackCount: cfg.FocusedCount}
	res.Cells = make([]Fig2Cell, len(cfg.GuessProbs))
	for i, p := range cfg.GuessProbs {
		res.Cells[i].GuessProb = p
	}
	for rep := 0; rep < cfg.FocusedReps; rep++ {
		r := env.RNG(fmt.Sprintf("fig2-rep%d", rep))
		fr, err := env.newFocusedRep(r)
		if err != nil {
			return nil, fmt.Errorf("fig2 rep %d: %w", rep, err)
		}
		for ti, target := range fr.targets {
			for pi, p := range cfg.GuessProbs {
				attack, err := core.NewFocusedAttack(target, p, fr.spam)
				if err != nil {
					return nil, err
				}
				ar := r.Split(fmt.Sprintf("t%d-p%d", ti, pi))
				label := fr.attackAndClassify(env, attack.BuildAttack(ar), cfg.FocusedCount, target)
				switch label {
				case sbayes.Ham:
					res.Cells[pi].Ham++
				case sbayes.Unsure:
					res.Cells[pi].Unsure++
				default:
					res.Cells[pi].Spam++
				}
			}
		}
	}
	return res, nil
}

// Render prints the stacked-bar data of Figure 2.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: focused attack vs. probability of guessing target tokens\n")
	fmt.Fprintf(&b, "(%d attack emails, %d-message initial inbox, 50%% spam).\n", r.AttackCount, r.InboxSize)
	t := newTable("guess p", "ham", "unsure", "spam", "% changed")
	for _, c := range r.Cells {
		tot := float64(c.Total())
		t.addRow(
			fmt.Sprintf("%.1f", c.GuessProb),
			pct(float64(c.Ham)/tot),
			pct(float64(c.Unsure)/tot),
			pct(float64(c.Spam)/tot),
			pct(c.ChangedRate()))
	}
	b.WriteString(t.String())
	return b.String()
}
