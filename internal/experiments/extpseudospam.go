package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mail"
	"repro/internal/sbayes"
)

// PseudospamPoint aggregates outcomes at one attack volume.
type PseudospamPoint struct {
	Fraction  float64
	NumAttack int
	// Future-spam verdicts after the attack.
	SpamAsHam    int
	SpamAsUnsure int
	SpamAsSpam   int
	// HamConfusion tracks collateral damage on legitimate mail.
	HamConfusion eval.Confusion
}

// DeliveredRate is the fraction of the attacker's future spam that
// reaches the inbox (classified ham).
func (p PseudospamPoint) DeliveredRate() float64 {
	t := p.SpamAsHam + p.SpamAsUnsure + p.SpamAsSpam
	if t == 0 {
		return 0
	}
	return float64(p.SpamAsHam) / float64(t)
}

// NotBlockedRate is the fraction not classified spam.
func (p PseudospamPoint) NotBlockedRate() float64 {
	t := p.SpamAsHam + p.SpamAsUnsure + p.SpamAsSpam
	if t == 0 {
		return 0
	}
	return float64(p.SpamAsHam+p.SpamAsUnsure) / float64(t)
}

// PseudospamResult is the §2.2-extension experiment: ham-labeled
// attack emails that whitewash the vocabulary of the attacker's
// future spam (a Causative Integrity attack — the paper's main body
// is all Causative Availability).
type PseudospamResult struct {
	InboxSize int
	Targets   int
	Baseline  PseudospamPoint
	Points    []PseudospamPoint
}

// RunPseudospam runs the extension experiment: a clean inbox is
// poisoned with n ham-labeled attack emails carrying the future
// spam's vocabulary; the future spam's verdicts and the collateral
// effect on legitimate mail are measured per attack volume.
func RunPseudospam(env *Env) (*PseudospamResult, error) {
	cfg := env.Cfg
	r := env.RNG("pseudospam")
	inbox, err := env.Pool.SampleInbox(r, cfg.FocusedInbox, cfg.SpamPrevalence)
	if err != nil {
		return nil, fmt.Errorf("pseudospam: %w", err)
	}
	filter := eval.TrainFilter(inbox, sbayes.DefaultOptions(), env.Tok)

	future := make([]*mail.Message, cfg.FocusedTargets)
	for i := range future {
		future[i] = env.Gen.SpamMessage(r)
	}
	hamProbeCorpus := env.Gen.Corpus(r, cfg.FocusedTargets*5, 0)
	hamProbes := eval.TokenizeCorpus(hamProbeCorpus, env.Tok)

	attack, err := core.NewPseudospamAttack(future, inbox.Ham())
	if err != nil {
		return nil, err
	}
	attackTokens := env.Tok.TokenSet(attack.BuildAttack(r))

	measure := func() PseudospamPoint {
		var p PseudospamPoint
		for _, m := range future {
			switch l, _ := filter.Classify(m); l {
			case sbayes.Ham:
				p.SpamAsHam++
			case sbayes.Unsure:
				p.SpamAsUnsure++
			default:
				p.SpamAsSpam++
			}
		}
		p.HamConfusion = eval.EvaluateTokenSet(filter, hamProbes)
		return p
	}

	res := &PseudospamResult{InboxSize: cfg.FocusedInbox, Targets: cfg.FocusedTargets}
	res.Baseline = measure()
	trained := 0
	for _, frac := range cfg.PseudospamFractions {
		n := core.AttackSize(frac, cfg.FocusedInbox)
		if n > trained {
			filter.LearnTokens(attackTokens, false, n-trained) // trained as HAM
			trained = n
		}
		point := measure()
		point.Fraction = frac
		point.NumAttack = n
		res.Points = append(res.Points, point)
	}
	if err := filter.UnlearnTokens(attackTokens, false, trained); err != nil {
		return nil, fmt.Errorf("pseudospam: restoring filter: %w", err)
	}
	return res, nil
}

// Render prints the volume sweep.
func (r *PseudospamResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXTENSION — pseudospam (ham-labeled) attack, §2.2 remark.\n")
	fmt.Fprintf(&b, "%d-message inbox; %d future spam messages to deliver.\n", r.InboxSize, r.Targets)
	t := newTable("atk%", "#atk", "spam delivered", "spam not blocked", "ham as ham")
	t.addRow("0.0", "0",
		pct(r.Baseline.DeliveredRate()),
		pct(r.Baseline.NotBlockedRate()),
		pct(1-r.Baseline.HamConfusion.HamMisclassifiedRate()))
	for _, p := range r.Points {
		t.addRow(
			fmt.Sprintf("%.1f", 100*p.Fraction),
			fmt.Sprintf("%d", p.NumAttack),
			pct(p.DeliveredRate()),
			pct(p.NotBlockedRate()),
			pct(1-p.HamConfusion.HamMisclassifiedRate()))
	}
	b.WriteString(t.String())
	b.WriteString("ham-labeled attack emails place the attacker's spam in the inbox while leaving\n")
	b.WriteString("legitimate mail untouched — the Integrity counterpart the paper flags in §2.2.\n")
	return b.String()
}
