package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sbayes"
	"repro/internal/stats"
)

// TokenShift records one token's spam score before and after a
// focused attack — one point of a Figure 4 scatter plot.
type TokenShift struct {
	Token    string
	Before   float64
	After    float64
	Included bool // whether the attacker guessed the token
}

// Fig4Target is one representative target's panel.
type Fig4Target struct {
	// Outcome is the target's post-attack verdict (the paper shows
	// one target each for spam, unsure, ham).
	Outcome sbayes.Label
	// GuessProb is the knowledge level that produced this outcome.
	GuessProb   float64
	ScoreBefore float64
	ScoreAfter  float64
	Shifts      []TokenShift
}

// Fig4Result holds up to three representative panels.
type Fig4Result struct {
	GuessProb   float64
	AttackCount int
	Targets     []Fig4Target
}

// RunFig4 reproduces Figure 4: for representative targets of each
// post-attack outcome (misclassified as spam, as unsure, and still
// ham), the per-token spam scores before and after a focused attack.
// Included (guessed) tokens jump toward 1; excluded tokens drift
// slightly down because the attack inflates the total spam count.
//
// Panels are searched first at the fixed p = 0.5 knowledge level; if
// some outcome never occurs there (at full scale p = 0.5 flips nearly
// every target), the search widens over the Figure 2 knowledge sweep
// so that, as in the paper, a panel of each outcome can be shown.
// Each panel records the knowledge level that produced it.
func RunFig4(env *Env) (*Fig4Result, error) {
	cfg := env.Cfg
	r := env.RNG("fig4")
	fr, err := env.newFocusedRep(r)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	res := &Fig4Result{GuessProb: cfg.FixedGuessProb, AttackCount: cfg.FocusedCount}

	// Knowledge levels to search, preferred level first.
	probs := []float64{cfg.FixedGuessProb}
	for _, p := range cfg.GuessProbs {
		if p != cfg.FixedGuessProb {
			probs = append(probs, p)
		}
	}

	byOutcome := map[sbayes.Label]*Fig4Target{}
	for _, p := range probs {
		if len(byOutcome) == 3 {
			break
		}
		for ti, target := range fr.targets {
			if len(byOutcome) == 3 {
				break
			}
			attack, err := core.NewFocusedAttack(target, p, fr.spam)
			if err != nil {
				return nil, err
			}
			ar := r.Split(fmt.Sprintf("t%d-p%v", ti, p))
			attackMsg := attack.BuildAttack(ar)
			attackTokens := env.Tok.TokenSet(attackMsg)
			included := make(map[string]bool, len(attackTokens))
			for _, tok := range attackTokens {
				included[tok] = true
			}

			before := fr.filter.Explain(target)
			_, scoreBefore := fr.filter.Classify(target)
			fr.filter.LearnTokens(attackTokens, true, cfg.FocusedCount)
			after := fr.filter.Explain(target)
			label, scoreAfter := fr.filter.Classify(target)
			if err := fr.filter.UnlearnTokens(attackTokens, true, cfg.FocusedCount); err != nil {
				return nil, fmt.Errorf("fig4: restoring filter: %w", err)
			}
			if byOutcome[label] != nil {
				continue
			}
			panel := &Fig4Target{Outcome: label, GuessProb: p, ScoreBefore: scoreBefore, ScoreAfter: scoreAfter}
			afterScore := make(map[string]float64, len(after))
			for _, c := range after {
				afterScore[c.Token] = c.Score
			}
			for _, c := range before {
				panel.Shifts = append(panel.Shifts, TokenShift{
					Token:    c.Token,
					Before:   c.Score,
					After:    afterScore[c.Token],
					Included: included[c.Token],
				})
			}
			byOutcome[label] = panel
		}
	}
	// Stable panel order: spam, unsure, ham (as in the figure).
	for _, label := range []sbayes.Label{sbayes.Spam, sbayes.Unsure, sbayes.Ham} {
		if p := byOutcome[label]; p != nil {
			res.Targets = append(res.Targets, *p)
		}
	}
	if len(res.Targets) == 0 {
		return nil, fmt.Errorf("fig4: no targets attacked")
	}
	return res, nil
}

// IncludedDeltaSummary summarizes the score change of included vs.
// excluded tokens for a panel.
func (t *Fig4Target) IncludedDeltaSummary() (incMean, excMean float64) {
	var inc, exc []float64
	for _, s := range t.Shifts {
		d := s.After - s.Before
		if s.Included {
			inc = append(inc, d)
		} else {
			exc = append(exc, d)
		}
	}
	return stats.Mean(inc), stats.Mean(exc)
}

// Render prints, per representative target, the score movement
// summary, the largest token shifts, and before/after histograms —
// the textual equivalent of the Figure 4 scatter plots.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: token scores before/after the focused attack (p=%.1f, %d attack emails).\n",
		r.GuessProb, r.AttackCount)
	for _, tgt := range r.Targets {
		fmt.Fprintf(&b, "\n-- target classified %s after attack (p=%.1f, score %.3f -> %.3f) --\n",
			tgt.Outcome, tgt.GuessProb, tgt.ScoreBefore, tgt.ScoreAfter)
		incMean, excMean := tgt.IncludedDeltaSummary()
		fmt.Fprintf(&b, "mean score change: included tokens %+.3f, excluded tokens %+.3f\n", incMean, excMean)

		shifts := append([]TokenShift(nil), tgt.Shifts...)
		sort.Slice(shifts, func(i, j int) bool {
			di := shifts[i].After - shifts[i].Before
			dj := shifts[j].After - shifts[j].Before
			if di != dj {
				return di > dj
			}
			return shifts[i].Token < shifts[j].Token
		})
		t := newTable("token", "before", "after", "included")
		show := 8
		if len(shifts) < 2*show {
			show = len(shifts) / 2
		}
		for _, s := range shifts[:show] {
			t.addRow(s.Token, fmt.Sprintf("%.3f", s.Before), fmt.Sprintf("%.3f", s.After), fmt.Sprintf("%v", s.Included))
		}
		if len(shifts) > 2*show {
			t.addRow("...", "", "", "")
		}
		for _, s := range shifts[len(shifts)-show:] {
			t.addRow(s.Token, fmt.Sprintf("%.3f", s.Before), fmt.Sprintf("%.3f", s.After), fmt.Sprintf("%v", s.Included))
		}
		b.WriteString(t.String())

		beforeH := stats.NewHistogram(0, 1, 10)
		afterH := stats.NewHistogram(0, 1, 10)
		for _, s := range tgt.Shifts {
			beforeH.Add(s.Before)
			afterH.Add(s.After)
		}
		fmt.Fprintf(&b, "score distribution before attack:\n%s", beforeH.Render(30))
		fmt.Fprintf(&b, "score distribution after attack:\n%s", afterH.Render(30))
	}
	return b.String()
}
