package graham

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/tokenize"
)

// Binary database format (all integers unsigned varints), mirroring
// the sbayes format but with Graham's two occurrence maps:
//
//	magic   "GRDB\x01"
//	ngood, nbad
//	ngoodTokens, ngoodTokens × { len(token), token bytes, count }
//	nbadTokens,  nbadTokens  × { len(token), token bytes, count }
//
// Tokens are written in sorted order, so identical databases always
// serialize identically. Options and tokenizer configuration are the
// caller's to manage (they are code, not data).

var persistMagic = [5]byte{'G', 'R', 'D', 'B', 1}

// Save writes the token database to w.
func (f *Filter) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(f.ngood)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(f.nbad)); err != nil {
		return err
	}
	for _, counts := range []map[string]int{f.good, f.bad} {
		if err := writeUvarint(uint64(len(counts))); err != nil {
			return err
		}
		tokens := make([]string, 0, len(counts))
		for t := range counts {
			tokens = append(tokens, t)
		}
		sort.Strings(tokens)
		for _, t := range tokens {
			if err := writeUvarint(uint64(len(t))); err != nil {
				return err
			}
			if _, err := bw.WriteString(t); err != nil {
				return err
			}
			if err := writeUvarint(uint64(counts[t])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load replaces the filter's trained state with a database written by
// Save, keeping its options and tokenizer. On error the filter is
// left unchanged.
func (f *Filter) Load(r io.Reader) error {
	loaded, err := Load(r, f.opts, f.tok)
	if err != nil {
		return err
	}
	f.ngood, f.nbad, f.good, f.bad = loaded.ngood, loaded.nbad, loaded.good, loaded.bad
	return nil
}

// Load reads a token database written by Save, returning a filter
// with the given options and tokenizer (nil selects defaults).
func Load(r io.Reader, opts Options, tok *tokenize.Tokenizer) (*Filter, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graham: reading magic: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("graham: bad magic %q", magic[:])
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("graham: reading %s: %w", what, err)
		}
		return v, nil
	}
	// One below 1<<31 so the counts stay positive even in a 32-bit
	// int.
	const maxReasonable = 1<<31 - 1
	f := New(opts, tok)
	ngood, err := readUvarint("ngood")
	if err != nil {
		return nil, err
	}
	nbad, err := readUvarint("nbad")
	if err != nil {
		return nil, err
	}
	if ngood > maxReasonable || nbad > maxReasonable {
		return nil, fmt.Errorf("graham: implausible database header (%d, %d)", ngood, nbad)
	}
	f.ngood, f.nbad = int(ngood), int(nbad)
	tokenBuf := make([]byte, 0, 64)
	for _, counts := range []map[string]int{f.good, f.bad} {
		ntokens, err := readUvarint("token count")
		if err != nil {
			return nil, err
		}
		if ntokens > maxReasonable {
			return nil, fmt.Errorf("graham: implausible token count %d", ntokens)
		}
		for i := uint64(0); i < ntokens; i++ {
			tlen, err := readUvarint("token length")
			if err != nil {
				return nil, err
			}
			if tlen > 1<<20 {
				return nil, fmt.Errorf("graham: implausible token length %d", tlen)
			}
			if uint64(cap(tokenBuf)) < tlen {
				tokenBuf = make([]byte, tlen)
			}
			tokenBuf = tokenBuf[:tlen]
			if _, err := io.ReadFull(br, tokenBuf); err != nil {
				return nil, fmt.Errorf("graham: reading token: %w", err)
			}
			n, err := readUvarint("occurrence count")
			if err != nil {
				return nil, err
			}
			if n > maxReasonable {
				return nil, fmt.Errorf("graham: implausible counts for %q", tokenBuf)
			}
			counts[string(tokenBuf)] = int(n)
		}
	}
	return f, nil
}
