package graham

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/tokenize"
)

// Binary database format, version 2 (all integers unsigned varints),
// mirroring the sbayes v2 format but with Graham's two occurrence
// sides sharing one symbol table:
//
//	magic   "GRDB\x02"
//	ngood, nbad
//	nsyms,     nsyms     × { len(token), token bytes }   — symbol table
//	ngoodrecs, ngoodrecs × { id, count }                 — ham side
//	nbadrecs,  nbadrecs  × { id, count }                 — spam side
//
// Symbols are written in sorted token order (the union of both sides'
// nonzero tokens) and each record section with strictly increasing
// ids, so identical databases always serialize identically. The
// decoder treats ids as untrusted input: out-of-bounds, repeated or
// decreasing ids and duplicate symbols are rejected
// (FuzzGrahamSaveLoad exercises exactly that surface). Version 1
// ("GRDB\x01": ngood, nbad, then per side ntokens × {token, count})
// remains loadable; Save always writes v2. Options and tokenizer
// configuration are the caller's to manage (they are code, not data).

const (
	persistV1 = 1
	persistV2 = 2
)

var persistMagic = [5]byte{'G', 'R', 'D', 'B', persistV2}

// Save writes the token database to w (format version 2).
func (f *Filter) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(f.ngood)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(f.nbad)); err != nil {
		return err
	}
	// Canonical symbol table: the union of nonzero tokens, sorted.
	toks := make([]string, 0, f.vocab)
	for id := range f.good {
		if f.good[id] != 0 || f.bad[id] != 0 {
			toks = append(toks, f.syms.Name(tokenize.Sym(id)))
		}
	}
	sort.Strings(toks)
	if err := writeUvarint(uint64(len(toks))); err != nil {
		return err
	}
	for _, t := range toks {
		if err := writeUvarint(uint64(len(t))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t); err != nil {
			return err
		}
	}
	// Record sections keyed by canonical (sorted-order) id.
	for side := 0; side < 2; side++ {
		counts := f.good
		if side == 1 {
			counts = f.bad
		}
		nrecs := 0
		for _, t := range toks {
			if id, ok := f.syms.Lookup(t); ok && counts[id] != 0 {
				nrecs++
			}
		}
		if err := writeUvarint(uint64(nrecs)); err != nil {
			return err
		}
		for i, t := range toks {
			id, _ := f.syms.Lookup(t)
			if counts[id] == 0 {
				continue
			}
			if err := writeUvarint(uint64(i)); err != nil {
				return err
			}
			if err := writeUvarint(uint64(counts[id])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load replaces the filter's trained state with a database written by
// Save, keeping its options and tokenizer. On error the filter is
// left unchanged.
func (f *Filter) Load(r io.Reader) error {
	loaded, err := Load(r, f.opts, f.tok)
	if err != nil {
		return err
	}
	f.ngood, f.nbad = loaded.ngood, loaded.nbad
	f.syms, f.good, f.bad, f.vocab = loaded.syms, loaded.good, loaded.bad, loaded.vocab
	return nil
}

// One below 1<<31 so the counts stay positive even in an int32.
const maxReasonable = 1<<31 - 1

// Load reads a token database written by Save (format version 1 or
// 2), returning a filter with the given options and tokenizer (nil
// selects defaults).
func Load(r io.Reader, opts Options, tok *tokenize.Tokenizer) (*Filter, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graham: reading magic: %w", err)
	}
	if magic[0] != 'G' || magic[1] != 'R' || magic[2] != 'D' || magic[3] != 'B' {
		return nil, fmt.Errorf("graham: bad magic %q", magic[:])
	}
	f := New(opts, tok)
	switch magic[4] {
	case persistV1:
		if err := loadV1(br, f); err != nil {
			return nil, err
		}
	case persistV2:
		if err := loadV2(br, f); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("graham: unsupported format version %d", magic[4])
	}
	return f, nil
}

func readUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("graham: reading %s: %w", what, err)
	}
	return v, nil
}

// readToken reads one length-prefixed token into buf, enforcing the
// length bound.
func readToken(br *bufio.Reader, buf []byte) ([]byte, error) {
	tlen, err := readUvarint(br, "token length")
	if err != nil {
		return nil, err
	}
	if tlen > 1<<20 {
		return nil, fmt.Errorf("graham: implausible token length %d", tlen)
	}
	if uint64(cap(buf)) < tlen {
		buf = make([]byte, tlen)
	}
	buf = buf[:tlen]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("graham: reading token: %w", err)
	}
	return buf, nil
}

// loadV1 parses the version-1 body: per side, ntokens × {token,
// count}.
func loadV1(br *bufio.Reader, f *Filter) error {
	ngood, err := readUvarint(br, "ngood")
	if err != nil {
		return err
	}
	nbad, err := readUvarint(br, "nbad")
	if err != nil {
		return err
	}
	if ngood > maxReasonable || nbad > maxReasonable {
		return fmt.Errorf("graham: implausible database header (%d, %d)", ngood, nbad)
	}
	f.ngood, f.nbad = int(ngood), int(nbad)
	tokenBuf := make([]byte, 0, 64)
	for side := 0; side < 2; side++ {
		isSpam := side == 1
		ntokens, err := readUvarint(br, "token count")
		if err != nil {
			return err
		}
		if ntokens > maxReasonable {
			return fmt.Errorf("graham: implausible token count %d", ntokens)
		}
		for i := uint64(0); i < ntokens; i++ {
			tokenBuf, err = readToken(br, tokenBuf)
			if err != nil {
				return err
			}
			n, err := readUvarint(br, "occurrence count")
			if err != nil {
				return err
			}
			if n > maxReasonable {
				return fmt.Errorf("graham: implausible counts for %q", tokenBuf)
			}
			f.addCount(f.intern(string(tokenBuf)), isSpam, int32(n))
		}
	}
	return nil
}

// loadV2 parses the version-2 body: the shared symbol table, then one
// record section per side. Ids come from untrusted input: they must
// be strictly increasing and in bounds per section, and the symbol
// table must not repeat a token.
func loadV2(br *bufio.Reader, f *Filter) error {
	ngood, err := readUvarint(br, "ngood")
	if err != nil {
		return err
	}
	nbad, err := readUvarint(br, "nbad")
	if err != nil {
		return err
	}
	if ngood > maxReasonable || nbad > maxReasonable {
		return fmt.Errorf("graham: implausible database header (%d, %d)", ngood, nbad)
	}
	f.ngood, f.nbad = int(ngood), int(nbad)
	nsyms, err := readUvarint(br, "nsyms")
	if err != nil {
		return err
	}
	if nsyms > maxReasonable {
		return fmt.Errorf("graham: implausible symbol count %d", nsyms)
	}
	tokenBuf := make([]byte, 0, 64)
	for i := uint64(0); i < nsyms; i++ {
		tokenBuf, err = readToken(br, tokenBuf)
		if err != nil {
			return err
		}
		// Interning a fresh token assigns exactly id i; anything else
		// means the table repeats a token.
		if id := f.intern(string(tokenBuf)); uint64(id) != i {
			return fmt.Errorf("graham: duplicate symbol %q", tokenBuf)
		}
	}
	for side := 0; side < 2; side++ {
		isSpam := side == 1
		nrecs, err := readUvarint(br, "record count")
		if err != nil {
			return err
		}
		if nrecs > nsyms {
			return fmt.Errorf("graham: more records (%d) than symbols (%d)", nrecs, nsyms)
		}
		prev := int64(-1)
		for i := uint64(0); i < nrecs; i++ {
			id, err := readUvarint(br, "record id")
			if err != nil {
				return err
			}
			if id >= nsyms {
				return fmt.Errorf("graham: record id %d out of bounds (nsyms %d)", id, nsyms)
			}
			if int64(id) <= prev {
				return fmt.Errorf("graham: record ids not strictly increasing (%d after %d)", id, prev)
			}
			prev = int64(id)
			n, err := readUvarint(br, "occurrence count")
			if err != nil {
				return err
			}
			if n > maxReasonable {
				return fmt.Errorf("graham: implausible counts for record %d", id)
			}
			f.addCount(tokenize.Sym(id), isSpam, int32(n))
		}
	}
	return nil
}
