package graham

// Native fuzz target for the GRDB persistence format, the Graham
// counterpart of sbayes's FuzzSBayesSaveLoad: any input either errors
// (leaving an in-place receiver untouched) or loads into a filter
// whose re-serialization is byte-stable — never a panic, never
// silently loaded partial state. Seed corpus entries live in
// testdata/fuzz/FuzzGrahamSaveLoad.

import (
	"bytes"
	"testing"
)

// canonicalDB returns the canonical Save bytes of a small trained
// filter — the well-formed seed the fuzzer mutates from.
func canonicalDB() []byte {
	f := NewDefault()
	for i := 0; i < 6; i++ {
		f.Learn(mkMsg("meeting budget report quarterly forecast\n"), false)
		f.Learn(mkMsg("viagra lottery winner claim prize\n"), true)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzGrahamSaveLoad(f *testing.F) {
	valid := canonicalDB()
	f.Add([]byte{})
	f.Add([]byte("GRDB"))       // truncated magic
	f.Add([]byte("SBDB\x01"))   // foreign database
	f.Add(valid)                // well-formed
	f.Add(valid[:len(valid)/2]) // truncated body
	f.Add(append(valid, 0x01))  // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		// In-place Load on a trained filter: an error must leave the
		// receiver byte-for-byte unchanged (no partial state).
		trained := NewDefault()
		trained.Learn(mkMsg("meeting budget report\n"), false)
		trained.Learn(mkMsg("lottery winner prize\n"), true)
		var before bytes.Buffer
		if err := trained.Save(&before); err != nil {
			t.Fatal(err)
		}
		if err := trained.Load(bytes.NewReader(data)); err != nil {
			var after bytes.Buffer
			if err := trained.Save(&after); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before.Bytes(), after.Bytes()) {
				t.Fatal("failed Load mutated the receiver")
			}
			return
		}

		// The input parsed: Save → Load → Save must be byte-stable
		// (Save canonicalizes token order, so one round trip reaches
		// the fixed point).
		var first bytes.Buffer
		if err := trained.Save(&first); err != nil {
			t.Fatalf("saving loaded filter: %v", err)
		}
		reloaded, err := Load(bytes.NewReader(first.Bytes()), DefaultOptions(), nil)
		if err != nil {
			t.Fatalf("re-loading just-saved database: %v", err)
		}
		ns0, nh0 := trained.Counts()
		ns1, nh1 := reloaded.Counts()
		if ns0 != ns1 || nh0 != nh1 {
			t.Fatalf("counts (%d, %d) != reloaded (%d, %d)", ns0, nh0, ns1, nh1)
		}
		var second bytes.Buffer
		if err := reloaded.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("save -> load -> save is not byte-identical")
		}
	})
}
