// Package graham implements Paul Graham's "A Plan for Spam" (2002)
// classifier — reference [7] of the paper and the direct ancestor of
// the Robinson/Fisher method SpamBayes uses (§2.3 cites Robinson's
// scheme as "based on ideas by Graham"). It serves as the baseline
// learner: the attacks poison it through exactly the same mechanism
// (token spam counts), so the repository can show the vulnerability
// is a property of the statistical approach, not of one combining
// rule.
//
// Differences from the SpamBayes learner, per Graham's essay:
//
//   - token occurrences count with multiplicity, and ham counts are
//     doubled ("to bias the probabilities slightly against false
//     positives");
//   - tokens seen fewer than five times score a fixed 0.4;
//   - known-token scores clamp to [0.01, 0.99];
//   - the fifteen most interesting tokens (furthest from 0.5) combine
//     by naive Bayes product: Πp / (Πp + Π(1−p));
//   - the verdict is binary — spam above 0.9, ham otherwise (no
//     unsure band).
//
// Measured finding (TestDictionaryAttackPoisonsGraham): the
// dictionary attack transfers to this baseline but needs roughly an
// order of magnitude more attack volume than against SpamBayes — the
// hard clamps and the 15-token cap let a handful of surviving
// pure-ham tokens veto a large poisoned majority, where SpamBayes'
// 150-token chi-square combination lets the poisoned mass win.
package graham

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/tokenize"
)

// Filter satisfies the backend-generic contract. It is not a
// TokenLearner: Graham counts token occurrences with multiplicity, so
// training cannot be reconstructed from a distinct-token set.
var (
	_ engine.Classifier      = (*Filter)(nil)
	_ engine.TokenClassifier = (*Filter)(nil)
	_ engine.Persistable     = (*Filter)(nil)
	_ engine.Tokenizing      = (*Filter)(nil)
	_ engine.Cloner          = (*Filter)(nil)
)

func init() {
	engine.Register(engine.Backend{
		Name: "graham",
		Doc:  "Graham (2002) baseline: clamped naive-Bayes over the 15 most interesting tokens, binary verdict",
		New:  func() engine.Classifier { return NewDefault() },
	})
}

// Options holds Graham's tunables (defaults are the essay's values).
type Options struct {
	// UnknownProb is the score of rarely seen tokens (0.4).
	UnknownProb float64
	// MinOccurrences is the evidence floor below which a token is
	// treated as unknown (5).
	MinOccurrences int
	// MaxTokens is the number of most-interesting tokens combined
	// (15).
	MaxTokens int
	// HamWeight multiplies ham occurrence counts (2).
	HamWeight int
	// ClampLow and ClampHigh bound known-token scores (0.01, 0.99).
	ClampLow  float64
	ClampHigh float64
	// SpamCutoff is the binary decision threshold (0.9).
	SpamCutoff float64
}

// DefaultOptions returns the essay's parameters.
func DefaultOptions() Options {
	return Options{
		UnknownProb:    0.4,
		MinOccurrences: 5,
		MaxTokens:      15,
		HamWeight:      2,
		ClampLow:       0.01,
		ClampHigh:      0.99,
		SpamCutoff:     0.9,
	}
}

// Validate checks option consistency.
func (o Options) Validate() error {
	switch {
	case o.UnknownProb <= 0 || o.UnknownProb >= 1:
		return fmt.Errorf("graham: UnknownProb %v", o.UnknownProb)
	case o.MinOccurrences < 1:
		return fmt.Errorf("graham: MinOccurrences %d", o.MinOccurrences)
	case o.MaxTokens < 1:
		return fmt.Errorf("graham: MaxTokens %d", o.MaxTokens)
	case o.HamWeight < 1:
		return fmt.Errorf("graham: HamWeight %d", o.HamWeight)
	case o.ClampLow <= 0 || o.ClampHigh >= 1 || o.ClampLow >= o.ClampHigh:
		return fmt.Errorf("graham: clamps (%v, %v)", o.ClampLow, o.ClampHigh)
	case o.SpamCutoff <= 0 || o.SpamCutoff >= 1:
		return fmt.Errorf("graham: SpamCutoff %v", o.SpamCutoff)
	}
	return nil
}

// Filter is the Graham classifier.
type Filter struct {
	opts  Options
	tok   *tokenize.Tokenizer
	ngood int
	nbad  int
	good  map[string]int // token occurrences in ham (with multiplicity)
	bad   map[string]int // token occurrences in spam
}

// New returns an empty filter (nil tokenizer selects the default).
// It panics on invalid options.
func New(opts Options, tok *tokenize.Tokenizer) *Filter {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if tok == nil {
		tok = tokenize.Default()
	}
	return &Filter{
		opts: opts,
		tok:  tok,
		good: make(map[string]int),
		bad:  make(map[string]int),
	}
}

// NewDefault returns an empty filter with essay defaults.
func NewDefault() *Filter { return New(DefaultOptions(), nil) }

// Options returns the filter's options.
func (f *Filter) Options() Options { return f.opts }

// Tokenizer returns the filter's tokenizer.
func (f *Filter) Tokenizer() *tokenize.Tokenizer { return f.tok }

// Counts returns the trained message counts (spam, ham).
func (f *Filter) Counts() (nbad, ngood int) { return f.nbad, f.ngood }

// VocabSize returns the number of distinct tokens in the database.
func (f *Filter) VocabSize() int {
	n := len(f.bad)
	for t := range f.good {
		if _, also := f.bad[t]; !also {
			n++
		}
	}
	return n
}

// Clone returns an independent deep copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		opts:  f.opts,
		tok:   f.tok,
		ngood: f.ngood,
		nbad:  f.nbad,
		good:  make(map[string]int, len(f.good)),
		bad:   make(map[string]int, len(f.bad)),
	}
	for t, n := range f.good {
		c.good[t] = n
	}
	for t, n := range f.bad {
		c.bad[t] = n
	}
	return c
}

// CloneClassifier is Clone behind the engine.Cloner capability, for
// interface-typed callers such as Engine.RetrainIncremental.
func (f *Filter) CloneClassifier() engine.Classifier { return f.Clone() }

// SetThresholds replaces the binary decision cutoff, satisfying the
// engine.ThresholdSetter capability the dynamic-threshold defense
// refits through. Graham's rule has no unsure band, so only the spam
// cutoff (θ1) is installed; hamCutoff is accepted for interface
// uniformity and validated (it must not exceed spamCutoff) but
// otherwise unused. The fit domain is the closed [0, 1]: a degenerate
// calibration can legitimately fit θ1 = 1 ("never spam") or 0, and a
// refit must be able to install it rather than abort the publish.
func (f *Filter) SetThresholds(hamCutoff, spamCutoff float64) error {
	if spamCutoff < 0 || spamCutoff > 1 {
		return fmt.Errorf("graham: SetThresholds spam cutoff %v outside [0,1]", spamCutoff)
	}
	if hamCutoff > spamCutoff {
		return fmt.Errorf("graham: SetThresholds ham cutoff %v above spam cutoff %v", hamCutoff, spamCutoff)
	}
	f.opts.SpamCutoff = spamCutoff
	return nil
}

// Learn trains on one message. Unlike SpamBayes, occurrences count
// with multiplicity.
func (f *Filter) Learn(m *mail.Message, isSpam bool) {
	f.LearnWeighted(m, isSpam, 1)
}

// LearnWeighted trains as if weight identical copies were learned
// (all counts are linear, so this is exact).
func (f *Filter) LearnWeighted(m *mail.Message, isSpam bool, weight int) {
	if weight < 0 {
		panic("graham: negative learn weight")
	}
	if weight == 0 {
		return
	}
	stream := f.tok.Tokenize(m)
	if isSpam {
		f.nbad += weight
		for _, t := range stream {
			f.bad[t] += weight
		}
	} else {
		f.ngood += weight
		for _, t := range stream {
			f.good[t] += weight
		}
	}
}

// Unlearn removes one previously trained message from the database.
// It returns an error (leaving the filter unchanged) if the message
// was not counted with this label, as far as the counts can tell.
func (f *Filter) Unlearn(m *mail.Message, isSpam bool) error {
	return f.UnlearnWeighted(m, isSpam, 1)
}

// UnlearnWeighted is the inverse of LearnWeighted. It panics if
// weight < 0.
func (f *Filter) UnlearnWeighted(m *mail.Message, isSpam bool, weight int) error {
	if weight < 0 {
		panic("graham: negative unlearn weight")
	}
	if weight == 0 {
		return nil
	}
	counts := f.good
	total := f.ngood
	if isSpam {
		counts = f.bad
		total = f.nbad
	}
	if total < weight {
		return fmt.Errorf("graham: unlearn message underflow (have %d, remove %d)", total, weight)
	}
	// Occurrences count with multiplicity; validate every token's
	// removal before mutating anything.
	remove := map[string]int{}
	for _, t := range f.tok.Tokenize(m) {
		remove[t] += weight
	}
	for t, n := range remove {
		if counts[t] < n {
			return fmt.Errorf("graham: unlearn underflow on token %q", t)
		}
	}
	if isSpam {
		f.nbad -= weight
	} else {
		f.ngood -= weight
	}
	for t, n := range remove {
		if counts[t] == n {
			delete(counts, t)
		} else {
			counts[t] -= n
		}
	}
	return nil
}

// TokenProb returns Graham's per-token spam probability.
func (f *Filter) TokenProb(token string) float64 {
	g := f.opts.HamWeight * f.good[token]
	b := f.bad[token]
	if g+b < f.opts.MinOccurrences {
		return f.opts.UnknownProb
	}
	var gRatio, bRatio float64
	if f.ngood > 0 {
		gRatio = math.Min(1, float64(g)/float64(f.ngood))
	}
	if f.nbad > 0 {
		bRatio = math.Min(1, float64(b)/float64(f.nbad))
	}
	if gRatio+bRatio == 0 {
		return f.opts.UnknownProb
	}
	p := bRatio / (gRatio + bRatio)
	return math.Max(f.opts.ClampLow, math.Min(f.opts.ClampHigh, p))
}

// Score returns the combined spam probability of a message.
func (f *Filter) Score(m *mail.Message) float64 {
	return f.ScoreTokens(f.tok.TokenSet(m))
}

// ScoreTokens computes the combined spam probability over a
// distinct-token set.
func (f *Filter) ScoreTokens(tokens []string) float64 {
	if len(tokens) == 0 {
		return f.opts.UnknownProb
	}
	type cand struct {
		p    float64
		dist float64
		tok  string
	}
	cands := make([]cand, 0, len(tokens))
	for _, t := range tokens {
		p := f.TokenProb(t)
		cands = append(cands, cand{p: p, dist: math.Abs(p - 0.5), tok: t})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist > cands[j].dist
		}
		return cands[i].tok < cands[j].tok
	})
	if len(cands) > f.opts.MaxTokens {
		cands = cands[:f.opts.MaxTokens]
	}
	// Naive Bayes product in log space for stability.
	var logP, logNotP float64
	for _, c := range cands {
		logP += math.Log(c.p)
		logNotP += math.Log(1 - c.p)
	}
	// prob = e^logP / (e^logP + e^logNotP), computed stably.
	diff := logNotP - logP
	if diff > 700 {
		return 0
	}
	if diff < -700 {
		return 1
	}
	return 1 / (1 + math.Exp(diff))
}

// IsSpam returns the binary verdict and the combined probability.
func (f *Filter) IsSpam(m *mail.Message) (bool, float64) {
	s := f.Score(m)
	return s > f.opts.SpamCutoff, s
}

// Classify returns the backend-generic verdict and score. Graham's
// rule is binary, so the verdict is never Unsure.
func (f *Filter) Classify(m *mail.Message) (engine.Label, float64) {
	return f.labelFor(f.Score(m))
}

// ClassifyTokens is Classify over a pre-tokenized message.
func (f *Filter) ClassifyTokens(tokens []string) (engine.Label, float64) {
	return f.labelFor(f.ScoreTokens(tokens))
}

func (f *Filter) labelFor(s float64) (engine.Label, float64) {
	if s > f.opts.SpamCutoff {
		return engine.Spam, s
	}
	return engine.Ham, s
}
