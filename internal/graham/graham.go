// Package graham implements Paul Graham's "A Plan for Spam" (2002)
// classifier — reference [7] of the paper and the direct ancestor of
// the Robinson/Fisher method SpamBayes uses (§2.3 cites Robinson's
// scheme as "based on ideas by Graham"). It serves as the baseline
// learner: the attacks poison it through exactly the same mechanism
// (token spam counts), so the repository can show the vulnerability
// is a property of the statistical approach, not of one combining
// rule.
//
// Differences from the SpamBayes learner, per Graham's essay:
//
//   - token occurrences count with multiplicity, and ham counts are
//     doubled ("to bias the probabilities slightly against false
//     positives");
//   - tokens seen fewer than five times score a fixed 0.4;
//   - known-token scores clamp to [0.01, 0.99];
//   - the fifteen most interesting tokens (furthest from 0.5) combine
//     by naive Bayes product: Πp / (Πp + Π(1−p));
//   - the verdict is binary — spam above 0.9, ham otherwise (no
//     unsure band).
//
// Measured finding (TestDictionaryAttackPoisonsGraham): the
// dictionary attack transfers to this baseline but needs roughly an
// order of magnitude more attack volume than against SpamBayes — the
// hard clamps and the 15-token cap let a handful of surviving
// pure-ham tokens veto a large poisoned majority, where SpamBayes'
// 150-token chi-square combination lets the poisoned mass win.
package graham

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/tokenize"
)

// Filter satisfies the backend-generic contract. It is not a
// TokenLearner — Graham counts token occurrences with multiplicity,
// which a distinct-token set cannot reconstruct — but it IS a
// StreamLearner: a tokenize.TokenStream carries per-token occurrence
// counts, exactly the information the occurrence walk used to re-read
// from the raw message.
var (
	_ engine.Classifier       = (*Filter)(nil)
	_ engine.TokenClassifier  = (*Filter)(nil)
	_ engine.StreamClassifier = (*Filter)(nil)
	_ engine.StreamLearner    = (*Filter)(nil)
	_ engine.Persistable      = (*Filter)(nil)
	_ engine.Tokenizing       = (*Filter)(nil)
	_ engine.Cloner           = (*Filter)(nil)
)

func init() {
	engine.Register(engine.Backend{
		Name: "graham",
		Doc:  "Graham (2002) baseline: clamped naive-Bayes over the 15 most interesting tokens, binary verdict",
		New:  func() engine.Classifier { return NewDefault() },
	})
}

// Options holds Graham's tunables (defaults are the essay's values).
type Options struct {
	// UnknownProb is the score of rarely seen tokens (0.4).
	UnknownProb float64
	// MinOccurrences is the evidence floor below which a token is
	// treated as unknown (5).
	MinOccurrences int
	// MaxTokens is the number of most-interesting tokens combined
	// (15).
	MaxTokens int
	// HamWeight multiplies ham occurrence counts (2).
	HamWeight int
	// ClampLow and ClampHigh bound known-token scores (0.01, 0.99).
	ClampLow  float64
	ClampHigh float64
	// SpamCutoff is the binary decision threshold (0.9).
	SpamCutoff float64
}

// DefaultOptions returns the essay's parameters.
func DefaultOptions() Options {
	return Options{
		UnknownProb:    0.4,
		MinOccurrences: 5,
		MaxTokens:      15,
		HamWeight:      2,
		ClampLow:       0.01,
		ClampHigh:      0.99,
		SpamCutoff:     0.9,
	}
}

// Validate checks option consistency.
func (o Options) Validate() error {
	switch {
	case o.UnknownProb <= 0 || o.UnknownProb >= 1:
		return fmt.Errorf("graham: UnknownProb %v", o.UnknownProb)
	case o.MinOccurrences < 1:
		return fmt.Errorf("graham: MinOccurrences %d", o.MinOccurrences)
	case o.MaxTokens < 1:
		return fmt.Errorf("graham: MaxTokens %d", o.MaxTokens)
	case o.HamWeight < 1:
		return fmt.Errorf("graham: HamWeight %d", o.HamWeight)
	case o.ClampLow <= 0 || o.ClampHigh >= 1 || o.ClampLow >= o.ClampHigh:
		return fmt.Errorf("graham: clamps (%v, %v)", o.ClampLow, o.ClampHigh)
	case o.SpamCutoff <= 0 || o.SpamCutoff >= 1:
		return fmt.Errorf("graham: SpamCutoff %v", o.SpamCutoff)
	}
	return nil
}

// Filter is the Graham classifier. Like the sbayes filter, statistics
// are keyed by interned token IDs: one symbol table maps token text
// to a dense tokenize.Sym, and the good/bad occurrence counts live in
// flat slices indexed by it, cloned with two memcpys.
type Filter struct {
	opts  Options
	tok   *tokenize.Tokenizer
	ngood int
	nbad  int
	syms  *tokenize.Symbols
	good  []int32 // ham occurrences (with multiplicity), indexed by Sym
	bad   []int32 // spam occurrences, indexed by Sym
	vocab int     // ids with a nonzero count on either side
}

// New returns an empty filter (nil tokenizer selects the default).
// It panics on invalid options.
func New(opts Options, tok *tokenize.Tokenizer) *Filter {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if tok == nil {
		tok = tokenize.Default()
	}
	return &Filter{
		opts: opts,
		tok:  tok,
		syms: tokenize.NewSymbols(),
	}
}

// NewDefault returns an empty filter with essay defaults.
func NewDefault() *Filter { return New(DefaultOptions(), nil) }

// Options returns the filter's options.
func (f *Filter) Options() Options { return f.opts }

// Tokenizer returns the filter's tokenizer.
func (f *Filter) Tokenizer() *tokenize.Tokenizer { return f.tok }

// Counts returns the trained message counts (spam, ham).
func (f *Filter) Counts() (nbad, ngood int) { return f.nbad, f.ngood }

// VocabSize returns the number of distinct tokens in the database
// (union of both sides). Maintained on zero↔nonzero transitions, so
// it is O(1).
func (f *Filter) VocabSize() int { return f.vocab }

// TokenCounts returns the raw occurrence counts of a token.
func (f *Filter) TokenCounts(token string) (bad, good int) {
	if id, ok := f.syms.Lookup(token); ok {
		return int(f.bad[id]), int(f.good[id])
	}
	return 0, 0
}

// intern assigns (or finds) the token's dense ID, keeping both count
// slices in step with the symbol table.
func (f *Filter) intern(token string) tokenize.Sym {
	id := f.syms.Intern(token)
	if int(id) == len(f.good) {
		f.good = append(f.good, 0)
		f.bad = append(f.bad, 0)
	}
	return id
}

// addCount adjusts one side's occurrence count by a signed delta,
// maintaining the vocab counter across zero↔nonzero transitions of
// the union.
func (f *Filter) addCount(id tokenize.Sym, isSpam bool, n int32) {
	wasZero := f.good[id] == 0 && f.bad[id] == 0
	if isSpam {
		f.bad[id] += n
	} else {
		f.good[id] += n
	}
	isZero := f.good[id] == 0 && f.bad[id] == 0
	if wasZero && !isZero {
		f.vocab++
	} else if !wasZero && isZero {
		f.vocab--
	}
}

// Clone returns an independent deep copy of the filter: the symbol
// table clones copy-on-write (O(1)) and the count slices copy with
// memcpys.
func (f *Filter) Clone() *Filter {
	return &Filter{
		opts:  f.opts,
		tok:   f.tok,
		ngood: f.ngood,
		nbad:  f.nbad,
		syms:  f.syms.Clone(),
		good:  append(make([]int32, 0, len(f.good)), f.good...),
		bad:   append(make([]int32, 0, len(f.bad)), f.bad...),
		vocab: f.vocab,
	}
}

// CloneClassifier is Clone behind the engine.Cloner capability, for
// interface-typed callers such as Engine.RetrainIncremental.
func (f *Filter) CloneClassifier() engine.Classifier { return f.Clone() }

// SetThresholds replaces the binary decision cutoff, satisfying the
// engine.ThresholdSetter capability the dynamic-threshold defense
// refits through. Graham's rule has no unsure band, so only the spam
// cutoff (θ1) is installed; hamCutoff is accepted for interface
// uniformity and validated (it must not exceed spamCutoff) but
// otherwise unused. The fit domain is the closed [0, 1]: a degenerate
// calibration can legitimately fit θ1 = 1 ("never spam") or 0, and a
// refit must be able to install it rather than abort the publish.
func (f *Filter) SetThresholds(hamCutoff, spamCutoff float64) error {
	if spamCutoff < 0 || spamCutoff > 1 {
		return fmt.Errorf("graham: SetThresholds spam cutoff %v outside [0,1]", spamCutoff)
	}
	if hamCutoff > spamCutoff {
		return fmt.Errorf("graham: SetThresholds ham cutoff %v above spam cutoff %v", hamCutoff, spamCutoff)
	}
	f.opts.SpamCutoff = spamCutoff
	return nil
}

// Learn trains on one message. Unlike SpamBayes, occurrences count
// with multiplicity.
func (f *Filter) Learn(m *mail.Message, isSpam bool) {
	f.LearnTokenStream(f.tok.Stream(m), isSpam, 1)
}

// LearnWeighted trains as if weight identical copies were learned
// (all counts are linear, so this is exact).
func (f *Filter) LearnWeighted(m *mail.Message, isSpam bool, weight int) {
	f.LearnTokenStream(f.tok.Stream(m), isSpam, weight)
}

// LearnTokenStream trains directly on a tokenized message: each
// distinct token contributes its occurrence count times weight.
func (f *Filter) LearnTokenStream(ts *tokenize.TokenStream, isSpam bool, weight int) {
	if weight < 0 {
		panic("graham: negative learn weight")
	}
	if weight == 0 {
		return
	}
	if isSpam {
		f.nbad += weight
	} else {
		f.ngood += weight
	}
	for i := 0; i < ts.Len(); i++ {
		f.addCount(f.intern(string(ts.At(i))), isSpam, int32(ts.Count(i)*weight))
	}
}

// Unlearn removes one previously trained message from the database.
// It returns an error (leaving the filter unchanged) if the message
// was not counted with this label, as far as the counts can tell.
func (f *Filter) Unlearn(m *mail.Message, isSpam bool) error {
	return f.UnlearnTokenStream(f.tok.Stream(m), isSpam, 1)
}

// UnlearnWeighted is the inverse of LearnWeighted. It panics if
// weight < 0.
func (f *Filter) UnlearnWeighted(m *mail.Message, isSpam bool, weight int) error {
	return f.UnlearnTokenStream(f.tok.Stream(m), isSpam, weight)
}

// UnlearnTokenStream is the inverse of LearnTokenStream. The stream's
// deduped occurrence counts make the removal validation direct: every
// distinct token's stored count must cover count×weight before
// anything mutates.
func (f *Filter) UnlearnTokenStream(ts *tokenize.TokenStream, isSpam bool, weight int) error {
	if weight < 0 {
		panic("graham: negative unlearn weight")
	}
	if weight == 0 {
		return nil
	}
	total := f.ngood
	counts := f.good
	if isSpam {
		total = f.nbad
		counts = f.bad
	}
	if total < weight {
		return fmt.Errorf("graham: unlearn message underflow (have %d, remove %d)", total, weight)
	}
	for i := 0; i < ts.Len(); i++ {
		n := int32(ts.Count(i) * weight)
		id, ok := f.syms.LookupToken(ts.At(i))
		if !ok || counts[id] < n {
			return fmt.Errorf("graham: unlearn underflow on token %q", ts.At(i))
		}
	}
	if isSpam {
		f.nbad -= weight
	} else {
		f.ngood -= weight
	}
	for i := 0; i < ts.Len(); i++ {
		// Validation proved every token is interned with enough count.
		id, _ := f.syms.LookupToken(ts.At(i))
		f.addCount(id, isSpam, -int32(ts.Count(i)*weight))
	}
	return nil
}

// TokenProb returns Graham's per-token spam probability.
func (f *Filter) TokenProb(token string) float64 {
	var g, b int
	if id, ok := f.syms.Lookup(token); ok {
		g, b = int(f.good[id]), int(f.bad[id])
	}
	return f.prob(g, b)
}

// prob computes the clamped probability from raw good/bad occurrence
// counts.
func (f *Filter) prob(good, bad int) float64 {
	g := f.opts.HamWeight * good
	if g+bad < f.opts.MinOccurrences {
		return f.opts.UnknownProb
	}
	var gRatio, bRatio float64
	if f.ngood > 0 {
		gRatio = math.Min(1, float64(g)/float64(f.ngood))
	}
	if f.nbad > 0 {
		bRatio = math.Min(1, float64(bad)/float64(f.nbad))
	}
	if gRatio+bRatio == 0 {
		return f.opts.UnknownProb
	}
	p := bRatio / (gRatio + bRatio)
	return math.Max(f.opts.ClampLow, math.Min(f.opts.ClampHigh, p))
}

// cand pairs a token with its probability during selection of the
// most interesting tokens.
type cand struct {
	p    float64
	dist float64
	tok  string
}

// candSlice sorts candidates by descending distance from 0.5, then
// token text — a concrete sort.Interface so the per-message hot path
// avoids sort.Slice's reflection allocations.
type candSlice []cand

func (s candSlice) Len() int           { return len(s) }
func (s candSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s candSlice) Less(i, j int) bool { return candLess(s[i], s[j]) }

// candLess is the interestingness order shared by the sorting path
// (combine) and the selection path (ScoreTokenStream): descending
// distance from 0.5, ties broken by token text. Stream tokens are
// distinct, so on the stream path the order is total.
func candLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.tok < b.tok
}

// insertCand inserts c into sel, kept in candLess order and capped at
// k entries — a bounded insertion-sort selection. With k fixed at
// MaxTokens the per-message cost is O(n·k) comparisons and zero
// allocations, where the sort-then-truncate path built and sorted an
// n-sized slice.
func insertCand(sel []cand, k int, c cand) []cand {
	if len(sel) == k && !candLess(c, sel[k-1]) {
		return sel
	}
	i := len(sel)
	if i < k {
		sel = append(sel, cand{})
	} else {
		i = k - 1
	}
	for i > 0 && candLess(c, sel[i-1]) {
		sel[i] = sel[i-1]
		i--
	}
	sel[i] = c
	return sel
}

// Score returns the combined spam probability of a message.
func (f *Filter) Score(m *mail.Message) float64 {
	return f.ScoreTokenStream(f.tok.Stream(m))
}

// ScoreTokens computes the combined spam probability over a
// distinct-token set.
func (f *Filter) ScoreTokens(tokens []string) float64 {
	if len(tokens) == 0 {
		return f.opts.UnknownProb
	}
	cands := make(candSlice, 0, len(tokens))
	for _, t := range tokens {
		p := f.TokenProb(t)
		cands = append(cands, cand{p: p, dist: math.Abs(p - 0.5), tok: t})
	}
	return f.combine(cands)
}

// maxTokensStack bounds the MaxTokens value the stream scoring path
// can select into a stack buffer; larger configurations fall back to
// one heap slice per message (still far below the old n-sized sort).
const maxTokensStack = 32

// ScoreTokenStream computes the combined spam probability over a
// tokenized message. Scoring is per token presence, so the stream's
// occurrence counts are irrelevant here. This is the serving hot path:
// token probabilities resolve through the Sym-keyed fast path and the
// MaxTokens most interesting candidates are selected into a
// fixed-capacity buffer, so scoring allocates nothing per message.
func (f *Filter) ScoreTokenStream(ts *tokenize.TokenStream) float64 {
	n := ts.Len()
	if n == 0 {
		return f.opts.UnknownProb
	}
	k := f.opts.MaxTokens
	var buf [maxTokensStack]cand
	sel := buf[:0]
	if k > maxTokensStack {
		sel = make([]cand, 0, k)
	}
	for i := 0; i < n; i++ {
		tok := ts.At(i)
		p := f.streamTokenProb(tok)
		sel = insertCand(sel, k, cand{p: p, dist: math.Abs(p - 0.5), tok: string(tok)})
	}
	return bayesProduct(sel)
}

// streamTokenProb is TokenProb keyed by a stream token, resolved
// through Symbols.LookupToken so no per-token heap string is built.
func (f *Filter) streamTokenProb(tok tokenize.Token) float64 {
	var g, b int
	if id, ok := f.syms.LookupToken(tok); ok {
		g, b = int(f.good[id]), int(f.bad[id])
	}
	return f.prob(g, b)
}

// combine selects the MaxTokens most interesting candidates by sorting
// and truncating — the []string scoring path, where candidates may
// repeat and arrive unsorted — then takes the naive Bayes product.
func (f *Filter) combine(cands candSlice) float64 {
	sort.Sort(cands)
	if len(cands) > f.opts.MaxTokens {
		cands = cands[:f.opts.MaxTokens]
	}
	return bayesProduct(cands)
}

// bayesProduct takes the naive Bayes product of the selected
// candidates in log space for stability: Πp / (Πp + Π(1−p)).
func bayesProduct(cands []cand) float64 {
	var logP, logNotP float64
	for _, c := range cands {
		logP += math.Log(c.p)
		logNotP += math.Log(1 - c.p)
	}
	// prob = e^logP / (e^logP + e^logNotP), computed stably.
	diff := logNotP - logP
	if diff > 700 {
		return 0
	}
	if diff < -700 {
		return 1
	}
	return 1 / (1 + math.Exp(diff))
}

// IsSpam returns the binary verdict and the combined probability.
func (f *Filter) IsSpam(m *mail.Message) (bool, float64) {
	s := f.Score(m)
	return s > f.opts.SpamCutoff, s
}

// Classify returns the backend-generic verdict and score. Graham's
// rule is binary, so the verdict is never Unsure.
func (f *Filter) Classify(m *mail.Message) (engine.Label, float64) {
	return f.labelFor(f.Score(m))
}

// ClassifyTokens is Classify over a pre-tokenized message.
func (f *Filter) ClassifyTokens(tokens []string) (engine.Label, float64) {
	return f.labelFor(f.ScoreTokens(tokens))
}

// ClassifyTokenStream is Classify over a tokenized message.
func (f *Filter) ClassifyTokenStream(ts *tokenize.TokenStream) (engine.Label, float64) {
	return f.labelFor(f.ScoreTokenStream(ts))
}

func (f *Filter) labelFor(s float64) (engine.Label, float64) {
	if s > f.opts.SpamCutoff {
		return engine.Spam, s
	}
	return engine.Ham, s
}
