package graham

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/textgen"
)

func mkMsg(body string) *mail.Message { return &mail.Message{Body: body} }

func testGen(t testing.TB) *textgen.Generator {
	t.Helper()
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
	return textgen.MustNew(u, textgen.DefaultConfig())
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.UnknownProb = 0 },
		func(o *Options) { o.MinOccurrences = 0 },
		func(o *Options) { o.MaxTokens = 0 },
		func(o *Options) { o.HamWeight = 0 },
		func(o *Options) { o.ClampLow = 0 },
		func(o *Options) { o.ClampHigh = 1 },
		func(o *Options) { o.ClampLow = 0.5; o.ClampHigh = 0.4 },
		func(o *Options) { o.SpamCutoff = 1 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestNewPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Options{}, nil)
}

func TestUnknownTokensScoreFourTenths(t *testing.T) {
	f := NewDefault()
	for i := 0; i < 10; i++ {
		f.Learn(mkMsg("known spamword\n"), true)
	}
	if got := f.TokenProb("neverseen"); got != 0.4 {
		t.Errorf("unknown prob = %v, want 0.4", got)
	}
	// Below the evidence floor too.
	f2 := NewDefault()
	f2.Learn(mkMsg("rare\n"), true) // 1 occurrence < 5
	if got := f2.TokenProb("rare"); got != 0.4 {
		t.Errorf("below-floor prob = %v, want 0.4", got)
	}
}

func TestTokenProbClamps(t *testing.T) {
	f := NewDefault()
	for i := 0; i < 20; i++ {
		f.Learn(mkMsg("pureham words\n"), false)
		f.Learn(mkMsg("purespam words\n"), true)
	}
	if got := f.TokenProb("purespam"); got != 0.99 {
		t.Errorf("spam-only prob = %v, want clamp 0.99", got)
	}
	if got := f.TokenProb("pureham"); got != 0.01 {
		t.Errorf("ham-only prob = %v, want clamp 0.01", got)
	}
}

func TestHamDoubleWeighting(t *testing.T) {
	// A token seen equally often in ham and spam leans hammy because
	// ham counts double.
	f := NewDefault()
	for i := 0; i < 10; i++ {
		f.Learn(mkMsg("balanced\n"), true)
		f.Learn(mkMsg("balanced\n"), false)
	}
	// g = 2·10, b = 10 → p = 10/ (20+10)... using ratios with equal
	// class sizes: b/nbad = 1, g/ngood = min(1, 2) = 1 → p = 0.5.
	// The min-1 clamp kicks in; verify the direction with unequal
	// evidence instead.
	f2 := NewDefault()
	for i := 0; i < 20; i++ {
		f2.Learn(mkMsg("filler1\n"), true)
		f2.Learn(mkMsg("filler2\n"), false)
	}
	for i := 0; i < 5; i++ {
		f2.Learn(mkMsg("shared\n"), true)
		f2.Learn(mkMsg("shared\n"), false)
	}
	// g = 2·5 of 25 ham, b = 5 of 25 spam → p = 0.2/(0.4+0.2) = 1/3.
	if got := f2.TokenProb("shared"); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("double-weighted prob = %v, want 1/3", got)
	}
}

func TestMultiplicityCounts(t *testing.T) {
	// Graham counts occurrences, not message presence.
	f := NewDefault()
	f.Learn(mkMsg("echo echo echo echo echo\n"), true)
	if got, _ := f.TokenCounts("echo"); got != 5 {
		t.Errorf("occurrences = %d, want 5", got)
	}
}

func TestClassifySeparableCorpus(t *testing.T) {
	g := testGen(t)
	r := stats.NewRNG(1)
	f := NewDefault()
	train := g.Corpus(r, 300, 300)
	for _, e := range train.Examples {
		f.Learn(e.Msg, e.Spam)
	}
	correct := 0
	const n = 100
	for i := 0; i < n; i++ {
		spam := i%2 == 0
		verdict, _ := f.IsSpam(g.Message(r, spam))
		if verdict == spam {
			correct++
		}
	}
	if correct < n*9/10 {
		t.Errorf("graham baseline accuracy %d/%d", correct, n)
	}
}

func TestLearnWeightedEquivalence(t *testing.T) {
	msg := mkMsg("identical attack words here\n")
	a, b := NewDefault(), NewDefault()
	a.Learn(mkMsg("background\n"), false)
	b.Learn(mkMsg("background\n"), false)
	for i := 0; i < 23; i++ {
		a.Learn(msg, true)
	}
	b.LearnWeighted(msg, true, 23)
	probe := mkMsg("attack background words\n")
	if a.Score(probe) != b.Score(probe) {
		t.Error("weighted learning diverges from repeated learning")
	}
}

func TestUnlearnRestoresMultiplicity(t *testing.T) {
	// Graham counts occurrences, so unlearning must subtract each
	// token's full multiplicity.
	f := NewDefault()
	f.Learn(mkMsg("echo echo echo other\n"), true)
	f.Learn(mkMsg("echo keeper\n"), true)
	if err := f.Unlearn(mkMsg("echo echo echo other\n"), true); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.TokenCounts("echo"); got != 1 {
		t.Errorf("echo occurrences = %d, want 1", got)
	}
	if got, _ := f.TokenCounts("other"); got != 0 {
		t.Error("fully unlearned token kept a count")
	}
	if nbad, _ := f.Counts(); nbad != 1 {
		t.Errorf("nbad = %d, want 1", nbad)
	}
	// Unlearning more than was trained fails without mutating.
	if err := f.Unlearn(mkMsg("echo echo\n"), true); err == nil {
		t.Error("over-unlearn succeeded")
	}
	if got, _ := f.TokenCounts("echo"); got != 1 {
		t.Errorf("failed unlearn mutated counts: echo = %d", got)
	}
	// Wrong label fails too.
	if err := f.Unlearn(mkMsg("echo keeper\n"), false); err == nil {
		t.Error("unlearning spam as ham succeeded")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	f := NewDefault()
	f.Learn(mkMsg("original training words\n"), true)
	c := f.Clone()
	c.Learn(mkMsg("divergent extra words\n"), true)
	if nbad, _ := f.Counts(); nbad != 1 {
		t.Errorf("clone training leaked into original (nbad=%d)", nbad)
	}
	if nbad, _ := c.Counts(); nbad != 2 {
		t.Errorf("clone nbad = %d, want 2", nbad)
	}
	probe := mkMsg("original words probe\n")
	if f.Score(probe) == 0.4 {
		t.Error("original lost its training")
	}
}

func TestLearnWeightedPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewDefault().LearnWeighted(mkMsg("x y z\n"), true, -1)
}

func TestDictionaryAttackPoisonsGraham(t *testing.T) {
	// The attack mechanism is combining-rule independent: Graham's
	// baseline falls to the same poisoning — but needs roughly an
	// order of magnitude more attack volume than SpamBayes, because
	// its hard clamps, binary verdict and 15-token cap let a few
	// surviving pure-ham tokens veto the poisoned majority. (Measured
	// dose-response on this corpus: 2% ≈ none, 10% ≈ 44%, 20% ≈ 68%
	// of ham flipped.)
	g := testGen(t)
	r := stats.NewRNG(2)
	f := NewDefault()
	train := g.Corpus(r, 300, 300)
	for _, e := range train.Examples {
		f.Learn(e.Msg, e.Spam)
	}
	probes := make([]*mail.Message, 50)
	for i := range probes {
		probes[i] = g.HamMessage(r)
	}
	countSpam := func() int {
		n := 0
		for _, m := range probes {
			if verdict, _ := f.IsSpam(m); verdict {
				n++
			}
		}
		return n
	}
	before := countSpam()
	if before > 3 {
		t.Fatalf("baseline already flips %d/50", before)
	}
	attack := core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	f.LearnWeighted(attack.BuildAttack(r), true, core.AttackSize(0.20, train.Len()))
	after := countSpam()
	if after < len(probes)/2 {
		t.Errorf("graham ham-as-spam: %d -> %d of %d; attack did not transfer",
			before, after, len(probes))
	}
}

func TestEmptyMessage(t *testing.T) {
	f := NewDefault()
	f.Learn(mkMsg("some training words\n"), true)
	if got := f.Score(&mail.Message{}); got != 0.4 {
		t.Errorf("empty message score = %v, want 0.4 (unknown)", got)
	}
}

func TestScoreBounds(t *testing.T) {
	g := testGen(t)
	r := stats.NewRNG(3)
	f := NewDefault()
	for _, e := range g.Corpus(r, 100, 100).Examples {
		f.Learn(e.Msg, e.Spam)
	}
	for i := 0; i < 50; i++ {
		s := f.Score(g.Message(r, i%2 == 0))
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestSetThresholds(t *testing.T) {
	f := NewDefault()
	// The refit fit domain is the closed [0, 1]: a degenerate
	// calibration legitimately fits 1 ("never spam") or 0, and the
	// setter must install it rather than abort the publish.
	for _, spam := range []float64{0, 0.5, 1} {
		if err := f.SetThresholds(0, spam); err != nil {
			t.Errorf("SetThresholds(0, %v): %v", spam, err)
		}
		if f.Options().SpamCutoff != spam {
			t.Errorf("cutoff %v not installed", spam)
		}
	}
	if err := f.SetThresholds(0, 1.5); err == nil {
		t.Error("cutoff above 1 accepted")
	}
	if err := f.SetThresholds(0.9, 0.1); err == nil {
		t.Error("ham cutoff above spam cutoff accepted")
	}
}
