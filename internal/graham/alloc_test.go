package graham

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mail"
)

// allocFixture trains a filter over a synthetic vocabulary and returns
// it with one scoring message large enough to exercise the top-K
// selection (more distinct tokens than MaxTokens).
func allocFixture(tb testing.TB) (*Filter, *mail.Message) {
	tb.Helper()
	f := NewDefault()
	r := rand.New(rand.NewSource(7))
	word := func() string { return fmt.Sprintf("word%03d", r.Intn(400)) }
	body := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(word())
			sb.WriteByte(' ')
		}
		return sb.String()
	}
	for i := 0; i < 40; i++ {
		f.Learn(mkMsg(body(60)), i%2 == 0)
	}
	return f, mkMsg(body(120))
}

// TestScoreTokenStreamAllocFree pins the hot-path fix: scoring a
// tokenized message must not allocate — not per token (the Sym-keyed
// lookup replaced per-token heap strings) and not per message (the
// bounded selection buffer replaced the n-sized sort slice).
func TestScoreTokenStreamAllocFree(t *testing.T) {
	f, m := allocFixture(t)
	ts := f.Tokenizer().Stream(m)
	want := f.ScoreTokenStream(ts) // warm any lazy state
	if avg := testing.AllocsPerRun(200, func() {
		if got := f.ScoreTokenStream(ts); got != want {
			t.Fatalf("score changed across runs: %v != %v", got, want)
		}
	}); avg != 0 {
		t.Fatalf("ScoreTokenStream allocates %.1f times per message, want 0", avg)
	}
}

// TestScoreTokenStreamMatchesTokens proves the selection path picks
// exactly the candidates the sort-then-truncate path picks: both
// entry points must agree on every message.
func TestScoreTokenStreamMatchesTokens(t *testing.T) {
	f, m := allocFixture(t)
	ts := f.Tokenizer().Stream(m)
	stream := f.ScoreTokenStream(ts)
	legacy := f.ScoreTokens(ts.Strings()) //sbvet:retokenize test compares the legacy []string path
	if stream != legacy {
		t.Fatalf("ScoreTokenStream %v != ScoreTokens %v", stream, legacy)
	}
}

// BenchmarkScoreTokenStream measures the per-message stream scoring
// cost; allocs/op is the satellite's regression gate (was 2 allocs/op
// through the sort path, now 0).
func BenchmarkScoreTokenStream(b *testing.B) {
	f, m := allocFixture(b)
	ts := f.Tokenizer().Stream(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ScoreTokenStream(ts)
	}
}
