package admission_test

// Regression coverage for the crash-amnesty bug: quarantine contents
// and the IncrementalRONI probe budget/memo now persist through
// engine.SaveGuarded and come back through engine.ResumeGuarded, so a
// restart can no longer free a held attacker or refill an exhausted
// probe bucket.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// mkHeld builds a distinctive candidate for quarantine round-trips.
func mkHeld(subject, body string) *mail.Message {
	m := &mail.Message{Body: body}
	m.Header.Add("Subject", subject)
	m.Header.Add("From", "attacker@example.test")
	return m
}

func TestQuarantineStateRoundTrip(t *testing.T) {
	q := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 8, MaxReviews: 3})
	q.Hold(mkHeld("first", "alpha beta gamma"), nil, true, "roni: probe budget exhausted")
	q.Hold(mkHeld("second", "delta epsilon"), nil, false, "undecidable")

	var buf bytes.Buffer
	if err := q.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 8, MaxReviews: 3})
	if err := fresh.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	want, got := q.Pending(), fresh.Pending()
	if len(got) != len(want) {
		t.Fatalf("loaded %d held, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Msg.Subject() != want[i].Msg.Subject() ||
			got[i].Msg.Body != want[i].Msg.Body ||
			got[i].Spam != want[i].Spam ||
			got[i].Reason != want[i].Reason ||
			got[i].Reviews != want[i].Reviews {
			t.Fatalf("held[%d] mismatch: got %+v want %+v", i, got[i], want[i])
		}
		if got[i].Stream != nil {
			t.Fatalf("held[%d] resumed with a token stream; streams are not persisted", i)
		}
	}
	if ws, gs := q.Stats(), fresh.Stats(); gs != ws {
		t.Fatalf("loaded stats %+v, want %+v", gs, ws)
	}
}

func TestQuarantineLoadRejectsCorruptState(t *testing.T) {
	q := admission.NewQuarantine(admission.QuarantineConfig{})
	q.Hold(mkHeld("x", "y"), nil, true, "r")
	var buf bytes.Buffer
	if err := q.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, tc := range [][]byte{
		data[:len(data)-1],                    // truncated
		append(data[:len(data):len(data)], 0), // trailing byte
		{0xff},                                // bad version varint boundary
	} {
		fresh := admission.NewQuarantine(admission.QuarantineConfig{})
		if err := fresh.LoadState(bytes.NewReader(tc)); err == nil {
			t.Fatalf("corrupt state (%d bytes) loaded without error", len(tc))
		}
	}
}

func TestIncrementalRONIStateRoundTrip(t *testing.T) {
	g := testGen(t)
	cfg := admission.IncrementalRONIConfig{BudgetPerMessage: 0.01, Burst: 2}
	a, err := admission.NewIncrementalRONI(cfg, pool(t, g, 200), backendFactory(t, "sbayes"), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// Spend the burst: probes run until the bucket drops below 1, then
	// candidates defer. Stream-keyed arrivals populate the digest memo.
	r := stats.NewRNG(11)
	msgs := make([]*mail.Message, 6)
	for i := range msgs {
		msgs[i] = g.SpamMessage(r)
	}
	tkz := tokenize.Default()
	for _, m := range msgs {
		a.Admit(ctx, m, tkz.Stream(m), true)
	}
	before := a.Stats()
	if before.Probes == 0 || before.Deferred == 0 {
		t.Fatalf("fixture did not both probe and defer: %+v", before)
	}

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := admission.NewIncrementalRONI(cfg, pool(t, g, 200), backendFactory(t, "sbayes"), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Stats(); got != before {
		t.Fatalf("loaded stats %+v, want %+v", got, before)
	}
	// The memo must survive: re-admitting an already-probed payload is
	// a memo hit, not a new probe — and the drained bucket must stay
	// drained, so an unseen candidate still defers.
	fresh.Admit(ctx, msgs[0], tkz.Stream(msgs[0]), true)
	after := fresh.Stats()
	if after.MemoHits != before.MemoHits+1 {
		t.Fatalf("memoized verdict did not survive the restart: %+v", after)
	}
	if after.Probes != before.Probes {
		t.Fatalf("restart re-probed a memoized payload: %+v", after)
	}
}

// TestCrashResumeKeepsHeldMailAndSpentBudget is the headline
// regression: a guarded engine with a populated quarantine and a
// drained probe budget is saved, the process "crashes" (every live
// object is rebuilt from scratch, as a restart would), and
// ResumeGuarded brings back the held attacker and the spent budget.
// Before SaveGuarded existed, this exact sequence silently amnestied
// the quarantined mail and refilled the bucket.
func TestCrashResumeKeepsHeldMailAndSpentBudget(t *testing.T) {
	for _, backend := range stockBackends {
		t.Run(backend, func(t *testing.T) {
			g := testGen(t)
			store := engine.NewMemStore()
			calib := pool(t, g, 200)

			// build constructs the guard exactly as a deployment does at
			// process start: fresh chain, fresh quarantine, same wiring.
			build := func() (*admission.Chain, *admission.IncrementalRONI, *admission.Quarantine) {
				roni, err := admission.NewIncrementalRONI(
					admission.IncrementalRONIConfig{BudgetPerMessage: 0.01, Burst: 2},
					calib, backendFactory(t, backend), stats.NewRNG(7))
				if err != nil {
					t.Fatal(err)
				}
				gate := admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: 2000})
				q := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 32})
				return admission.NewChain(gate, roni), roni, q
			}

			b, err := engine.Lookup(backend)
			if err != nil {
				t.Fatal(err)
			}
			base := b.New()
			for _, ex := range calib.Examples {
				base.Learn(ex.Msg, ex.Spam) //sbvet:unguarded test fixture bootstrap from the trusted calibration pool
			}
			eng := engine.New(base, engine.Config{Name: "served"})
			chain, roni, q := build()
			guarded := engine.NewGuarded(eng, chain, engine.GuardedConfig{Quarantine: q})

			// Drain the probe budget so a distinctive attacker candidate
			// lands in quarantine rather than being probed.
			r := stats.NewRNG(23)
			for i := 0; i < 4; i++ {
				m := g.SpamMessage(r)
				guarded.Vet(ctx, m, true)
			}
			attacker := mkHeld("crash-amnesty-probe", strings.Repeat("held attacker payload ", 3))
			d := guarded.Vet(ctx, attacker, true)
			if d.Verdict != admission.Held {
				t.Fatalf("fixture attacker was not quarantined: %+v (quarantine %v)", d, q.Stats())
			}
			heldBefore := q.Len()
			budgetBefore := roni.Stats()

			gen, err := engine.SaveGuarded(store, "served", backend, guarded)
			if err != nil {
				t.Fatal(err)
			}
			if gen != eng.Generation() {
				t.Fatalf("saved generation %d, serving %d", gen, eng.Generation())
			}

			// Crash: rebuild everything from the store.
			chain2, roni2, q2 := build()
			resumed, env, err := engine.ResumeGuarded(store, "served", engine.Config{Name: "served"}, chain2, engine.GuardedConfig{Quarantine: q2})
			if err != nil {
				t.Fatal(err)
			}
			if env.Generation != gen {
				t.Fatalf("resumed generation %d, want %d", env.Generation, gen)
			}
			if got := q2.Len(); got != heldBefore {
				t.Fatalf("resume amnestied the quarantine: %d held, want %d", got, heldBefore)
			}
			pending := q2.Pending()
			found := false
			for _, h := range pending {
				if h.Msg.Subject() == "crash-amnesty-probe" {
					found = true
				}
			}
			if !found {
				t.Fatalf("held attacker missing after resume: %+v", pending)
			}
			budgetAfter := roni2.Stats()
			if budgetAfter.Bucket != budgetBefore.Bucket {
				t.Fatalf("resume refilled the probe bucket: %v, want %v", budgetAfter.Bucket, budgetBefore.Bucket)
			}
			if budgetAfter != budgetBefore {
				t.Fatalf("resumed budget accounting %+v, want %+v", budgetAfter, budgetBefore)
			}

			// And the resumed engine still serves: the guard wraps the
			// resumed snapshot, not a fresh one.
			if resumed.Generation() != gen {
				t.Fatalf("resumed engine serves generation %d, want %d", resumed.Generation(), gen)
			}
		})
	}
}

// TestResumeWithoutSidecarLoadsNothing pins backward compatibility: a
// snapshot saved through plain SaveEngine (no sidecar) resumes with
// loaded=false and an untouched guard.
func TestResumeWithoutSidecarLoadsNothing(t *testing.T) {
	g := testGen(t)
	store := engine.NewMemStore()
	b, err := engine.Lookup("sbayes")
	if err != nil {
		t.Fatal(err)
	}
	base := b.New()
	for _, ex := range pool(t, g, 60).Examples {
		base.Learn(ex.Msg, ex.Spam) //sbvet:unguarded test fixture bootstrap from the trusted calibration pool
	}
	eng := engine.New(base, engine.Config{Name: "plain"})
	if _, err := engine.SaveEngine(store, "plain", "sbayes", eng); err != nil {
		t.Fatal(err)
	}
	q := admission.NewQuarantine(admission.QuarantineConfig{})
	guard := engine.NewGuarded(eng, fixed{"a", admission.Decision{Verdict: admission.Accepted}}, engine.GuardedConfig{Quarantine: q})
	loaded, err := engine.LoadAdmissionState(store, "plain", eng.Generation(), guard)
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("LoadAdmissionState reported a sidecar that was never written")
	}
}
