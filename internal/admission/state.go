package admission

// Durable admitter state. The crash-amnesty bug this closes: snapshot
// persistence (engine.SaveEngine) captured only the classifier, so a
// crash+resume silently emptied the quarantine — a held attacker walks
// free — and reset the IncrementalRONI token bucket to a full burst,
// refilling exactly the probe budget the attacker had exhausted. The
// admitters therefore expose versioned SaveState/LoadState
// (engine.AdmissionStatePersister), and engine.SaveGuarded rides their
// state in a sidecar envelope next to the classifier snapshot.
//
// Each payload is self-versioned (leading uvarint); integrity and
// identification are the sidecar envelope's job (magic + CRC, see
// engine/guardedpersist.go). What is persisted:
//
//   - Quarantine: the monotone counters and every held candidate —
//     message (headers + body), label, reason, review count. Token
//     streams are NOT persisted: every consumer (flood gate, RONI
//     probe, swap-time review) tolerates a nil stream and re-tokenizes
//     from the message, so a resumed candidate costs one extra
//     tokenization instead of a new wire format.
//   - IncrementalRONI: the budget accounting (bucket level, credits,
//     counters) and the digest-keyed memo verdicts. Identity-keyed
//     memo entries (candidates that arrived without a stream) are
//     dropped — their key is a live pointer, meaningless across
//     processes. The calibration pool is not persisted; deployments
//     Refresh it from the trusted store at the next swap, exactly as
//     they already must after every publish.
//   - Chain: one sub-section per link, in link order, empty for links
//     that have no durable state.
//
// Save captures held/landed state only: candidates a concurrent
// Review has detached, and probes in flight, are not included — save
// at a quiescent point (the serving daemon's admin save, a scenario
// checkpoint), not mid-review.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/mail"
)

// The admitters that persist state.
var (
	_ engine.AdmissionStatePersister = (*Quarantine)(nil)
	_ engine.AdmissionStatePersister = (*IncrementalRONI)(nil)
	_ engine.AdmissionStatePersister = (*Chain)(nil)
)

// Format versions, one per payload kind, each bumped independently.
const (
	quarantineStateVersion = 1
	roniStateVersion       = 1
	chainStateVersion      = 1
)

// stateWriter accumulates a state payload.
type stateWriter struct {
	buf bytes.Buffer
}

func (w *stateWriter) u64(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	w.buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func (w *stateWriter) f64(v float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	w.buf.Write(tmp[:])
}

func (w *stateWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *stateWriter) bool(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

// stateReader decodes a state payload with bounds checking; the first
// error sticks and every later read returns zero values, so decoders
// can read a whole record and check err once.
type stateReader struct {
	r   *bytes.Reader
	err error
}

func newStateReader(r io.Reader) (*stateReader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return &stateReader{r: bytes.NewReader(data)}, nil
}

func (r *stateReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("admission: state payload: %s", what)
	}
}

func (r *stateReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.fail(what)
		return 0
	}
	return v
}

func (r *stateReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	var tmp [8]byte
	if _, err := io.ReadFull(r.r, tmp[:]); err != nil {
		r.fail(what)
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(tmp[:]))
}

func (r *stateReader) str(what string) string {
	n := r.u64(what + " length")
	if r.err != nil {
		return ""
	}
	if n > uint64(r.r.Len()) {
		r.fail(what + " truncated")
		return ""
	}
	b := make([]byte, n)
	io.ReadFull(r.r, b)
	return string(b)
}

func (r *stateReader) bool(what string) bool {
	if r.err != nil {
		return false
	}
	b, err := r.r.ReadByte()
	if err != nil || b > 1 {
		r.fail(what)
		return false
	}
	return b == 1
}

// done checks the payload was consumed exactly — trailing bytes are
// corruption, not padding.
func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.r.Len() != 0 {
		return fmt.Errorf("admission: state payload: %d trailing bytes", r.r.Len())
	}
	return nil
}

// writeMessage serializes one mail message as explicit header
// name/value pairs plus the body — an exact field-level round trip
// that does not depend on the RFC-822 renderer and parser agreeing on
// every byte.
func (w *stateWriter) writeMessage(m *mail.Message) {
	w.u64(uint64(len(m.Header)))
	for _, f := range m.Header {
		w.str(f.Name)
		w.str(f.Value)
	}
	w.str(m.Body)
}

func (r *stateReader) readMessage() *mail.Message {
	nf := r.u64("header field count")
	if r.err != nil {
		return nil
	}
	if nf > uint64(r.r.Len()) { // each field costs >= 1 byte
		r.fail("header field count truncated")
		return nil
	}
	m := &mail.Message{}
	if nf > 0 {
		m.Header = make(mail.Header, 0, nf)
	}
	for i := uint64(0); i < nf; i++ {
		name := r.str("header name")
		value := r.str("header value")
		m.Header = append(m.Header, mail.Field{Name: name, Value: value})
	}
	m.Body = r.str("body")
	if r.err != nil {
		return nil
	}
	return m
}

// SaveState serializes the buffer — counters and every held candidate
// in arrival order (engine.AdmissionStatePersister).
func (q *Quarantine) SaveState(w io.Writer) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	var sw stateWriter
	sw.u64(quarantineStateVersion)
	sw.u64(q.totalHeld)
	sw.u64(q.released)
	sw.u64(q.dropped)
	sw.u64(q.expired)
	sw.u64(q.overflow)
	sw.u64(uint64(len(q.held)))
	for _, h := range q.held {
		sw.writeMessage(h.Msg)
		sw.bool(h.Spam)
		sw.str(h.Reason)
		sw.u64(uint64(h.Reviews))
	}
	_, err := w.Write(sw.buf.Bytes())
	return err
}

// LoadState replaces the buffer's contents and counters with a
// previously saved state. Held candidates come back without their
// token streams (see the package-persistence comment above); the next
// review re-tokenizes them. Capacity is the live configuration's:
// state saved under a larger capacity loads intact even if it now
// exceeds the bound — the overflow policy applies to new holds, not
// to survivors.
func (q *Quarantine) LoadState(r io.Reader) error {
	sr, err := newStateReader(r)
	if err != nil {
		return err
	}
	if v := sr.u64("quarantine state version"); sr.err == nil && v != quarantineStateVersion {
		return fmt.Errorf("admission: quarantine state version %d, want %d", v, quarantineStateVersion)
	}
	totalHeld := sr.u64("held counter")
	released := sr.u64("released counter")
	dropped := sr.u64("dropped counter")
	expired := sr.u64("expired counter")
	overflow := sr.u64("overflow counter")
	n := sr.u64("held count")
	if sr.err == nil && n > uint64(sr.r.Len()) { // each entry costs >= 1 byte
		sr.fail("held count truncated")
	}
	var held []HeldMessage
	loadedAt := time.Now()
	for i := uint64(0); sr.err == nil && i < n; i++ {
		m := sr.readMessage()
		spam := sr.bool("held label")
		reason := sr.str("held reason")
		reviews := sr.u64("held reviews")
		held = append(held, HeldMessage{Msg: m, Spam: spam, Reason: reason, Reviews: int(reviews), At: loadedAt})
	}
	if err := sr.done(); err != nil {
		return fmt.Errorf("quarantine: %w", err)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.held = held
	q.totalHeld = totalHeld
	q.released = released
	q.dropped = dropped
	q.expired = expired
	q.overflow = overflow
	return nil
}

// SaveState serializes the budget accounting and the digest-keyed
// memo (engine.AdmissionStatePersister). Identity-keyed memo entries
// are skipped: their key is a message pointer that does not survive
// the process.
func (a *IncrementalRONI) SaveState(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sw stateWriter
	sw.u64(roniStateVersion)
	sw.u64(a.arrivals)
	sw.u64(a.probes)
	sw.u64(a.memoHits)
	sw.u64(a.deferred)
	sw.u64(a.refreshes)
	sw.f64(a.credits)
	sw.f64(a.bucket)
	keys := make([]admitKey, 0, len(a.memo))
	for k := range a.memo {
		if k.msg == nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].digest != keys[j].digest {
			return keys[i].digest < keys[j].digest
		}
		return !keys[i].spam && keys[j].spam
	})
	sw.u64(uint64(len(keys)))
	for _, k := range keys {
		d := a.memo[k]
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], k.digest)
		sw.buf.Write(tmp[:])
		sw.bool(k.spam)
		sw.u64(uint64(d.Verdict))
		sw.str(d.Reason)
	}
	_, err := w.Write(sw.buf.Bytes())
	return err
}

// LoadState replaces the budget accounting and memo with a previously
// saved state — the probe budget an attacker had drained stays
// drained across the restart. The calibration pool is untouched;
// Refresh it from the trusted store as usual at the next swap (which
// clears the memo, exactly as it does for live-probed verdicts).
func (a *IncrementalRONI) LoadState(r io.Reader) error {
	sr, err := newStateReader(r)
	if err != nil {
		return err
	}
	if v := sr.u64("roni state version"); sr.err == nil && v != roniStateVersion {
		return fmt.Errorf("admission: roni state version %d, want %d", v, roniStateVersion)
	}
	arrivals := sr.u64("arrivals")
	probes := sr.u64("probes")
	memoHits := sr.u64("memo hits")
	deferred := sr.u64("deferred")
	refreshes := sr.u64("refreshes")
	credits := sr.f64("credits")
	bucket := sr.f64("bucket")
	n := sr.u64("memo count")
	if sr.err == nil && n > uint64(sr.r.Len())/10 { // each entry costs >= 10 bytes
		sr.fail("memo count truncated")
	}
	memo := make(map[admitKey]Decision, n)
	for i := uint64(0); sr.err == nil && i < n; i++ {
		var tmp [8]byte
		if _, err := io.ReadFull(sr.r, tmp[:]); err != nil {
			sr.fail("memo digest")
			break
		}
		digest := binary.BigEndian.Uint64(tmp[:])
		spam := sr.bool("memo label")
		verdict := sr.u64("memo verdict")
		reason := sr.str("memo reason")
		if sr.err == nil && verdict > uint64(Rejected) {
			sr.fail(fmt.Sprintf("memo verdict %d", verdict))
		}
		memo[admitKey{digest: digest, spam: spam}] = Decision{Verdict: Verdict(verdict), Reason: reason}
	}
	if err := sr.done(); err != nil {
		return fmt.Errorf("roni: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.arrivals = arrivals
	a.probes = probes
	a.memoHits = memoHits
	a.deferred = deferred
	a.refreshes = refreshes
	a.credits = credits
	a.bucket = bucket
	a.memo = memo
	return nil
}

// SaveState serializes the chain as one sub-payload per link, in link
// order; links without durable state write an empty sub-payload
// (engine.AdmissionStatePersister).
func (c *Chain) SaveState(w io.Writer) error {
	var sw stateWriter
	sw.u64(chainStateVersion)
	sw.u64(uint64(len(c.links)))
	for _, link := range c.links {
		p, ok := link.(engine.AdmissionStatePersister)
		if !ok {
			sw.str("")
			continue
		}
		var sub bytes.Buffer
		if err := p.SaveState(&sub); err != nil {
			return fmt.Errorf("admission: chain link %s: %w", link.Name(), err)
		}
		sw.str(sub.String())
	}
	_, err := w.Write(sw.buf.Bytes())
	return err
}

// LoadState restores each link from its sub-payload. The live chain
// must be shaped like the one that saved: same link count, and every
// link whose slot holds state must be able to load it — dropping a
// link's state silently would re-open the amnesty this format closes.
func (c *Chain) LoadState(r io.Reader) error {
	sr, err := newStateReader(r)
	if err != nil {
		return err
	}
	if v := sr.u64("chain state version"); sr.err == nil && v != chainStateVersion {
		return fmt.Errorf("admission: chain state version %d, want %d", v, chainStateVersion)
	}
	n := sr.u64("chain link count")
	if sr.err == nil && n != uint64(len(c.links)) {
		return fmt.Errorf("admission: chain state has %d links, chain has %d", n, len(c.links))
	}
	subs := make([]string, 0, len(c.links))
	for i := uint64(0); sr.err == nil && i < n; i++ {
		subs = append(subs, sr.str("chain link payload"))
	}
	if err := sr.done(); err != nil {
		return fmt.Errorf("chain: %w", err)
	}
	for i, sub := range subs {
		if sub == "" {
			continue
		}
		p, ok := c.links[i].(engine.AdmissionStatePersister)
		if !ok {
			return fmt.Errorf("admission: chain link %d (%s) cannot load persisted state", i, c.links[i].Name())
		}
		if err := p.LoadState(bytes.NewReader([]byte(sub))); err != nil {
			return fmt.Errorf("admission: chain link %d (%s): %w", i, c.links[i].Name(), err)
		}
	}
	return nil
}
