package admission

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mail"
	"repro/internal/tokenize"
)

// FloodGateConfig tunes the structural pre-filter.
type FloodGateConfig struct {
	// MaxDistinct rejects any message whose distinct-token count
	// reaches this bound (<= 0 selects 1024). The paper's §4.2 volume
	// analysis is the calibration: a dictionary attack email carries an
	// entire word source — tens of thousands of distinct tokens against
	// the few hundred of the longest legitimate mail — so a generous
	// cutoff separates the classes with no model at all.
	MaxDistinct int
	// Tokenizer tokenizes candidates (nil selects the default). Use the
	// serving backend's tokenizer so the gate counts exactly the tokens
	// the filter would learn.
	Tokenizer *tokenize.Tokenizer
}

// TokenFloodGate is the cheap structural admitter: it rejects
// dictionary-style wide-vocabulary payloads on token count alone, no
// clone-and-probe required. It cannot see focused attacks (their
// vocabulary is deliberately narrow) — it exists so the expensive
// IncrementalRONI probe behind it in a Chain is spent on mail the
// gate cannot judge.
type TokenFloodGate struct {
	max int
	tok *tokenize.Tokenizer

	// flaggedMemo caches reject decisions by payload identity: the
	// paper's attacks replicate one enormous payload many times, and
	// re-tokenizing ~90k tokens per copy is the one place the gate is
	// not cheap. Only flagged messages are memoized (organic mail is
	// cheap to re-tokenize and unbounded in population), and the memo
	// is capped as a backstop against an adversary minting unlimited
	// distinct flood payloads.
	mu          sync.Mutex
	flaggedMemo map[*mail.Message]Decision

	vetted  atomic.Uint64
	flagged atomic.Uint64
}

// flaggedMemoCap bounds the reject memo; past it, repeat copies of new
// flood payloads just pay the tokenization again.
const flaggedMemoCap = 4096

// NewTokenFloodGate builds the gate.
func NewTokenFloodGate(cfg FloodGateConfig) *TokenFloodGate {
	max := cfg.MaxDistinct
	if max <= 0 {
		max = 1024
	}
	tok := cfg.Tokenizer
	if tok == nil {
		tok = tokenize.Default()
	}
	return &TokenFloodGate{max: max, tok: tok, flaggedMemo: make(map[*mail.Message]Decision)}
}

// Name identifies the gate and its bound.
func (g *TokenFloodGate) Name() string { return fmt.Sprintf("floodgate-%d", g.max) }

// MaxDistinct returns the reject bound.
func (g *TokenFloodGate) MaxDistinct() int { return g.max }

// Vetted and Flagged are monotone counters of candidates seen and
// rejected.
func (g *TokenFloodGate) Vetted() uint64  { return g.vetted.Load() }
func (g *TokenFloodGate) Flagged() uint64 { return g.flagged.Load() }

// Admit rejects wide-vocabulary candidates and accepts the rest. The
// label is irrelevant: the gate is structural, which is exactly why it
// still fires on pseudospam delivered under ham labels. When the
// caller hands a token stream (the tokenize-once path), the distinct
// count is read off it for free and no memo is needed; without one,
// reject verdicts are memoized by payload identity, so the n-1 repeat
// copies of a replicated flood payload skip the (large) tokenization
// pass.
func (g *TokenFloodGate) Admit(_ context.Context, m *mail.Message, ts *tokenize.TokenStream, _ bool) Decision {
	g.vetted.Add(1)
	if ts != nil {
		n := ts.Len()
		if n >= g.max {
			g.flagged.Add(1)
			return Decision{
				Verdict: Rejected,
				Reason:  fmt.Sprintf("token flood: %d distinct tokens >= %d", n, g.max),
			}
		}
		return Decision{Verdict: Accepted, Reason: fmt.Sprintf("%d distinct tokens", n)}
	}
	g.mu.Lock()
	d, hit := g.flaggedMemo[m]
	g.mu.Unlock()
	if hit {
		g.flagged.Add(1)
		return d
	}
	n := g.tok.DistinctTokenCount(m)
	if n >= g.max {
		g.flagged.Add(1)
		d := Decision{
			Verdict: Rejected,
			Reason:  fmt.Sprintf("token flood: %d distinct tokens >= %d", n, g.max),
		}
		g.mu.Lock()
		if len(g.flaggedMemo) < flaggedMemoCap {
			g.flaggedMemo[m] = d
		}
		g.mu.Unlock()
		return d
	}
	return Decision{Verdict: Accepted, Reason: fmt.Sprintf("%d distinct tokens", n)}
}
