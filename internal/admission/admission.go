// Package admission is the training-data vetting pipeline: it sits
// between the message stream and the engine's training path and
// decides, message by message as mail arrives, whether a candidate
// training example may influence the next serving snapshot.
//
// The paper's defenses (RONI §5.1, dynamic thresholds §5.2) are
// evaluated as offline batch steps — a week-end pass over the
// accumulated candidates. An online deployment cannot afford that
// shape: the batch pass concentrates a week of probe compute into one
// stall, and poison delivered on Monday sits in the store all week.
// This package spreads the same defenses across arrivals:
//
//   - TokenFloodGate is a cheap structural pre-filter that rejects
//     dictionary-style wide-vocabulary payloads outright, so the
//     expensive impact probes are spent on mail that actually needs
//     them;
//   - IncrementalRONI runs the paper's clone-and-probe impact
//     measurement under a per-message amortized compute budget,
//     memoizing verdicts by payload identity (a replicated attack
//     costs one probe, not one per copy) and quarantining what the
//     budget cannot cover;
//   - Quarantine holds deferred candidates until the next snapshot
//     swap, where they are re-vetted and released or dropped;
//   - Chain and Sampled compose admitters into a policy.
//
// The contract types (Verdict, Decision, Admitter) are aliases of the
// engine package's declarations, exactly as sbayes.Label aliases
// engine.Label: engine.Guarded threads the pipeline through
// LearnStream/Retrain/RetrainIncremental, so the interface lives where
// the wrapper is, and this package supplies the policies.
package admission

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// Verdict is an admission decision's three-way outcome.
//
//sbvet:nofacade alias of the engine-declared contract; the facade exports it as AdmitVerdict
type Verdict = engine.AdmitVerdict

// The verdicts. (Held rather than Quarantine, because Quarantine names
// the buffer type below.)
const (
	Accepted = engine.AdmitAccept     //sbvet:nofacade alias; the facade exports it as AdmitAccept
	Held     = engine.AdmitQuarantine //sbvet:nofacade alias; the facade exports it as AdmitQuarantine
	Rejected = engine.AdmitReject     //sbvet:nofacade alias; the facade exports it as AdmitReject
)

// Decision is one vetted candidate's outcome.
//
//sbvet:nofacade alias of the engine-declared contract; the facade exports it as AdmitDecision
type Decision = engine.AdmitDecision

// Admitter vets candidate training examples; see engine.Admitter.
type Admitter = engine.Admitter

// Chain composes admitters in order: the first non-Accept decision
// wins, and a candidate every link accepts is accepted. The canonical
// pipeline is Chain(TokenFloodGate, IncrementalRONI) — the free
// structural check runs first so the budgeted probe never pays for a
// message the gate would have rejected anyway.
type Chain struct {
	links []Admitter
}

// NewChain composes the links in vetting order.
func NewChain(links ...Admitter) *Chain {
	if len(links) == 0 {
		panic("admission: NewChain with no admitters")
	}
	return &Chain{links: links}
}

// Name lists the links in order.
func (c *Chain) Name() string {
	names := make([]string, len(c.links))
	for i, a := range c.links {
		names[i] = a.Name()
	}
	return "chain(" + strings.Join(names, ",") + ")"
}

// Admit runs the links in order; the first non-Accept decision wins.
// The same token stream (possibly nil) is handed to every link — the
// tokenize-once contract composes through the chain.
func (c *Chain) Admit(ctx context.Context, m *mail.Message, ts *tokenize.TokenStream, spam bool) Decision {
	for _, a := range c.links {
		if d := a.Admit(ctx, m, ts, spam); d.Verdict != Accepted {
			return d
		}
	}
	return Decision{Verdict: Accepted, Reason: "all links clear"}
}

// Sampled consults its inner admitter for a deterministic pseudorandom
// fraction of candidates and waves the rest through — the coarsest
// budget knob, for deployments whose vetting cost must scale below
// even an amortized per-message probe. (IncrementalRONI's token bucket
// is usually the better throttle because it concentrates probes where
// the flood gate points; Sampled exists for policies without a
// budgeted link.)
type Sampled struct {
	inner Admitter
	p     float64

	mu      sync.Mutex
	rng     *stats.RNG
	skipped atomic.Uint64
}

// NewSampled wraps inner, consulting it with probability p per
// candidate. Randomness comes from r, so a seeded policy is
// reproducible.
func NewSampled(inner Admitter, p float64, r *stats.RNG) (*Sampled, error) {
	if inner == nil {
		return nil, fmt.Errorf("admission: Sampled needs an inner admitter")
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("admission: sample probability %v outside (0,1]", p)
	}
	if r == nil {
		return nil, fmt.Errorf("admission: Sampled needs an RNG")
	}
	return &Sampled{inner: inner, p: p, rng: r}, nil
}

// Name identifies the wrapper and its rate.
func (s *Sampled) Name() string { return fmt.Sprintf("sampled-%.2f(%s)", s.p, s.inner.Name()) }

// Skipped returns the monotone count of candidates waved through
// without consulting the inner admitter.
func (s *Sampled) Skipped() uint64 { return s.skipped.Load() }

// Admit consults the inner admitter for a p-fraction of candidates.
func (s *Sampled) Admit(ctx context.Context, m *mail.Message, ts *tokenize.TokenStream, spam bool) Decision {
	s.mu.Lock()
	consult := s.rng.Bernoulli(s.p)
	s.mu.Unlock()
	if !consult {
		s.skipped.Add(1)
		return Decision{Verdict: Accepted, Reason: "sampled out"}
	}
	return s.inner.Admit(ctx, m, ts, spam)
}
