package admission

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// IncrementalRONIConfig tunes the budgeted incremental RONI admitter.
type IncrementalRONIConfig struct {
	// RONI is the impact-measurement parameterization (trial count,
	// sample sizes, rejection threshold). The zero value selects
	// core.DefaultRONIConfig — the paper's §5.1 numbers.
	RONI core.RONIConfig
	// BudgetPerMessage credits the probe bucket for every Admit call
	// (<= 0 selects 0.05, one probe per twenty arrivals). This is the
	// amortization knob: a week-end batch pass probes every candidate
	// at once; the incremental admitter spends the same measurement a
	// fraction of a probe at a time as mail arrives.
	BudgetPerMessage float64
	// Burst caps unspent accumulated budget and is the starting level,
	// so a fresh admitter can probe the first arrivals immediately
	// (<= 0 selects 8).
	Burst float64
}

// DefaultIncrementalRONIConfig returns the standard amortization: the
// paper's RONI parameters, a twentieth of a probe per arrival, burst 8.
func DefaultIncrementalRONIConfig() IncrementalRONIConfig {
	return IncrementalRONIConfig{
		RONI:             core.DefaultRONIConfig(),
		BudgetPerMessage: 0.05,
		Burst:            8,
	}
}

// withDefaults resolves the zero values.
func (c IncrementalRONIConfig) withDefaults() IncrementalRONIConfig {
	if c.RONI == (core.RONIConfig{}) {
		c.RONI = core.DefaultRONIConfig()
	}
	if c.BudgetPerMessage <= 0 {
		c.BudgetPerMessage = 0.05
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	return c
}

// IncrementalRONIStats is a point-in-time snapshot of the admitter's
// accounting. Every counter except Bucket is monotone nondecreasing,
// and the budget invariant Probes <= Burst + CreditsGranted holds at
// all times — a probe can only spend budget that was credited.
type IncrementalRONIStats struct {
	// Arrivals is the number of Admit calls.
	Arrivals uint64
	// Probes is the number of impact measurements actually run — the
	// expensive clone-and-probe passes. This is the number to compare
	// against a week-end batch pass, which spends one probe per
	// distinct weekly candidate.
	Probes uint64
	// MemoHits counts verdicts served from the identity cache: a
	// replicated attack payload is probed once and every further copy
	// is free.
	MemoHits uint64
	// Deferred counts candidates quarantined because the bucket was
	// empty when they arrived.
	Deferred uint64
	// Refreshes counts calibration-pool rebuilds (one per snapshot
	// swap in the standard wiring).
	Refreshes uint64
	// CreditsGranted is the total budget ever credited (per-arrival
	// drip plus explicit Grant calls).
	CreditsGranted float64
	// Bucket is the current unspent budget (not monotone).
	Bucket float64
}

// admitKey memoizes verdicts by payload and training label. On the
// tokenize-once path the payload is identified by the token stream's
// digest, so two copies of a replicated attack memo-hit even when they
// arrive as distinct *mail.Message values; without a stream the key
// falls back to message identity (msg non-nil), which never collides
// with a digest key.
type admitKey struct {
	msg    *mail.Message
	digest uint64
	spam   bool
}

// keyFor builds the memo key for one candidate.
func keyFor(m *mail.Message, ts *tokenize.TokenStream, spam bool) admitKey {
	if ts != nil {
		return admitKey{digest: ts.Digest(), spam: spam}
	}
	return admitKey{msg: m, spam: spam}
}

// IncrementalRONI is the §5.1 Reject On Negative Impact defense run
// incrementally as messages arrive instead of as a week-end batch: it
// reuses core.RONI's clone-and-probe impact measurement against a
// calibration pool sampled from the trusted store, but spends probes
// from an amortized token bucket credited per arrival. When the bucket
// is empty the candidate is quarantined rather than admitted
// unvetted — the expensive decision is deferred to the next snapshot
// swap, where the buffer is reviewed with fresh budget.
//
// Verdicts from actual probes are memoized by payload — the token
// stream's digest on the tokenize-once path, message identity as the
// fallback — so the paper's replicated attacks (n copies of one
// dictionary email) cost one probe total; deferrals are not memoized,
// so a later copy can be probed once budget accrues.
type IncrementalRONI struct {
	mu      sync.Mutex
	cfg     IncrementalRONIConfig
	factory engine.Factory
	roni    *core.RONI
	memo    map[admitKey]Decision
	bucket  float64

	arrivals  uint64
	probes    uint64
	memoHits  uint64
	deferred  uint64
	refreshes uint64
	credits   float64
}

// NewIncrementalRONI builds the admitter over a calibration pool (the
// deployment's trusted mail store): trial training and validation sets
// are sampled from it exactly as the batch defense samples them, so on
// the same pool, seed, and configuration the incremental admitter's
// probe verdicts match a core.RONI batch pass verdict for verdict.
func NewIncrementalRONI(cfg IncrementalRONIConfig, pool *corpus.Corpus, factory engine.Factory, r *stats.RNG) (*IncrementalRONI, error) {
	cfg = cfg.withDefaults()
	roni, err := core.NewRONIBackend(cfg.RONI, pool, factory, r)
	if err != nil {
		return nil, fmt.Errorf("admission: %w", err)
	}
	return &IncrementalRONI{
		cfg:     cfg,
		factory: factory,
		roni:    roni,
		memo:    make(map[admitKey]Decision),
		bucket:  cfg.Burst,
	}, nil
}

// Name identifies the admitter and its amortization rate.
func (a *IncrementalRONI) Name() string {
	return fmt.Sprintf("roni-inc-%.3g/msg", a.cfg.BudgetPerMessage)
}

// Config returns the resolved configuration.
func (a *IncrementalRONI) Config() IncrementalRONIConfig { return a.cfg }

// Stats snapshots the accounting.
func (a *IncrementalRONI) Stats() IncrementalRONIStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return IncrementalRONIStats{
		Arrivals:       a.arrivals,
		Probes:         a.probes,
		MemoHits:       a.memoHits,
		Deferred:       a.deferred,
		Refreshes:      a.refreshes,
		CreditsGranted: a.credits,
		Bucket:         a.bucket,
	}
}

// Register exposes the admitter's accounting on a metrics registry as
// scrape-time sampled functions: the counters live under the
// admitter's own lock (Stats() reads them consistently), so mirroring
// them into stored instruments on every Admit would duplicate state
// the lock already owns. The budget gauge is the operator's
// early-warning line — a poisoning campaign drains it to zero and
// pins deferrals climbing — and the memo hit ratio shows replicated
// attacks being amortized. No-op on a nil registry.
func (a *IncrementalRONI) Register(reg *obs.Registry) {
	l := obs.L("admitter", "roni")
	reg.CounterFunc("admission_roni_arrivals_total", "Admit calls", func() float64 { return float64(a.Stats().Arrivals) }, l)
	reg.CounterFunc("admission_roni_probes_total", "impact measurements actually run (clone-and-probe passes)", func() float64 { return float64(a.Stats().Probes) }, l)
	reg.CounterFunc("admission_roni_memo_hits_total", "verdicts served from the payload-identity cache", func() float64 { return float64(a.Stats().MemoHits) }, l)
	reg.CounterFunc("admission_roni_deferred_total", "candidates quarantined because the probe budget was empty", func() float64 { return float64(a.Stats().Deferred) }, l)
	reg.CounterFunc("admission_roni_refreshes_total", "calibration-pool rebuilds", func() float64 { return float64(a.Stats().Refreshes) }, l)
	reg.CounterFunc("admission_roni_credits_total", "total probe budget ever credited", func() float64 { return a.Stats().CreditsGranted }, l)
	reg.GaugeFunc("admission_roni_budget", "current unspent probe budget", func() float64 { return a.Stats().Bucket }, l)
	reg.GaugeFunc("admission_roni_memo_hit_ratio", "fraction of arrivals served from the memo", func() float64 {
		s := a.Stats()
		if s.Arrivals == 0 {
			return 0
		}
		return float64(s.MemoHits) / float64(s.Arrivals)
	}, l)
}

// Grant credits extra probe budget outside the per-arrival drip — the
// end-of-interval slack a deployment grants at each snapshot swap so
// the quarantine review has probes to spend.
func (a *IncrementalRONI) Grant(n float64) {
	if n <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.credits += n
	a.bucket += n
}

// Refresh re-samples the calibration pool — the rolling part of the
// rolling calibration pool: at each snapshot swap the deployment hands
// the admitter its grown trusted store, so impact is always measured
// against what the filter currently believes. Memoized verdicts are
// cleared (they were measured against the old baseline).
func (a *IncrementalRONI) Refresh(pool *corpus.Corpus, r *stats.RNG) error {
	roni, err := core.NewRONIBackend(a.cfg.RONI, pool, a.factory, r)
	if err != nil {
		return fmt.Errorf("admission: refresh: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roni = roni
	a.memo = make(map[admitKey]Decision)
	a.refreshes++
	return nil
}

// Admit credits the bucket, serves memoized verdicts for free, probes
// when the budget allows, and quarantines otherwise. The probe holds
// the admitter's lock — trial filters mutate during measurement — so
// concurrent Admit calls serialize; the per-call cost is what the
// budget is for.
func (a *IncrementalRONI) Admit(_ context.Context, m *mail.Message, ts *tokenize.TokenStream, spam bool) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.arrivals++
	a.credits += a.cfg.BudgetPerMessage
	// The per-arrival drip accrues only up to Burst; budget above it
	// (from an explicit Grant) is preserved, never clamped away — a
	// swap-time review grant must survive the review's own Admit calls.
	if a.bucket < a.cfg.Burst {
		a.bucket += a.cfg.BudgetPerMessage
		if a.bucket > a.cfg.Burst {
			a.bucket = a.cfg.Burst
		}
	}
	key := keyFor(m, ts, spam)
	if d, ok := a.memo[key]; ok {
		a.memoHits++
		return d
	}
	if a.bucket < 1 {
		a.deferred++
		return Decision{Verdict: Held, Reason: "roni: probe budget exhausted"}
	}
	a.bucket--
	a.probes++
	imp := a.roni.MeasureImpactStream(m, ts, spam)
	d := Decision{Verdict: Accepted, Reason: fmt.Sprintf("roni: ham-as-ham delta %+.2f", imp.HamAsHamDelta)}
	if imp.HamAsHamDelta <= -a.cfg.RONI.Threshold {
		d = Decision{Verdict: Rejected, Reason: fmt.Sprintf("roni: ham-as-ham delta %+.2f breaches -%.2f", imp.HamAsHamDelta, a.cfg.RONI.Threshold)}
	}
	a.memo[key] = d
	return d
}
