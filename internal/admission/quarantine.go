package admission

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mail"
	"repro/internal/obs"
	"repro/internal/tokenize"
)

// QuarantineConfig tunes the deferred-candidate buffer.
type QuarantineConfig struct {
	// Capacity bounds the buffer (<= 0 is unbounded). When full, new
	// holds are dropped and counted as overflow — backpressure never
	// propagates to the delivery path.
	Capacity int
	// MaxReviews drops a candidate that is still undecidable after
	// this many swap-time reviews (<= 0 selects 2). Expiry is
	// conservative: an example nothing would vouch for within two
	// generations does not train.
	MaxReviews int
	// Trace, when non-nil, records hold and release lifecycle events
	// for sampled candidates.
	Trace *obs.Tracer
}

// HeldMessage is one quarantined training candidate.
type HeldMessage struct {
	Msg *mail.Message
	// Stream is the candidate tokenized once at vetting time (nil when
	// the holder had none); reviews hand it back to the judge so a
	// deferred candidate is never re-tokenized.
	Stream *tokenize.TokenStream
	Spam   bool
	// Reason is the admission decision that parked it here.
	Reason string
	// Reviews counts swap-time reviews it has survived undecided.
	Reviews int
	// At is when the candidate entered the buffer (for a candidate
	// restored from persisted state, when it was loaded — age restarts
	// at resume because the hold timestamp is not persisted).
	At time.Time
}

// QuarantineStats is a snapshot of the buffer's accounting; every
// field except Pending is monotone.
type QuarantineStats struct {
	// Pending is the current buffer depth.
	Pending int
	// Held is the total number of candidates ever quarantined.
	Held uint64
	// Released is the total re-admitted into training at reviews.
	Released uint64
	// Dropped is the total rejected at reviews.
	Dropped uint64
	// Expired is the total dropped for exceeding MaxReviews undecided.
	Expired uint64
	// Overflow is the total dropped on arrival because the buffer was
	// at capacity.
	Overflow uint64
}

// Quarantine buffers candidates an admitter deferred, in arrival
// order, until a snapshot swap reviews them. It implements
// engine.QuarantineSink, so a Guarded engine routes quarantine
// verdicts here automatically, and it is safe for concurrent holds
// against a review in progress.
type Quarantine struct {
	mu   sync.Mutex
	cfg  QuarantineConfig
	held []HeldMessage
	// reviewing counts entries a Review in progress has detached from
	// held; capacity checks include them so concurrent holds cannot
	// balloon the buffer past its bound while a review runs.
	reviewing int

	totalHeld uint64
	released  uint64
	dropped   uint64
	expired   uint64
	overflow  uint64
}

// NewQuarantine builds an empty buffer.
func NewQuarantine(cfg QuarantineConfig) *Quarantine {
	if cfg.MaxReviews <= 0 {
		cfg.MaxReviews = 2
	}
	return &Quarantine{cfg: cfg}
}

// Hold buffers one candidate (engine.QuarantineSink). ts is the
// candidate's token stream when the holder tokenized it (nil
// otherwise); it is kept with the message for the swap-time review.
func (q *Quarantine) Hold(m *mail.Message, ts *tokenize.TokenStream, spam bool, reason string) {
	q.mu.Lock()
	if q.cfg.Capacity > 0 && len(q.held)+q.reviewing >= q.cfg.Capacity {
		q.overflow++
		q.mu.Unlock()
		return
	}
	q.totalHeld++
	q.held = append(q.held, HeldMessage{Msg: m, Stream: ts, Spam: spam, Reason: reason, At: time.Now()})
	q.mu.Unlock()
	if ts != nil {
		if d := ts.Digest(); q.cfg.Trace.Sampled(d) {
			q.cfg.Trace.Record(obs.TraceEvent{Kind: obs.TraceHold, Digest: d, Shard: -1, Reason: reason})
		}
	}
}

// Len returns the current buffer depth.
func (q *Quarantine) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.held)
}

// Pending returns a copy of the buffer in arrival order.
func (q *Quarantine) Pending() []HeldMessage {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]HeldMessage, len(q.held))
	copy(out, q.held)
	return out
}

// Stats snapshots the accounting.
func (q *Quarantine) Stats() QuarantineStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QuarantineStats{
		Pending:  len(q.held),
		Held:     q.totalHeld,
		Released: q.released,
		Dropped:  q.dropped,
		Expired:  q.expired,
		Overflow: q.overflow,
	}
}

// Register exposes the buffer's accounting on a metrics registry.
// Depth and oldest-age are the two curves a poisoning campaign bends
// first: an attacker draining the probe budget pushes arrivals into
// the buffer (depth climbs) and a review that keeps deferring them
// ages the head. Sampled at scrape time under the buffer's own lock.
// No-op on a nil registry.
func (q *Quarantine) Register(reg *obs.Registry) {
	reg.GaugeFunc("admission_quarantine_depth", "candidates currently held", func() float64 {
		return float64(q.Len())
	})
	reg.GaugeFunc("admission_quarantine_oldest_age_seconds", "age of the oldest held candidate", func() float64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		if len(q.held) == 0 {
			return 0
		}
		return time.Since(q.held[0].At).Seconds()
	})
	reg.CounterFunc("admission_quarantine_held_total", "candidates ever quarantined", func() float64 { return float64(q.Stats().Held) })
	reg.CounterFunc("admission_quarantine_released_total", "candidates re-admitted into training at reviews", func() float64 { return float64(q.Stats().Released) })
	reg.CounterFunc("admission_quarantine_dropped_total", "candidates rejected at reviews (expiries included)", func() float64 { return float64(q.Stats().Dropped) })
	reg.CounterFunc("admission_quarantine_expired_total", "candidates dropped for exceeding MaxReviews undecided", func() float64 { return float64(q.Stats().Expired) })
	reg.CounterFunc("admission_quarantine_overflow_total", "holds dropped on arrival at capacity", func() float64 { return float64(q.Stats().Overflow) })
}

// Review re-vets every held candidate in arrival order with judge —
// typically the refreshed admission chain, right after a snapshot
// swap granted it fresh probe budget. Accepted candidates are removed
// and returned for training; rejected ones are removed and counted
// dropped; still-undecidable ones stay held unless they have exhausted
// MaxReviews, in which case they expire (counted in both dropped and
// expired). Order is deterministic: given the same buffer and a
// deterministic judge, two reviews release the same messages in the
// same order.
func (q *Quarantine) Review(judge func(m *mail.Message, ts *tokenize.TokenStream, spam bool) Decision) (released []HeldMessage, droppedNow int) {
	q.mu.Lock()
	pending := q.held
	q.held = nil
	q.reviewing = len(pending)
	q.mu.Unlock()

	// Judge outside the lock: probes are slow and Hold must not block
	// behind them. New holds during the review land in the fresh
	// buffer and wait for the next swap.
	var keep []HeldMessage
	var dropped, expired uint64
	for _, h := range pending {
		switch d := judge(h.Msg, h.Stream, h.Spam); d.Verdict {
		case Accepted:
			released = append(released, h)
			if h.Stream != nil {
				if dg := h.Stream.Digest(); q.cfg.Trace.Sampled(dg) {
					q.cfg.Trace.Record(obs.TraceEvent{Kind: obs.TraceRelease, Digest: dg, Shard: -1, Reason: d.Reason})
				}
			}
		case Rejected:
			dropped++
		default:
			h.Reviews++
			if h.Reviews >= q.cfg.MaxReviews {
				expired++
				dropped++
			} else {
				keep = append(keep, h)
			}
		}
	}

	q.mu.Lock()
	// Still-held candidates precede anything quarantined mid-review,
	// preserving arrival order.
	q.held = append(keep, q.held...)
	q.reviewing = 0
	q.released += uint64(len(released))
	q.dropped += dropped
	q.expired += expired
	q.mu.Unlock()
	return released, int(dropped)
}

// String summarizes the buffer for traces.
func (q *Quarantine) String() string {
	s := q.Stats()
	return fmt.Sprintf("quarantine[pending=%d held=%d released=%d dropped=%d expired=%d overflow=%d]",
		s.Pending, s.Held, s.Released, s.Dropped, s.Expired, s.Overflow)
}
