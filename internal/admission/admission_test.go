package admission_test

// Conformance suite for the training-data vetting pipeline: the
// combinators compose, the flood gate is structural and label-blind,
// the budgeted incremental RONI accounts monotonically and memoizes by
// identity, the quarantine reviews deterministically, and — the
// headline regression — a week-end batch RONI pass and the budgeted
// incremental admitter reject the same dictionary-attack messages on a
// fixed seed, for both backends.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/graham"
	"repro/internal/lexicon"
	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/textgen"
	"repro/internal/tokenize"

	// The sbayes backend registers itself on import (graham above is
	// imported for its options too).
	_ "repro/internal/sbayes"
)

var ctx = context.Background()

// testGen returns a small deterministic generator (the scenario
// package's test universe).
func testGen(t testing.TB) *textgen.Generator {
	t.Helper()
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
	return textgen.MustNew(u, textgen.DefaultConfig())
}

// pool returns a labeled calibration corpus.
func pool(t testing.TB, g *textgen.Generator, n int) *corpus.Corpus {
	t.Helper()
	return g.Corpus(stats.NewRNG(1001), n/2, n/2)
}

// stockBackends mirrors the engine conformance suite's pinned list.
var stockBackends = []string{"sbayes", "graham"}

func backendFactory(t *testing.T, name string) engine.Factory {
	t.Helper()
	b, err := engine.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.New
}

// fixed is a stub admitter with a constant decision.
type fixed struct {
	name string
	d    admission.Decision
}

func (f fixed) Name() string { return f.name }
func (f fixed) Admit(context.Context, *mail.Message, *tokenize.TokenStream, bool) admission.Decision {
	return f.d
}

func TestChainFirstNonAcceptWins(t *testing.T) {
	accept := fixed{"a", admission.Decision{Verdict: admission.Accepted, Reason: "ok"}}
	hold := fixed{"h", admission.Decision{Verdict: admission.Held, Reason: "held"}}
	reject := fixed{"r", admission.Decision{Verdict: admission.Rejected, Reason: "no"}}
	m := &mail.Message{Body: "x\n"}

	cases := []struct {
		chain *admission.Chain
		want  admission.Verdict
	}{
		{admission.NewChain(accept, accept), admission.Accepted},
		{admission.NewChain(accept, hold, reject), admission.Held},
		{admission.NewChain(reject, accept), admission.Rejected},
		{admission.NewChain(accept, reject), admission.Rejected},
	}
	for i, c := range cases {
		if got := c.chain.Admit(ctx, m, nil, true).Verdict; got != c.want {
			t.Errorf("case %d: verdict %v, want %v", i, got, c.want)
		}
	}
	name := admission.NewChain(accept, reject).Name()
	if name != "chain(a,r)" {
		t.Errorf("chain name %q", name)
	}
}

func TestSampledSkipsDeterministically(t *testing.T) {
	reject := fixed{"r", admission.Decision{Verdict: admission.Rejected, Reason: "no"}}
	run := func(seed uint64) []admission.Verdict {
		s, err := admission.NewSampled(reject, 0.5, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		var out []admission.Verdict
		for i := 0; i < 64; i++ {
			out = append(out, s.Admit(ctx, &mail.Message{Body: "x\n"}, nil, true).Verdict)
		}
		return out
	}
	a, b := run(5), run(5)
	rejected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs across identical seeds", i)
		}
		if a[i] == admission.Rejected {
			rejected++
		}
	}
	if rejected == 0 || rejected == 64 {
		t.Errorf("sampling at 0.5 consulted the inner admitter %d/64 times", rejected)
	}
	if _, err := admission.NewSampled(reject, 1.5, stats.NewRNG(1)); err == nil {
		t.Error("sample probability above 1 accepted")
	}
}

func TestFloodGateIsStructuralAndLabelBlind(t *testing.T) {
	g := testGen(t)
	gate := admission.NewTokenFloodGate(admission.FloodGateConfig{MaxDistinct: 300})
	attack := core.NewDictionaryAttack(lexicon.Optimal(g.Universe())).BuildAttack(stats.NewRNG(2))
	organic := g.HamMessage(stats.NewRNG(3))

	// The dictionary payload is rejected under either training label —
	// the gate reads structure, which is what catches pseudospam
	// delivered under ham labels.
	for _, spam := range []bool{true, false} {
		if d := gate.Admit(ctx, attack, nil, spam); d.Verdict != admission.Rejected {
			t.Errorf("dictionary payload (spam=%v) got %v (%s)", spam, d.Verdict, d.Reason)
		}
	}
	if d := gate.Admit(ctx, organic, nil, false); d.Verdict != admission.Accepted {
		t.Errorf("organic ham got %v (%s)", d.Verdict, d.Reason)
	}
	if gate.Vetted() != 3 || gate.Flagged() != 2 {
		t.Errorf("counters vetted=%d flagged=%d, want 3/2", gate.Vetted(), gate.Flagged())
	}
	// Repeat copies of a flagged payload are served from the identity
	// memo — the same decision, without re-tokenizing the huge body —
	// while a body-identical distinct message is measured afresh.
	first := gate.Admit(ctx, attack, nil, true)
	for i := 0; i < 10; i++ {
		if d := gate.Admit(ctx, attack, nil, true); d != first {
			t.Fatalf("memoized copy got %+v, want %+v", d, first)
		}
	}
	clone := &mail.Message{Body: attack.Body}
	if d := gate.Admit(ctx, clone, nil, true); d.Verdict != admission.Rejected {
		t.Errorf("distinct flood payload got %v", d.Verdict)
	}
}

func TestIncrementalRONIBudgetAccountingIsMonotone(t *testing.T) {
	g := testGen(t)
	cfg := admission.IncrementalRONIConfig{
		RONI:             core.RONIConfig{TrainSize: 10, ValSize: 20, Trials: 2, SpamPrevalence: 0.5, Threshold: 5.5},
		BudgetPerMessage: 0.25,
		Burst:            2,
	}
	a, err := admission.NewIncrementalRONI(cfg, pool(t, g, 200), backendFactory(t, "sbayes"), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	prev := a.Stats()
	if prev.Bucket != cfg.Burst {
		t.Fatalf("initial bucket %v, want burst %v", prev.Bucket, cfg.Burst)
	}
	r := stats.NewRNG(8)
	deferred := false
	for i := 0; i < 100; i++ {
		a.Admit(ctx, g.Message(r, i%2 == 0), nil, i%2 == 0)
		s := a.Stats()
		if s.Arrivals < prev.Arrivals || s.Probes < prev.Probes || s.MemoHits < prev.MemoHits ||
			s.Deferred < prev.Deferred || s.CreditsGranted < prev.CreditsGranted {
			t.Fatalf("counter decreased at arrival %d: %+v -> %+v", i, prev, s)
		}
		// A probe can only spend budget that was credited.
		if float64(s.Probes) > cfg.Burst+s.CreditsGranted {
			t.Fatalf("probes %d exceed burst %v + credits %v", s.Probes, cfg.Burst, s.CreditsGranted)
		}
		if s.Bucket < 0 {
			t.Fatalf("bucket went negative: %v", s.Bucket)
		}
		if s.Deferred > 0 {
			deferred = true
		}
		prev = s
	}
	if !deferred {
		t.Error("budget of 0.25/message never deferred a candidate in 100 arrivals")
	}
	// Grant credits flow into both the monotone total and the bucket.
	before := a.Stats()
	a.Grant(10)
	after := a.Stats()
	if after.CreditsGranted != before.CreditsGranted+10 || after.Bucket != before.Bucket+10 {
		t.Errorf("Grant(10): %+v -> %+v", before, after)
	}
	// A granted bucket above Burst survives further Admit calls: the
	// per-arrival drip stops accruing, but never clamps granted budget
	// away — the swap-time review grant must outlive the review's own
	// vetting (regression: the old clamp discarded it on first Admit).
	granted := after.Bucket
	a.Admit(ctx, g.Message(r, true), nil, true) // memo miss: costs one probe, no clamp
	if got := a.Stats().Bucket; got < granted-1 {
		t.Errorf("bucket %v after one probe from a granted %v — grant was clamped away", got, granted)
	}
}

func TestIncrementalRONIMemoizesByIdentity(t *testing.T) {
	g := testGen(t)
	cfg := admission.IncrementalRONIConfig{
		RONI:             core.RONIConfig{TrainSize: 10, ValSize: 20, Trials: 2, SpamPrevalence: 0.5, Threshold: 5.5},
		BudgetPerMessage: 1,
		Burst:            1000,
	}
	a, err := admission.NewIncrementalRONI(cfg, pool(t, g, 200), backendFactory(t, "sbayes"), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	payload := core.NewDictionaryAttack(lexicon.Optimal(g.Universe())).BuildAttack(stats.NewRNG(2))
	first := a.Admit(ctx, payload, nil, true)
	for i := 0; i < 49; i++ {
		if d := a.Admit(ctx, payload, nil, true); d != first {
			t.Fatalf("copy %d got %+v, first copy got %+v", i, d, first)
		}
	}
	s := a.Stats()
	if s.Probes != 1 {
		t.Errorf("50 copies of one payload cost %d probes, want 1", s.Probes)
	}
	if s.MemoHits != 49 {
		t.Errorf("memo hits %d, want 49", s.MemoHits)
	}
	// A body-identical but distinct message is judged separately (the
	// identity key, not the body, is the cache key) — and so is the
	// same payload under the other training label.
	clone := &mail.Message{Body: payload.Body}
	a.Admit(ctx, clone, nil, true)
	a.Admit(ctx, payload, nil, false)
	if s := a.Stats(); s.Probes != 3 {
		t.Errorf("distinct identity and distinct label cost %d probes total, want 3", s.Probes)
	}
	// Refresh clears the memo: the old verdicts were measured against
	// the old calibration pool.
	if err := a.Refresh(pool(t, g, 200), stats.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	a.Admit(ctx, payload, nil, true)
	if s := a.Stats(); s.Probes != 4 || s.Refreshes != 1 {
		t.Errorf("after refresh: probes %d refreshes %d, want 4 and 1", s.Probes, s.Refreshes)
	}
}

// TestIncrementalRONIMatchesBatchRONI is the regression the ISSUE pins
// down: on a fixed seed, one week-end batch RONI pass and the budgeted
// incremental admitter (given enough budget to probe everything)
// reject exactly the same dictionary-attack messages — the incremental
// defense is the batch defense re-scheduled, not a different policy.
func TestIncrementalRONIMatchesBatchRONI(t *testing.T) {
	g := testGen(t)
	roniCfg := core.RONIConfig{TrainSize: 15, ValSize: 30, Trials: 3, SpamPrevalence: 0.5, Threshold: 5.5}
	attack := core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

	for _, backend := range stockBackends {
		t.Run(backend, func(t *testing.T) {
			factory := backendFactory(t, backend)
			if backend == "graham" {
				// Stock Graham's five-occurrence evidence floor makes a
				// single probe copy invisible, so with defaults both
				// defenses (correctly) reject nothing — agreement, but a
				// vacuous regression. Drop the floor so the fixture has
				// rejections to compare; batch and incremental share the
				// factory, which is what the regression is about.
				opts := graham.DefaultOptions()
				opts.MinOccurrences = 1
				factory = func() engine.Classifier { return graham.New(opts, nil) }
			}
			calib := pool(t, g, 300)

			// The weekly candidates: organic mail plus replicated and
			// chunked attack payloads.
			candidates := g.Corpus(stats.NewRNG(2002), 30, 30)
			whole := attack.BuildAttack(stats.NewRNG(3))
			for i := 0; i < 5; i++ {
				candidates.Add(whole, true)
			}
			for _, chunk := range attack.BuildChunked(3) {
				candidates.Add(chunk, true)
			}

			batch, err := core.NewRONIBackend(roniCfg, calib, factory, stats.NewRNG(77))
			if err != nil {
				t.Fatal(err)
			}
			inc, err := admission.NewIncrementalRONI(admission.IncrementalRONIConfig{
				RONI:             roniCfg,
				BudgetPerMessage: 1,
				Burst:            float64(candidates.Len()),
			}, calib, factory, stats.NewRNG(77))
			if err != nil {
				t.Fatal(err)
			}

			rejectedBatch := map[*mail.Message]bool{}
			_, rejected := batch.FilterCorpus(candidates)
			for _, e := range rejected.Examples {
				rejectedBatch[e.Msg] = true
			}
			rejectedInc := map[*mail.Message]bool{}
			for _, e := range candidates.Examples {
				d := inc.Admit(ctx, e.Msg, nil, e.Spam)
				if d.Verdict == admission.Held {
					t.Fatalf("budget covered every candidate yet %q was deferred", d.Reason)
				}
				if d.Verdict == admission.Rejected {
					rejectedInc[e.Msg] = true
				}
			}

			if len(rejectedBatch) == 0 {
				t.Fatal("batch RONI rejected nothing — the fixture attack is too weak to regress against")
			}
			for m := range rejectedBatch {
				if !rejectedInc[m] {
					t.Errorf("batch rejected a message the incremental admitter accepted (%.40q)", m.Body)
				}
			}
			for m := range rejectedInc {
				if !rejectedBatch[m] {
					t.Errorf("incremental rejected a message the batch pass kept (%.40q)", m.Body)
				}
			}
			if !rejectedBatch[whole] {
				t.Error("neither defense rejected the replicated dictionary payload")
			}
		})
	}
}

func TestQuarantineReviewIsDeterministic(t *testing.T) {
	// Two identically filled buffers reviewed with the same
	// deterministic judge release the same messages in the same order
	// and drop the same count.
	build := func() *admission.Quarantine {
		q := admission.NewQuarantine(admission.QuarantineConfig{MaxReviews: 2})
		for i := 0; i < 20; i++ {
			q.Hold(&mail.Message{Body: fmt.Sprintf("held %d\n", i)}, nil, i%2 == 0, "deferred")
		}
		return q
	}
	judge := func(m *mail.Message, _ *tokenize.TokenStream, spam bool) admission.Decision {
		switch {
		case len(m.Body)%3 == 0:
			return admission.Decision{Verdict: admission.Accepted}
		case spam:
			return admission.Decision{Verdict: admission.Rejected}
		default:
			return admission.Decision{Verdict: admission.Held}
		}
	}
	qa, qb := build(), build()
	relA, dropA := qa.Review(judge)
	relB, dropB := qb.Review(judge)
	if len(relA) != len(relB) || dropA != dropB {
		t.Fatalf("review outcomes differ: %d/%d vs %d/%d", len(relA), dropA, len(relB), dropB)
	}
	for i := range relA {
		if relA[i].Msg.Body != relB[i].Msg.Body {
			t.Fatalf("release order differs at %d: %q vs %q", i, relA[i].Msg.Body, relB[i].Msg.Body)
		}
	}
}

func TestQuarantineExpiryAndOverflow(t *testing.T) {
	q := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 2, MaxReviews: 2})
	for i := 0; i < 5; i++ {
		q.Hold(&mail.Message{Body: fmt.Sprintf("m%d\n", i)}, nil, true, "deferred")
	}
	if s := q.Stats(); s.Pending != 2 || s.Overflow != 3 {
		t.Fatalf("capacity 2: pending %d overflow %d", s.Pending, s.Overflow)
	}
	undecided := func(*mail.Message, *tokenize.TokenStream, bool) admission.Decision {
		return admission.Decision{Verdict: admission.Held}
	}
	// First review: both survive undecided. Second review: both expire.
	if rel, drop := q.Review(undecided); len(rel) != 0 || drop != 0 {
		t.Fatalf("first review released %d dropped %d", len(rel), drop)
	}
	if rel, drop := q.Review(undecided); len(rel) != 0 || drop != 2 {
		t.Fatalf("second review released %d dropped %d, want expiry of both", len(rel), drop)
	}
	s := q.Stats()
	if s.Pending != 0 || s.Expired != 2 || s.Dropped != 2 {
		t.Fatalf("after expiry: %+v", s)
	}
}

func TestQuarantineCapacityHoldsDuringReview(t *testing.T) {
	// Entries detached by an in-progress review still count against
	// the capacity bound, so holds racing the review cannot balloon
	// the buffer past it.
	q := admission.NewQuarantine(admission.QuarantineConfig{Capacity: 2, MaxReviews: 5})
	q.Hold(&mail.Message{Body: "a\n"}, nil, true, "deferred")
	q.Hold(&mail.Message{Body: "b\n"}, nil, true, "deferred")
	q.Review(func(*mail.Message, *tokenize.TokenStream, bool) admission.Decision {
		q.Hold(&mail.Message{Body: "mid\n"}, nil, true, "deferred")
		return admission.Decision{Verdict: admission.Held}
	})
	s := q.Stats()
	if s.Pending != 2 {
		t.Errorf("pending %d after review, want the capacity bound 2", s.Pending)
	}
	if s.Overflow != 2 {
		t.Errorf("overflow %d, want the 2 mid-review holds bounced", s.Overflow)
	}
}

func TestQuarantineHoldDuringReviewLandsInNextBatch(t *testing.T) {
	q := admission.NewQuarantine(admission.QuarantineConfig{MaxReviews: 5})
	first := &mail.Message{Body: "first\n"}
	q.Hold(first, nil, true, "deferred")
	late := &mail.Message{Body: "late\n"}
	judge := func(m *mail.Message, _ *tokenize.TokenStream, spam bool) admission.Decision {
		// A candidate quarantined while the review runs must not be
		// judged by this review.
		q.Hold(late, nil, false, "deferred")
		if m == late {
			t.Fatal("review judged a message held mid-review")
		}
		return admission.Decision{Verdict: admission.Accepted}
	}
	released, _ := q.Review(judge)
	if len(released) != 1 || released[0].Msg != first {
		t.Fatalf("released %d, want just the pre-review hold", len(released))
	}
	if q.Len() != 1 {
		t.Fatalf("mid-review hold not pending: len %d", q.Len())
	}
}
