package sbayes

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf, f.Options(), f.Tokenizer())
	if err != nil {
		t.Fatal(err)
	}
	if fs, fh := f.Counts(); func() bool { gs, gh := g.Counts(); return gs != fs || gh != fh }() {
		t.Error("counts differ after round trip")
	}
	if f.VocabSize() != g.VocabSize() {
		t.Errorf("vocab %d vs %d", f.VocabSize(), g.VocabSize())
	}
	probe := mkMsg("viagra budget neverseen meeting\n")
	if f.Score(probe) != g.Score(probe) {
		t.Error("scores differ after round trip")
	}
}

func TestSaveDeterministic(t *testing.T) {
	f := NewDefault()
	r := stats.NewRNG(1)
	for i := 0; i < 50; i++ {
		f.LearnTokens(randomTokens(r, 20), r.Bernoulli(0.5), 1)
	}
	var a, b bytes.Buffer
	if err := f.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Save output is not deterministic")
	}
}

func TestSaveEmptyFilter(t *testing.T) {
	f := NewDefault()
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.VocabSize() != 0 {
		t.Error("empty filter round trip gained tokens")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"SBDB\x03",         // unsupported version
		"SBDB\x02",         // truncated v2 header
		"SBDB\x01",         // truncated header
		"SBDB\x01\x01",     // truncated after nspam
		"SBDB\x01\x01\x01", // truncated after nham
		// v2 bodies with hostile symbol/record sections. Layout:
		// nspam nham nsyms {len tok}... nrecs {id spam ham}...
		"SBDB\x02\x01\x01\x02\x01a\x01a\x02\x00\x01\x01\x01\x01\x01", // duplicate symbol
		"SBDB\x02\x01\x01\x01\x01a\x01\x05\x01\x01",                  // record id out of bounds
		"SBDB\x02\x01\x01\x02\x01a\x01b\x02\x01\x01\x01\x00\x01\x01", // ids not increasing
		"SBDB\x02\x01\x01\x02\x01a\x01b\x02\x01\x01\x01\x01\x01\x01", // repeated id
		"SBDB\x02\x01\x01\x01\x01a\x02\x00\x01\x01\x01\x01\x01",      // nrecs > nsyms
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c), DefaultOptions(), nil); err == nil {
			t.Errorf("Load(%q) succeeded", c)
		}
	}
}

func TestLoadTruncatedBody(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 8} {
		if _, err := Load(bytes.NewReader(full[:cut]), DefaultOptions(), nil); err == nil {
			t.Errorf("Load of %d/%d bytes succeeded", cut, len(full))
		}
	}
}
