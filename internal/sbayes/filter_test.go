package sbayes

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mail"
)

// mkMsg builds a bare-body message.
func mkMsg(body string) *mail.Message { return &mail.Message{Body: body} }

// trainBasic trains a small, clearly separated corpus.
func trainBasic(f *Filter) {
	for i := 0; i < 10; i++ {
		f.Learn(mkMsg("meeting budget report quarterly forecast\n"), false)
		f.Learn(mkMsg("viagra lottery winner claim prize\n"), true)
	}
}

func TestLabelString(t *testing.T) {
	if Ham.String() != "ham" || Unsure.String() != "unsure" || Spam.String() != "spam" {
		t.Error("Label.String broken")
	}
	if !strings.Contains(Label(9).String(), "9") {
		t.Error("unknown label String")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.UnknownWordProb = -0.1 },
		func(o *Options) { o.UnknownWordProb = 1.1 },
		func(o *Options) { o.UnknownWordStrength = -1 },
		func(o *Options) { o.MinProbStrength = 0.6 },
		func(o *Options) { o.MaxDiscriminators = 0 },
		func(o *Options) { o.HamCutoff = -0.2 },
		func(o *Options) { o.SpamCutoff = 1.2 },
		func(o *Options) { o.HamCutoff = 0.95; o.SpamCutoff = 0.9 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options validated", i)
		}
	}
}

func TestLabelFor(t *testing.T) {
	o := DefaultOptions()
	cases := []struct {
		score float64
		want  Label
	}{
		{0, Ham}, {0.15, Ham}, {0.150001, Unsure}, {0.5, Unsure},
		{0.9, Unsure}, {0.900001, Spam}, {1, Spam},
	}
	for _, c := range cases {
		if got := o.LabelFor(c.score); got != c.want {
			t.Errorf("LabelFor(%v) = %v, want %v", c.score, got, c.want)
		}
	}
}

func TestNewPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid options did not panic")
		}
	}()
	New(Options{}, nil)
}

func TestUnknownTokenScoresPrior(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	if got := f.TokenScore("neverseen"); got != 0.5 {
		t.Errorf("unknown token score = %v, want 0.5", got)
	}
}

func TestTokenScoreDirection(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	spammy := f.TokenScore("viagra")
	hammy := f.TokenScore("budget")
	if spammy <= 0.9 {
		t.Errorf("spam-only token score = %v, want > 0.9", spammy)
	}
	if hammy >= 0.1 {
		t.Errorf("ham-only token score = %v, want < 0.1", hammy)
	}
}

func TestTokenScoreEquationOne(t *testing.T) {
	// Hand-check PS(w) and f(w): token in 3 of 4 spam, 1 of 6 ham.
	f := NewDefault()
	f.LearnTokens([]string{"w"}, true, 3)
	f.LearnTokens([]string{"other"}, true, 1)
	f.LearnTokens([]string{"w"}, false, 1)
	f.LearnTokens([]string{"other"}, false, 5)
	// PS = (6*3)/(6*3 + 4*1) = 18/22.
	ps := 18.0 / 22.0
	n := 4.0
	want := (0.45*0.5 + n*ps) / (0.45 + n)
	if got := f.TokenScore("w"); math.Abs(got-want) > 1e-12 {
		t.Errorf("TokenScore = %v, want %v", got, want)
	}
}

func TestScoreSeparation(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	spamScore := f.Score(mkMsg("viagra lottery prize\n"))
	hamScore := f.Score(mkMsg("budget meeting forecast\n"))
	if spamScore < 0.9 {
		t.Errorf("spam message score = %v, want > 0.9", spamScore)
	}
	if hamScore > 0.15 {
		t.Errorf("ham message score = %v, want < 0.15", hamScore)
	}
	if l, _ := f.Classify(mkMsg("viagra lottery prize\n")); l != Spam {
		t.Errorf("classify spam = %v", l)
	}
	if l, _ := f.Classify(mkMsg("budget meeting forecast\n")); l != Ham {
		t.Errorf("classify ham = %v", l)
	}
}

func TestEmptyMessageIsUnsure(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	label, score := f.Classify(mkMsg(""))
	if score != 0.5 || label != Unsure {
		t.Errorf("empty message = (%v, %v), want (unsure, 0.5)", label, score)
	}
}

func TestAllUnknownTokensIsUnsure(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	_, score := f.Classify(mkMsg("xylophone quantum dirigible\n"))
	if score != 0.5 {
		t.Errorf("all-unknown message score = %v, want 0.5", score)
	}
}

func TestUntrainedFilterIsUnsure(t *testing.T) {
	f := NewDefault()
	if s := f.Score(mkMsg("anything goes here\n")); s != 0.5 {
		t.Errorf("untrained score = %v", s)
	}
}

func TestIndifferenceWindowExcluded(t *testing.T) {
	// A token seen equally in ham and spam scores 0.5 and must not
	// drag the verdict away from stronger evidence.
	f := NewDefault()
	for i := 0; i < 20; i++ {
		f.Learn(mkMsg("neutral spamword\n"), true)
		f.Learn(mkMsg("neutral hamword\n"), false)
	}
	if d := math.Abs(f.TokenScore("neutral") - 0.5); d >= 0.1 {
		t.Fatalf("balanced token distance = %v, want < 0.1", d)
	}
	withNeutral := f.Score(mkMsg("spamword neutral\n"))
	without := f.Score(mkMsg("spamword\n"))
	if withNeutral != without {
		t.Errorf("neutral token changed score: %v vs %v", withNeutral, without)
	}
}

func TestMaxDiscriminatorsCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxDiscriminators = 3
	f := New(opts, nil)
	// Train 10 distinct spammy tokens and 10 hammy ones.
	spamTokens := []string{"sp0", "sp1", "sp2", "sp3", "sp4", "sp5", "sp6", "sp7", "sp8", "sp9"}
	hamTokens := []string{"hm0", "hm1", "hm2", "hm3", "hm4", "hm5", "hm6", "hm7", "hm8", "hm9"}
	for i := 0; i < 10; i++ {
		f.LearnTokens(spamTokens, true, 1)
		f.LearnTokens(hamTokens, false, 1)
	}
	// A message with 3 spammy and 10 hammy tokens: with a cap of 3 the
	// strongest 3 tie between spam and ham by distance; determinism and
	// boundedness are what we check here.
	msg := append([]string{}, spamTokens[:3]...)
	msg = append(msg, hamTokens...)
	_, s1 := f.ClassifyTokens(msg)
	_, s2 := f.ClassifyTokens(msg)
	if s1 != s2 {
		t.Errorf("capped classification not deterministic: %v vs %v", s1, s2)
	}
}

func TestExplain(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	clues := f.Explain(mkMsg("viagra budget neverseen\n"))
	if len(clues) != 3 {
		t.Fatalf("Explain returned %d clues", len(clues))
	}
	byToken := map[string]Clue{}
	for _, c := range clues {
		byToken[c.Token] = c
	}
	if !byToken["viagra"].Used || byToken["viagra"].Score < 0.9 {
		t.Errorf("viagra clue = %+v", byToken["viagra"])
	}
	if !byToken["budget"].Used || byToken["budget"].Score > 0.1 {
		t.Errorf("budget clue = %+v", byToken["budget"])
	}
	if byToken["neverseen"].Used || byToken["neverseen"].Score != 0.5 {
		t.Errorf("neverseen clue = %+v", byToken["neverseen"])
	}
}

func TestLearnWeightedEquivalence(t *testing.T) {
	msg := mkMsg("identical attack email tokens here\n")
	other := mkMsg("background ham words\n")
	a := NewDefault()
	b := NewDefault()
	a.Learn(other, false)
	b.Learn(other, false)
	for i := 0; i < 137; i++ {
		a.Learn(msg, true)
	}
	b.LearnWeighted(msg, true, 137)
	if an, ah := a.Counts(); func() bool { bn, bh := b.Counts(); return an != bn || ah != bh }() {
		t.Fatalf("counts differ: %v/%v", an, ah)
	}
	probe := mkMsg("attack background neverseen\n")
	if sa, sb := a.Score(probe), b.Score(probe); sa != sb {
		t.Errorf("scores differ: %v vs %v", sa, sb)
	}
	for _, tok := range []string{"identical", "attack", "background"} {
		if a.TokenScore(tok) != b.TokenScore(tok) {
			t.Errorf("token %q scores differ", tok)
		}
	}
}

func TestLearnZeroWeightNoOp(t *testing.T) {
	f := NewDefault()
	f.LearnWeighted(mkMsg("abc def\n"), true, 0)
	if ns, nh := f.Counts(); ns != 0 || nh != 0 || f.VocabSize() != 0 {
		t.Error("zero-weight learn mutated the filter")
	}
}

func TestLearnNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative weight did not panic")
		}
	}()
	NewDefault().LearnWeighted(mkMsg("abc\n"), true, -1)
}

func TestUnlearnRoundTrip(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	before := f.Score(mkMsg("viagra budget\n"))
	vocab := f.VocabSize()
	extra := mkMsg("transient tokens appear once\n")
	f.Learn(extra, true)
	if f.Score(mkMsg("viagra budget\n")) == before {
		t.Log("score unchanged after learn (possible but unusual)")
	}
	if err := f.Unlearn(extra, true); err != nil {
		t.Fatal(err)
	}
	if got := f.Score(mkMsg("viagra budget\n")); got != before {
		t.Errorf("unlearn did not restore score: %v vs %v", got, before)
	}
	if f.VocabSize() != vocab {
		t.Errorf("unlearn leaked vocab: %d vs %d", f.VocabSize(), vocab)
	}
}

func TestUnlearnUnderflowDetected(t *testing.T) {
	f := NewDefault()
	f.Learn(mkMsg("alpha beta\n"), true)
	if err := f.Unlearn(mkMsg("alpha beta\n"), false); err == nil {
		t.Error("unlearning with wrong label succeeded")
	}
	if err := f.Unlearn(mkMsg("alpha gamma\n"), true); err == nil {
		t.Error("unlearning unseen tokens succeeded")
	}
	// Failed unlearn must leave counts intact.
	if ns, nh := f.Counts(); ns != 1 || nh != 0 {
		t.Errorf("counts after failed unlearn = %d/%d", ns, nh)
	}
	if s, _ := f.TokenCounts("alpha"); s != 1 {
		t.Error("failed unlearn mutated token counts")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewDefault()
	trainBasic(f)
	c := f.Clone()
	c.Learn(mkMsg("cloneonly token\n"), true)
	if f.TokenScore("cloneonly") != 0.5 {
		t.Error("mutating clone affected original")
	}
	if c.TokenScore("cloneonly") == 0.5 {
		t.Error("clone did not learn")
	}
	fs, _ := f.Counts()
	cs, _ := c.Counts()
	if cs != fs+1 {
		t.Errorf("clone counts %d, original %d", cs, fs)
	}
}

func TestSetThresholds(t *testing.T) {
	f := NewDefault()
	if err := f.SetThresholds(0.3, 0.7); err != nil {
		t.Fatal(err)
	}
	if f.Options().HamCutoff != 0.3 || f.Options().SpamCutoff != 0.7 {
		t.Error("thresholds not applied")
	}
	if err := f.SetThresholds(0.8, 0.2); err == nil {
		t.Error("inverted thresholds accepted")
	}
}

func TestScoreMonotoneInSpamEvidence(t *testing.T) {
	// Adding the attack token to more spam training messages must not
	// decrease a message's score (the monotonicity the paper's §3.4
	// optimal-attack argument relies on).
	prev := -1.0
	for w := 0; w <= 50; w += 5 {
		f := NewDefault()
		trainBasic(f)
		f.LearnTokens([]string{"attacked"}, true, w)
		s := f.Score(mkMsg("attacked budget meeting\n"))
		if s < prev-1e-12 {
			t.Fatalf("score decreased from %v to %v at weight %d", prev, s, w)
		}
		prev = s
	}
}

func TestCountsAndVocab(t *testing.T) {
	f := NewDefault()
	f.Learn(mkMsg("one two three\n"), true)
	f.Learn(mkMsg("two three four\n"), false)
	ns, nh := f.Counts()
	if ns != 1 || nh != 1 {
		t.Errorf("counts = %d/%d", ns, nh)
	}
	if f.VocabSize() != 4 {
		t.Errorf("vocab = %d, want 4", f.VocabSize())
	}
	if s, h := f.TokenCounts("two"); s != 1 || h != 1 {
		t.Errorf("TokenCounts(two) = %d/%d", s, h)
	}
	if s, h := f.TokenCounts("absent"); s != 0 || h != 0 {
		t.Errorf("TokenCounts(absent) = %d/%d", s, h)
	}
}
