// Package sbayes reimplements the SpamBayes statistical learner that
// the paper attacks: Robinson-smoothed per-token spam scores combined
// with Fisher's method into a message score that is thresholded into
// ham / unsure / spam (paper §2.3, equations 1–4).
//
// The implementation follows the SpamBayes reference behaviour:
//
//	PS(w)  = (NH·NS(w)) / (NH·NS(w) + NS·NH(w))             (eq. 1)
//	f(w)   = (s·x + N(w)·PS(w)) / (s + N(w))                (eq. 2)
//	I(E)   = (1 + H(E) − S(E)) / 2                           (eq. 3)
//	H, S   = chi-square combinations of f(w) over δ(E)       (eq. 4)
//
// with x = 0.5, s = 0.45, δ(E) the ≤150 tokens whose scores are
// furthest from 0.5 and outside (0.4, 0.6), and thresholds θ0 = 0.15,
// θ1 = 0.9.
//
// The learner supports incremental Learn/Unlearn and weighted learning
// (training n identical messages in one pass), which the attack
// experiments and the RONI defense rely on.
package sbayes

import (
	"fmt"

	"repro/internal/engine"
)

// Label is the three-way verdict, shared with every backend through
// the engine package: Ham (score ≤ θ0), Unsure (θ0 < score ≤ θ1),
// Spam (score > θ1).
type Label = engine.Label

const (
	Ham    = engine.Ham
	Unsure = engine.Unsure
	Spam   = engine.Spam
)

// Options holds the learner's tunable parameters. The zero value is
// not meaningful; start from DefaultOptions.
type Options struct {
	// UnknownWordProb is x in equation 2: the prior score of a token
	// never seen in training (SpamBayes default 0.5).
	UnknownWordProb float64
	// UnknownWordStrength is s in equation 2: the weight of the prior
	// relative to observed evidence (SpamBayes default 0.45).
	UnknownWordStrength float64
	// MinProbStrength excludes tokens with |f(w) − 0.5| below this
	// bound from δ(E) (SpamBayes default 0.1, i.e. the paper's
	// (0.4, 0.6) indifference interval).
	MinProbStrength float64
	// MaxDiscriminators caps |δ(E)| (SpamBayes default 150).
	MaxDiscriminators int
	// HamCutoff is θ0: scores ≤ HamCutoff are ham (default 0.15).
	HamCutoff float64
	// SpamCutoff is θ1: scores > SpamCutoff are spam (default 0.9).
	SpamCutoff float64
}

// DefaultOptions returns the SpamBayes defaults used throughout the
// paper.
func DefaultOptions() Options {
	return Options{
		UnknownWordProb:     0.5,
		UnknownWordStrength: 0.45,
		MinProbStrength:     0.1,
		MaxDiscriminators:   150,
		HamCutoff:           0.15,
		SpamCutoff:          0.9,
	}
}

// Validate reports whether the options are internally consistent.
func (o Options) Validate() error {
	switch {
	case o.UnknownWordProb < 0 || o.UnknownWordProb > 1:
		return fmt.Errorf("sbayes: UnknownWordProb %v outside [0,1]", o.UnknownWordProb)
	case o.UnknownWordStrength < 0:
		return fmt.Errorf("sbayes: UnknownWordStrength %v negative", o.UnknownWordStrength)
	case o.MinProbStrength < 0 || o.MinProbStrength > 0.5:
		return fmt.Errorf("sbayes: MinProbStrength %v outside [0,0.5]", o.MinProbStrength)
	case o.MaxDiscriminators <= 0:
		return fmt.Errorf("sbayes: MaxDiscriminators %d not positive", o.MaxDiscriminators)
	case o.HamCutoff < 0 || o.HamCutoff > 1 || o.SpamCutoff < 0 || o.SpamCutoff > 1:
		return fmt.Errorf("sbayes: cutoffs (%v, %v) outside [0,1]", o.HamCutoff, o.SpamCutoff)
	case o.HamCutoff > o.SpamCutoff:
		return fmt.Errorf("sbayes: HamCutoff %v above SpamCutoff %v", o.HamCutoff, o.SpamCutoff)
	}
	return nil
}

// LabelFor maps a message score to a Label using the thresholds.
func (o Options) LabelFor(score float64) Label {
	switch {
	case score <= o.HamCutoff:
		return Ham
	case score <= o.SpamCutoff:
		return Unsure
	default:
		return Spam
	}
}
