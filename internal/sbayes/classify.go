package sbayes

import (
	"math"
	"sort"

	"repro/internal/mail"
	"repro/internal/stats"
	"repro/internal/tokenize"
)

// TokenScore returns f(w), the Robinson-smoothed spam score of a
// token (equations 1–2). Unseen tokens score exactly the prior x.
func (f *Filter) TokenScore(token string) float64 {
	return f.scoreRecord(f.recordFor(token))
}

// scoreRecord computes f(w) from raw counts.
func (f *Filter) scoreRecord(r record) float64 {
	// Clamp counts to the totals, as SpamBayes does, so a corrupt
	// database cannot yield ratios above 1.
	spamcount := min32(r.spam, f.nspam)
	hamcount := min32(r.ham, f.nham)
	var spamratio, hamratio float64
	if f.nspam > 0 {
		spamratio = float64(spamcount) / float64(f.nspam)
	}
	if f.nham > 0 {
		hamratio = float64(hamcount) / float64(f.nham)
	}
	x := f.opts.UnknownWordProb
	denom := spamratio + hamratio
	if denom == 0 {
		return x
	}
	prob := spamratio / denom // PS(w), equation 1
	n := float64(spamcount + hamcount)
	s := f.opts.UnknownWordStrength
	return (s*x + n*prob) / (s + n) // f(w), equation 2
}

// Clue is one token's contribution to a classification, reported by
// Explain and used to draw the Figure 4 scatter plots.
type Clue struct {
	Token string
	Score float64 // f(w)
	Used  bool    // whether the token made it into δ(E)
}

// Score returns the message score I(E) ∈ [0, 1] (equation 3).
func (f *Filter) Score(m *mail.Message) float64 {
	return f.ScoreTokenStream(f.tok.Stream(m))
}

// Classify returns the verdict and score for a message.
func (f *Filter) Classify(m *mail.Message) (Label, float64) {
	s := f.Score(m)
	return f.opts.LabelFor(s), s
}

// ClassifyTokens is Classify over a pre-tokenized message.
func (f *Filter) ClassifyTokens(tokens []string) (Label, float64) {
	s := f.ScoreTokens(tokens)
	return f.opts.LabelFor(s), s
}

// ScoreTokens computes I(E) over a distinct-token set.
func (f *Filter) ScoreTokens(tokens []string) float64 {
	cands := make(clueSlice, 0, len(tokens))
	for _, t := range tokens {
		cands = f.appendClue(cands, t)
	}
	return f.combine(f.rank(cands))
}

// ScoreTokenStream computes I(E) over a tokenized message without
// materializing any token slice. Token presence drives the score, so
// the stream's occurrence counts are irrelevant here.
func (f *Filter) ScoreTokenStream(ts *tokenize.TokenStream) float64 {
	cands := make(clueSlice, 0, ts.Len())
	for i := 0; i < ts.Len(); i++ {
		cands = f.appendClue(cands, string(ts.At(i)))
	}
	return f.combine(f.rank(cands))
}

// ClassifyTokenStream is Classify over a tokenized message.
func (f *Filter) ClassifyTokenStream(ts *tokenize.TokenStream) (Label, float64) {
	s := f.ScoreTokenStream(ts)
	return f.opts.LabelFor(s), s
}

// Explain returns every token's score and whether it entered δ(E),
// in the message's token order.
func (f *Filter) Explain(m *mail.Message) []Clue {
	tokens := f.tok.TokenSet(m)
	cands := make(clueSlice, 0, len(tokens))
	for _, t := range tokens {
		cands = f.appendClue(cands, t)
	}
	used := map[string]bool{}
	for _, c := range f.rank(cands) {
		used[c.token] = true
	}
	out := make([]Clue, len(tokens))
	for i, t := range tokens {
		out[i] = Clue{Token: t, Score: f.TokenScore(t), Used: used[t]}
	}
	return out
}

// clue pairs a token with its score during discriminator selection.
type clue struct {
	token string
	score float64
	dist  float64
}

// clueSlice sorts clues by descending distance from 0.5, then
// descending score, then token text — a concrete sort.Interface so the
// per-message hot path avoids sort.Slice's reflection allocations.
type clueSlice []clue

func (s clueSlice) Len() int      { return len(s) }
func (s clueSlice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s clueSlice) Less(i, j int) bool {
	if s[i].dist != s[j].dist {
		return s[i].dist > s[j].dist
	}
	if s[i].score != s[j].score {
		return s[i].score > s[j].score
	}
	return s[i].token < s[j].token
}

// appendClue scores one token and appends it if it clears the
// MinProbStrength band around 0.5.
func (f *Filter) appendClue(cands clueSlice, token string) clueSlice {
	s := f.scoreRecord(f.recordFor(token))
	d := math.Abs(s - 0.5)
	if d >= f.opts.MinProbStrength {
		cands = append(cands, clue{token: token, score: s, dist: d})
	}
	return cands
}

// rank computes δ(E) from the candidate clues: the at most
// MaxDiscriminators tokens whose scores are furthest from 0.5. Ties
// are broken by token text so the result is deterministic regardless
// of input order.
func (f *Filter) rank(cands clueSlice) []clue {
	sort.Sort(cands)
	if len(cands) > f.opts.MaxDiscriminators {
		cands = cands[:f.opts.MaxDiscriminators]
	}
	return cands
}

// combine applies Fisher's method to the selected clues (equations
// 3–4, implemented as in SpamBayes' chi2_spamprob): H accumulates
// evidence of hamminess from Σ ln f(w), S from Σ ln(1 − f(w)), each
// mapped through the chi-square survival function with 2n degrees of
// freedom, and the final score is (1 + H − S)/2 in the paper's
// notation. With no usable clues the score is exactly 0.5.
func (f *Filter) combine(clues []clue) float64 {
	n := len(clues)
	if n == 0 {
		return 0.5
	}
	var lnF, lnNotF float64
	for _, c := range clues {
		s := c.score
		// Guard the logarithms: scores of exactly 0 or 1 can only
		// arise from degenerate option choices, but be safe.
		if s < 1e-300 {
			s = 1e-300
		}
		if s > 1-1e-15 {
			s = 1 - 1e-15
		}
		lnF += math.Log(s)
		lnNotF += math.Log(1 - s)
	}
	// In the paper's notation (eq. 4): H(E) = Q(−2 Σ ln f, 2n) is
	// large when tokens look spammy; S(E) = Q(−2 Σ ln(1−f), 2n) is
	// large when they look hammy; I = (1 + H − S)/2.
	H := stats.ChiSquareQ(-2*lnF, 2*n)
	S := stats.ChiSquareQ(-2*lnNotF, 2*n)
	return (1 + H - S) / 2
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
