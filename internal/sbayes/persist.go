package sbayes

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tokenize"
)

// Binary database format, version 2 (all integers unsigned varints):
//
//	magic   "SBDB\x02"
//	nspam, nham
//	nsyms,  nsyms × { len(token), token bytes }      — the symbol table
//	nrecs,  nrecs × { id, spamcount, hamcount }      — per-symbol counts
//
// Symbols are written in sorted token order and records with strictly
// increasing ids, so identical databases always serialize identically.
// Save canonicalizes: only tokens with nonzero counts are written, so
// in saved databases nrecs == nsyms and id == index — but the decoder
// accepts any subset with increasing in-bounds ids, and treats the id
// bounds as untrusted input (FuzzSBayesSaveLoad exercises exactly
// that surface). Version 1 ("SBDB\x01": nspam, nham, ntokens ×
// {token, spam, ham}) remains loadable; Save always writes v2.
// Options and tokenizer configuration are the caller's to manage
// (they are code, not data).

const (
	persistV1 = 1
	persistV2 = 2
)

var persistMagic = [5]byte{'S', 'B', 'D', 'B', persistV2}

// Save writes the token database to w (format version 2).
func (f *Filter) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(f.nspam)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(f.nham)); err != nil {
		return err
	}
	// Canonical symbol table: nonzero tokens in sorted order.
	toks := f.Tokens()
	if err := writeUvarint(uint64(len(toks))); err != nil {
		return err
	}
	for _, t := range toks {
		if err := writeUvarint(uint64(len(t))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t); err != nil {
			return err
		}
	}
	// Records keyed by canonical (sorted-order) id. Every canonical
	// symbol has nonzero counts, so nrecs == nsyms and id == index.
	if err := writeUvarint(uint64(len(toks))); err != nil {
		return err
	}
	for i, t := range toks {
		r := f.recordFor(t)
		if err := writeUvarint(uint64(i)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.spam)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.ham)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load replaces the filter's trained state with a database written by
// Save, keeping its options and tokenizer. On error the filter is
// left unchanged. It is the engine.Persistable counterpart of the
// package-level Load.
func (f *Filter) Load(r io.Reader) error {
	loaded, err := Load(r, f.opts, f.tok)
	if err != nil {
		return err
	}
	f.nspam, f.nham = loaded.nspam, loaded.nham
	f.syms, f.recs, f.vocab = loaded.syms, loaded.recs, loaded.vocab
	return nil
}

// One below 1<<31: counts land in int32 fields, and a count of
// exactly 1<<31 would wrap negative.
const maxReasonable = 1<<31 - 1

// Load reads a token database written by Save (format version 1 or
// 2), returning a filter with the given options and tokenizer (nil
// selects defaults).
func Load(r io.Reader, opts Options, tok *tokenize.Tokenizer) (*Filter, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sbayes: reading magic: %w", err)
	}
	if magic[0] != 'S' || magic[1] != 'B' || magic[2] != 'D' || magic[3] != 'B' {
		return nil, fmt.Errorf("sbayes: bad magic %q", magic[:])
	}
	f := New(opts, tok)
	switch magic[4] {
	case persistV1:
		if err := loadV1(br, f); err != nil {
			return nil, err
		}
	case persistV2:
		if err := loadV2(br, f); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sbayes: unsupported format version %d", magic[4])
	}
	return f, nil
}

func readUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("sbayes: reading %s: %w", what, err)
	}
	return v, nil
}

// readToken reads one length-prefixed token into buf, enforcing the
// length bound.
func readToken(br *bufio.Reader, buf []byte) ([]byte, error) {
	tlen, err := readUvarint(br, "token length")
	if err != nil {
		return nil, err
	}
	if tlen > 1<<20 {
		return nil, fmt.Errorf("sbayes: implausible token length %d", tlen)
	}
	if uint64(cap(buf)) < tlen {
		buf = make([]byte, tlen)
	}
	buf = buf[:tlen]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("sbayes: reading token: %w", err)
	}
	return buf, nil
}

// loadV1 parses the version-1 body: ntokens × {token, spam, ham}.
func loadV1(br *bufio.Reader, f *Filter) error {
	nspam, err := readUvarint(br, "nspam")
	if err != nil {
		return err
	}
	nham, err := readUvarint(br, "nham")
	if err != nil {
		return err
	}
	ntokens, err := readUvarint(br, "ntokens")
	if err != nil {
		return err
	}
	if nspam > maxReasonable || nham > maxReasonable || ntokens > maxReasonable {
		return fmt.Errorf("sbayes: implausible database header (%d, %d, %d)", nspam, nham, ntokens)
	}
	f.nspam, f.nham = int32(nspam), int32(nham)
	tokenBuf := make([]byte, 0, 64)
	for i := uint64(0); i < ntokens; i++ {
		tokenBuf, err = readToken(br, tokenBuf)
		if err != nil {
			return err
		}
		spam, err := readUvarint(br, "spam count")
		if err != nil {
			return err
		}
		ham, err := readUvarint(br, "ham count")
		if err != nil {
			return err
		}
		if spam > maxReasonable || ham > maxReasonable {
			return fmt.Errorf("sbayes: implausible counts for %q", tokenBuf)
		}
		f.addCounts(f.intern(string(tokenBuf)), true, int32(spam))
		f.addCounts(f.intern(string(tokenBuf)), false, int32(ham))
	}
	return nil
}

// loadV2 parses the version-2 body: the symbol table, then records
// keyed by symbol id. Ids come from untrusted input: they must be
// strictly increasing and in bounds, and the symbol table must not
// repeat a token.
func loadV2(br *bufio.Reader, f *Filter) error {
	nspam, err := readUvarint(br, "nspam")
	if err != nil {
		return err
	}
	nham, err := readUvarint(br, "nham")
	if err != nil {
		return err
	}
	nsyms, err := readUvarint(br, "nsyms")
	if err != nil {
		return err
	}
	if nspam > maxReasonable || nham > maxReasonable || nsyms > maxReasonable {
		return fmt.Errorf("sbayes: implausible database header (%d, %d, %d)", nspam, nham, nsyms)
	}
	f.nspam, f.nham = int32(nspam), int32(nham)
	tokenBuf := make([]byte, 0, 64)
	for i := uint64(0); i < nsyms; i++ {
		tokenBuf, err = readToken(br, tokenBuf)
		if err != nil {
			return err
		}
		// Interning a fresh token assigns exactly id i; anything else
		// means the table repeats a token.
		if id := f.intern(string(tokenBuf)); uint64(id) != i {
			return fmt.Errorf("sbayes: duplicate symbol %q", tokenBuf)
		}
	}
	nrecs, err := readUvarint(br, "nrecs")
	if err != nil {
		return err
	}
	if nrecs > nsyms {
		return fmt.Errorf("sbayes: more records (%d) than symbols (%d)", nrecs, nsyms)
	}
	prev := int64(-1)
	for i := uint64(0); i < nrecs; i++ {
		id, err := readUvarint(br, "record id")
		if err != nil {
			return err
		}
		if id >= nsyms {
			return fmt.Errorf("sbayes: record id %d out of bounds (nsyms %d)", id, nsyms)
		}
		if int64(id) <= prev {
			return fmt.Errorf("sbayes: record ids not strictly increasing (%d after %d)", id, prev)
		}
		prev = int64(id)
		spam, err := readUvarint(br, "spam count")
		if err != nil {
			return err
		}
		ham, err := readUvarint(br, "ham count")
		if err != nil {
			return err
		}
		if spam > maxReasonable || ham > maxReasonable {
			return fmt.Errorf("sbayes: implausible counts for record %d", id)
		}
		f.addCounts(tokenize.Sym(id), true, int32(spam))
		f.addCounts(tokenize.Sym(id), false, int32(ham))
	}
	return nil
}
