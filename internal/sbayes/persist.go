package sbayes

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tokenize"
)

// Binary database format (all integers unsigned varints):
//
//	magic   "SBDB\x01"
//	nspam, nham, ntokens
//	ntokens × { len(token), token bytes, spamcount, hamcount }
//
// Tokens are written in sorted order, so identical databases always
// serialize identically. Options and tokenizer configuration are the
// caller's to manage (they are code, not data).

var persistMagic = [5]byte{'S', 'B', 'D', 'B', 1}

// Save writes the token database to w.
func (f *Filter) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(f.nspam)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(f.nham)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(f.records))); err != nil {
		return err
	}
	for _, t := range f.Tokens() {
		r := f.records[t]
		if err := writeUvarint(uint64(len(t))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.spam)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.ham)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load replaces the filter's trained state with a database written by
// Save, keeping its options and tokenizer. On error the filter is
// left unchanged. It is the engine.Persistable counterpart of the
// package-level Load.
func (f *Filter) Load(r io.Reader) error {
	loaded, err := Load(r, f.opts, f.tok)
	if err != nil {
		return err
	}
	f.nspam, f.nham, f.records = loaded.nspam, loaded.nham, loaded.records
	return nil
}

// Load reads a token database written by Save, returning a filter
// with the given options and tokenizer (nil selects defaults).
func Load(r io.Reader, opts Options, tok *tokenize.Tokenizer) (*Filter, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sbayes: reading magic: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("sbayes: bad magic %q", magic[:])
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("sbayes: reading %s: %w", what, err)
		}
		return v, nil
	}
	f := New(opts, tok)
	nspam, err := readUvarint("nspam")
	if err != nil {
		return nil, err
	}
	nham, err := readUvarint("nham")
	if err != nil {
		return nil, err
	}
	ntokens, err := readUvarint("ntokens")
	if err != nil {
		return nil, err
	}
	// One below 1<<31: these land in int32 fields, and a count of
	// exactly 1<<31 would wrap negative.
	const maxReasonable = 1<<31 - 1
	if nspam > maxReasonable || nham > maxReasonable || ntokens > maxReasonable {
		return nil, fmt.Errorf("sbayes: implausible database header (%d, %d, %d)", nspam, nham, ntokens)
	}
	f.nspam, f.nham = int32(nspam), int32(nham)
	// The size hint comes from an untrusted header: clamp it so a
	// corrupt count cannot demand gigabytes before the body's first
	// token fails to parse. The map grows to the real size naturally.
	hint := ntokens
	if hint > 1<<16 {
		hint = 1 << 16
	}
	f.records = make(map[string]record, hint)
	tokenBuf := make([]byte, 0, 64)
	for i := uint64(0); i < ntokens; i++ {
		tlen, err := readUvarint("token length")
		if err != nil {
			return nil, err
		}
		if tlen > 1<<20 {
			return nil, fmt.Errorf("sbayes: implausible token length %d", tlen)
		}
		if uint64(cap(tokenBuf)) < tlen {
			tokenBuf = make([]byte, tlen)
		}
		tokenBuf = tokenBuf[:tlen]
		if _, err := io.ReadFull(br, tokenBuf); err != nil {
			return nil, fmt.Errorf("sbayes: reading token: %w", err)
		}
		spam, err := readUvarint("spam count")
		if err != nil {
			return nil, err
		}
		ham, err := readUvarint("ham count")
		if err != nil {
			return nil, err
		}
		if spam > maxReasonable || ham > maxReasonable {
			return nil, fmt.Errorf("sbayes: implausible counts for %q", tokenBuf)
		}
		f.records[string(tokenBuf)] = record{spam: int32(spam), ham: int32(ham)}
	}
	return f, nil
}
