package sbayes

import (
	"math"
	"testing"
)

// Edge-case behaviour of the learner's knobs.

func TestMinProbStrengthZeroIncludesNeutralTokens(t *testing.T) {
	opts := DefaultOptions()
	opts.MinProbStrength = 0
	f := New(opts, nil)
	for i := 0; i < 10; i++ {
		f.Learn(mkMsg("balanced spamside\n"), true)
		f.Learn(mkMsg("balanced hamside\n"), false)
	}
	// With no indifference window, the perfectly balanced token now
	// participates: the scores with and without it must differ.
	with := f.Score(mkMsg("spamside balanced\n"))
	without := f.Score(mkMsg("spamside\n"))
	if with == without {
		t.Error("neutral token excluded despite MinProbStrength=0")
	}
}

func TestMaxDiscriminatorsOne(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxDiscriminators = 1
	f := New(opts, nil)
	trainBasic(f)
	// With a single discriminator the strongest token decides alone;
	// a message with one spammy and many hammy tokens follows the
	// single furthest-from-0.5 score.
	_, s := f.ClassifyTokens([]string{"viagra", "budget", "meeting", "report"})
	if s <= 0 && s >= 1 {
		t.Fatalf("degenerate score %v", s)
	}
	// Deterministic regardless of token order.
	_, s2 := f.ClassifyTokens([]string{"report", "meeting", "budget", "viagra"})
	if s != s2 {
		t.Errorf("order-dependent with cap 1: %v vs %v", s, s2)
	}
}

func TestExtremePriors(t *testing.T) {
	// x = 0: unknown tokens score 0 — and get excluded or dominate
	// depending on the window; scores must stay in range.
	opts := DefaultOptions()
	opts.UnknownWordProb = 0
	f := New(opts, nil)
	trainBasic(f)
	s := f.Score(mkMsg("neverseen1 neverseen2 viagra\n"))
	if math.IsNaN(s) || s < 0 || s > 1 {
		t.Errorf("score with x=0: %v", s)
	}
	// x = 1 likewise.
	opts.UnknownWordProb = 1
	g := New(opts, nil)
	trainBasic(g)
	s = g.Score(mkMsg("neverseen1 budget\n"))
	if math.IsNaN(s) || s < 0 || s > 1 {
		t.Errorf("score with x=1: %v", s)
	}
}

func TestZeroStrengthPrior(t *testing.T) {
	// s = 0: f(w) = PS(w) exactly (no smoothing).
	opts := DefaultOptions()
	opts.UnknownWordStrength = 0
	f := New(opts, nil)
	f.LearnTokens([]string{"w"}, true, 3)
	f.LearnTokens([]string{"u"}, false, 3)
	// PS(w) = (3·3)/(3·3 + 3·0) = 1.
	if got := f.TokenScore("w"); got != 1 {
		t.Errorf("unsmoothed spam-only score = %v, want 1", got)
	}
	if got := f.TokenScore("u"); got != 0 {
		t.Errorf("unsmoothed ham-only score = %v, want 0", got)
	}
	// Combining with extreme scores must not produce NaN.
	s := f.ScoreTokens([]string{"w", "u"})
	if math.IsNaN(s) {
		t.Error("NaN score from extreme token scores")
	}
}

func TestOnlySpamTrained(t *testing.T) {
	f := NewDefault()
	for i := 0; i < 5; i++ {
		f.Learn(mkMsg("pills lottery casino\n"), true)
	}
	// nham = 0: hamratio guards must hold, spam still detected.
	label, s := f.Classify(mkMsg("pills lottery\n"))
	if math.IsNaN(s) {
		t.Fatal("NaN with nham=0")
	}
	if label != Spam {
		t.Errorf("spam-only filter label = %v (score %v)", label, s)
	}
	// Unknown message stays unsure.
	if _, s := f.Classify(mkMsg("benign words entirely\n")); s != 0.5 {
		t.Errorf("unknown score with nham=0: %v", s)
	}
}

func TestOnlyHamTrained(t *testing.T) {
	f := NewDefault()
	for i := 0; i < 5; i++ {
		f.Learn(mkMsg("meeting budget agenda\n"), false)
	}
	label, s := f.Classify(mkMsg("meeting budget\n"))
	if math.IsNaN(s) || label != Ham {
		t.Errorf("ham-only filter: %v (%v)", label, s)
	}
}

func TestThresholdBoundariesDegenerate(t *testing.T) {
	// θ0 = θ1 = 0.5: no unsure band at all.
	f := NewDefault()
	trainBasic(f)
	if err := f.SetThresholds(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{"viagra lottery\n", "budget meeting\n", "neverseen\n"} {
		label, s := f.Classify(mkMsg(body))
		want := Ham
		if s > 0.5 {
			want = Spam
		}
		if label != want {
			t.Errorf("degenerate thresholds: %q -> %v (score %v)", body, label, s)
		}
	}
}
