package sbayes

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/tokenize"
)

// Filter satisfies the backend-generic contract plus every optional
// capability.
var (
	_ engine.Classifier       = (*Filter)(nil)
	_ engine.TokenClassifier  = (*Filter)(nil)
	_ engine.TokenLearner     = (*Filter)(nil)
	_ engine.StreamClassifier = (*Filter)(nil)
	_ engine.StreamLearner    = (*Filter)(nil)
	_ engine.Persistable      = (*Filter)(nil)
	_ engine.Tokenizing       = (*Filter)(nil)
	_ engine.Cloner           = (*Filter)(nil)
)

func init() {
	engine.Register(engine.Backend{
		Name: "sbayes",
		Doc:  "SpamBayes learner: Robinson token scores, Fisher chi-square combining, ham/unsure/spam verdicts",
		New:  func() engine.Classifier { return NewDefault() },
	})
}

// record holds per-token training counts: the number of spam and ham
// training messages that contained the token at least once.
type record struct {
	spam int32
	ham  int32
}

// Filter is the SpamBayes classifier: a token-count database plus the
// scoring rule. Statistics are keyed by interned token IDs: syms maps
// token text to a dense tokenize.Sym and recs is indexed by it, so the
// per-token state is a flat slice (cloned with one memcpy) instead of
// a string-keyed map rebuilt on every Clone. Not safe for concurrent
// mutation; concurrent Classify calls without interleaved Learn calls
// are safe.
type Filter struct {
	opts  Options
	tok   *tokenize.Tokenizer
	nspam int32
	nham  int32
	syms  *tokenize.Symbols
	recs  []record // indexed by tokenize.Sym; len(recs) == syms.Len()
	vocab int      // number of records with nonzero counts
}

// New returns an empty filter with the given options and tokenizer.
// A nil tokenizer selects tokenize.Default(). New panics on invalid
// options (programmer error).
func New(opts Options, tok *tokenize.Tokenizer) *Filter {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if tok == nil {
		tok = tokenize.Default()
	}
	return &Filter{
		opts: opts,
		tok:  tok,
		syms: tokenize.NewSymbols(),
	}
}

// NewDefault returns an empty filter with SpamBayes defaults.
func NewDefault() *Filter { return New(DefaultOptions(), nil) }

// Options returns the filter's options.
func (f *Filter) Options() Options { return f.opts }

// Tokenizer returns the filter's tokenizer.
func (f *Filter) Tokenizer() *tokenize.Tokenizer { return f.tok }

// Counts returns the number of spam and ham messages trained.
func (f *Filter) Counts() (nspam, nham int) {
	return int(f.nspam), int(f.nham)
}

// VocabSize returns the number of distinct tokens in the database.
// Maintained on zero↔nonzero count transitions, so it is O(1) even
// though unlearned-to-zero tokens keep their interned IDs.
func (f *Filter) VocabSize() int { return f.vocab }

// recordFor returns the training counts of a token (zero if never
// interned or unlearned back to zero).
func (f *Filter) recordFor(token string) record {
	if id, ok := f.syms.Lookup(token); ok {
		return f.recs[id]
	}
	return record{}
}

// TokenCounts returns the raw training counts of a token.
func (f *Filter) TokenCounts(token string) (spam, ham int) {
	r := f.recordFor(token)
	return int(r.spam), int(r.ham)
}

// intern assigns (or finds) the token's dense ID and keeps recs in
// step with the symbol table.
func (f *Filter) intern(token string) tokenize.Sym {
	id := f.syms.Intern(token)
	if int(id) == len(f.recs) {
		f.recs = append(f.recs, record{})
	}
	return id
}

// addCounts adjusts one record by a signed delta, maintaining the
// vocab counter across zero↔nonzero transitions.
func (f *Filter) addCounts(id tokenize.Sym, isSpam bool, w int32) {
	r := &f.recs[id]
	wasZero := r.spam == 0 && r.ham == 0
	if isSpam {
		r.spam += w
	} else {
		r.ham += w
	}
	isZero := r.spam == 0 && r.ham == 0
	if wasZero && !isZero {
		f.vocab++
	} else if !wasZero && isZero {
		f.vocab--
	}
}

// Learn trains the filter on one message with the given label.
func (f *Filter) Learn(m *mail.Message, isSpam bool) {
	f.LearnTokenStream(f.tok.Stream(m), isSpam, 1)
}

// LearnWeighted trains the filter as if weight identical copies of the
// message were trained. Token presence is per message, so this is
// exactly equivalent to calling Learn weight times — the attack
// experiments use it to train hundreds of identical attack emails in
// one pass. It panics if weight < 0.
func (f *Filter) LearnWeighted(m *mail.Message, isSpam bool, weight int) {
	f.LearnTokenStream(f.tok.Stream(m), isSpam, weight)
}

// LearnTokenStream trains directly on a tokenized message. Training is
// per-message token presence, so the stream's occurrence counts are
// ignored — each distinct token counts once per weighted copy.
func (f *Filter) LearnTokenStream(ts *tokenize.TokenStream, isSpam bool, weight int) {
	if weight < 0 {
		panic("sbayes: negative learn weight")
	}
	if weight == 0 {
		return
	}
	w := int32(weight)
	if isSpam {
		f.nspam += w
	} else {
		f.nham += w
	}
	for i := 0; i < ts.Len(); i++ {
		f.addCounts(f.intern(string(ts.At(i))), isSpam, w)
	}
}

// LearnTokens trains directly on a token set (each distinct token must
// appear once) with the given multiplicity. Legacy []string adapter
// over the interned-ID path.
func (f *Filter) LearnTokens(tokens []string, isSpam bool, weight int) {
	if weight < 0 {
		panic("sbayes: negative learn weight")
	}
	if weight == 0 {
		return
	}
	w := int32(weight)
	if isSpam {
		f.nspam += w
	} else {
		f.nham += w
	}
	for _, t := range tokens {
		f.addCounts(f.intern(t), isSpam, w)
	}
}

// Unlearn removes one previously trained message from the database.
// It returns an error (leaving the filter unchanged) if the message
// was not counted with this label, as far as the counts can tell.
func (f *Filter) Unlearn(m *mail.Message, isSpam bool) error {
	return f.UnlearnTokenStream(f.tok.Stream(m), isSpam, 1)
}

// UnlearnTokenStream is the inverse of LearnTokenStream.
func (f *Filter) UnlearnTokenStream(ts *tokenize.TokenStream, isSpam bool, weight int) error {
	return f.unlearn(ts.Len(), func(i int) string { return string(ts.At(i)) }, isSpam, weight)
}

// UnlearnTokens is the inverse of LearnTokens.
func (f *Filter) UnlearnTokens(tokens []string, isSpam bool, weight int) error {
	return f.unlearn(len(tokens), func(i int) string { return tokens[i] }, isSpam, weight)
}

// unlearn validates every count before mutating anything, so a failed
// unlearn leaves the filter untouched.
func (f *Filter) unlearn(n int, token func(i int) string, isSpam bool, weight int) error {
	if weight < 0 {
		panic("sbayes: negative unlearn weight")
	}
	if weight == 0 {
		return nil
	}
	w := int32(weight)
	if isSpam && f.nspam < w {
		return fmt.Errorf("sbayes: unlearn spam underflow (have %d, remove %d)", f.nspam, w)
	}
	if !isSpam && f.nham < w {
		return fmt.Errorf("sbayes: unlearn ham underflow (have %d, remove %d)", f.nham, w)
	}
	for i := 0; i < n; i++ {
		r := f.recordFor(token(i))
		if isSpam && r.spam < w {
			return fmt.Errorf("sbayes: unlearn underflow on token %q", token(i))
		}
		if !isSpam && r.ham < w {
			return fmt.Errorf("sbayes: unlearn underflow on token %q", token(i))
		}
	}
	if isSpam {
		f.nspam -= w
	} else {
		f.nham -= w
	}
	for i := 0; i < n; i++ {
		// Validation proved every token is interned with count ≥ w.
		id, _ := f.syms.Lookup(token(i))
		f.addCounts(id, isSpam, -w)
	}
	return nil
}

// Clone returns an independent deep copy of the filter: the symbol
// table clones copy-on-write (O(1)) and the flat record slice copies
// with one memcpy. Experiments use it to branch a poisoned filter off
// a shared clean baseline; the engine uses it for snapshot retrains.
func (f *Filter) Clone() *Filter {
	return &Filter{
		opts:  f.opts,
		tok:   f.tok,
		nspam: f.nspam,
		nham:  f.nham,
		syms:  f.syms.Clone(),
		recs:  append(make([]record, 0, len(f.recs)), f.recs...),
		vocab: f.vocab,
	}
}

// CloneClassifier is Clone behind the engine.Cloner capability, for
// interface-typed callers such as Engine.RetrainIncremental.
func (f *Filter) CloneClassifier() engine.Classifier { return f.Clone() }

// SetThresholds replaces θ0 and θ1, as the dynamic threshold defense
// does after fitting them on validation data. It returns an error on
// an invalid pair.
func (f *Filter) SetThresholds(hamCutoff, spamCutoff float64) error {
	opts := f.opts
	opts.HamCutoff, opts.SpamCutoff = hamCutoff, spamCutoff
	if err := opts.Validate(); err != nil {
		return err
	}
	f.opts = opts
	return nil
}

// Tokens returns all tokens with nonzero counts in sorted order.
// Intended for persistence and debugging; O(V log V).
func (f *Filter) Tokens() []string {
	out := make([]string, 0, f.vocab)
	for id, r := range f.recs {
		if r.spam != 0 || r.ham != 0 {
			out = append(out, f.syms.Name(tokenize.Sym(id)))
		}
	}
	sort.Strings(out)
	return out
}
