package sbayes

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/mail"
	"repro/internal/tokenize"
)

// Filter satisfies the backend-generic contract plus every optional
// capability.
var (
	_ engine.Classifier      = (*Filter)(nil)
	_ engine.TokenClassifier = (*Filter)(nil)
	_ engine.TokenLearner    = (*Filter)(nil)
	_ engine.Persistable     = (*Filter)(nil)
	_ engine.Tokenizing      = (*Filter)(nil)
	_ engine.Cloner          = (*Filter)(nil)
)

func init() {
	engine.Register(engine.Backend{
		Name: "sbayes",
		Doc:  "SpamBayes learner: Robinson token scores, Fisher chi-square combining, ham/unsure/spam verdicts",
		New:  func() engine.Classifier { return NewDefault() },
	})
}

// record holds per-token training counts: the number of spam and ham
// training messages that contained the token at least once.
type record struct {
	spam int32
	ham  int32
}

// Filter is the SpamBayes classifier: a token-count database plus the
// scoring rule. It is not safe for concurrent mutation; concurrent
// Classify calls without interleaved Learn calls are safe.
type Filter struct {
	opts    Options
	tok     *tokenize.Tokenizer
	nspam   int32
	nham    int32
	records map[string]record
}

// New returns an empty filter with the given options and tokenizer.
// A nil tokenizer selects tokenize.Default(). New panics on invalid
// options (programmer error).
func New(opts Options, tok *tokenize.Tokenizer) *Filter {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if tok == nil {
		tok = tokenize.Default()
	}
	return &Filter{
		opts:    opts,
		tok:     tok,
		records: make(map[string]record),
	}
}

// NewDefault returns an empty filter with SpamBayes defaults.
func NewDefault() *Filter { return New(DefaultOptions(), nil) }

// Options returns the filter's options.
func (f *Filter) Options() Options { return f.opts }

// Tokenizer returns the filter's tokenizer.
func (f *Filter) Tokenizer() *tokenize.Tokenizer { return f.tok }

// Counts returns the number of spam and ham messages trained.
func (f *Filter) Counts() (nspam, nham int) {
	return int(f.nspam), int(f.nham)
}

// VocabSize returns the number of distinct tokens in the database.
func (f *Filter) VocabSize() int { return len(f.records) }

// TokenCounts returns the raw training counts of a token.
func (f *Filter) TokenCounts(token string) (spam, ham int) {
	r := f.records[token]
	return int(r.spam), int(r.ham)
}

// Learn trains the filter on one message with the given label.
func (f *Filter) Learn(m *mail.Message, isSpam bool) {
	f.LearnTokens(f.tok.TokenSet(m), isSpam, 1)
}

// LearnWeighted trains the filter as if weight identical copies of the
// message were trained. Token presence is per message, so this is
// exactly equivalent to calling Learn weight times — the attack
// experiments use it to train hundreds of identical attack emails in
// one pass. It panics if weight < 0.
func (f *Filter) LearnWeighted(m *mail.Message, isSpam bool, weight int) {
	f.LearnTokens(f.tok.TokenSet(m), isSpam, weight)
}

// LearnTokens trains directly on a token set (each distinct token must
// appear once) with the given multiplicity.
func (f *Filter) LearnTokens(tokens []string, isSpam bool, weight int) {
	if weight < 0 {
		panic("sbayes: negative learn weight")
	}
	if weight == 0 {
		return
	}
	w := int32(weight)
	if isSpam {
		f.nspam += w
	} else {
		f.nham += w
	}
	for _, t := range tokens {
		r := f.records[t]
		if isSpam {
			r.spam += w
		} else {
			r.ham += w
		}
		f.records[t] = r
	}
}

// Unlearn removes one previously trained message from the database.
// It returns an error (leaving the filter unchanged) if the message
// was not counted with this label, as far as the counts can tell.
func (f *Filter) Unlearn(m *mail.Message, isSpam bool) error {
	return f.UnlearnTokens(f.tok.TokenSet(m), isSpam, 1)
}

// UnlearnTokens is the inverse of LearnTokens.
func (f *Filter) UnlearnTokens(tokens []string, isSpam bool, weight int) error {
	if weight < 0 {
		panic("sbayes: negative unlearn weight")
	}
	if weight == 0 {
		return nil
	}
	w := int32(weight)
	if isSpam && f.nspam < w {
		return fmt.Errorf("sbayes: unlearn spam underflow (have %d, remove %d)", f.nspam, w)
	}
	if !isSpam && f.nham < w {
		return fmt.Errorf("sbayes: unlearn ham underflow (have %d, remove %d)", f.nham, w)
	}
	// Validate all token counts before mutating anything.
	for _, t := range tokens {
		r := f.records[t]
		if isSpam && r.spam < w {
			return fmt.Errorf("sbayes: unlearn underflow on token %q", t)
		}
		if !isSpam && r.ham < w {
			return fmt.Errorf("sbayes: unlearn underflow on token %q", t)
		}
	}
	if isSpam {
		f.nspam -= w
	} else {
		f.nham -= w
	}
	for _, t := range tokens {
		r := f.records[t]
		if isSpam {
			r.spam -= w
		} else {
			r.ham -= w
		}
		if r.spam == 0 && r.ham == 0 {
			delete(f.records, t)
		} else {
			f.records[t] = r
		}
	}
	return nil
}

// Clone returns an independent deep copy of the filter. Experiments
// use it to branch a poisoned filter off a shared clean baseline.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		opts:    f.opts,
		tok:     f.tok,
		nspam:   f.nspam,
		nham:    f.nham,
		records: make(map[string]record, len(f.records)),
	}
	for t, r := range f.records {
		c.records[t] = r
	}
	return c
}

// CloneClassifier is Clone behind the engine.Cloner capability, for
// interface-typed callers such as Engine.RetrainIncremental.
func (f *Filter) CloneClassifier() engine.Classifier { return f.Clone() }

// SetThresholds replaces θ0 and θ1, as the dynamic threshold defense
// does after fitting them on validation data. It returns an error on
// an invalid pair.
func (f *Filter) SetThresholds(hamCutoff, spamCutoff float64) error {
	opts := f.opts
	opts.HamCutoff, opts.SpamCutoff = hamCutoff, spamCutoff
	if err := opts.Validate(); err != nil {
		return err
	}
	f.opts = opts
	return nil
}

// Tokens returns all tokens in the database in sorted order. Intended
// for persistence and debugging; O(V log V).
func (f *Filter) Tokens() []string {
	out := make([]string, 0, len(f.records))
	for t := range f.records {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
