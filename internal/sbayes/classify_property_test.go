package sbayes

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// randomTokens builds a deterministic pseudo-random token set.
func randomTokens(r *stats.RNG, n int) []string {
	seen := map[string]bool{}
	out := make([]string, 0, n)
	for len(out) < n {
		t := fmt.Sprintf("tok%05d", r.Intn(5000))
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Property: scores always lie in [0, 1].
func TestQuickScoreInRange(t *testing.T) {
	f := func(seed uint64, trainN, msgN uint8) bool {
		r := stats.NewRNG(seed)
		fl := NewDefault()
		for i := 0; i < int(trainN%40); i++ {
			fl.LearnTokens(randomTokens(r, 1+r.Intn(30)), r.Bernoulli(0.5), 1+r.Intn(3))
		}
		s := fl.ScoreTokens(randomTokens(r, 1+int(msgN)%60))
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: learn followed by unlearn restores every score exactly.
func TestQuickLearnUnlearnIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fl := NewDefault()
		for i := 0; i < 10; i++ {
			fl.LearnTokens(randomTokens(r, 1+r.Intn(20)), r.Bernoulli(0.5), 1)
		}
		probe := randomTokens(r, 25)
		before := fl.ScoreTokens(probe)
		beforeVocab := fl.VocabSize()
		extra := randomTokens(r, 1+r.Intn(20))
		isSpam := r.Bernoulli(0.5)
		w := 1 + r.Intn(5)
		fl.LearnTokens(extra, isSpam, w)
		if err := fl.UnlearnTokens(extra, isSpam, w); err != nil {
			return false
		}
		return fl.ScoreTokens(probe) == before && fl.VocabSize() == beforeVocab
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: weighted learning equals repeated learning.
func TestQuickWeightedEquivalence(t *testing.T) {
	f := func(seed uint64, wRaw uint8) bool {
		w := 1 + int(wRaw)%20
		r := stats.NewRNG(seed)
		tokens := randomTokens(r, 1+r.Intn(15))
		a, b := NewDefault(), NewDefault()
		background := randomTokens(r, 10)
		a.LearnTokens(background, false, 2)
		b.LearnTokens(background, false, 2)
		for i := 0; i < w; i++ {
			a.LearnTokens(tokens, true, 1)
		}
		b.LearnTokens(tokens, true, w)
		probe := randomTokens(r, 20)
		return a.ScoreTokens(probe) == b.ScoreTokens(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Clone then diverge never affects the original's scores.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fl := NewDefault()
		for i := 0; i < 5; i++ {
			fl.LearnTokens(randomTokens(r, 10), r.Bernoulli(0.5), 1)
		}
		probe := randomTokens(r, 15)
		before := fl.ScoreTokens(probe)
		c := fl.Clone()
		c.LearnTokens(randomTokens(r, 10), true, 3)
		return fl.ScoreTokens(probe) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: adding a token to spam training weakly increases the score
// of messages containing that token (paper §3.4 monotonicity).
func TestQuickSpamEvidenceMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fl := NewDefault()
		for i := 0; i < 8; i++ {
			fl.LearnTokens(randomTokens(r, 12), r.Bernoulli(0.5), 1)
		}
		probe := randomTokens(r, 10)
		before := fl.ScoreTokens(probe)
		// Poison: all probe tokens into one spam message.
		fl.LearnTokens(probe, true, 1+r.Intn(10))
		after := fl.ScoreTokens(probe)
		return after >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
