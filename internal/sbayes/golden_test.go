package sbayes

// Golden-file pin of the on-disk SBDB format: the committed fixture
// is the exact serialization of a fixed trained filter. If this test
// fails, the format changed — that must be a conscious decision:
// bump the version byte in persistMagic, keep (or add) a migration
// path for old databases, and regenerate the fixture with
//
//	go test ./internal/sbayes -run TestGoldenSBDB -update
//
// golden_v1.sbdb is frozen history (written by the PR-4 Save, same
// training data): it is never regenerated, and the compat test below
// proves v1 databases still load and migrate to canonical v2 bytes.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden format fixtures")

func TestGoldenSBDBFormat(t *testing.T) {
	path := filepath.Join("testdata", "golden_v2.sbdb")
	got := canonicalDB()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SBDB serialization no longer matches the golden fixture (%d bytes vs %d): "+
			"a format change must bump the version byte and regenerate with -update", len(got), len(want))
	}

	// The fixture must keep loading, and re-saving it must reproduce
	// it byte for byte — old snapshots stay readable and canonical.
	f, err := Load(bytes.NewReader(want), DefaultOptions(), nil)
	if err != nil {
		t.Fatalf("loading golden fixture: %v", err)
	}
	ns, nh := f.Counts()
	if ns != 10 || nh != 10 {
		t.Fatalf("golden fixture counts = (%d, %d), want (10, 10)", ns, nh)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("re-saving the golden fixture is not byte-identical")
	}
}

func TestGoldenSBDBV1Compat(t *testing.T) {
	v1, err := os.ReadFile(filepath.Join("testdata", "golden_v1.sbdb"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Load(bytes.NewReader(v1), DefaultOptions(), nil)
	if err != nil {
		t.Fatalf("loading v1 fixture: %v", err)
	}
	ns, nh := f.Counts()
	if ns != 10 || nh != 10 {
		t.Fatalf("v1 fixture counts = (%d, %d), want (10, 10)", ns, nh)
	}
	// The v1 fixture was written from the same training data as the
	// v2 golden, so migrating it (load + save) must land exactly on
	// the canonical v2 bytes.
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), canonicalDB()) {
		t.Fatal("v1 fixture does not migrate to the canonical v2 bytes")
	}
}
