package sbayes

// Native fuzz target for the SBDB persistence format: whatever bytes
// arrive, Load must either return an error (leaving an in-place
// receiver untouched) or produce a filter whose re-serialization is
// stable — never panic, never silently keep partial state. Seed
// corpus entries live in testdata/fuzz/FuzzSBayesSaveLoad.

import (
	"bytes"
	"testing"
)

// canonicalDB returns the canonical Save bytes of a small trained
// filter — the well-formed seed the fuzzer mutates from.
func canonicalDB() []byte {
	f := NewDefault()
	trainBasic(f)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzSBayesSaveLoad(f *testing.F) {
	valid := canonicalDB()
	f.Add([]byte{})
	f.Add([]byte("SBDB"))            // truncated magic
	f.Add([]byte("GRDB\x01"))        // foreign database
	f.Add(valid)                     // well-formed
	f.Add(valid[:len(valid)/2])      // truncated body
	f.Add(append(valid, 0xff))       // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		// In-place Load on a trained filter: an error must leave the
		// receiver byte-for-byte unchanged (no partial state).
		trained := NewDefault()
		trained.Learn(mkMsg("meeting budget report\n"), false)
		trained.Learn(mkMsg("lottery winner prize\n"), true)
		var before bytes.Buffer
		if err := trained.Save(&before); err != nil {
			t.Fatal(err)
		}
		if err := trained.Load(bytes.NewReader(data)); err != nil {
			var after bytes.Buffer
			if err := trained.Save(&after); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before.Bytes(), after.Bytes()) {
				t.Fatal("failed Load mutated the receiver")
			}
			return
		}

		// The input parsed: loading must have replaced the state
		// entirely, and Save → Load → Save must be byte-stable (Save
		// canonicalizes, so one round trip reaches the fixed point).
		var first bytes.Buffer
		if err := trained.Save(&first); err != nil {
			t.Fatalf("saving loaded filter: %v", err)
		}
		reloaded, err := Load(bytes.NewReader(first.Bytes()), DefaultOptions(), nil)
		if err != nil {
			t.Fatalf("re-loading just-saved database: %v", err)
		}
		ns0, nh0 := trained.Counts()
		ns1, nh1 := reloaded.Counts()
		if ns0 != ns1 || nh0 != nh1 {
			t.Fatalf("counts (%d, %d) != reloaded (%d, %d)", ns0, nh0, ns1, nh1)
		}
		var second bytes.Buffer
		if err := reloaded.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("save -> load -> save is not byte-identical")
		}
	})
}
