package scenario

// Tests for the online admission-control mode: inline vetting defends
// the deployment at a fraction of the batch defense's probe bill, the
// trace is deterministic, the adaptive attacker reacts to the
// pipeline, and ham-labeled pseudospam evades the impact-only batch
// defense but not the structural gate.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/stats"
)

func TestOnlineAdmissionDefendsDictionaryAttack(t *testing.T) {
	for _, backend := range []string{"sbayes", "graham"} {
		t.Run(backend, func(t *testing.T) {
			g := testGen(t)
			cfg := smallCfg()
			cfg.Backend = backend
			cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

			unguarded, err := RunOnline(g, cfg, stats.NewRNG(41))
			if err != nil {
				t.Fatal(err)
			}
			guardedCfg := cfg
			guardedCfg.Admission = &AdmissionConfig{}
			guarded, err := RunOnline(g, guardedCfg, stats.NewRNG(41))
			if err != nil {
				t.Fatal(err)
			}

			// Equal dose, a small fraction of the damage: the guarded
			// engine's at-delivery ham loss stays clean while the
			// unguarded one collapses (sbayes; graham degrades more
			// slowly, so assert the ordering and the guarded bound).
			if loss := guarded.FinalHamLoss(); loss > 0.1 {
				t.Errorf("guarded final ham loss %v", loss)
			}
			if backend == "sbayes" && unguarded.FinalHamLoss() < 0.3 {
				t.Errorf("unguarded final ham loss only %v — attack fixture too weak", unguarded.FinalHamLoss())
			}

			totalProbes, maxBatch := 0, 0
			for _, w := range guarded.Weeks {
				a := w.Admission
				if a == nil {
					t.Fatalf("week %d missing admission report", w.Week)
				}
				if w.AttackArrived > 0 && a.AttackRejected+a.AttackQuarantined != w.AttackArrived {
					t.Errorf("week %d: %d of %d attack arrivals slipped past admission",
						w.Week, w.AttackArrived-a.AttackRejected-a.AttackQuarantined, w.AttackArrived)
				}
				totalProbes += a.Probes
				if a.BatchProbeEquivalent > maxBatch {
					maxBatch = a.BatchProbeEquivalent
				}
				// The main trace mirrors the admission rejections.
				if w.AttackRejected != a.AttackRejected || w.OrganicRejected != a.OrganicRejected {
					t.Errorf("week %d: batch columns %d/%d do not mirror admission %d/%d",
						w.Week, w.AttackRejected, w.OrganicRejected, a.AttackRejected, a.OrganicRejected)
				}
			}
			// The whole run's probe bill stays strictly below what ONE
			// week-end batch RONI pass would spend.
			if totalProbes >= maxBatch {
				t.Errorf("total probes %d not below one batch pass (%d)", totalProbes, maxBatch)
			}
			if totalProbes == 0 {
				t.Error("the incremental admitter never probed")
			}
			for _, want := range []string{"inline admission control", "batch-eq", "total probes"} {
				if !strings.Contains(guarded.Render(), want) {
					t.Errorf("render missing %q", want)
				}
			}
		})
	}
}

func TestOnlineAdmissionDeterminism(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackChunks = 3
	cfg.Admission = &AdmissionConfig{}
	cfg.RetrainLag = 17
	a, err := RunOnline(g, cfg, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(g, cfg, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if !reflect.DeepEqual(a.Weeks[i], b.Weeks[i]) {
			t.Fatalf("week %d differs across identical runs:\n%+v\n%+v\nadmission: %+v vs %+v",
				i+1, a.Weeks[i], b.Weeks[i], a.Weeks[i].Admission, b.Weeks[i].Admission)
		}
	}
}

func TestOnlineAdmissionIncrementalMatchesPeriodic(t *testing.T) {
	// The vetted kept-mail stream is identical either way, and the
	// refit hook sees the same replacement counts, so the two rebuild
	// strategies must agree verdict for verdict.
	g := testGen(t)
	cfg := smallCfg()
	cfg.Weeks = 3
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.Admission = &AdmissionConfig{}

	periodic := cfg
	periodic.Retraining = RetrainPeriodic
	a, err := RunOnline(g, periodic, stats.NewRNG(43))
	if err != nil {
		t.Fatal(err)
	}
	incremental := cfg
	incremental.Retraining = RetrainIncremental
	b, err := RunOnline(g, incremental, stats.NewRNG(43))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if !reflect.DeepEqual(a.Weeks[i], b.Weeks[i]) {
			t.Fatalf("week %d differs: periodic %+v vs incremental %+v", i+1, a.Weeks[i], b.Weeks[i])
		}
	}
}

func TestOnlineAdmissionSharded(t *testing.T) {
	// Gateway vetting upstream of the partition: the targeted
	// dictionary attack is rejected before it can train the victim's
	// shard, so even the target's shard stays clean.
	g := testGen(t)
	cfg := smallCfg()
	cfg.Shards = 2
	cfg.Recipients = 4
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackRecipient = RecipientAddress(0)
	cfg.Admission = &AdmissionConfig{}
	res, err := RunOnline(g, cfg, stats.NewRNG(44))
	if err != nil {
		t.Fatal(err)
	}
	target := cfg.TargetShard()
	for _, w := range res.Weeks {
		if w.Admission == nil {
			t.Fatalf("week %d missing admission report", w.Week)
		}
		if w.AttackArrived > 0 && w.Admission.AttackAdmitted != 0 {
			t.Errorf("week %d: %d attack messages admitted at the gateway", w.Week, w.Admission.AttackAdmitted)
		}
		if loss := w.ByShard[target].HamMisclassifiedRate(); loss > 0.15 {
			t.Errorf("week %d: target shard ham loss %v despite gateway vetting", w.Week, loss)
		}
	}
	// Determinism holds in sharded mode too.
	again, err := RunOnline(g, cfg, stats.NewRNG(44))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Weeks {
		if !reflect.DeepEqual(res.Weeks[i], again.Weeks[i]) {
			t.Fatalf("sharded week %d differs across identical runs", i+1)
		}
	}
}

func TestAdaptiveAttackerReactsToAdmission(t *testing.T) {
	g := testGen(t)
	base := smallCfg()
	base.Weeks = 6
	attack := core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

	// Against the guarded pipeline the dose collapses toward the floor…
	guardedAttack, err := core.NewAdaptiveAttacker(attack, core.DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Attack = guardedAttack
	cfg.AttackAdaptive = true
	cfg.Admission = &AdmissionConfig{}
	guarded, err := RunOnline(g, cfg, stats.NewRNG(45))
	if err != nil {
		t.Fatal(err)
	}
	// …and against the undefended pipeline it ramps to the ceiling.
	openAttack, err := core.NewAdaptiveAttacker(attack, core.DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	open := base
	open.Attack = openAttack
	open.AttackAdaptive = true
	unguarded, err := RunOnline(g, open, stats.NewRNG(45))
	if err != nil {
		t.Fatal(err)
	}

	firstDose := guarded.Weeks[base.AttackStartWeek-1].AttackDose
	lastGuarded := guarded.Weeks[len(guarded.Weeks)-1].AttackDose
	lastOpen := unguarded.Weeks[len(unguarded.Weeks)-1].AttackDose
	if firstDose != base.AttackFraction {
		t.Errorf("first attack week dose %v, want the base %v", firstDose, base.AttackFraction)
	}
	if lastGuarded >= firstDose {
		t.Errorf("dose against the guarded pipeline did not shrink: %v -> %v", firstDose, lastGuarded)
	}
	if lastOpen <= firstDose {
		t.Errorf("dose against the open pipeline did not grow: %v -> %v", firstDose, lastOpen)
	}
	if !strings.Contains(guarded.Render(), "dose adapts to feedback") {
		t.Error("render does not describe the adaptive attacker")
	}
}

func TestPseudospamHamLabelsEvadeBatchRONIButNotAdmission(t *testing.T) {
	// Ham-labeled poison does not depress ham-as-ham, so the
	// impact-thresholded batch defense waves it through — while the
	// structural flood gate, which never reads the label, still
	// rejects every copy.
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackLabelHam = true

	batch := cfg
	batch.UseRONI = true
	batchRes, err := RunOnline(g, batch, stats.NewRNG(46))
	if err != nil {
		t.Fatal(err)
	}
	inline := cfg
	inline.Admission = &AdmissionConfig{}
	inlineRes, err := RunOnline(g, inline, stats.NewRNG(46))
	if err != nil {
		t.Fatal(err)
	}

	var batchRejected, inlineRejected, arrived int
	for i := range batchRes.Weeks {
		arrived += batchRes.Weeks[i].AttackArrived
		batchRejected += batchRes.Weeks[i].AttackRejected
		inlineRejected += inlineRes.Weeks[i].AttackRejected
	}
	if arrived == 0 {
		t.Fatal("no attack traffic simulated")
	}
	if batchRejected != 0 {
		t.Errorf("batch RONI rejected %d ham-labeled attack messages — the stress fixture no longer stresses", batchRejected)
	}
	if inlineRejected != arrived {
		t.Errorf("admission rejected %d of %d ham-labeled attack messages", inlineRejected, arrived)
	}
	// At-delivery confusions still count the attacker's mail as spam.
	week := batchRes.Weeks[cfg.AttackStartWeek-1]
	if got := week.Delivered.NumSpam(); got <= cfg.MessagesPerWeek/2 {
		t.Errorf("attack week spam observations %d — ham-labeled attack mail not observed as spam", got)
	}
	if !strings.Contains(batchRes.Render(), "under ham labels") {
		t.Error("render does not describe the pseudospam labels")
	}
}

func TestAdmissionValidation(t *testing.T) {
	g := testGen(t)
	attack := core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))

	cfg := smallCfg()
	cfg.Admission = &AdmissionConfig{}
	cfg.UseRONI = true
	if err := cfg.Validate(); err == nil {
		t.Error("Admission alongside UseRONI validated")
	}

	cfg = smallCfg()
	cfg.AttackAdaptive = true
	if err := cfg.Validate(); err == nil {
		t.Error("AttackAdaptive without an attack validated")
	}
	cfg.Attack = attack // no FeedbackAttacker capability
	if err := cfg.Validate(); err == nil {
		t.Error("AttackAdaptive with a non-adaptive attack validated")
	}

	cfg = smallCfg()
	cfg.AttackLabelHam = true
	if err := cfg.Validate(); err == nil {
		t.Error("AttackLabelHam without an attack validated")
	}

	cfg = smallCfg()
	cfg.Admission = &AdmissionConfig{RONI: core.RONIConfig{TrainSize: 1}}
	if err := cfg.Validate(); err == nil {
		t.Error("invalid admission RONI config validated")
	}
	cfg = smallCfg()
	cfg.Admission = &AdmissionConfig{QuarantineCapacity: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative quarantine capacity validated")
	}

	// The batch simulator refuses the online-only defenses instead of
	// silently running undefended.
	cfg = smallCfg()
	cfg.Admission = &AdmissionConfig{}
	if _, err := Run(g, cfg, stats.NewRNG(1)); err == nil {
		t.Error("Run accepted Config.Admission")
	}
	cfg = smallCfg()
	adaptive, err := core.NewAdaptiveAttacker(attack, core.DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Attack = adaptive
	cfg.AttackAdaptive = true
	if _, err := Run(g, cfg, stats.NewRNG(1)); err == nil {
		t.Error("Run accepted Config.AttackAdaptive")
	}
}
