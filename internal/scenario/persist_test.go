package scenario

// Tests for RunOnline's durable mode: checkpoint cadence, the
// simulated crash/restart point, and the recovery semantics — an
// every-publish checkpoint makes the crash verdict-transparent, a
// sparse cadence resumes an older generation and the trace shows it.

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/stats"
)

// durableCfg is smallCfg scaled down further — the durable-mode tests
// run several full simulations each.
func durableCfg() Config {
	cfg := smallCfg()
	cfg.Weeks = 4
	cfg.InitialMailStore = 300
	cfg.MessagesPerWeek = 150
	return cfg
}

func TestDurableConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.CheckpointEvery = -1 },
		func(c *Config) { c.CheckpointEvery = 2 }, // no store
		func(c *Config) { c.CrashAtWeek = -1 },
		func(c *Config) { c.CrashAtWeek = 2 }, // no store
		func(c *Config) { c.Checkpoints = engine.NewMemStore(); c.CrashAtWeek = 99 },
	}
	for i, mutate := range bad {
		c := durableCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	ok := durableCfg()
	ok.Checkpoints = engine.NewMemStore()
	ok.CheckpointEvery = 2
	ok.CrashAtWeek = 3
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// sameOutcome compares the user-visible trace of two runs, ignoring
// the durability bookkeeping fields.
func sameOutcome(t *testing.T, a, b *OnlineResult) {
	t.Helper()
	if len(a.Weeks) != len(b.Weeks) {
		t.Fatalf("%d weeks vs %d", len(a.Weeks), len(b.Weeks))
	}
	for i := range a.Weeks {
		wa, wb := a.Weeks[i], b.Weeks[i]
		if wa.Delivered != wb.Delivered {
			t.Errorf("week %d: Delivered %+v != %+v", wa.Week, wa.Delivered, wb.Delivered)
		}
		if wa.Generation != wb.Generation {
			t.Errorf("week %d: Generation %d != %d", wa.Week, wa.Generation, wb.Generation)
		}
		if wa.MailStoreSize != wb.MailStoreSize {
			t.Errorf("week %d: MailStoreSize %d != %d", wa.Week, wa.MailStoreSize, wb.MailStoreSize)
		}
		for s := range wa.ByShard {
			if wa.ByShard[s] != wb.ByShard[s] {
				t.Errorf("week %d shard %d: %+v != %+v", wa.Week, s, wa.ByShard[s], wb.ByShard[s])
			}
		}
	}
}

// TestOnlineCrashRecoveryTransparent is the core durability claim:
// with a checkpoint at every publish, killing the engine at a week
// boundary and resuming from the store changes nothing the users can
// see — the resumed snapshot serves the exact verdicts the lost
// in-memory engine would have.
func TestOnlineCrashRecoveryTransparent(t *testing.T) {
	g := testGen(t)
	cfg := durableCfg()

	clean, err := RunOnline(g, cfg, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoints = engine.NewMemStore()
	cfg.CrashAtWeek = 2
	crashed, err := RunOnline(g, cfg, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, clean, crashed)

	for _, w := range crashed.Weeks {
		if got, want := w.Resumed, w.Week == 2; got != want {
			t.Errorf("week %d: Resumed = %v", w.Week, got)
		}
		// One publish per week from week 2 on, each checkpointed.
		if want := 0; w.Week > 1 {
			want = 1
			if w.Checkpointed != want {
				t.Errorf("week %d: Checkpointed = %d, want %d", w.Week, w.Checkpointed, want)
			}
		}
	}
	render := crashed.Render()
	for _, want := range []string{"2*", "resumed from the checkpoint"} {
		if !strings.Contains(render, want) {
			t.Errorf("render missing %q:\n%s", want, render)
		}
	}
	if strings.Contains(clean.Render(), "resumed") {
		t.Error("clean render mentions a resume")
	}
}

// TestOnlineSparseCheckpointLosesGenerations shows the other side:
// with a cadence wider than the retrain rate, the crash resumes an
// older generation — recovery silently rewinds the filter to the
// last persisted state, which is exactly the provenance gap the
// generation stamp makes visible.
func TestOnlineSparseCheckpointLosesGenerations(t *testing.T) {
	g := testGen(t)
	cfg := durableCfg()
	cfg.Checkpoints = engine.NewMemStore()
	cfg.CheckpointEvery = 3 // only the bootstrap makes it to disk before the crash
	cfg.CrashAtWeek = 3
	res, err := RunOnline(g, cfg, stats.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	w3 := res.Weeks[2]
	if !w3.Resumed {
		t.Fatal("week 3 not marked resumed")
	}
	// Pre-crash the engine served generation 3; the only persisted
	// generation is the bootstrap's 1, so that is what the restart
	// got.
	if w3.Generation != 1 {
		t.Fatalf("resumed generation %d, want the bootstrap's 1", w3.Generation)
	}
	// The line continues from the resumed generation.
	if g4 := res.Weeks[3].Generation; g4 != 2 {
		t.Fatalf("week 4 generation %d, want 2", g4)
	}
}

// TestOnlineShardedCrashRecoveryTransparent is the fleet version of
// the transparency claim, and additionally pins that every shard
// resumed its own generation line.
func TestOnlineShardedCrashRecoveryTransparent(t *testing.T) {
	g := testGen(t)
	cfg := durableCfg()
	cfg.Shards = 2
	cfg.Recipients = 6

	clean, err := RunOnline(g, cfg, stats.NewRNG(33))
	if err != nil {
		t.Fatal(err)
	}

	store := engine.NewMemStore()
	cfg.Checkpoints = store
	cfg.CrashAtWeek = 2
	crashed, err := RunOnline(g, cfg, stats.NewRNG(33))
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, clean, crashed)
	if !crashed.Weeks[1].Resumed {
		t.Fatal("week 2 not marked resumed")
	}

	// Each shard's snapshot line is its own: the store holds one line
	// per shard, resumable independently of the scenario.
	for i := 0; i < cfg.Shards; i++ {
		name := engine.ShardSnapshotName(ShardedCheckpointName, i)
		gens, err := store.Generations(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) == 0 {
			t.Fatalf("shard %d has no persisted generations", i)
		}
		if _, _, err := engine.ResumeEngine(store, name, engine.Config{}); err != nil {
			t.Errorf("shard %d line does not resume standalone: %v", i, err)
		}
	}
}

// TestOnlineCheckpointScrubbedPoisonStaysScrubbed ties durability to
// the paper's threat model: a deployment that checkpoints after RONI
// scrubbing must not resurrect rejected poison on restart — the
// resumed store sizes and rejection counters match the uncrashed
// run's exactly (covered by sameOutcome in the transparent test), and
// the resumed filter was trained without the rejected messages.
func TestOnlineCheckpointScrubbedPoisonStaysScrubbed(t *testing.T) {
	if testing.Short() {
		t.Skip("full RONI deployment simulation")
	}
	g := testGen(t)
	cfg := durableCfg()
	cfg.UseRONI = true
	cfg.Checkpoints = engine.NewMemStore()
	cfg.CrashAtWeek = 3
	res, err := RunOnline(g, cfg, stats.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Weeks[2].Resumed {
		t.Fatal("week 3 not marked resumed")
	}
	// The resumed line keeps serving: the last week's at-delivery ham
	// loss stays at clean-deployment levels.
	if loss := res.FinalHamLoss(); loss > 0.15 {
		t.Errorf("final ham loss %v after crash recovery", loss)
	}
}
