package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/stats"
	"repro/internal/textgen"
)

func testGen(t testing.TB) *textgen.Generator {
	t.Helper()
	u := textgen.MustUniverse(textgen.UniverseConfig{
		CommonWords:     50,
		StandardWords:   700,
		FormalWords:     250,
		ColloquialWords: 290,
		SpamWords:       120,
		PersonalWords:   400,
	})
	return textgen.MustNew(u, textgen.DefaultConfig())
}

// smallCfg scales DefaultConfig down for tests.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Weeks = 4
	cfg.InitialMailStore = 400
	cfg.MessagesPerWeek = 200
	cfg.TestSize = 100
	cfg.AttackStartWeek = 2
	cfg.AttackFraction = 0.05
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Weeks = 0 },
		func(c *Config) { c.InitialMailStore = 5 },
		func(c *Config) { c.MessagesPerWeek = 0 },
		func(c *Config) { c.SpamPrevalence = 1 },
		func(c *Config) { c.TestSize = 1 },
		func(c *Config) { c.UseRONI = true; c.RONI.Trials = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
	// Attack-specific checks.
	g := testGen(t)
	c := DefaultConfig()
	c.Attack = core.NewOptimalAttack(g.Universe())
	c.AttackFraction = 0
	if err := c.Validate(); err == nil {
		t.Error("zero attack fraction validated")
	}
}

func TestCleanDeploymentStaysAccurate(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	res, err := Run(g, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != cfg.Weeks {
		t.Fatalf("%d weeks", len(res.Weeks))
	}
	for _, w := range res.Weeks {
		if loss := w.Confusion.HamMisclassifiedRate(); loss > 0.1 {
			t.Errorf("week %d: clean deployment loses %v of ham", w.Week, loss)
		}
		if w.AttackArrived != 0 || w.AttackRejected != 0 {
			t.Errorf("week %d: phantom attack activity", w.Week)
		}
	}
	// The store grows by the weekly volume.
	want := cfg.InitialMailStore + cfg.Weeks*cfg.MessagesPerWeek
	if got := res.Weeks[len(res.Weeks)-1].MailStoreSize; got != want {
		t.Errorf("final store = %d, want %d", got, want)
	}
}

func TestAttackedDeploymentDegrades(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	res, err := Run(g, cfg, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Before the attack starts, the filter works.
	pre := res.Weeks[cfg.AttackStartWeek-2]
	if loss := pre.Confusion.HamMisclassifiedRate(); loss > 0.1 {
		t.Errorf("pre-attack week loses %v", loss)
	}
	// After the attack has run, the filter is badly degraded.
	if res.FinalHamLoss() < 0.5 {
		t.Errorf("final ham loss only %v despite sustained attack", res.FinalHamLoss())
	}
	// Attack volume reported.
	last := res.Weeks[len(res.Weeks)-1]
	if last.AttackArrived == 0 {
		t.Error("no attack arrivals recorded")
	}
}

func TestRONIScrubbingSavesDeployment(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.UseRONI = true
	res, err := Run(g, cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// The defense rejects the attack emails...
	totalArrived, totalRejected := 0, 0
	for _, w := range res.Weeks {
		totalArrived += w.AttackArrived
		totalRejected += w.AttackRejected
	}
	if totalArrived == 0 {
		t.Fatal("no attack traffic simulated")
	}
	if totalRejected < totalArrived {
		t.Errorf("RONI rejected %d of %d attack emails", totalRejected, totalArrived)
	}
	// ...and the filter stays usable.
	if res.FinalHamLoss() > 0.15 {
		t.Errorf("final ham loss %v despite RONI", res.FinalHamLoss())
	}
	// Organic rejections stay rare.
	organic := 0
	for _, w := range res.Weeks {
		organic += w.OrganicRejected
	}
	if organic > cfg.Weeks*cfg.MessagesPerWeek/20 {
		t.Errorf("RONI rejected %d organic messages", organic)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	cfg := smallCfg()
	cfg.Backend = "nonesuch"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown backend validated")
	}
	g := testGen(t)
	if _, err := Run(g, cfg, stats.NewRNG(9)); err == nil {
		t.Error("Run accepted unknown backend")
	}
}

func TestGrahamBackendDeploymentUnderDictionaryAttack(t *testing.T) {
	// The same deployment, the same attack stream, a different
	// learner: the dictionary attack transfers to the Graham baseline
	// once the dose is high enough (its clamps and 15-token cap need
	// roughly an order of magnitude more volume than SpamBayes).
	g := testGen(t)
	cfg := smallCfg()
	cfg.Backend = "graham"
	cfg.Attack = core.NewDictionaryAttack(lexicon.Optimal(g.Universe()))
	cfg.AttackFraction = 0.5
	res, err := Run(g, cfg, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	// Before the attack starts, the Graham filter works.
	pre := res.Weeks[cfg.AttackStartWeek-2]
	if loss := pre.Confusion.HamMisclassifiedRate(); loss > 0.1 {
		t.Errorf("pre-attack week loses %v of ham", loss)
	}
	// Graham's verdict is binary: no unsure cells, ever.
	for _, w := range res.Weeks {
		if w.Confusion.HamAsUnsure != 0 || w.Confusion.SpamAsUnsure != 0 {
			t.Errorf("week %d: graham produced unsure verdicts: %+v", w.Week, w.Confusion)
		}
	}
	// After the sustained high-dose attack, the filter is degraded.
	if res.FinalHamLoss() < 0.25 {
		t.Errorf("final ham loss only %v; dictionary attack did not transfer to graham", res.FinalHamLoss())
	}
	if !strings.Contains(res.Render(), "graham backend") {
		t.Error("render does not name the backend")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	cfg.Weeks = 2
	a, err := Run(g, cfg, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, cfg, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weeks {
		if a.Weeks[i] != b.Weeks[i] {
			t.Fatalf("week %d differs: %+v vs %+v", i+1, a.Weeks[i], b.Weeks[i])
		}
	}
}

func TestRenderContainsTrace(t *testing.T) {
	g := testGen(t)
	cfg := smallCfg()
	cfg.Weeks = 2
	res, err := Run(g, cfg, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Deployment simulation", "week", "ham lost", "no attack", "no defense"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
